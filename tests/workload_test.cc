#include <gtest/gtest.h>

#include "sql/parser.h"
#include "workload/flights.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

namespace ifgen {
namespace {

TEST(Sdss, Listing1HasTenParsableQueries) {
  auto log = SdssListing1();
  ASSERT_EQ(log.size(), 10u);
  auto queries = ParseQueries(log);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
}

TEST(Sdss, AllQueriesShareWhereStructure) {
  // Paper, Listing 1 caption: "All queries have the same WHERE clause
  // structure" — four BETWEEN conjuncts over u, g, r, i.
  auto queries = *ParseQueries(SdssListing1());
  for (const Ast& q : queries) {
    const Ast& where = q.children.back();
    ASSERT_EQ(where.sym, Symbol::kWhere);
    const Ast& conj = where.children[0];
    ASSERT_EQ(conj.sym, Symbol::kAnd);
    ASSERT_EQ(conj.children.size(), 4u);
    const char* cols[] = {"u", "g", "r", "i"};
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(conj.children[i].sym, Symbol::kBetween);
      EXPECT_EQ(conj.children[i].children[0].value, cols[i]);
    }
  }
}

TEST(Sdss, Queries6To8ShareWhereClause) {
  // Paper, Figure 6(c) discussion.
  auto queries = *ParseQueries(SdssListing1());
  EXPECT_EQ(queries[5].children.back(), queries[6].children.back());
  EXPECT_EQ(queries[6].children.back(), queries[7].children.back());
  // ... while query 2's WHERE differs.
  EXPECT_NE(queries[1].children.back(), queries[5].children.back());
}

TEST(Sdss, TopValuesFollowThePaper) {
  auto queries = *ParseQueries(SdssListing1());
  const char* expected[] = {"10", "100", "1000", nullptr, nullptr,
                            "10", "100", "1000", nullptr, nullptr};
  for (size_t i = 0; i < 10; ++i) {
    const Ast* top = nullptr;
    for (const Ast& c : queries[i].children) {
      if (c.sym == Symbol::kTop) top = &c;
    }
    if (expected[i] == nullptr) {
      EXPECT_EQ(top, nullptr) << "query " << i + 1;
    } else {
      ASSERT_NE(top, nullptr) << "query " << i + 1;
      EXPECT_EQ(top->value, expected[i]);
    }
  }
}

TEST(Sdss, DatabaseHasThreeTables) {
  Database db = MakeSdssDatabase(10, 1);
  EXPECT_TRUE(db.GetTable("stars").ok());
  EXPECT_TRUE(db.GetTable("galaxies").ok());
  EXPECT_TRUE(db.GetTable("quasars").ok());
}

TEST(Synthetic, GeneratesRequestedCount) {
  LogSpec spec;
  spec.num_queries = 14;
  auto log = GenerateLog(spec);
  EXPECT_EQ(log.size(), 14u);
  EXPECT_TRUE(ParseQueries(log).ok());
}

TEST(Synthetic, Deterministic) {
  LogSpec spec;
  spec.seed = 99;
  EXPECT_EQ(GenerateLog(spec), GenerateLog(spec));
}

TEST(Synthetic, OptionalWhereDropsClauses) {
  LogSpec spec;
  spec.num_queries = 9;
  spec.optional_where = true;
  auto queries = *ParseQueries(GenerateLog(spec));
  size_t without = 0;
  for (const Ast& q : queries) {
    bool has_where = false;
    for (const Ast& c : q.children) has_where |= c.sym == Symbol::kWhere;
    without += has_where ? 0 : 1;
  }
  EXPECT_EQ(without, 3u);  // every third query
}

TEST(Synthetic, VaryPredicateCountChangesConjuncts) {
  LogSpec spec;
  spec.num_queries = 6;
  spec.num_predicates = 3;
  spec.vary_predicate_count = true;
  auto queries = *ParseQueries(GenerateLog(spec));
  std::set<size_t> counts;
  for (const Ast& q : queries) {
    for (const Ast& c : q.children) {
      if (c.sym != Symbol::kWhere) continue;
      const Ast& pred = c.children[0];
      counts.insert(pred.sym == Symbol::kAnd ? pred.children.size() : 1);
    }
  }
  EXPECT_GE(counts.size(), 2u);
}

TEST(Synthetic, DatabaseMatchesLog) {
  LogSpec spec;
  spec.num_tables = 2;
  Database db = MakeSyntheticDatabase(spec, 20);
  EXPECT_TRUE(db.GetTable("t0").ok());
  EXPECT_TRUE(db.GetTable("t1").ok());
  EXPECT_FALSE(db.GetTable("t2").ok());
}

TEST(Flights, LogParsesAndUsesGroupBy) {
  auto queries = ParseQueries(FlightsLog());
  ASSERT_TRUE(queries.ok());
  size_t with_group = 0;
  for (const Ast& q : *queries) {
    for (const Ast& c : q.children) with_group += c.sym == Symbol::kGroupBy ? 1 : 0;
  }
  EXPECT_EQ(with_group, queries->size());  // every flights query aggregates
}

}  // namespace
}  // namespace ifgen
