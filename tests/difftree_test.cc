#include <gtest/gtest.h>

#include "difftree/builder.h"
#include "difftree/difftree.h"
#include "difftree/enumerate.h"
#include "difftree/match.h"
#include "difftree/normalize.h"
#include "difftree/selection.h"
#include "sql/parser.h"
#include "sql/unparser.h"

namespace ifgen {
namespace {

Ast Q(const std::string& sql) {
  auto q = ParseQuery(sql);
  EXPECT_TRUE(q.ok()) << sql;
  return *q;
}

TEST(DiffTree, FromAstRoundTrip) {
  Ast q = Q("select a from t where x = 1");
  DiffTree d = DiffTree::FromAst(q);
  EXPECT_EQ(d.ChoiceCount(), 0u);
  auto back = d.ToAst();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, q);
}

TEST(DiffTree, SeqAndEmptyExpansion) {
  DiffTree seq = DiffTree::Seq({DiffTree::FromAst(Col("a")), DiffTree::Empty(),
                                DiffTree::FromAst(Col("b"))});
  auto nodes = seq.ToAstSequence();
  ASSERT_TRUE(nodes.ok());
  ASSERT_EQ(nodes->size(), 2u);
  EXPECT_EQ((*nodes)[0].value, "a");
  EXPECT_EQ((*nodes)[1].value, "b");
}

TEST(DiffTree, ToAstFailsOnChoices) {
  DiffTree any = DiffTree::Any({DiffTree::FromAst(Col("a"))});
  EXPECT_FALSE(any.ToAst().ok());
}

TEST(DiffTree, CanonicalHashIgnoresAnyOrder) {
  DiffTree a = DiffTree::Any({DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("b"))});
  DiffTree b = DiffTree::Any({DiffTree::FromAst(Col("b")), DiffTree::FromAst(Col("a"))});
  EXPECT_NE(a.Hash(), b.Hash());  // structural hash is order-sensitive
  EXPECT_EQ(a.CanonicalHash(), b.CanonicalHash());
}

TEST(DiffTree, CanonicalHashKeepsAllOrder) {
  DiffTree a(Symbol::kList, "", {DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("b"))});
  DiffTree b(Symbol::kList, "", {DiffTree::FromAst(Col("b")), DiffTree::FromAst(Col("a"))});
  EXPECT_NE(a.CanonicalHash(), b.CanonicalHash());  // sequences are ordered
}

TEST(DiffTree, CanonicalHashInvariantUnderNestedAnyPermutation) {
  // Permutations at *every* ANY level must hash equal — this is the
  // transposition-table key, so a miss here would make parallel trees
  // re-evaluate states that only differ in alternative order.
  auto make = [](bool flip_outer, bool flip_inner) {
    DiffTree inner = flip_inner
        ? DiffTree::Any({DiffTree::FromAst(Col("c")), DiffTree::FromAst(Col("d"))})
        : DiffTree::Any({DiffTree::FromAst(Col("d")), DiffTree::FromAst(Col("c"))});
    std::vector<DiffTree> alts;
    if (flip_outer) {
      alts.push_back(DiffTree::FromAst(Col("a")));
      alts.push_back(std::move(inner));
    } else {
      alts.push_back(std::move(inner));
      alts.push_back(DiffTree::FromAst(Col("a")));
    }
    return DiffTree::Any(std::move(alts));
  };
  uint64_t h = make(false, false).CanonicalHash();
  EXPECT_EQ(make(false, true).CanonicalHash(), h);
  EXPECT_EQ(make(true, false).CanonicalHash(), h);
  EXPECT_EQ(make(true, true).CanonicalHash(), h);
}

TEST(DiffTree, CanonicalHashSeparatesSemanticallyDistinctTrees) {
  DiffTree leaf = DiffTree::FromAst(Col("a"));
  DiffTree any = DiffTree::Any({leaf, DiffTree::FromAst(Col("b"))});
  DiffTree opt = DiffTree::Opt(leaf);
  DiffTree multi = DiffTree::Multi(leaf);
  // Different choice kinds over the same children mean different query
  // sets; the canonical hash must keep them apart.
  EXPECT_NE(opt.CanonicalHash(), multi.CanonicalHash());
  EXPECT_NE(opt.CanonicalHash(), any.CanonicalHash());
  EXPECT_NE(any.CanonicalHash(), leaf.CanonicalHash());
  // Different leaf values too.
  EXPECT_NE(DiffTree::FromAst(Col("a")).CanonicalHash(),
            DiffTree::FromAst(Col("b")).CanonicalHash());
}

TEST(DiffTree, NodeAtPaths) {
  DiffTree d = DiffTree::FromAst(Q("select a from t"));
  EXPECT_EQ(NodeAt(d, {})->sym, Symbol::kSelect);
  EXPECT_EQ(NodeAt(d, {0})->sym, Symbol::kProject);
  EXPECT_EQ(NodeAt(d, {1, 0})->sym, Symbol::kTable);
  EXPECT_EQ(NodeAt(d, {9}), nullptr);
}

TEST(Normalize, SpliceSeqAndDropEmpty) {
  DiffTree d(Symbol::kWhere, "",
             {DiffTree::Seq({DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("b"))}),
              DiffTree::Empty()});
  Normalize(&d);
  ASSERT_EQ(d.children.size(), 2u);
  EXPECT_EQ(d.children[0].value, "a");
  EXPECT_EQ(d.children[1].value, "b");
}

TEST(Normalize, CollapsesDegenerateChoices) {
  DiffTree opt = DiffTree::Opt(DiffTree::Empty());
  Normalize(&opt);
  EXPECT_TRUE(opt.IsEmptyLeaf());

  DiffTree mm = DiffTree::Multi(DiffTree::Multi(DiffTree::FromAst(Col("a"))));
  Normalize(&mm);
  EXPECT_EQ(mm.kind, DKind::kMulti);
  EXPECT_EQ(mm.children[0].kind, DKind::kAll);

  DiffTree mo = DiffTree::Multi(DiffTree::Opt(DiffTree::FromAst(Col("a"))));
  Normalize(&mo);
  EXPECT_EQ(mo.kind, DKind::kMulti);
  EXPECT_EQ(mo.children[0].kind, DKind::kAll);

  DiffTree oo = DiffTree::Opt(DiffTree::Opt(DiffTree::FromAst(Col("a"))));
  Normalize(&oo);
  EXPECT_EQ(oo.kind, DKind::kOpt);
  EXPECT_EQ(oo.children[0].kind, DKind::kAll);
}

TEST(Normalize, WellFormedAfter) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  std::string why;
  EXPECT_TRUE(IsWellFormed(d, &why)) << why;
}

TEST(Builder, InitialTreeIsAnyOverQueries) {
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  EXPECT_EQ(d.kind, DKind::kAny);
  EXPECT_EQ(d.children.size(), 2u);
  EXPECT_TRUE(ExpressesAll(d, queries));
}

TEST(Builder, EmptyLogFails) {
  EXPECT_FALSE(BuildInitialTree({}).ok());
}

TEST(Builder, SingleQueryStillWrapped) {
  DiffTree d = *BuildInitialTree({Q("select a from t")});
  EXPECT_EQ(d.kind, DKind::kAny);
}

TEST(Match, ExactQuery) {
  Ast q = Q("select a from t where x = 1");
  DiffTree d = DiffTree::FromAst(q);
  EXPECT_TRUE(MatchQuery(d, q).has_value());
  EXPECT_FALSE(MatchQuery(d, Q("select b from t")).has_value());
}

TEST(Match, AnyChoosesAlternative) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  auto m = MatchQuery(d, Q("select b from t"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->choice, 1);  // second alternative
  EXPECT_FALSE(MatchQuery(d, Q("select c from t")).has_value());
}

TEST(Match, OptionalClause) {
  // Select with OPT(Where): expresses both with and without the clause.
  Ast with = Q("select a from t where x = 1");
  Ast without = Q("select a from t");
  DiffTree d = DiffTree::FromAst(with);
  // Make the Where child optional by hand.
  DiffTree where = d.children[2];
  d.children[2] = DiffTree::Opt(std::move(where));
  EXPECT_TRUE(MatchQuery(d, with).has_value());
  EXPECT_TRUE(MatchQuery(d, without).has_value());
}

TEST(Match, MultiRepetition) {
  // And with MULTI(x = 1): matches 1..n conjuncts... a single conjunct
  // cannot be an And node in real SQL, so test at the Project list level:
  // Project with MULTI(ColExpr:a) matches any count of column a.
  DiffTree proj(Symbol::kProject, "");
  proj.children.push_back(DiffTree::Multi(DiffTree::FromAst(Col("a"))));
  Ast one(Symbol::kProject, "", {Col("a")});
  Ast three(Symbol::kProject, "", {Col("a"), Col("a"), Col("a")});
  Ast zero(Symbol::kProject, "");
  Ast other(Symbol::kProject, "", {Col("b")});
  EXPECT_TRUE(MatchQuery(proj, one).has_value());
  auto m3 = MatchQuery(proj, three);
  ASSERT_TRUE(m3.has_value());
  EXPECT_TRUE(MatchQuery(proj, zero).has_value());
  EXPECT_FALSE(MatchQuery(proj, other).has_value());
}

TEST(Match, MultiOfAnyMixesAlternatives) {
  DiffTree proj(Symbol::kProject, "");
  proj.children.push_back(DiffTree::Multi(
      DiffTree::Any({DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("b"))})));
  Ast mixed(Symbol::kProject, "", {Col("a"), Col("b"), Col("a")});
  EXPECT_TRUE(MatchQuery(proj, mixed).has_value());
}

TEST(Match, DerivationEncodesChoices) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  auto m0 = MatchQuery(d, Q("select a from t"));
  auto m1 = MatchQuery(d, Q("select b from t"));
  ASSERT_TRUE(m0 && m1);
  EXPECT_NE(m0->Encode(), m1->Encode());
}

TEST(Match, EnumerateDerivationsFindsAmbiguity) {
  // ANY(a, a): two parses of the same query.
  DiffTree d = DiffTree::Any(
      {DiffTree::FromAst(Q("select a from t")), DiffTree::FromAst(Q("select a from t"))});
  auto parses = EnumerateDerivations(d, Q("select a from t"), 10);
  EXPECT_EQ(parses.size(), 2u);
}

TEST(Match, ExpandDerivationInvertsMatch) {
  std::vector<Ast> queries = {Q("select top 10 a from t where x = 1 and y = 2"),
                              Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  for (const Ast& q : queries) {
    auto m = MatchQuery(d, q);
    ASSERT_TRUE(m.has_value());
    auto back = MaterializeDerivation(*m);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, q);
  }
}

TEST(Match, DefaultDerivationMaterializes) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  Derivation def = DefaultDerivation(d);
  auto q = MaterializeDerivation(def);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, Q("select a from t"));
}

TEST(Selection, ChoiceIndexIdsAreStable) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  ChoiceIndex idx(d);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.IdOf(idx.node(0)), 0);
  EXPECT_EQ(idx.IdOf(&d.children[0]), -1);  // not a choice node
}

TEST(Selection, StickySemantics) {
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  ChoiceIndex idx(d);
  SelectionMap state;
  auto m0 = MatchQuery(d, Q("select a from t"));
  size_t c0 = CountChangedAndAdvance(ExtractSelections(idx, *m0), &state);
  EXPECT_EQ(c0, 1u);  // first configuration sets the widget
  auto m0b = MatchQuery(d, Q("select a from t"));
  size_t c1 = CountChangedAndAdvance(ExtractSelections(idx, *m0b), &state);
  EXPECT_EQ(c1, 0u);  // same query: nothing changes
  auto m1 = MatchQuery(d, Q("select b from t"));
  size_t c2 = CountChangedAndAdvance(ExtractSelections(idx, *m1), &state);
  EXPECT_EQ(c2, 1u);
}

TEST(Enumerate, CoversInitialLanguage) {
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  std::vector<Ast> all = EnumerateQueries(d, 100);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(CountExpressible(d), 2.0);
}

TEST(Enumerate, OptDoublesCount) {
  Ast with = Q("select a from t where x = 1");
  DiffTree d = DiffTree::FromAst(with);
  DiffTree where = d.children[2];
  d.children[2] = DiffTree::Opt(std::move(where));
  EXPECT_DOUBLE_EQ(CountExpressible(d), 2.0);
  auto all = EnumerateQueries(d, 10);
  EXPECT_EQ(all.size(), 2u);
}

TEST(Enumerate, EnumeratedQueriesAreExpressible) {
  std::vector<Ast> queries = {Q("select a from t where x = 1"),
                              Q("select b from t where x = 2"),
                              Q("select b from u")};
  DiffTree d = *BuildInitialTree(queries);
  for (const Ast& q : EnumerateQueries(d, 50)) {
    EXPECT_TRUE(MatchQuery(d, q).has_value()) << q.ToSExpr();
  }
}

TEST(DiffTreeLabel, RendersFragments) {
  DiffTree top = DiffTree::FromAst(Ast(Symbol::kTop, "10"));
  EXPECT_EQ(DiffTreeLabel(top), "top 10");
  DiffTree any = DiffTree::Any({top});
  EXPECT_EQ(DiffTreeLabel(any), "▾");
}

}  // namespace
}  // namespace ifgen
