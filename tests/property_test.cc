// Cross-module property tests: invariants that must hold over randomized
// inputs, spanning the parser, difftree calculus, rules, cost model, and
// the end-to-end generator.
#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "core/interface_generator.h"
#include "core/session.h"
#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "difftree/match.h"
#include "difftree/normalize.h"
#include "interface/assignment.h"
#include "interface/layout.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "util/rng.h"
#include "workload/synthetic.h"

namespace ifgen {
namespace {

LogSpec SpecFor(uint64_t seed) {
  LogSpec spec;
  spec.num_queries = 3 + seed % 6;
  spec.num_tables = 1 + seed % 3;
  spec.num_projection_variants = 1 + seed % 3;
  spec.num_predicates = 1 + seed % 3;
  spec.vary_predicate_count = seed % 2 == 0;
  spec.optional_where = seed % 3 == 0;
  spec.num_top_variants = seed % 4;
  spec.seed = seed * 7919;
  return spec;
}

class SyntheticLogProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::vector<Ast> Queries() { return *ParseQueries(GenerateLog(SpecFor(GetParam()))); }
};

TEST_P(SyntheticLogProperty, RoundTripThroughUnparser) {
  for (const Ast& q : Queries()) {
    auto text = Unparse(q);
    ASSERT_TRUE(text.ok());
    auto back = ParseQuery(*text);
    ASSERT_TRUE(back.ok()) << *text;
    EXPECT_EQ(q, *back);
  }
}

TEST_P(SyntheticLogProperty, NormalizeIsIdempotent) {
  auto queries = Queries();
  DiffTree tree = *BuildInitialTree(queries);
  DiffTree once = Normalized(tree);
  DiffTree twice = Normalized(once);
  EXPECT_EQ(once, twice);
}

TEST_P(SyntheticLogProperty, EnumeratedQueriesAllMatch) {
  auto queries = Queries();
  RuleEngine engine;
  DiffTree tree = *BuildInitialTree(queries);
  Rng rng(GetParam());
  // Random forward walk so choice structure is non-trivial.
  for (int i = 0; i < 10; ++i) {
    std::vector<RuleApplication> fwd;
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (engine.IsForward(app)) fwd.push_back(app);
    }
    if (fwd.empty()) break;
    auto next = engine.Apply(tree, fwd[rng.UniformIndex(fwd.size())]);
    if (next.ok()) tree = std::move(next).MoveValueUnsafe();
  }
  // Enumeration and matching must agree: everything enumerable is matchable.
  for (const Ast& q : EnumerateQueries(tree, 60, 2)) {
    EXPECT_TRUE(MatchQuery(tree, q).has_value()) << q.ToSExpr();
  }
  // And the expressible-count never shrinks below the distinct log size.
  std::vector<uint64_t> hashes;
  for (const Ast& q : queries) hashes.push_back(q.Hash());
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  EXPECT_GE(CountExpressible(tree, 4), static_cast<double>(hashes.size()));
}

TEST_P(SyntheticLogProperty, DerivationsMaterializeBack) {
  auto queries = Queries();
  DiffTree tree = *BuildInitialTree(queries);
  for (const Ast& q : queries) {
    for (const Derivation& d : EnumerateDerivations(tree, q, 4)) {
      auto back = MaterializeDerivation(d);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, q);
    }
  }
}

TEST_P(SyntheticLogProperty, EveryAssignmentLaysOutConsistently) {
  auto queries = Queries();
  DiffTree tree = *BuildInitialTree(queries);
  CostConstants constants;
  WidgetAssigner assigner(tree, constants);
  if (!assigner.viable()) GTEST_SKIP();
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 10; ++i) {
    auto wt = assigner.Build(assigner.RandomAssignment(&rng));
    ASSERT_TRUE(wt.ok());
    LayoutResult r = ComputeLayout(&wt->root, {200, 200});
    // Children never overflow their parent's computed bounding box.
    std::function<void(const WidgetNode&)> check = [&](const WidgetNode& n) {
      for (const WidgetNode& c : n.children) {
        EXPECT_GE(c.x, n.x);
        EXPECT_GE(c.y, n.y);
        if (n.kind == WidgetKind::kVertical || n.kind == WidgetKind::kHorizontal) {
          EXPECT_LE(c.x + c.width, n.x + n.width);
          EXPECT_LE(c.y + c.height, n.y + n.height);
        }
        check(c);
      }
    };
    check(wt->root);
    EXPECT_TRUE(r.fits);
  }
}

TEST_P(SyntheticLogProperty, GeneratedInterfaceReplaysItsLog) {
  auto queries = Queries();
  GeneratorOptions opt;
  opt.screen = {120, 60};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 12;
  opt.search.seed = GetParam();
  auto iface = GenerateInterfaceFromAsts(queries, opt);
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  ASSERT_TRUE(iface->cost.valid) << iface->cost.invalid_reason;
  auto session = InterfaceSession::Create(*iface, opt.constants);
  ASSERT_TRUE(session.ok());
  for (const Ast& q : queries) {
    auto report = session->LoadQuery(q);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(*session->CurrentQuery(), q);
  }
}

TEST_P(SyntheticLogProperty, CostIsDeterministicPerAssignment) {
  auto queries = Queries();
  DiffTree tree = *BuildInitialTree(queries);
  CostConstants constants;
  WidgetAssigner assigner(tree, constants);
  if (!assigner.viable()) GTEST_SKIP();
  CostModel model(constants, {120, 60});
  auto wt1 = assigner.Build(assigner.FirstAssignment());
  auto wt2 = assigner.Build(assigner.FirstAssignment());
  ASSERT_TRUE(wt1.ok() && wt2.ok());
  CostBreakdown a = model.Evaluate(tree, &*wt1, queries);
  CostBreakdown b = model.Evaluate(tree, &*wt2, queries);
  EXPECT_DOUBLE_EQ(a.total(), b.total());
  EXPECT_EQ(a.per_transition, b.per_transition);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticLogProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ifgen
