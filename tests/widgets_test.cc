#include <gtest/gtest.h>

#include "difftree/builder.h"
#include "sql/parser.h"
#include "widgets/appropriateness.h"
#include "widgets/domain.h"
#include "widgets/size_model.h"

namespace ifgen {
namespace {

DiffTree NumAny(std::initializer_list<int> values) {
  std::vector<DiffTree> alts;
  for (int v : values) alts.push_back(DiffTree::FromAst(Num(v)));
  return DiffTree::Any(std::move(alts));
}

TEST(Domain, NumericAny) {
  DiffTree any = NumAny({10, 100, 1000});
  WidgetDomain d = ExtractDomain(any);
  EXPECT_EQ(d.cardinality, 3u);
  EXPECT_TRUE(d.all_numeric);
  EXPECT_TRUE(d.all_leaf_literals);
  EXPECT_FALSE(d.has_nested_choices);
  EXPECT_DOUBLE_EQ(d.num_lo, 10);
  EXPECT_DOUBLE_EQ(d.num_hi, 1000);
}

TEST(Domain, MixedLeafAny) {
  DiffTree any = DiffTree::Any({DiffTree::FromAst(Str("USA")),
                                DiffTree::FromAst(Str("EUR"))});
  WidgetDomain d = ExtractDomain(any);
  EXPECT_FALSE(d.all_numeric);
  EXPECT_TRUE(d.all_leaf_literals);
}

TEST(Domain, NestedChoicesDetected) {
  DiffTree inner = DiffTree::Any({DiffTree::FromAst(Col("a"))});
  DiffTree outer = DiffTree::Any({DiffTree(Symbol::kProject, "", {inner}),
                                  DiffTree::FromAst(Col("b"))});
  WidgetDomain d = ExtractDomain(outer);
  EXPECT_TRUE(d.has_nested_choices);
}

TEST(Domain, ComplexAlternativesGetShortLabels) {
  auto q1 = ParseQuery("select top 10 objid from stars where u between 0 and 30");
  auto q2 = ParseQuery("select count(*) from quasars where g between 1 and 2");
  DiffTree any = DiffTree::Any({DiffTree::FromAst(*q1), DiffTree::FromAst(*q2)});
  WidgetDomain d = ExtractDomain(any);
  EXPECT_EQ(d.labels[0], "q1");
  EXPECT_EQ(d.labels[1], "q2");
  EXPECT_GT(d.avg_subtree_nodes, 5.0);
}

TEST(Domain, ValidKindsForLeafAny) {
  WidgetDomain d = ExtractDomain(NumAny({1, 2, 3}));
  auto kinds = ValidWidgetKinds(d);
  auto has = [&](WidgetKind k) {
    return std::find(kinds.begin(), kinds.end(), k) != kinds.end();
  };
  EXPECT_TRUE(has(WidgetKind::kDropdown));
  EXPECT_TRUE(has(WidgetKind::kRadio));
  EXPECT_TRUE(has(WidgetKind::kButtons));
  EXPECT_TRUE(has(WidgetKind::kSlider));   // numeric
  EXPECT_TRUE(has(WidgetKind::kTextbox));  // leaf literals
}

TEST(Domain, NestedOnlyTabs) {
  DiffTree inner = DiffTree::Any(
      {DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("b"))});
  DiffTree outer = DiffTree::Any({DiffTree(Symbol::kProject, "", {inner}),
                                  DiffTree(Symbol::kProject, "", {})});
  WidgetDomain d = ExtractDomain(outer);
  auto kinds = ValidWidgetKinds(d);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], WidgetKind::kTabs);
}

TEST(Domain, OptAndMultiKinds) {
  DiffTree opt = DiffTree::Opt(DiffTree::FromAst(Col("a")));
  auto opt_kinds = ValidWidgetKinds(ExtractDomain(opt));
  EXPECT_EQ(opt_kinds[0], WidgetKind::kToggle);
  DiffTree multi = DiffTree::Multi(DiffTree::FromAst(Col("a")));
  auto multi_kinds = ValidWidgetKinds(ExtractDomain(multi));
  ASSERT_EQ(multi_kinds.size(), 1u);
  EXPECT_EQ(multi_kinds[0], WidgetKind::kAdder);
}

TEST(Domain, SingletonAnyIsLabel) {
  DiffTree any = DiffTree::Any({DiffTree::FromAst(Col("a"))});
  auto kinds = ValidWidgetKinds(ExtractDomain(any));
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], WidgetKind::kLabel);
}

TEST(BetweenPattern, Matches) {
  DiffTree between(Symbol::kBetween, "",
                   {DiffTree::FromAst(Col("u")), NumAny({0, 5}), NumAny({15, 30})});
  BetweenPattern bp;
  ASSERT_TRUE(MatchBetweenPattern(between, &bp));
  EXPECT_EQ(bp.label, "u");
}

TEST(BetweenPattern, RejectsFixedEndpointOrNonNumeric) {
  DiffTree fixed(Symbol::kBetween, "",
                 {DiffTree::FromAst(Col("u")), DiffTree::FromAst(Num(0)),
                  NumAny({15, 30})});
  EXPECT_FALSE(MatchBetweenPattern(fixed, nullptr));
  DiffTree strs(Symbol::kBetween, "",
                {DiffTree::FromAst(Col("u")),
                 DiffTree::Any({DiffTree::FromAst(Str("a")), DiffTree::FromAst(Str("b"))}),
                 NumAny({15, 30})});
  EXPECT_FALSE(MatchBetweenPattern(strs, nullptr));
}

TEST(SizeModel, PicksSmallestFittingTemplate) {
  CostConstants c;
  SizeModel sm(c);
  WidgetDomain d = ExtractDomain(NumAny({1, 2, 3}));
  auto t = sm.PickTemplate(WidgetKind::kRadio, d);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, SizeClass::kSmall);
  WidgetDomain d7 = ExtractDomain(NumAny({1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(*sm.PickTemplate(WidgetKind::kRadio, d7), SizeClass::kLarge);
}

TEST(SizeModel, RejectsOverCapacity) {
  CostConstants c;
  SizeModel sm(c);
  std::vector<DiffTree> alts;
  for (int i = 0; i < 12; ++i) alts.push_back(DiffTree::FromAst(Num(i)));
  WidgetDomain d = ExtractDomain(DiffTree::Any(std::move(alts)));
  EXPECT_FALSE(sm.PickTemplate(WidgetKind::kRadio, d).ok());
  EXPECT_FALSE(sm.PickTemplate(WidgetKind::kButtons, d).ok());
  EXPECT_TRUE(sm.PickTemplate(WidgetKind::kDropdown, d).ok());
}

TEST(SizeModel, RadioGrowsWithOptions) {
  CostConstants c;
  SizeModel sm(c);
  WidgetDomain d3 = ExtractDomain(NumAny({1, 2, 3}));
  WidgetDomain d6 = ExtractDomain(NumAny({1, 2, 3, 4, 5, 6}));
  EXPECT_LT(sm.FittedSize(WidgetKind::kRadio, d3)->height,
            sm.FittedSize(WidgetKind::kRadio, d6)->height);
  // Dropdowns stay one row high regardless.
  EXPECT_EQ(sm.FittedSize(WidgetKind::kDropdown, d6)->height, 1);
}

TEST(Appropriateness, OrderingsMatchHciIntuition) {
  CostConstants c;
  WidgetDomain small = ExtractDomain(NumAny({1, 2, 3}));
  // Small domains: radio beats dropdown beats textbox.
  EXPECT_LT(AppropriatenessCost(c, WidgetKind::kRadio, small),
            AppropriatenessCost(c, WidgetKind::kDropdown, small));
  EXPECT_LT(AppropriatenessCost(c, WidgetKind::kDropdown, small),
            AppropriatenessCost(c, WidgetKind::kTextbox, small));
  // Large domains: dropdown beats radio.
  std::vector<DiffTree> many;
  for (int i = 0; i < 9; ++i) many.push_back(DiffTree::FromAst(Num(i)));
  WidgetDomain large = ExtractDomain(DiffTree::Any(std::move(many)));
  EXPECT_LT(AppropriatenessCost(c, WidgetKind::kDropdown, large),
            AppropriatenessCost(c, WidgetKind::kRadio, large));
}

TEST(Appropriateness, ComplexityPenalizesSubtreeDomains) {
  CostConstants c;
  auto q1 = ParseQuery("select a from t where x = 1");
  auto q2 = ParseQuery("select b from u where y = 2");
  WidgetDomain complex_domain = ExtractDomain(
      DiffTree::Any({DiffTree::FromAst(*q1), DiffTree::FromAst(*q2)}));
  WidgetDomain leaf_domain = ExtractDomain(NumAny({1, 2}));
  EXPECT_GT(AppropriatenessCost(c, WidgetKind::kRadio, complex_domain),
            AppropriatenessCost(c, WidgetKind::kRadio, leaf_domain) + 3.0);
}

TEST(Appropriateness, RangeSliderBeatsTwoSliders) {
  CostConstants c;
  WidgetDomain numeric = ExtractDomain(NumAny({0, 30}));
  EXPECT_LT(AppropriatenessCost(c, WidgetKind::kRangeSlider, numeric),
            2 * AppropriatenessCost(c, WidgetKind::kSlider, numeric));
}

TEST(InteractionCost, DropdownScalesLogarithmically) {
  CostConstants c;
  WidgetDomain d4 = ExtractDomain(NumAny({1, 2, 3, 4}));
  std::vector<DiffTree> alts;
  for (int i = 0; i < 16; ++i) alts.push_back(DiffTree::FromAst(Num(i)));
  WidgetDomain d16 = ExtractDomain(DiffTree::Any(std::move(alts)));
  double c4 = InteractionCost(c, WidgetKind::kDropdown, d4);
  double c16 = InteractionCost(c, WidgetKind::kDropdown, d16);
  EXPECT_GT(c16, c4);
  EXPECT_LT(c16 - c4, 0.3);  // log growth, not linear
}

TEST(WidgetKind, Classification) {
  EXPECT_TRUE(IsLayoutWidget(WidgetKind::kVertical));
  EXPECT_TRUE(IsLayoutWidget(WidgetKind::kAdder));
  EXPECT_FALSE(IsLayoutWidget(WidgetKind::kTabs));
  EXPECT_TRUE(ShowsAllOptions(WidgetKind::kRadio));
  EXPECT_FALSE(ShowsAllOptions(WidgetKind::kDropdown));
}

}  // namespace
}  // namespace ifgen
