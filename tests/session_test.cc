#include <gtest/gtest.h>

#include <algorithm>

#include "core/interface_generator.h"
#include "core/session.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

GeneratedInterface MakeInterface(const std::vector<std::string>& sqls,
                                 size_t iterations = 30) {
  GeneratorOptions opt;
  opt.screen = {100, 40};
  opt.search.time_budget_ms = 0;
  // 0 would mean "unlimited" to the searcher; the tests always want a
  // bounded, deterministic run.
  opt.search.max_iterations = std::max<size_t>(1, iterations);
  auto r = GenerateInterface(sqls, opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValueUnsafe();
}

TEST(Session, OpensOnFirstQuery) {
  auto iface = MakeInterface({"select a from t", "select b from t"});
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto sql = session->CurrentSql();
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "select a from t");
}

TEST(Session, ReplayExpressesEveryLogQuery) {
  std::vector<std::string> sqls = SdssListing1();
  auto iface = MakeInterface(sqls, 50);
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  auto queries = *ParseQueries(sqls);
  for (const Ast& q : queries) {
    auto report = session->LoadQuery(q);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // After loading, the materialized current query equals the target.
    auto current = session->CurrentQuery();
    ASSERT_TRUE(current.ok());
    EXPECT_EQ(*current, q);
  }
}

TEST(Session, RepeatLoadIsFree) {
  auto iface = MakeInterface({"select a from t", "select b from t"});
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  Ast q = *ParseQuery("select b from t");
  auto r1 = session->LoadQuery(q);
  ASSERT_TRUE(r1.ok());
  auto r2 = session->LoadQuery(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->widgets_changed, 0u);
  EXPECT_DOUBLE_EQ(r2->total(), 0.0);
}

TEST(Session, RejectsInexpressibleQuery) {
  auto iface = MakeInterface({"select a from t", "select b from t"});
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->LoadQuery(*ParseQuery("select zz from qq")).ok());
}

TEST(Session, WidgetManipulationChangesQuery) {
  // A barely-searched interface keeps the widget structure simple enough
  // to assert on (one or two ANY widgets).
  auto iface = MakeInterface({"select a from t", "select b from t"}, 1);
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());

  // Find an ANY choice id in the difftree.
  ChoiceIndex index(session->difftree());
  int any_id = -1;
  for (size_t i = 0; i < index.size(); ++i) {
    if (index.node(i)->kind == DKind::kAny) {
      any_id = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(any_id, 0);
  size_t n_opts = index.node(static_cast<size_t>(any_id))->children.size();
  std::string before = *session->CurrentSql();
  bool changed = false;
  for (size_t opt = 0; opt < n_opts; ++opt) {
    ASSERT_TRUE(session->SetAnyChoice(any_id, static_cast<int>(opt)).ok());
    auto sql = session->CurrentSql();
    ASSERT_TRUE(sql.ok());
    changed |= *sql != before;
  }
  EXPECT_TRUE(changed);
  EXPECT_FALSE(session->SetAnyChoice(any_id, 99).ok());
  EXPECT_FALSE(session->SetAnyChoice(12345, 0).ok());
}

TEST(Session, ToggleOptionalClause) {
  // Interface over queries with and without WHERE: find the OPT widget and
  // flip it; the WHERE clause must appear/disappear.
  auto iface = MakeInterface(
      {"select a from t where x = 1", "select a from t"}, 40);
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  ChoiceIndex index(session->difftree());
  int opt_id = -1;
  for (size_t i = 0; i < index.size(); ++i) {
    if (index.node(i)->kind == DKind::kOpt) opt_id = static_cast<int>(i);
  }
  if (opt_id < 0) {
    GTEST_SKIP() << "search produced a non-OPT factoring for this seed";
  }
  ASSERT_TRUE(session->LoadQuery(*ParseQuery("select a from t where x = 1")).ok());
  ASSERT_TRUE(session->SetOptPresent(opt_id, false).ok());
  EXPECT_EQ(*session->CurrentSql(), "select a from t");
  ASSERT_TRUE(session->SetOptPresent(opt_id, true).ok());
  EXPECT_EQ(*session->CurrentSql(), "select a from t where x = 1");
}

TEST(Session, ExecutesCurrentQueryAgainstDatabase) {
  std::vector<std::string> sqls = SdssQueries6To8();
  auto iface = MakeInterface(sqls, 40);
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  Database db = MakeSdssDatabase(200, 5);
  auto result = session->ExecuteCurrent(db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result->num_rows(), 10u);  // query 6 has TOP 10
}

TEST(Session, ReplayReportsMatchCostModel) {
  // The session's replayed total effort equals the cost model's U total
  // (same transition machinery).
  std::vector<std::string> sqls = {"select a from t where x between 1 and 5",
                                   "select b from t where x between 2 and 9",
                                   "select b from t"};
  auto iface = MakeInterface(sqls, 40);
  auto session = InterfaceSession::Create(iface, {});
  ASSERT_TRUE(session.ok());
  auto queries = *ParseQueries(sqls);
  auto reports = session->ReplayLog(queries);
  ASSERT_TRUE(reports.ok());
  double replay_u = 0.0;
  for (size_t i = 1; i < reports->size(); ++i) replay_u += (*reports)[i].total();
  EXPECT_NEAR(replay_u, iface.cost.u_total, 1e-9);
}

}  // namespace
}  // namespace ifgen
