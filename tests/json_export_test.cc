#include <gtest/gtest.h>

#include "core/interface_generator.h"
#include "core/json_export.h"
#include "sql/parser.h"

namespace ifgen {
namespace {

TEST(JsonEscape, Basics) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

/// Minimal structural validator: balanced braces/brackets outside strings.
bool LooksLikeJson(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(JsonExport, DiffTree) {
  auto q = ParseQuery("select a from t where x = 1");
  DiffTree d = DiffTree::FromAst(*q);
  std::string json = DiffTreeToJson(d);
  EXPECT_TRUE(LooksLikeJson(json)) << json;
  EXPECT_NE(json.find("\"sym\":\"Select\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"ALL\""), std::string::npos);
}

TEST(JsonExport, GeneratedInterfaceRoundsThrough) {
  GeneratorOptions opt;
  opt.screen = {80, 24};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 20;
  auto iface = GenerateInterface(
      {"select a from t where x between 1 and 5",
       "select b from t where x between 2 and 9"},
      opt);
  ASSERT_TRUE(iface.ok());
  std::string widgets = WidgetTreeToJson(iface->widgets);
  std::string tree = DiffTreeToJson(iface->difftree);
  std::string cost = CostToJson(iface->cost);
  EXPECT_TRUE(LooksLikeJson(widgets)) << widgets;
  EXPECT_TRUE(LooksLikeJson(tree));
  EXPECT_TRUE(LooksLikeJson(cost));
  EXPECT_NE(widgets.find("\"widget\":"), std::string::npos);
  EXPECT_NE(widgets.find("\"box\":"), std::string::npos);
  EXPECT_NE(cost.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(cost.find("\"transitions\":["), std::string::npos);
}

TEST(JsonExport, InvalidCostCarriesReason) {
  CostBreakdown c;
  c.valid = false;
  c.invalid_reason = "layout exceeds screen";
  std::string json = CostToJson(c);
  EXPECT_NE(json.find("\"valid\":false"), std::string::npos);
  EXPECT_NE(json.find("layout exceeds screen"), std::string::npos);
  EXPECT_NE(json.find("\"total\":null"), std::string::npos);
}

}  // namespace
}  // namespace ifgen
