#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

TEST(Lexer, BasicTokens) {
  auto tokens = Tokenize("select top 10 a, b from t where a >= 1.5 and b <> 'x'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[2].Is(TokenKind::kNumber));
}

TEST(Lexer, StringEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(Lexer, UnterminatedString) {
  EXPECT_FALSE(Tokenize("select 'oops").ok());
}

TEST(Lexer, BadCharacter) {
  EXPECT_FALSE(Tokenize("select @foo").ok());
}

TEST(Lexer, NotEqualsVariants) {
  auto a = Tokenize("a <> b");
  auto b = Tokenize("a != b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)[1].text, "<>");
  EXPECT_EQ((*b)[1].text, "<>");  // normalized
}

TEST(Parser, MinimalQuery) {
  auto q = ParseQuery("select a from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->sym, Symbol::kSelect);
  ASSERT_EQ(q->children.size(), 2u);
  EXPECT_EQ(q->children[0].sym, Symbol::kProject);
  EXPECT_EQ(q->children[1].sym, Symbol::kFrom);
}

TEST(Parser, PaperFigure1Queries) {
  auto q1 = ParseQuery("SELECT Sales FROM sales WHERE cty = 'USA'");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->ToSExpr(),
            "(Select (Project (ColExpr:Sales)) (From (Table:sales)) "
            "(Where (BiExpr:= (ColExpr:cty) (StrExpr:USA))))");
}

TEST(Parser, TopAndCount) {
  auto q = ParseQuery("select top 10 count(*) from stars");
  ASSERT_TRUE(q.ok());
  // Children order: Project, Top, From.
  EXPECT_EQ(q->children[0].sym, Symbol::kProject);
  EXPECT_EQ(q->children[1].sym, Symbol::kTop);
  EXPECT_EQ(q->children[1].value, "10");
  EXPECT_EQ(q->children[0].children[0].sym, Symbol::kFuncExpr);
  EXPECT_EQ(q->children[0].children[0].children[0].sym, Symbol::kStar);
}

TEST(Parser, AndChainFlattened) {
  auto q = ParseQuery("select a from t where a=1 and b=2 and c=3 and d=4");
  ASSERT_TRUE(q.ok());
  const Ast& where = q->children.back();
  ASSERT_EQ(where.sym, Symbol::kWhere);
  const Ast& conj = where.children[0];
  EXPECT_EQ(conj.sym, Symbol::kAnd);
  EXPECT_EQ(conj.children.size(), 4u);  // flattened n-ary
}

TEST(Parser, OrPrecedence) {
  auto q = ParseQuery("select a from t where a=1 or b=2 and c=3");
  ASSERT_TRUE(q.ok());
  const Ast& pred = q->children.back().children[0];
  EXPECT_EQ(pred.sym, Symbol::kOr);
  ASSERT_EQ(pred.children.size(), 2u);
  EXPECT_EQ(pred.children[1].sym, Symbol::kAnd);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto q = ParseQuery("select a from t where (a=1 or b=2) and c=3");
  ASSERT_TRUE(q.ok());
  const Ast& pred = q->children.back().children[0];
  EXPECT_EQ(pred.sym, Symbol::kAnd);
  EXPECT_EQ(pred.children[0].sym, Symbol::kOr);
}

TEST(Parser, Between) {
  auto q = ParseQuery("select a from t where u between 0 and 30");
  ASSERT_TRUE(q.ok());
  const Ast& b = q->children.back().children[0];
  EXPECT_EQ(b.sym, Symbol::kBetween);
  ASSERT_EQ(b.children.size(), 3u);
  EXPECT_EQ(b.children[1].value, "0");
  EXPECT_EQ(b.children[2].value, "30");
}

TEST(Parser, InList) {
  auto q = ParseQuery("select a from t where x in (1, 2, 3)");
  ASSERT_TRUE(q.ok());
  const Ast& in = q->children.back().children[0];
  EXPECT_EQ(in.sym, Symbol::kIn);
  EXPECT_EQ(in.children[1].sym, Symbol::kList);
  EXPECT_EQ(in.children[1].children.size(), 3u);
}

TEST(Parser, NotIn) {
  auto q = ParseQuery("select a from t where x not in (1, 2)");
  ASSERT_TRUE(q.ok());
  const Ast& n = q->children.back().children[0];
  EXPECT_EQ(n.sym, Symbol::kNot);
  EXPECT_EQ(n.children[0].sym, Symbol::kIn);
}

TEST(Parser, Like) {
  auto q = ParseQuery("select a from t where name like 'ab%'");
  ASSERT_TRUE(q.ok());
  const Ast& l = q->children.back().children[0];
  EXPECT_EQ(l.sym, Symbol::kBiExpr);
  EXPECT_EQ(l.value, "like");
}

TEST(Parser, GroupOrderLimit) {
  auto q = ParseQuery(
      "select carrier, avg(delay) from flights where m = 3 "
      "group by carrier order by carrier desc limit 5");
  ASSERT_TRUE(q.ok());
  bool has_group = false;
  bool has_order = false;
  bool has_limit = false;
  for (const Ast& c : q->children) {
    has_group |= c.sym == Symbol::kGroupBy;
    has_order |= c.sym == Symbol::kOrderBy;
    has_limit |= c.sym == Symbol::kLimit;
  }
  EXPECT_TRUE(has_group && has_order && has_limit);
}

TEST(Parser, Alias) {
  auto q = ParseQuery("select avg(delay) as d from flights");
  ASSERT_TRUE(q.ok());
  const Ast& item = q->children[0].children[0];
  EXPECT_EQ(item.sym, Symbol::kAlias);
  EXPECT_EQ(item.value, "d");
}

TEST(Parser, Distinct) {
  auto q = ParseQuery("select distinct a from t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->children[0].value, "distinct");
}

TEST(Parser, Arithmetic) {
  auto q = ParseQuery("select a + b * 2 from t");
  ASSERT_TRUE(q.ok());
  const Ast& e = q->children[0].children[0];
  EXPECT_EQ(e.sym, Symbol::kBiExpr);
  EXPECT_EQ(e.value, "+");
  EXPECT_EQ(e.children[1].value, "*");
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("select").ok());
  EXPECT_FALSE(ParseQuery("select a").ok());          // missing FROM
  EXPECT_FALSE(ParseQuery("select from t").ok());     // missing items
  EXPECT_FALSE(ParseQuery("select a from").ok());     // missing table
  EXPECT_FALSE(ParseQuery("select a from t where").ok());
  EXPECT_FALSE(ParseQuery("select top x a from t").ok());
  EXPECT_FALSE(ParseQuery("select a from t extra junk").ok());
  EXPECT_FALSE(ParseQuery("select a from t where a between 1").ok());
}

TEST(Parser, ParseQueriesReportsIndex) {
  auto r = ParseQueries({"select a from t", "select bogus from"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("query 1"), std::string::npos);
}

TEST(Ast, EqualityAndHash) {
  Ast a = *ParseQuery("select a from t where x = 1");
  Ast b = *ParseQuery("select  a  from t where x=1");
  Ast c = *ParseQuery("select a from t where x = 2");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(Ast, CountsAndDepth) {
  Ast q = *ParseQuery("select a from t");
  EXPECT_EQ(q.NodeCount(), 5u);  // Select, Project, ColExpr, From, Table
  EXPECT_EQ(q.Depth(), 3u);
}

class RoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RoundTripTest, UnparseParseFixpoint) {
  auto q1 = ParseQuery(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam();
  auto text = Unparse(*q1);
  ASSERT_TRUE(text.ok()) << GetParam();
  auto q2 = ParseQuery(*text);
  ASSERT_TRUE(q2.ok()) << *text;
  EXPECT_EQ(*q1, *q2) << "round-trip changed the AST for: " << *text;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, RoundTripTest,
    ::testing::Values(
        "select a from t",
        "select top 10 objid from stars where u between 0 and 30",
        "select count(*) from quasars",
        "select distinct a, b from t order by a desc, b limit 3",
        "select a from t where x in (1, 2, 3) and y like 'a%'",
        "select a from t where not (x = 1 or y = 2)",
        "select avg(d) as ad from f group by c",
        "select a + b * 2 from t where (a - 1) / 2 > 3",
        "select a from t where a=1 and b=2 and c=3 or d=4",
        "select 'lit' from t where s <> 'x''y'"));

class SdssRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SdssRoundTrip, Listing1Queries) {
  std::string sql = SdssListing1()[static_cast<size_t>(GetParam())];
  auto q1 = ParseQuery(sql);
  ASSERT_TRUE(q1.ok());
  auto text = Unparse(*q1);
  ASSERT_TRUE(text.ok());
  auto q2 = ParseQuery(*text);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(*q1, *q2);
}

INSTANTIATE_TEST_SUITE_P(Listing1, SdssRoundTrip, ::testing::Range(0, 10));

TEST(Catalog, ValidatesColumnsAndTables) {
  Catalog cat;
  cat.AddTable({"t", {{"a", ColumnType::kInt64}, {"b", ColumnType::kString}}});
  EXPECT_TRUE(cat.HasTable("T"));  // case-insensitive
  EXPECT_TRUE(cat.ValidateQuery(*ParseQuery("select a from t where b = 'x'")).ok());
  EXPECT_FALSE(cat.ValidateQuery(*ParseQuery("select zz from t")).ok());
  EXPECT_FALSE(cat.ValidateQuery(*ParseQuery("select a from missing")).ok());
}

TEST(Catalog, FindColumn) {
  TableSchema s{"t", {{"alpha", ColumnType::kDouble}, {"beta", ColumnType::kInt64}}};
  EXPECT_EQ(s.FindColumn("BETA"), 1);
  EXPECT_EQ(s.FindColumn("gamma"), -1);
}

TEST(Unparser, FragmentsForWidgetLabels) {
  Ast top(Symbol::kTop, "10");
  EXPECT_EQ(UnparseFragment(top), "top 10");
  Ast where = ParseQuery("select a from t where x = 1")->children.back();
  EXPECT_EQ(UnparseFragment(where), "where x = 1");
  // Non-grammatical fragments must not crash (mid-search difftrees).
  Ast bad(Symbol::kBiExpr, "=", {Col("x")});  // missing rhs
  EXPECT_EQ(UnparseFragment(bad), "x = ?");
}

}  // namespace
}  // namespace ifgen
