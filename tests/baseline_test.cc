#include <gtest/gtest.h>

#include "baseline/bottom_up.h"
#include "core/interface_generator.h"
#include "difftree/enumerate.h"
#include "difftree/match.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

TEST(BottomUp, MergesSharedStructure) {
  auto queries = *ParseQueries(std::vector<std::string>{
      "select a from t where x = 1", "select b from t where x = 2"});
  auto tree = BottomUpMerge(queries);
  ASSERT_TRUE(tree.ok());
  // Fully factored in one shot: root is the shared Select.
  EXPECT_EQ(tree->kind, DKind::kAll);
  EXPECT_EQ(tree->sym, Symbol::kSelect);
  EXPECT_TRUE(ExpressesAll(*tree, queries));
  // Two leaf choices: the column and the constant.
  EXPECT_EQ(tree->ChoiceCount(), 2u);
}

TEST(BottomUp, HandlesMissingClauses) {
  auto queries = *ParseQueries(std::vector<std::string>{
      "select a from t where x = 1", "select a from t"});
  auto tree = BottomUpMerge(queries);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ExpressesAll(*tree, queries));
}

TEST(BottomUp, ProducesScoredInterface) {
  auto queries = *ParseQueries(SdssListing1());
  CostConstants constants;
  auto r = RunBottomUpBaseline(queries, constants, {100, 40});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->cost.valid) << r->cost.invalid_reason;
  EXPECT_GE(r->widgets.CountInteractive(), 4u);  // one widget per diff site
  EXPECT_TRUE(ExpressesAll(r->difftree, queries));
}

TEST(BottomUp, CrossProductOverGeneralizes) {
  // The bottom-up merge groups by location without asking whether the
  // subtrees should be grouped: it admits cross products the log never
  // contained (the paper's first criticism).
  auto queries = *ParseQueries(std::vector<std::string>{
      "select a from t where x = 1", "select b from t where x = 2"});
  auto tree = BottomUpMerge(queries);
  ASSERT_TRUE(tree.ok());
  EXPECT_DOUBLE_EQ(CountExpressible(*tree), 4.0);  // 2 columns x 2 constants
}

TEST(BottomUp, SearchMatchesOrBeatsBaselineOnSdss) {
  // The headline comparison: the search-based generator should find an
  // interface at most as costly as the layout-blind baseline.
  GeneratorOptions opt;
  opt.screen = {100, 40};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 60;
  opt.search.seed = 3;
  auto mcts = GenerateInterface(SdssListing1(), opt);
  ASSERT_TRUE(mcts.ok());
  opt.algorithm = Algorithm::kBottomUp;
  auto bu = GenerateInterface(SdssListing1(), opt);
  ASSERT_TRUE(bu.ok());
  ASSERT_TRUE(bu->cost.valid);
  EXPECT_LE(mcts->cost.total(), bu->cost.total() + 1e-9);
}

}  // namespace
}  // namespace ifgen
