#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/evaluator.h"
#include "cost/transition.h"
#include "difftree/builder.h"
#include "interface/assignment.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

Ast Q(const std::string& sql) {
  auto q = ParseQuery(sql);
  EXPECT_TRUE(q.ok()) << sql;
  return *q;
}

TEST(SteinerNav, EmptyAndSingletonAreFree) {
  WidgetNode root;
  root.kind = WidgetKind::kVertical;
  WidgetNode leaf;
  leaf.kind = WidgetKind::kToggle;
  root.children = {leaf, leaf};
  CostConstants c;
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(root, {}, c), 0.0);
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(root, {{0}}, c), 0.0);
}

TEST(SteinerNav, SiblingsCostTwoEdges) {
  WidgetNode root;
  root.kind = WidgetKind::kVertical;
  WidgetNode leaf;
  leaf.kind = WidgetKind::kToggle;
  root.children = {leaf, leaf, leaf};
  CostConstants c;
  // Connecting children 0 and 2: two edges through the root.
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(root, {{0}, {2}}, c), 2 * c.nav_edge);
  // All three: three edges.
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(root, {{0}, {1}, {2}}, c), 3 * c.nav_edge);
}

TEST(SteinerNav, DeepPathCountsIntermediateEdges) {
  WidgetNode root;
  root.kind = WidgetKind::kVertical;
  WidgetNode mid;
  mid.kind = WidgetKind::kHorizontal;
  WidgetNode leaf;
  leaf.kind = WidgetKind::kToggle;
  mid.children = {leaf};
  root.children = {mid, leaf};
  CostConstants c;
  // Terminals {0,0} (deep) and {1}: edges root->mid, mid->leaf, root->leaf.
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(root, {{0, 0}, {1}}, c), 3 * c.nav_edge);
}

TEST(SteinerNav, TabEdgesCostMore) {
  WidgetNode tabs;
  tabs.kind = WidgetKind::kTabs;
  WidgetNode leaf;
  leaf.kind = WidgetKind::kToggle;
  tabs.children = {leaf, leaf};
  CostConstants c;
  EXPECT_DOUBLE_EQ(SteinerNavigationCost(tabs, {{0}, {1}}, c), 2 * c.nav_tab_switch);
}

TEST(Plan, ChangedIdsPerTransition) {
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t"),
                              Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  TransitionPlan plan = PlanTransitions(d, queries, 8);
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.changed_ids.size(), 3u);
  EXPECT_TRUE(plan.changed_ids[0].empty());   // initial config is free
  EXPECT_EQ(plan.changed_ids[1].size(), 1u);  // a -> b flips the ANY
  EXPECT_TRUE(plan.changed_ids[2].empty());   // repeat costs nothing
}

TEST(Plan, InexpressibleQueryInvalidates) {
  std::vector<Ast> queries = {Q("select a from t")};
  DiffTree d = *BuildInitialTree(queries);
  TransitionPlan plan = PlanTransitions(d, {Q("select zz from t")}, 8);
  EXPECT_FALSE(plan.valid);
}

TEST(Plan, MinChangeParsePrefersStickyState) {
  // Duplicated alternative: query matches alt0 or alt2. After loading alt2's
  // twin (via a distinct query), re-loading should pick the parse that
  // changes nothing.
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t"),
                              Q("select a from t")};
  DiffTree d = DiffTree::Any({DiffTree::FromAst(queries[0]),
                              DiffTree::FromAst(queries[1]),
                              DiffTree::FromAst(queries[0])});
  TransitionPlan plan = PlanTransitions(d, queries, 8);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.changed_ids[1].size(), 1u);
  EXPECT_EQ(plan.changed_ids[2].size(), 1u);  // back to alt0 (not alt2 drift)
}

class CostModelTest : public ::testing::Test {
 protected:
  CostConstants constants_;
  std::vector<Ast> queries_ = {Q("select Sales from sales where cty = 'USA'"),
                               Q("select Costs from sales where cty = 'EUR'"),
                               Q("select Costs from sales")};
};

TEST_F(CostModelTest, EvaluateBreakdown) {
  DiffTree d = *BuildInitialTree(queries_);
  WidgetAssigner assigner(d, constants_);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  CostModel model(constants_, {80, 24});
  CostBreakdown cost = model.Evaluate(d, &*wt, queries_);
  ASSERT_TRUE(cost.valid) << cost.invalid_reason;
  EXPECT_GT(cost.m_total, 0.0);
  EXPECT_GT(cost.u_total, 0.0);
  ASSERT_EQ(cost.per_transition.size(), 2u);
  EXPECT_DOUBLE_EQ(cost.total(), cost.m_total + cost.u_total);
}

TEST_F(CostModelTest, TinyScreenInvalidates) {
  DiffTree d = *BuildInitialTree(queries_);
  WidgetAssigner assigner(d, constants_);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  CostModel model(constants_, {4, 1});
  CostBreakdown cost = model.Evaluate(d, &*wt, queries_);
  EXPECT_FALSE(cost.valid);
  EXPECT_TRUE(std::isinf(cost.total()));
}

TEST_F(CostModelTest, PlanAndDirectEvaluationAgree) {
  DiffTree d = *BuildInitialTree(queries_);
  WidgetAssigner assigner(d, constants_);
  CostModel model(constants_, {80, 24});
  TransitionPlan plan = PlanTransitions(d, queries_, 8);
  Assignment a = assigner.FirstAssignment();
  do {
    auto wt1 = assigner.Build(a);
    ASSERT_TRUE(wt1.ok());
    auto wt2 = *wt1;
    CostBreakdown direct = model.Evaluate(d, &*wt1, queries_);
    CostBreakdown planned = model.EvaluateWithPlan(plan, &wt2);
    EXPECT_DOUBLE_EQ(direct.total(), planned.total());
  } while (assigner.NextAssignment(&a));
}

TEST_F(CostModelTest, RepeatedQueriesCostNothing) {
  std::vector<Ast> repeated = {queries_[0], queries_[0], queries_[0]};
  DiffTree d = *BuildInitialTree(queries_);
  WidgetAssigner assigner(d, constants_);
  auto wt = assigner.Build(assigner.FirstAssignment());
  ASSERT_TRUE(wt.ok());
  CostModel model(constants_, {80, 24});
  CostBreakdown cost = model.Evaluate(d, &*wt, repeated);
  ASSERT_TRUE(cost.valid);
  EXPECT_DOUBLE_EQ(cost.u_total, 0.0);
}

TEST(Evaluator, SampleCostFiniteOnViableState) {
  auto queries = *ParseQueries(
      std::vector<std::string>{"select a from t", "select b from t"});
  DiffTree d = *BuildInitialTree(queries);
  EvalOptions opts;
  opts.screen = {80, 24};
  StateEvaluator eval(opts, queries);
  Rng rng(1);
  double cost = eval.SampleCost(d, &rng);
  EXPECT_TRUE(std::isfinite(cost));
}

TEST(Evaluator, CacheHitsOnRepeatedStates) {
  auto queries = *ParseQueries(
      std::vector<std::string>{"select a from t", "select b from t"});
  DiffTree d = *BuildInitialTree(queries);
  EvalOptions opts;
  opts.screen = {80, 24};
  StateEvaluator eval(opts, queries);
  Rng rng(1);
  double c1 = eval.SampleCost(d, &rng);
  size_t evals = eval.evaluations();
  double c2 = eval.SampleCost(d, &rng);
  EXPECT_DOUBLE_EQ(c1, c2);
  EXPECT_EQ(eval.evaluations(), evals);  // served from cache
  EXPECT_GE(eval.cache_hits(), 1u);
}

TEST(Evaluator, GreedySeedNeverWorseThanPureRandom) {
  auto queries = *ParseQueries(SdssListing1());
  DiffTree d = *BuildInitialTree(queries);
  EvalOptions with_seed;
  with_seed.screen = {100, 40};
  with_seed.cache_enabled = false;
  EvalOptions without = with_seed;
  without.greedy_seed = false;
  StateEvaluator e1(with_seed, queries);
  StateEvaluator e2(without, queries);
  Rng r1(9);
  Rng r2(9);
  EXPECT_LE(e1.SampleCost(d, &r1), e2.SampleCost(d, &r2) + 1e-9);
}

TEST(Evaluator, FindBestBeatsSampling) {
  auto queries = *ParseQueries(
      std::vector<std::string>{"select a from t where x between 1 and 5",
                               "select b from t where x between 2 and 9"});
  DiffTree d = *BuildInitialTree(queries);
  EvalOptions opts;
  opts.screen = {80, 24};
  StateEvaluator eval(opts, queries);
  Rng rng(1);
  double sampled = eval.SampleCost(d, &rng);
  auto best = eval.FindBest(d, &rng);
  ASSERT_TRUE(best.ok());
  EXPECT_LE(best->cost.total(), sampled + 1e-9);
}

TEST(Transition, PricesChangedWidgets) {
  CostConstants constants;
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  ChoiceIndex index(d);
  WidgetAssigner assigner(d, constants);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  SelectionMap state;
  auto s1 = ComputeTransition(d, index, *wt, constants, 8, state, queries[0]);
  ASSERT_TRUE(s1.ok());
  auto s2 = ComputeTransition(d, index, *wt, constants, 8, s1->next_state, queries[1]);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->widgets_changed, 1u);
  EXPECT_GT(s2->interaction_cost, 0.0);
  auto bad = ComputeTransition(d, index, *wt, constants, 8, state, Q("select z from t"));
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace ifgen
