#include <gtest/gtest.h>

#include "core/cooccurrence.h"
#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

Ast Q(const std::string& sql) {
  auto q = ParseQuery(sql);
  EXPECT_TRUE(q.ok()) << sql;
  return *q;
}

/// Fully factors a tree with forward rules (deterministic chain).
DiffTree Factored(const std::vector<Ast>& queries) {
  RuleEngine engine;
  DiffTree tree = *BuildInitialTree(queries);
  for (int i = 0; i < 40; ++i) {
    bool advanced = false;
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
  }
  return tree;
}

TEST(Cooccurrence, LoggedQueriesScoreHigh) {
  std::vector<Ast> queries = {Q("select a from t where x = 1"),
                              Q("select b from t where x = 2")};
  DiffTree tree = Factored(queries);
  CooccurrenceModel model(tree, queries);
  EXPECT_EQ(model.observations(), 2u);
  for (const Ast& q : queries) {
    EXPECT_DOUBLE_EQ(model.ScoreQuery(q), 1.0) << q.ToSExpr();
  }
}

TEST(Cooccurrence, CrossProductsScoreLow) {
  // The factored tree admits (a, x=2) and (b, x=1) — combinations the log
  // never contained; the model must rank them below the logged pairs.
  std::vector<Ast> queries = {Q("select a from t where x = 1"),
                              Q("select b from t where x = 2")};
  DiffTree tree = Factored(queries);
  CooccurrenceModel model(tree, queries);
  double novel = model.ScoreQuery(Q("select a from t where x = 2"));
  EXPECT_LT(novel, 1.0);
  EXPECT_GE(novel, 0.0);
}

TEST(Cooccurrence, UnseenSelectionScoresZero) {
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree tree = Factored(queries);
  // Build the model from only the first query: 'b' was never observed.
  CooccurrenceModel model(tree, {queries[0]});
  EXPECT_DOUBLE_EQ(model.ScoreQuery(queries[1]), 0.0);
}

TEST(Cooccurrence, InexpressibleQueryScoresZero) {
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree tree = Factored(queries);
  CooccurrenceModel model(tree, queries);
  EXPECT_DOUBLE_EQ(model.ScoreQuery(Q("select zz from t")), 0.0);
}

TEST(Cooccurrence, PartitionSplitsCoverage) {
  std::vector<Ast> queries = {Q("select a from t where x = 1"),
                              Q("select b from t where x = 2")};
  DiffTree tree = Factored(queries);
  CooccurrenceModel model(tree, queries);
  auto all = EnumerateQueries(tree, 50);
  auto parts = model.PartitionQueries(all, 0.99);
  // The two logged queries are likely; the cross products are not.
  EXPECT_EQ(parts.likely.size(), 2u);
  EXPECT_EQ(parts.unlikely.size(), all.size() - 2);
}

TEST(Cooccurrence, SdssSharedWhereCooccursWithEveryTable) {
  auto queries = *ParseQueries(SdssListing1());
  DiffTree tree = Factored(queries);
  CooccurrenceModel model(tree, queries);
  EXPECT_EQ(model.observations(), queries.size());
  // Every logged query stays maximally likely.
  for (const Ast& q : queries) {
    EXPECT_GT(model.ScoreQuery(q), 0.6) << q.ToSExpr();
  }
}

}  // namespace
}  // namespace ifgen
