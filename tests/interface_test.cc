#include <gtest/gtest.h>

#include "difftree/builder.h"
#include "interface/assignment.h"
#include "interface/layout.h"
#include "interface/render.h"
#include "sql/parser.h"
#include "util/rng.h"

namespace ifgen {
namespace {

Ast Q(const std::string& sql) {
  auto q = ParseQuery(sql);
  EXPECT_TRUE(q.ok()) << sql;
  return *q;
}

DiffTree Fig1Tree() {
  return *BuildInitialTree({Q("select Sales from sales where cty = 'USA'"),
                            Q("select Costs from sales where cty = 'EUR'"),
                            Q("select Costs from sales")});
}

TEST(Assigner, CollectsDecisions) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  EXPECT_TRUE(assigner.viable());
  ASSERT_EQ(assigner.decisions().size(), 1u);  // the single root ANY
  EXPECT_EQ(assigner.decisions()[0].type, DecisionType::kChoiceWidget);
}

TEST(Assigner, OdometerEnumeratesAllAssignments) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  double combos = assigner.CombinationCount();
  Assignment a = assigner.FirstAssignment();
  size_t count = 1;
  while (assigner.NextAssignment(&a)) ++count;
  EXPECT_DOUBLE_EQ(static_cast<double>(count), combos);
}

TEST(Assigner, BuildProducesWidgetPerChoice) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  auto wt = assigner.Build(assigner.FirstAssignment());
  ASSERT_TRUE(wt.ok()) << wt.status().ToString();
  EXPECT_EQ(wt->path_by_choice.size(), 1u);
  EXPECT_NE(wt->WidgetFor(0), nullptr);
}

TEST(Assigner, RandomAssignmentsAreValidIndices) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Assignment a = assigner.RandomAssignment(&rng);
    ASSERT_EQ(a.picks.size(), assigner.decisions().size());
    for (size_t j = 0; j < a.picks.size(); ++j) {
      EXPECT_LT(static_cast<size_t>(a.picks[j]),
                std::max<size_t>(1, assigner.decisions()[j].options.size()));
    }
    EXPECT_TRUE(assigner.Build(a).ok());
  }
}

TEST(Assigner, MinAppropriatenessPrefersRadioForSmallLeafDomains) {
  CostConstants c;
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  // Factor so the choice is the leaf projection column.
  // (Assignment over the initial tree would label whole queries.)
  WidgetAssigner assigner(d, c);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  EXPECT_EQ(wt->root.kind, WidgetKind::kRadio);
}

TEST(Assigner, RangeSliderCoversTwoChoices) {
  CostConstants c;
  DiffTree between(
      Symbol::kBetween, "",
      {DiffTree::FromAst(Col("u")),
       DiffTree::Any({DiffTree::FromAst(Num(0)), DiffTree::FromAst(Num(5))}),
       DiffTree::Any({DiffTree::FromAst(Num(15)), DiffTree::FromAst(Num(30))})});
  WidgetAssigner assigner(between, c);
  // Find the composite decision and force the range slider.
  Assignment a = assigner.FirstAssignment();
  bool found = false;
  for (size_t i = 0; i < assigner.decisions().size(); ++i) {
    if (assigner.decisions()[i].type == DecisionType::kBetweenComposite) {
      a.picks[i] = 1;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  auto wt = assigner.Build(a);
  ASSERT_TRUE(wt.ok());
  EXPECT_EQ(wt->root.kind, WidgetKind::kRangeSlider);
  EXPECT_GE(wt->root.choice_id, 0);
  EXPECT_GE(wt->root.choice_id2, 0);
  // Both choice ids resolve to the same widget.
  EXPECT_EQ(wt->WidgetFor(wt->root.choice_id), wt->WidgetFor(wt->root.choice_id2));
}

TEST(Layout, VerticalStacksHorizontalFlows) {
  WidgetNode v;
  v.kind = WidgetKind::kVertical;
  WidgetNode a;
  a.kind = WidgetKind::kLabel;
  a.width = 10;
  a.height = 1;
  WidgetNode b = a;
  b.width = 6;
  b.height = 2;
  v.children = {a, b};
  LayoutResult r = ComputeLayout(&v, {100, 40});
  EXPECT_TRUE(r.fits);
  EXPECT_EQ(v.width, 10);
  EXPECT_EQ(v.height, 3);
  EXPECT_EQ(v.children[1].y, 1);

  WidgetNode h;
  h.kind = WidgetKind::kHorizontal;
  h.children = {a, b};
  ComputeLayout(&h, {100, 40});
  EXPECT_EQ(h.width, 17);  // 10 + gap + 6
  EXPECT_EQ(h.height, 2);
  EXPECT_EQ(h.children[1].x, 11);
}

TEST(Layout, ScreenConstraintViolation) {
  WidgetNode v;
  v.kind = WidgetKind::kVertical;
  for (int i = 0; i < 10; ++i) {
    WidgetNode w;
    w.kind = WidgetKind::kLabel;
    w.width = 30;
    w.height = 1;
    v.children.push_back(w);
  }
  EXPECT_FALSE(ComputeLayout(&v, {40, 5}).fits);
  EXPECT_TRUE(ComputeLayout(&v, {40, 12}).fits);
}

TEST(Layout, TabsStackPanels) {
  WidgetNode tabs;
  tabs.kind = WidgetKind::kTabs;
  tabs.width = 12;  // tab bar from the size model
  tabs.height = 1;
  WidgetNode p1;
  p1.kind = WidgetKind::kLabel;
  p1.width = 20;
  p1.height = 3;
  WidgetNode p2 = p1;
  p2.height = 5;
  tabs.children = {p1, p2};
  ComputeLayout(&tabs, {100, 40});
  EXPECT_EQ(tabs.width, 20);   // widest panel
  EXPECT_EQ(tabs.height, 6);   // bar + tallest panel
}

TEST(Layout, AdderAddsControlRow) {
  WidgetNode adder;
  adder.kind = WidgetKind::kAdder;
  WidgetNode child;
  child.kind = WidgetKind::kLabel;
  child.width = 10;
  child.height = 2;
  adder.children = {child};
  ComputeLayout(&adder, {100, 40});
  EXPECT_EQ(adder.height, 3);
  EXPECT_GE(adder.width, 12);
}

TEST(Render, AsciiShowsWidgets) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  ComputeLayout(&wt->root, {80, 24});
  std::string art = RenderAscii(*wt, {80, 24});
  EXPECT_NE(art.find("(o)"), std::string::npos);  // radio selected marker
  EXPECT_NE(art.find("q1"), std::string::npos);   // synthesized labels
}

TEST(Render, HtmlContainsControls) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  auto wt = assigner.Build(assigner.MinAppropriatenessAssignment());
  ASSERT_TRUE(wt.ok());
  ComputeLayout(&wt->root, {80, 24});
  std::string html = RenderHtml(*wt, "test");
  EXPECT_NE(html.find("<input type=radio"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(WidgetTree, DumpAndCounts) {
  CostConstants c;
  DiffTree d = Fig1Tree();
  WidgetAssigner assigner(d, c);
  auto wt = assigner.Build(assigner.FirstAssignment());
  ASSERT_TRUE(wt.ok());
  EXPECT_GE(wt->CountWidgets(), 1u);
  EXPECT_EQ(wt->CountInteractive(), 1u);
  EXPECT_FALSE(wt->ToString().empty());
}

}  // namespace
}  // namespace ifgen
