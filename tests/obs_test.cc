#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

// ---------------------------------------------------------------------------
// Allocation counter for the disabled-tracing zero-allocation test. The
// replacement operators serve the whole test binary; everything except the
// counter bump forwards to malloc/free.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ifgen {
namespace obs {
namespace {

// Restores the process-wide switches after tests that flip them.
class ObsSwitchGuard {
 public:
  ObsSwitchGuard() : metrics_(MetricsEnabled()), tracing_(TracingEnabled()) {}
  ~ObsSwitchGuard() {
    SetMetricsEnabled(metrics_);
    SetTracingEnabled(tracing_);
  }

 private:
  bool metrics_;
  bool tracing_;
};

// ------------------------------------------------------------------ counters

TEST(ObsCounter, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(4);
  c.Add(5);
  EXPECT_EQ(c.Value(), 10u);
}

TEST(ObsCounter, DisabledDropsUpdates) {
  ObsSwitchGuard guard;
  Counter c;
  c.Inc(7);
  SetMetricsEnabled(false);
  c.Inc(100);
  EXPECT_EQ(c.Value(), 7u);
  SetMetricsEnabled(true);
  c.Inc();
  EXPECT_EQ(c.Value(), 8u);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

// -------------------------------------------------------------------- gauges

TEST(ObsGauge, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.0);
  g.Sub(0.5);
  EXPECT_EQ(g.Value(), 3.0);
}

TEST(ObsGauge, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.Value(), static_cast<double>(kThreads * kPerThread));
}

// ---------------------------------------------------------------- histograms

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpperBounds) {
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.num_buckets = 4;  // bounds: 1, 2, 4, 8 (+Inf overflow)
  Histogram h(opts);

  h.Observe(0.5);  // <= 1           -> bucket 0
  h.Observe(1.0);  // == bound 1     -> bucket 0 (le semantics)
  h.Observe(1.1);  // (1, 2]         -> bucket 1
  h.Observe(2.0);  // == bound 2     -> bucket 1
  h.Observe(8.0);  // == last bound  -> bucket 3
  h.Observe(9.0);  // above all      -> +Inf bucket

  const Histogram::Snapshot snap = h.GetSnapshot();
  ASSERT_EQ(snap.bounds.size(), 4u);
  ASSERT_EQ(snap.counts.size(), 5u);
  EXPECT_EQ(snap.bounds[0], 1.0);
  EXPECT_EQ(snap.bounds[3], 8.0);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.counts[4], 1u);  // +Inf
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.1 + 2.0 + 8.0 + 9.0);
}

TEST(ObsHistogram, QuantileInterpolatesWithinBucket) {
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.num_buckets = 4;  // bounds: 1, 2, 4, 8
  Histogram h(opts);
  // 100 observations, all in the (1, 2] bucket: quantiles interpolate
  // linearly across that bucket's [1, 2] range.
  for (int i = 0; i < 100; ++i) h.Observe(1.5);
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 2.0);
  EXPECT_NEAR(snap.Quantile(0.95), 1.95, 1e-9);
}

TEST(ObsHistogram, QuantileEdgeCases) {
  HistogramOptions opts;
  opts.num_buckets = 2;  // bounds: 1, 2
  Histogram h(opts);
  EXPECT_EQ(h.GetSnapshot().Quantile(0.5), 0.0);  // empty
  // Everything in the +Inf bucket clamps to the largest finite bound.
  h.Observe(100.0);
  EXPECT_EQ(h.GetSnapshot().Quantile(0.5), 2.0);
  EXPECT_EQ(h.QuantileP99(), 2.0);
}

TEST(ObsHistogram, ConcurrentObservationsKeepTotalCount) {
  HistogramOptions opts;
  opts.num_buckets = 8;
  Histogram h(opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(1 + (t + i) % 300));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

// ------------------------------------------------------------------ registry

TEST(ObsRegistry, PointReadsAndLabelCells) {
  MetricsRegistry reg;
  reg.GetCounter("r_total", "help", {{"k", "a"}})->Inc(3);
  reg.GetCounter("r_total", "help", {{"k", "b"}})->Inc(4);
  EXPECT_EQ(reg.CounterValue("r_total", {{"k", "a"}}), 3u);
  EXPECT_EQ(reg.CounterValue("r_total", {{"k", "b"}}), 4u);
  EXPECT_EQ(reg.CounterValue("r_total", {{"k", "zzz"}}), 0u);
  EXPECT_EQ(reg.CounterValue("missing_total"), 0u);
  EXPECT_EQ(reg.CounterTotal("r_total"), 7u);

  reg.GetGauge("r_gauge", "help")->Set(1.25);
  EXPECT_EQ(reg.GaugeValue("r_gauge"), 1.25);
  EXPECT_EQ(reg.GaugeValue("missing_gauge"), 0.0);

  // WithLabels returns a stable pointer for the same label set.
  CounterFamily* fam = reg.GetCounterFamily("r_total", "help");
  EXPECT_EQ(fam->WithLabels({{"k", "a"}}), fam->WithLabels({{"k", "a"}}));
  EXPECT_NE(fam->WithLabels({{"k", "a"}}), fam->WithLabels({{"k", "b"}}));
}

TEST(ObsRegistry, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.GetCounter("t_requests_total", "Total requests", {{"method", "GET"}})->Inc(3);
  reg.GetCounter("t_requests_total", "Total requests", {{"method", "POST"}})->Inc(1);
  reg.GetGauge("t_queue_depth", "Queue depth")->Set(2.5);
  HistogramOptions opts;
  opts.first_bound = 1.0;
  opts.growth = 2.0;
  opts.num_buckets = 2;  // bounds: 1, 2
  Histogram* h = reg.GetHistogram("t_latency", "Latency", opts);
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(10.0);
  reg.GetCounter("t_weird_total", "Weird", {{"path", "a\\b\"c\nd"}})->Inc();

  // Families sort by name; label values escape backslash, quote, newline.
  const std::string expected = R"(# HELP t_latency Latency
# TYPE t_latency histogram
t_latency_bucket{le="1"} 1
t_latency_bucket{le="2"} 2
t_latency_bucket{le="+Inf"} 3
t_latency_sum 12
t_latency_count 3
# HELP t_queue_depth Queue depth
# TYPE t_queue_depth gauge
t_queue_depth 2.5
# HELP t_requests_total Total requests
# TYPE t_requests_total counter
t_requests_total{method="GET"} 3
t_requests_total{method="POST"} 1
# HELP t_weird_total Weird
# TYPE t_weird_total counter
t_weird_total{path="a\\b\"c\nd"} 1
)";
  EXPECT_EQ(reg.PrometheusText(), expected);
}

TEST(ObsRegistry, EscapeAndFormatHelpers) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(2.5), "2.5");
}

TEST(ObsRegistry, GlobalDefaultIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

// ------------------------------------------------------------------- tracing

TEST(ObsTrace, RingWraparoundKeepsNewestOldestFirst) {
  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  TraceRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    TraceEvent e;
    e.name = kNames[i];
    e.cat = "t";
    e.ts_us = i;
    e.dur_us = 1;
    rec.Record(e);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const std::vector<TraceEvent> events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_us, static_cast<int64_t>(i + 2));
    EXPECT_STREQ(events[i].name, kNames[i + 2]);
  }
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsTrace, ChromeTraceJsonShape) {
  TraceRecorder rec(8);
  TraceEvent e;
  e.name = "phase \"x\"";  // exercises JSON escaping
  e.cat = "test";
  e.ts_us = 10;
  e.dur_us = 5;
  e.tid = 3;
  rec.Record(e);
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10,\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  TraceRecorder empty(2);
  EXPECT_EQ(empty.ToChromeTraceJson(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(ObsTrace, SpansFeedScopedSinkAndGlobal) {
  ObsSwitchGuard guard;
  SetTracingEnabled(true);
  TraceRecorder sink(16);
  const size_t global_before = TraceRecorder::Global().size();
  const uint64_t global_dropped_before = TraceRecorder::Global().dropped();
  {
    ScopedTraceSink scoped(&sink);
    TraceSpan span("obs_test.span", "test");
  }
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_STREQ(sink.Events()[0].name, "obs_test.span");
  // The global ring saw it too (size grows unless it already wrapped).
  const uint64_t global_total_after =
      TraceRecorder::Global().size() + TraceRecorder::Global().dropped();
  EXPECT_GT(global_total_after, global_before + global_dropped_before);
  // After the scope, spans no longer reach the sink.
  { TraceSpan span("obs_test.after", "test"); }
  EXPECT_EQ(sink.size(), 1u);
}

TEST(ObsTrace, DisabledSpansAllocateNothing) {
  ObsSwitchGuard guard;
  SetTracingEnabled(false);
  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("obs_test.disabled", "test");
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace obs
}  // namespace ifgen
