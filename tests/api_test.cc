// v1 API layer tests: the JSON value model, the DTO codec (exact
// round-trips + structured error paths), and the transport-agnostic
// ApiService facade driven end-to-end — with the session arm checked
// differentially against an InteractiveRuntime driven in-process
// (bit-identical tables across the DTO boundary).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "api/api_service.h"
#include "api/dto.h"
#include "core/interface_generator.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/rng.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

using api::ApiOptions;
using api::ApiService;
using api::ChangeBatchDto;
using api::ErrorBody;
using api::GenerateRequest;
using api::RowChangeDto;
using api::SessionOpenRequest;
using api::StepReportDto;
using api::TableDto;
using api::WidgetEventRequest;

// ----------------------------------------------------------- JSON model

TEST(Json, ScalarRoundTrips) {
  for (const char* text : {"null", "true", "false", "0", "-7", "42",
                           "9223372036854775807", "-9223372036854775808",
                           "0.5", "-3.25", "1e3", "\"\"", "\"abc\"",
                           "\"a\\nb\\\"c\\\\\"", "[]", "{}",
                           "[1,2.5,\"x\",null,true]",
                           "{\"a\":1,\"b\":[{\"c\":null}]}"}) {
    auto v = ParseJson(text);
    ASSERT_TRUE(v.ok()) << text << ": " << v.status().ToString();
    auto again = ParseJson(WriteJson(*v));
    ASSERT_TRUE(again.ok()) << text;
    EXPECT_EQ(*v, *again) << text;
  }
}

TEST(Json, NumericKindsAreExact) {
  auto v = ParseJson("[1, 1.0, 1e0]");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->items()[0].is_int());
  EXPECT_TRUE(v->items()[1].is_double());
  EXPECT_TRUE(v->items()[2].is_double());
  // Int(1) and Double(1.0) are distinct values under the exact-equality
  // contract, and the writer keeps them distinguishable on the wire.
  EXPECT_NE(v->items()[0], v->items()[1]);
  EXPECT_EQ(WriteJson(v->items()[0]), "1");
  EXPECT_EQ(WriteJson(v->items()[1]), "1.0");

  // Round-trip precision: doubles survive exactly.
  for (double d : {0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                   5e-324, 123456789.123456789}) {
    auto parsed = ParseJson(WriteJson(JsonValue::Double(d)));
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed->is_double()) << d;
    EXPECT_EQ(parsed->AsDouble(), d);
  }
  // int64 extremes survive exactly as ints.
  for (int64_t i : {INT64_MIN, INT64_MAX, int64_t{0}, int64_t{-1}}) {
    auto parsed = ParseJson(WriteJson(JsonValue::Int(i)));
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(parsed->is_int());
    EXPECT_EQ(parsed->AsInt(), i);
  }
}

TEST(Json, UnicodeEscapes) {
  auto v = ParseJson("\"a\\u00e9\\u4e2d\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
  // Escaped output re-parses to the same string.
  auto again = ParseJson(WriteJson(*v));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*v, *again);
}

TEST(Json, MalformedInputsAreParseErrors) {
  for (const char* text :
       {"", "   ", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul",
        "01", "1.", "1e", "+1", "\"unterminated", "\"bad\\q\"",
        "\"\\ud800\"", "{\"a\":1,}", "[1,2],", "{\"a\":1}{", "\x01",
        "{\"a\":1,\"a\":2}"}) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    if (!v.ok()) EXPECT_EQ(v.status().code(), StatusCode::kParseError) << text;
  }
}

TEST(Json, DepthGuardRejectsDeepNesting) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  auto v = ParseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

// ----------------------------------------------------- DTO round-trips

/// The canonical round-trip: DTO -> JSON tree -> wire text -> JSON tree ->
/// DTO, compared for exact equality.
template <typename T>
void ExpectRoundTrip(const T& x) {
  JsonValue tree = x.ToJson();
  auto reparsed = ParseJson(WriteJson(tree));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  auto back = T::FromJson(*reparsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << WriteJson(tree);
  EXPECT_TRUE(*back == x) << WriteJson(tree);
}

Value RandomValue(Rng* rng) {
  switch (rng->UniformIndex(5)) {
    case 0:
      return Value();
    case 1:
      return Value(rng->UniformInt(INT64_MIN, INT64_MAX));
    case 2:
      return Value(rng->UniformDouble(-1e6, 1e6));
    case 3:
      return Value(rng->UniformDouble(0, 1) * 1e-12);
    default: {
      std::string s;
      for (int i = rng->UniformInt(0, 8); i > 0; --i) {
        s.push_back(static_cast<char>(rng->UniformInt(1, 126)));  // incl. ctrl
      }
      return Value(std::move(s));
    }
  }
}

ApiOptions RandomOptions(Rng* rng) {
  ApiOptions o;
  o.algorithm = rng->Choice<std::string>(
      {"mcts", "random", "greedy", "beam", "exhaustive", "bottom-up"});
  o.backend = rng->Choice<std::string>({"reference", "columnar", "sqlite"});
  o.parallel_mode = rng->Choice<std::string>({"root", "leaf"});
  o.time_budget_ms = rng->UniformInt(0, 600000);
  o.max_iterations = rng->UniformInt(1, 1 << 20);
  o.seed = rng->UniformInt(0, INT64_MAX);
  o.screen_width = rng->UniformInt(10, 10000);
  o.screen_height = rng->UniformInt(5, 10000);
  o.num_threads = rng->UniformInt(1, 64);
  o.k_assignments = rng->UniformInt(1, 64);
  o.use_priors = rng->Bernoulli(0.5);
  o.progressive_widening = rng->Bernoulli(0.5);
  o.delta_cost_eval = rng->Bernoulli(0.5);
  return o;
}

WidgetEventRequest RandomEvent(Rng* rng) {
  WidgetEventRequest e;
  switch (rng->UniformIndex(4)) {
    case 0:
      e.kind = "set_any";
      e.choice_id = rng->UniformInt(0, 500);
      e.option_index = rng->UniformInt(0, 50);
      break;
    case 1:
      e.kind = "set_opt";
      e.choice_id = rng->UniformInt(0, 500);
      e.present = rng->Bernoulli(0.5);
      break;
    case 2:
      e.kind = "set_multi";
      e.choice_id = rng->UniformInt(0, 500);
      e.count = rng->UniformInt(0, 5);
      break;
    default:
      e.kind = "load_query";
      e.sql = "select a from t where x < " + std::to_string(rng->UniformInt(0, 99));
      break;
  }
  return e;
}

TEST(Dto, FuzzedRequestRoundTrips) {
  Rng rng(2026);
  for (int i = 0; i < 300; ++i) {
    GenerateRequest req;
    req.workload = rng.Choice<std::string>({"", "flights", "sdss", "synthetic"});
    for (int q = rng.UniformInt(0, 4); q > 0; --q) {
      req.sqls.push_back("select a from t where x between " +
                         std::to_string(rng.UniformInt(-5, 5)) + " and " +
                         std::to_string(rng.UniformInt(6, 99)));
    }
    req.options = RandomOptions(&rng);
    ExpectRoundTrip(req);
    ExpectRoundTrip(req.options);
    ExpectRoundTrip(RandomEvent(&rng));
  }
}

TEST(Dto, FuzzedTableAndBatchRoundTrips) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    TableDto t;
    const size_t cols = rng.UniformIndex(4) + 1;
    for (size_t c = 0; c < cols; ++c) t.columns.push_back("c" + std::to_string(c));
    for (int r = rng.UniformInt(0, 6); r > 0; --r) {
      std::vector<Value> row;
      for (size_t c = 0; c < cols; ++c) row.push_back(RandomValue(&rng));
      t.rows.push_back(std::move(row));
    }
    ExpectRoundTrip(t);

    ChangeBatchDto b;
    b.from_version = rng.UniformInt(0, 1000);
    b.to_version = b.from_version + rng.UniformInt(0, 10);
    b.last_step.transition = rng.Choice<std::string>(
        {"noop", "tighten", "loosen", "limit_only", "rebind", "shape_change"});
    b.last_step.incremental = rng.Bernoulli(0.5);
    b.last_step.rows = rng.UniformInt(0, 500);
    b.last_step.interaction_cost = rng.UniformDouble(0, 10);
    for (int c = rng.UniformInt(0, 5); c > 0; --c) {
      RowChangeDto change;
      change.kind = rng.Choice<std::string>({"add", "remove", "update"});
      for (size_t k = 0; k < cols; ++k) change.row.push_back(RandomValue(&rng));
      if (change.kind == "update") {
        for (size_t k = 0; k < cols; ++k) {
          change.old_row.push_back(RandomValue(&rng));
        }
      }
      b.changes.push_back(std::move(change));
    }
    ExpectRoundTrip(b);
  }
}

TEST(Dto, ErrorBodyMapsStatusBothWays) {
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kParseError, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kUnavailable}) {
    Status s(code, "boom");
    ErrorBody e = ErrorBody::FromStatus(s);
    EXPECT_EQ(e.code, StatusCodeName(code));
    Status back = e.ToStatus();
    EXPECT_EQ(back.code(), code);
    EXPECT_EQ(back.message(), "boom");
    ExpectRoundTrip(e);
  }
  ErrorBody unknown{"NoSuchCode", "m"};
  EXPECT_EQ(unknown.ToStatus().code(), StatusCode::kInternal);
}

// Pins the retry contract (docs/api.md): exactly ResourceExhausted and
// Unavailable are transient; the bit is derived at encode time, always
// emitted, and absent-on-decode means not retryable (pre-retryable wire).
TEST(Dto, ErrorBodyRetryableIsDerivedAndPinned) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kNotFound, StatusCode::kOutOfRange, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kCancelled}) {
    EXPECT_FALSE(ErrorBody::RetryableCode(code)) << StatusCodeName(code);
  }
  EXPECT_TRUE(ErrorBody::RetryableCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(ErrorBody::RetryableCode(StatusCode::kUnavailable));

  ErrorBody transient = ErrorBody::FromStatus(Status::Unavailable("down"));
  EXPECT_TRUE(transient.retryable);
  EXPECT_NE(WriteJson(transient.ToJson()).find("\"retryable\":true"),
            std::string::npos);
  ErrorBody permanent = ErrorBody::FromStatus(Status::NotFound("gone"));
  EXPECT_FALSE(permanent.retryable);
  EXPECT_NE(WriteJson(permanent.ToJson()).find("\"retryable\":false"),
            std::string::npos);

  auto legacy = ParseJson(R"({"code":"NotFound","message":"m"})");
  ASSERT_TRUE(legacy.ok());
  auto decoded = ErrorBody::FromJson(*legacy);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->retryable);
}

// Pins the JobResultDto wire contract: one shared shape, two legacy field
// spellings — "result"/"error" on JobStatusResponse, "partial"/"error" on
// JobProgressResponse — with absent halves omitted rather than null.
TEST(Dto, JobResultDtoKeepsLegacyWireNames) {
  api::JobResultDto failed;
  failed.error = ErrorBody::FromStatus(Status::Internal("boom"));

  api::JobStatusResponse status;
  status.job_id = "j-1";
  status.state = "failed";
  status.result = failed;
  JsonValue status_wire = status.ToJson();
  EXPECT_EQ(status_wire.Find("result"), nullptr);   // absent, not null
  EXPECT_EQ(status_wire.Find("partial"), nullptr);  // never this spelling
  ASSERT_NE(status_wire.Find("error"), nullptr);
  auto status_back = api::JobStatusResponse::FromJson(status_wire);
  ASSERT_TRUE(status_back.ok());
  EXPECT_EQ(*status_back, status);

  api::JobProgressResponse progress;
  progress.job_id = "j-1";
  progress.state = "running";
  progress.version = 2;
  progress.result.value = api::GenerateResponse{};
  progress.result.value->job_id = "j-1";
  JsonValue progress_wire = progress.ToJson();
  ASSERT_NE(progress_wire.Find("partial"), nullptr);
  EXPECT_EQ(progress_wire.Find("result"), nullptr);  // never this spelling
  EXPECT_EQ(progress_wire.Find("error"), nullptr);
  auto progress_back = api::JobProgressResponse::FromJson(progress_wire);
  ASSERT_TRUE(progress_back.ok());
  EXPECT_EQ(*progress_back, progress);
}

// ----------------------------------------------------- codec error paths

TEST(Dto, UnknownTopLevelFieldRejected) {
  auto v = ParseJson(R"({"workload":"flights","sqls":[],"surprise":1})");
  ASSERT_TRUE(v.ok());
  auto req = GenerateRequest::FromJson(*v);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(req.status().message().find("surprise"), std::string::npos);
}

TEST(Dto, UnknownOptionFieldRejected) {
  auto v = ParseJson(R"({"options":{"seeed":42}})");
  ASSERT_TRUE(v.ok());
  auto req = GenerateRequest::FromJson(*v);
  ASSERT_FALSE(req.ok());
  EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(req.status().message().find("seeed"), std::string::npos);
}

TEST(Dto, WrongTypeFieldsRejected) {
  // sqls as string, seed as string, use_priors as int, workload as number.
  for (const char* text :
       {R"({"sqls":"select a from t"})", R"({"options":{"seed":"42"}})",
        R"({"options":{"use_priors":1}})", R"({"workload":3})",
        R"({"options":{"time_budget_ms":12.5}})"}) {
    auto v = ParseJson(text);
    ASSERT_TRUE(v.ok()) << text;
    auto req = GenerateRequest::FromJson(*v);
    ASSERT_FALSE(req.ok()) << text;
    EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(Dto, OutOfRangeOptionsRejected) {
  {
    ApiOptions o;
    o.screen_width = 3;
    EXPECT_EQ(o.ToGeneratorOptions().status().code(), StatusCode::kOutOfRange);
  }
  {
    ApiOptions o;
    o.num_threads = 1000;
    EXPECT_EQ(o.ToGeneratorOptions().status().code(), StatusCode::kOutOfRange);
  }
  {
    ApiOptions o;  // unbounded search forbidden at the API boundary
    o.time_budget_ms = 0;
    o.max_iterations = 0;
    EXPECT_EQ(o.ToGeneratorOptions().status().code(), StatusCode::kOutOfRange);
  }
  {
    ApiOptions o;
    o.algorithm = "magic";
    EXPECT_EQ(o.ToGeneratorOptions().status().code(), StatusCode::kInvalidArgument);
  }
  {
    ApiOptions o;
    o.backend = "oracle";
    EXPECT_EQ(o.ToGeneratorOptions().status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Dto, EventKindFieldMismatchRejected) {
  // A field outside the kind's set is a loud error, not silently ignored.
  auto v = ParseJson(R"({"kind":"set_opt","choice_id":1,"present":true,"count":2})");
  ASSERT_TRUE(v.ok());
  auto e = WidgetEventRequest::FromJson(*v);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);

  auto v2 = ParseJson(R"({"kind":"warp","choice_id":1})");
  ASSERT_TRUE(v2.ok());
  EXPECT_FALSE(WidgetEventRequest::FromJson(*v2).ok());
}

TEST(Dto, ApiOptionsDefaultsMirrorGeneratorOptions) {
  // The flat wire defaults and the internal defaults must not drift.
  ApiOptions wire;
  GeneratorOptions internal;
  ApiOptions mirrored = ApiOptions::FromGeneratorOptions(internal);
  mirrored.time_budget_ms = wire.time_budget_ms;  // equal anyway; be explicit
  EXPECT_TRUE(wire == mirrored);
  auto converted = wire.ToGeneratorOptions();
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->backend, internal.backend);
  EXPECT_EQ(converted->algorithm, internal.algorithm);
  EXPECT_EQ(converted->search.seed, internal.search.seed);
}

// ------------------------------------------------------------ ApiService

ApiService::Options SmallServiceOptions() {
  ApiService::Options o;
  o.workload_rows = 300;  // small stores keep generation + execution fast
  o.service.num_threads = 2;
  return o;
}

ApiOptions FastGenOptions() {
  ApiOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = 12;
  o.seed = 5;
  o.screen_width = 90;
  o.screen_height = 32;
  return o;
}

/// Waits (bounded) for a job to reach a terminal state.
api::JobStatusResponse AwaitJob(ApiService* svc, const std::string& job_id) {
  auto status = svc->GetJob(job_id, /*wait_ms=*/30000);
  EXPECT_TRUE(status.ok()) << status.status().ToString();
  return status.ok() ? *status : api::JobStatusResponse{};
}

TEST(ApiService, GenerateJobLifecycle) {
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_EQ(accepted->job_id.rfind("j-", 0), 0u);

  api::JobStatusResponse done = AwaitJob(svc->get(), accepted->job_id);
  ASSERT_EQ(done.state, "done");
  ASSERT_TRUE(done.result.value.has_value());
  EXPECT_EQ(done.result.value->workload, "flights");
  EXPECT_EQ(done.result.value->algorithm, "mcts");
  EXPECT_EQ(done.result.value->backend, "columnar");
  EXPECT_GT(done.result.value->stats.iterations, 0);
  EXPECT_TRUE(done.result.value->widgets.is_object());
  EXPECT_NE(done.result.value->widgets.Find("widget"), nullptr);
  const JsonValue* valid = done.result.value->cost.Find("valid");
  ASSERT_NE(valid, nullptr);
  EXPECT_EQ(*valid, JsonValue::Bool(true));
  ExpectRoundTrip(done);  // the full job-status DTO round-trips exactly

  // Identical resubmission: cache hit.
  auto again = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(again.ok());
  api::JobStatusResponse cached = AwaitJob(svc->get(), again->job_id);
  EXPECT_EQ(cached.state, "done");
  EXPECT_TRUE(cached.cache_hit);

  // Unknown & malformed ids.
  EXPECT_EQ((*svc)->GetJob("j-99999").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*svc)->GetJob("jobby").status().code(), StatusCode::kInvalidArgument);
  // Overflowing numeric suffixes must be rejected, not wrapped mod 2^64 —
  // "j-18446744073709551617" would otherwise alias job 1.
  EXPECT_EQ((*svc)->GetJob("j-18446744073709551617").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*svc)->CancelJob("j-18446744073709551617").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE((*svc)->GetJob("j-18446744073709551615").status().code() ==
              StatusCode::kNotFound);  // UINT64_MAX itself parses, just unknown

  // Bad requests.
  GenerateRequest empty;
  EXPECT_EQ((*svc)->SubmitGenerate(empty).status().code(),
            StatusCode::kInvalidArgument);
  GenerateRequest unknown_workload;
  unknown_workload.workload = "martian";
  EXPECT_EQ((*svc)->SubmitGenerate(unknown_workload).status().code(),
            StatusCode::kNotFound);
}

TEST(ApiService, BoundedQueueSurfacesResourceExhausted) {
  ApiService::Options opts = SmallServiceOptions();
  opts.service.num_threads = 1;
  opts.service.max_pending_jobs = 1;
  opts.service.cache_capacity = 0;
  auto svc = ApiService::Create(opts);
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  req.options.max_iterations = 60;  // keep the worker busy a moment
  auto first = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(first.ok());
  req.options.seed = 6;
  auto second = (*svc)->SubmitGenerate(req);
  req.options.seed = 7;
  auto third = (*svc)->SubmitGenerate(req);
  EXPECT_TRUE(!second.ok() || !third.ok());
  if (!second.ok()) {
    EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  }
  if (!third.ok()) {
    EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  }
  AwaitJob(svc->get(), first->job_id);
}

/// Extracts (choice_id, option_count, widget kind) triples from the widgets
/// JSON — the generic way an HTTP client discovers what it can manipulate.
void CollectChoices(const JsonValue& node,
                    std::vector<std::tuple<int64_t, int64_t, std::string>>* out) {
  const JsonValue* choice = node.Find("choice");
  const JsonValue* widget = node.Find("widget");
  if (choice != nullptr && widget != nullptr) {
    const JsonValue* options = node.Find("options");
    out->emplace_back(choice->AsInt(),
                      options != nullptr ? static_cast<int64_t>(options->size()) : 0,
                      widget->AsString());
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->items()) CollectChoices(c, out);
  }
}

TEST(ApiService, SessionDifferentialAgainstInProcessRuntime) {
  // The acceptance path: drive a session through the API DTOs and an
  // InteractiveRuntime directly, applying the same events to both; every
  // response table must be bit-identical (exact Value kinds) to the
  // in-process runtime's result after crossing the JSON boundary.
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());

  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  api::JobStatusResponse done = AwaitJob(svc->get(), accepted->job_id);
  ASSERT_EQ(done.state, "done");

  // In-process arm: same deterministic generation over the same store.
  auto bundle = LoadWorkload("flights", 300);
  ASSERT_TRUE(bundle.ok());
  auto gen_opts = req.options.ToGeneratorOptions();
  ASSERT_TRUE(gen_opts.ok());
  auto iface = GenerateInterface(bundle->log, *gen_opts);
  ASSERT_TRUE(iface.ok());
  auto backend = MakeBackendFor(*bundle, gen_opts->backend);
  ASSERT_TRUE(backend.ok());
  std::shared_ptr<ExecutionBackend> shared_backend(std::move(*backend));
  auto runtime = InteractiveRuntime::Create(*iface, gen_opts->constants,
                                            shared_backend);
  ASSERT_TRUE(runtime.ok());

  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Same initial table.
  {
    auto in_proc = (*runtime)->CurrentResult();
    ASSERT_TRUE(in_proc.ok());
    EXPECT_TRUE(session->table == TableDto::FromTable(*in_proc));
    auto in_proc_sql = (*runtime)->CurrentSql();
    ASSERT_TRUE(in_proc_sql.ok());
    EXPECT_EQ(session->sql, *in_proc_sql);
  }

  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(session->widgets, &choices);
  ASSERT_FALSE(choices.empty());

  // Drive every discovered widget through both arms.
  size_t applied = 0;
  for (const auto& [choice_id, option_count, kind] : choices) {
    std::vector<WidgetEventRequest> events;
    if (kind == "Checkbox" || kind == "Toggle") {
      WidgetEventRequest off, on;
      off.kind = "set_opt";
      off.choice_id = choice_id;
      off.present = false;
      on = off;
      on.present = true;
      events = {off, on};
    } else if (option_count > 0) {
      for (int64_t i = 0; i < std::min<int64_t>(option_count, 3); ++i) {
        WidgetEventRequest e;
        e.kind = "set_any";
        e.choice_id = choice_id;
        e.option_index = i;
        events.push_back(e);
      }
    }
    for (const WidgetEventRequest& event : events) {
      auto api_step = (*svc)->ApplyEvent(session->session_id, event);
      Result<InteractiveRuntime::StepReport> in_proc_step =
          event.kind == "set_opt"
              ? (*runtime)->SetOptPresent(static_cast<int>(event.choice_id),
                                          event.present)
              : (*runtime)->SetAnyChoice(static_cast<int>(event.choice_id),
                                         static_cast<int>(event.option_index));
      // Both arms accept or both reject.
      ASSERT_EQ(api_step.ok(), in_proc_step.ok())
          << event.kind << " choice " << event.choice_id << ": api="
          << api_step.status().ToString()
          << " in-proc=" << in_proc_step.status().ToString();
      if (!api_step.ok()) continue;
      ++applied;
      EXPECT_EQ(api_step->report.transition,
                TransitionClassName(in_proc_step->transition));
      EXPECT_EQ(api_step->report.rows,
                static_cast<int64_t>(in_proc_step->rows));
      auto api_table = (*svc)->SessionTable(session->session_id);
      auto in_proc_table = (*runtime)->CurrentResult();
      ASSERT_TRUE(api_table.ok());
      ASSERT_TRUE(in_proc_table.ok());
      EXPECT_TRUE(*api_table == TableDto::FromTable(*in_proc_table))
          << "table diverged after " << event.kind << " on choice "
          << event.choice_id;
      auto api_sql = api_step->sql;
      auto in_proc_sql = (*runtime)->CurrentSql();
      ASSERT_TRUE(in_proc_sql.ok());
      EXPECT_EQ(api_sql, *in_proc_sql);
    }
  }
  EXPECT_GT(applied, 4u) << "differential walk exercised too few events";
}

/// Applies a ChangeBatchDto to a multiset of rows (the documented feed
/// contract: remove one equal row / append / replace).
void ApplyBatch(const ChangeBatchDto& batch, std::vector<std::vector<Value>>* rows) {
  auto remove_one = [&](const std::vector<Value>& row) {
    auto it = std::find(rows->begin(), rows->end(), row);
    ASSERT_NE(it, rows->end()) << "feed removed a row the client never had";
    rows->erase(it);
  };
  for (const RowChangeDto& c : batch.changes) {
    if (c.kind == "add") {
      rows->push_back(c.row);
    } else if (c.kind == "remove") {
      remove_one(c.row);
    } else {
      remove_one(c.old_row);
      rows->push_back(c.row);
    }
  }
}

TEST(ApiService, FeedMirrorsSessionTable) {
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());

  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(session->widgets, &choices);
  std::vector<std::vector<Value>> mirror = session->table.rows;

  size_t steps = 0;
  Rng rng(3);
  for (int round = 0; round < 3; ++round) {
    for (const auto& [choice_id, option_count, kind] : choices) {
      WidgetEventRequest e;
      if (kind == "Checkbox" || kind == "Toggle") {
        e.kind = "set_opt";
        e.choice_id = choice_id;
        e.present = rng.Bernoulli(0.5);
      } else if (option_count > 0) {
        e.kind = "set_any";
        e.choice_id = choice_id;
        e.option_index = rng.UniformInt(0, option_count - 1);
      } else {
        continue;
      }
      if (!(*svc)->ApplyEvent(session->session_id, e).ok()) continue;
      ++steps;
      auto batch = (*svc)->PollSession(session->session_id);
      ASSERT_TRUE(batch.ok());
      ApplyBatch(*batch, &mirror);
      if (HasFatalFailure()) return;
      auto table = (*svc)->SessionTable(session->session_id);
      ASSERT_TRUE(table.ok());
      auto sorted = [](std::vector<std::vector<Value>> rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const std::vector<Value>& a, const std::vector<Value>& b) {
                    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
                      int c = a[i].Compare(b[i]);
                      if (c != 0) return c < 0;
                    }
                    return a.size() < b.size();
                  });
        return rows;
      };
      EXPECT_EQ(sorted(mirror).size(), sorted(table->rows).size());
      EXPECT_TRUE(sorted(mirror) == sorted(table->rows))
          << "feed mirror diverged at step " << steps;
    }
  }
  EXPECT_GT(steps, 5u);
}

TEST(ApiService, SessionTtlEvictsIdleSessions) {
  ApiService::Options opts = SmallServiceOptions();
  opts.session_ttl_ms = 50;
  auto svc = ApiService::Create(opts);
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*svc)->sessions_active(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  // Any session access sweeps; the idle session is gone.
  auto poll = (*svc)->PollSession(session->session_id);
  EXPECT_FALSE(poll.ok());
  EXPECT_EQ(poll.status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*svc)->sessions_active(), 0u);
  auto stats = (*svc)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sessions_expired, 1);
}

TEST(ApiService, EventBoundsRejectedBeforeTouchingSession) {
  // Wire-sized int64 fields must be range-checked before they narrow to the
  // session's int/size_t signatures — in particular `count` sizes an
  // allocation (children.assign), so a huge value must answer OutOfRange,
  // never allocate.
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());

  auto expect_out_of_range = [&](const WidgetEventRequest& e) {
    auto step = (*svc)->ApplyEvent(session->session_id, e);
    ASSERT_FALSE(step.ok());
    EXPECT_EQ(step.status().code(), StatusCode::kOutOfRange)
        << e.kind << ": " << step.status().ToString();
  };

  WidgetEventRequest e;
  e.kind = "set_multi";
  e.choice_id = 0;
  e.count = 1'000'000'000'000'000;  // would assign() this many Derivations
  expect_out_of_range(e);
  e.count = static_cast<int64_t>(InterfaceSession::kMaxMultiCount) + 1;
  expect_out_of_range(e);
  e.count = -1;
  expect_out_of_range(e);

  e = WidgetEventRequest();
  e.kind = "set_any";
  e.choice_id = int64_t{1} << 40;  // would wrap via static_cast<int>
  e.option_index = 0;
  expect_out_of_range(e);
  e.choice_id = 0;
  e.option_index = int64_t{1} << 40;
  expect_out_of_range(e);
}

TEST(ApiService, CatalogAndStats) {
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  api::CatalogResponse catalog = *(*svc)->Catalog();
  ASSERT_EQ(catalog.workloads.size(), 3u);
  std::vector<std::string> names;
  for (const auto& w : catalog.workloads) {
    names.push_back(w.name);
    EXPECT_GT(w.queries, 0);
    ASSERT_FALSE(w.tables.empty());
    EXPECT_GT(w.tables[0].rows, 0);
    EXPECT_GT(w.tables[0].columns, 0);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "flights"), names.end());
  EXPECT_FALSE(catalog.backends.empty());
  EXPECT_EQ(catalog.backends[0], "reference");
  ExpectRoundTrip(catalog);

  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());

  api::StatsResponse stats = *(*svc)->Stats();
  EXPECT_EQ(stats.jobs_submitted, 1);
  EXPECT_EQ(stats.sessions_active, 1);
  EXPECT_EQ(stats.sessions_opened, 1);
  ASSERT_FALSE(stats.backends.empty());
  EXPECT_EQ(stats.backends[0].workload, "flights");
  // The delta-capable execution path runs plans directly, so `executions`
  // may stay 0 — plan compilations always register.
  EXPECT_GT(stats.backends[0].prepares, 0);
  ExpectRoundTrip(stats);
}

TEST(ApiService, StatsMatchesRegistryDeltas) {
  // /v1/stats and /v1/metrics are two views of the same events: every
  // StatsResponse counter must equal the delta of its registry metric across
  // the test body (deltas, because the process-global registry accumulates
  // across tests while each service instance starts at zero).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t base_submitted = reg.CounterTotal("ifgen_jobs_submitted_total");
  const uint64_t base_executed = reg.CounterTotal("ifgen_jobs_executed_total");
  const uint64_t base_cache_hits = reg.CounterTotal("ifgen_jobs_cache_hits_total");
  const uint64_t base_sessions = reg.CounterTotal("ifgen_sessions_opened_total");
  const uint64_t base_expired = reg.CounterTotal("ifgen_sessions_expired_total");
  const uint64_t base_steps = reg.CounterTotal("ifgen_runtime_steps_total");
  auto path_total = [&reg](const char* path) {
    return reg.CounterValue("ifgen_runtime_path_total", {{"path", path}});
  };
  const uint64_t base_noop = path_total("noop");
  const uint64_t base_full = path_total("full_exec");

  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());

  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(session->widgets, &choices);
  ASSERT_FALSE(choices.empty());
  for (const auto& [choice_id, option_count, kind] : choices) {
    if (kind == "Checkbox" || kind == "Toggle") {
      WidgetEventRequest e;
      e.kind = "set_opt";
      e.choice_id = choice_id;
      e.present = true;
      (void)(*svc)->ApplyEvent(session->session_id, e);
    }
  }

  const api::StatsResponse stats = *(*svc)->Stats();
  EXPECT_EQ(static_cast<uint64_t>(stats.jobs_submitted),
            reg.CounterTotal("ifgen_jobs_submitted_total") - base_submitted);
  EXPECT_EQ(static_cast<uint64_t>(stats.jobs_executed),
            reg.CounterTotal("ifgen_jobs_executed_total") - base_executed);
  EXPECT_EQ(static_cast<uint64_t>(stats.job_cache_hits),
            reg.CounterTotal("ifgen_jobs_cache_hits_total") - base_cache_hits);
  EXPECT_EQ(static_cast<uint64_t>(stats.sessions_opened),
            reg.CounterTotal("ifgen_sessions_opened_total") - base_sessions);
  EXPECT_EQ(static_cast<uint64_t>(stats.sessions_expired),
            reg.CounterTotal("ifgen_sessions_expired_total") - base_expired);
  // Runtime counters: the single session stays open, so the service's sum
  // over open sessions equals the process-wide delta.
  EXPECT_EQ(static_cast<uint64_t>(stats.steps),
            reg.CounterTotal("ifgen_runtime_steps_total") - base_steps);
  EXPECT_EQ(static_cast<uint64_t>(stats.noops), path_total("noop") - base_noop);
  EXPECT_EQ(static_cast<uint64_t>(stats.full_execs),
            path_total("full_exec") - base_full);
  EXPECT_EQ(static_cast<double>(stats.jobs_pending),
            reg.GaugeValue("ifgen_jobs_pending"));
}

TEST(ApiService, JobTraceExportsChromeJson) {
  struct TracingGuard {
    bool prev = obs::TracingEnabled();
    ~TracingGuard() { obs::SetTracingEnabled(prev); }
  } guard;
  obs::SetTracingEnabled(true);

  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");

  auto trace = (*svc)->JobTrace(accepted->job_id);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_NE(trace->find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace->find("\"service.job\""), std::string::npos);

  EXPECT_EQ((*svc)->JobTrace("j-99999").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*svc)->JobTrace("bogus").status().code(),
            StatusCode::kInvalidArgument);

  // Jobs executed while tracing is off have no capture to export.
  obs::SetTracingEnabled(false);
  auto accepted2 = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted2.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted2->job_id).state, "done");
  auto no_trace = (*svc)->JobTrace(accepted2->job_id);
  EXPECT_EQ(no_trace.status().code(), StatusCode::kNotFound);
}

TEST(ApiService, ConcurrentSessionsAndPollers) {
  // TSan target: several threads each own a session and hammer events +
  // feed polls while a stats reader spins.
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");

  constexpr int kSessions = 3;
  std::vector<std::string> ids;
  std::vector<std::vector<std::tuple<int64_t, int64_t, std::string>>> choices(
      kSessions);
  for (int i = 0; i < kSessions; ++i) {
    SessionOpenRequest open;
    open.job_id = accepted->job_id;
    auto session = (*svc)->OpenSession(open);
    ASSERT_TRUE(session.ok());
    ids.push_back(session->session_id);
    CollectChoices(session->widgets, &choices[i]);
    ASSERT_FALSE(choices[i].empty());
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(100 + i);
      for (int step = 0; step < 40; ++step) {
        const auto& [choice_id, option_count, kind] = choices[i][rng.UniformIndex(
            choices[i].size())];
        WidgetEventRequest e;
        if (kind == "Checkbox" || kind == "Toggle") {
          e.kind = "set_opt";
          e.choice_id = choice_id;
          e.present = rng.Bernoulli(0.5);
        } else if (option_count > 0) {
          e.kind = "set_any";
          e.choice_id = choice_id;
          e.option_index = rng.UniformInt(0, option_count - 1);
        } else {
          continue;
        }
        (void)(*svc)->ApplyEvent(ids[i], e);  // failures are fine; races not
        (void)(*svc)->PollSession(ids[i]);
      }
    });
    threads.emplace_back([&, i] {
      while (!stop.load()) {
        (void)(*svc)->PollSession(ids[i]);
        (void)(*svc)->Stats();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int i = 0; i < kSessions; ++i) threads[2 * i].join();
  stop.store(true);
  for (int i = 0; i < kSessions; ++i) threads[2 * i + 1].join();
  for (const std::string& id : ids) EXPECT_TRUE((*svc)->CloseSession(id).ok());
  EXPECT_EQ((*svc)->sessions_active(), 0u);
}

TEST(ApiService, ConcurrentEventsOnOneSessionGetAtomicBatches) {
  // Step + event-subscriber drain are atomic per session: each successful
  // StepResponse.batch must cover exactly its own step's version range, so
  // the ranges collected across threads tile [initial, final] without
  // overlap (a racy drain yields one batch spanning two steps and another
  // empty one).
  auto svc = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(svc.ok());
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  auto accepted = (*svc)->SubmitGenerate(req);
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(AwaitJob(svc->get(), accepted->job_id).state, "done");
  SessionOpenRequest open;
  open.job_id = accepted->job_id;
  auto session = (*svc)->OpenSession(open);
  ASSERT_TRUE(session.ok());
  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(session->widgets, &choices);
  ASSERT_FALSE(choices.empty());

  constexpr int kThreads = 4;
  std::mutex ranges_mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(200 + t);
      for (int step = 0; step < 25; ++step) {
        const auto& [choice_id, option_count, kind] =
            choices[rng.UniformIndex(choices.size())];
        WidgetEventRequest e;
        if (kind == "Checkbox" || kind == "Toggle") {
          e.kind = "set_opt";
          e.choice_id = choice_id;
          e.present = rng.Bernoulli(0.5);
        } else if (option_count > 0) {
          e.kind = "set_any";
          e.choice_id = choice_id;
          e.option_index = rng.UniformInt(0, option_count - 1);
        } else {
          continue;
        }
        auto resp = (*svc)->ApplyEvent(session->session_id, e);
        if (!resp.ok()) continue;
        std::lock_guard<std::mutex> lock(ranges_mu);
        ranges.emplace_back(resp->batch.from_version, resp->batch.to_version);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_GT(ranges.size(), 10u);
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i].first, ranges[i].second)
        << "step " << i << " drained an empty batch";
    if (i > 0) {
      EXPECT_EQ(ranges[i].first, ranges[i - 1].second)
          << "batch " << i << " overlaps or skips its neighbor";
    }
  }
}

}  // namespace
}  // namespace ifgen
