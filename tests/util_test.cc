#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ifgen {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, FactoryCodes) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(Status, CodeNamesAndValuesArePinned) {
  // StatusCodeName strings are the machine-readable error codes of the v1
  // API (api::ErrorBody.code): both the numeric value and the spelling of
  // every enumerator are frozen. Renumbering or renaming a code is a wire
  // contract break — append new codes instead.
  struct Pin {
    StatusCode code;
    uint8_t value;
    const char* name;
  };
  const Pin pins[] = {
      {StatusCode::kOk, 0, "OK"},
      {StatusCode::kInvalidArgument, 1, "InvalidArgument"},
      {StatusCode::kParseError, 2, "ParseError"},
      {StatusCode::kNotFound, 3, "NotFound"},
      {StatusCode::kOutOfRange, 4, "OutOfRange"},
      {StatusCode::kResourceExhausted, 5, "ResourceExhausted"},
      {StatusCode::kUnimplemented, 6, "Unimplemented"},
      {StatusCode::kInternal, 7, "Internal"},
      {StatusCode::kCancelled, 8, "Cancelled"},
      {StatusCode::kUnavailable, 9, "Unavailable"},
  };
  // If a code was added, extend `pins` — this count is part of the pin.
  constexpr uint8_t kNumCodes = 10;
  EXPECT_EQ(sizeof pins / sizeof pins[0], kNumCodes);
  for (const Pin& pin : pins) {
    EXPECT_EQ(static_cast<uint8_t>(pin.code), pin.value) << pin.name;
    EXPECT_STREQ(StatusCodeName(pin.code), pin.name);
  }
  // Names are distinct (a copy-paste duplicate would silently merge two
  // error categories at the API boundary).
  for (const Pin& a : pins) {
    for (const Pin& b : pins) {
      if (a.value != b.value) {
        EXPECT_STRNE(StatusCodeName(a.code), StatusCodeName(b.code));
      }
    }
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Doubled(Result<int> in) {
  IFGEN_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Invalid("nope")).ok());
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependent) {
  Rng a(5);
  Rng fork = a.Fork();
  // A forked stream should not replay the parent stream.
  bool all_equal = true;
  for (int i = 0; i < 20; ++i) {
    if (a.Next() != fork.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, SplitIsDeterministicPerStream) {
  Rng a(123);
  Rng b(123);
  Rng sa = a.Split(7);
  Rng sb = b.Split(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sa.Next(), sb.Next());
  }
}

TEST(Rng, SplitIndependentOfConsumedDraws) {
  // Split depends only on the construction seed — parallel workers can
  // derive their streams at any point without coordinating.
  Rng fresh(42);
  Rng drained(42);
  for (int i = 0; i < 100; ++i) drained.Next();
  EXPECT_EQ(fresh.SplitSeed(3), drained.SplitSeed(3));
}

TEST(Rng, SplitStreamsDiffer) {
  Rng base(77);
  Rng s0 = base.Split(0);
  Rng s1 = base.Split(1);
  EXPECT_NE(s0.seed(), s1.seed());
  bool all_equal = true;
  for (int i = 0; i < 20; ++i) {
    if (s0.Next() != s1.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
  // Streams must also differ from the parent stream.
  Rng parent(77);
  Rng s2 = parent.Split(2);
  all_equal = true;
  for (int i = 0; i < 20; ++i) {
    if (parent.Next() != s2.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Hash, CombineOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Hash, BytesDiffer) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
}

TEST(StringUtil, JoinSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("top"), "TOP");
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtil, IsNumeric) {
  EXPECT_TRUE(IsNumeric("42"));
  EXPECT_TRUE(IsNumeric("-3.5"));
  EXPECT_TRUE(IsNumeric("+7"));
  EXPECT_FALSE(IsNumeric("3.5.1"));
  EXPECT_FALSE(IsNumeric("abc"));
  EXPECT_FALSE(IsNumeric(""));
  EXPECT_FALSE(IsNumeric("-"));
}

TEST(StringUtil, PadRepeatEllipsize) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadRight("abcdef", 3), "abc");
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Ellipsize("abcdef", 4), "ab..");
  EXPECT_EQ(Ellipsize("ab", 4), "ab");
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(Timer, DeadlineUnlimited) {
  Deadline d(0);
  EXPECT_FALSE(d.Expired());
  Deadline d2(-1);
  EXPECT_FALSE(d2.Expired());
}

TEST(Timer, StopwatchMonotone) {
  Stopwatch w;
  int64_t a = w.ElapsedMicros();
  int64_t b = w.ElapsedMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace ifgen
