#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "runtime/service.h"
#include "search/mcts.h"
#include "search/parallel_mcts.h"
#include "search/progress.h"
#include "search/timeman.h"
#include "sql/parser.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

std::vector<Ast> SmallLog() {
  return *ParseQueries(std::vector<std::string>{
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
  });
}

/// First `n` queries of a registered workload's log, parsed. The streaming
/// differential sweeps real logs (flights/sdss/synthetic), not just the toy
/// log, because publish cadence depends on how often the best improves.
std::vector<Ast> WorkloadLog(const std::string& name, size_t n) {
  auto bundle = LoadWorkload(name);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  std::vector<std::string> sqls(bundle->log.begin(),
                                bundle->log.begin() +
                                    std::min(n, bundle->log.size()));
  auto parsed = ParseQueries(sqls);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *parsed;
}

SearchOptions FastOptions(size_t iterations) {
  SearchOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = iterations;
  o.seed = 17;
  return o;
}

EvalOptions SmallEvalOptions() {
  EvalOptions e;
  e.screen = {80, 24};
  return e;
}

/// The published sequence must be the anytime contract: versions 1,2,3,...
/// with strictly decreasing costs, and the final snapshot must be exactly
/// the returned result.
void CheckPublishedSequence(const ProgressSink& sink, const SearchResult& r) {
  auto events = sink.EventsAfter(0);
  ASSERT_FALSE(events.empty()) << "search published no improvements";
  double prev_cost = std::numeric_limits<double>::infinity();
  uint64_t prev_version = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.version, prev_version + 1) << "versions must be consecutive";
    EXPECT_LT(e.cost, prev_cost) << "published costs must strictly decrease";
    ASSERT_NE(e.tree, nullptr);
    prev_cost = e.cost;
    prev_version = e.version;
  }
  auto latest = sink.Latest();
  EXPECT_EQ(latest.version, sink.version());
  EXPECT_EQ(latest.cost, r.best_cost)
      << "final published cost must equal the returned best cost";
  ASSERT_NE(latest.tree, nullptr);
  EXPECT_EQ(*latest.tree, r.best_tree)
      << "final published tree must equal the returned best tree";
}

// ----------------------------------------------------- streaming differential

TEST(Streaming, SerialPublishesStrictlyImprovingSequencePerWorkload) {
  for (const std::string& name : {"flights", "sdss", "synthetic"}) {
    SCOPED_TRACE(name);
    auto queries = WorkloadLog(name, 6);
    RuleEngine rules;
    DiffTree initial = *BuildInitialTree(queries);
    StateEvaluator eval(SmallEvalOptions(), queries);
    SearchOptions opts = FastOptions(30);
    auto sink = std::make_shared<ProgressSink>();
    opts.progress = sink;
    MctsSearcher searcher(&rules, &eval, opts);
    auto r = searcher.Run(initial);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    CheckPublishedSequence(*sink, *r);
    EXPECT_EQ(r->stats.stop_reason, StopReason::kIterations);
  }
}

TEST(Streaming, RootParallelPublishesStrictlyImprovingSequence) {
  auto queries = WorkloadLog("flights", 6);
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval(SmallEvalOptions(), queries);
  SearchOptions opts = FastOptions(30);
  auto sink = std::make_shared<ProgressSink>();
  opts.progress = sink;
  ParallelOptions popts;
  popts.num_threads = 3;
  popts.mode = ParallelMode::kRoot;
  ParallelMctsSearcher searcher(&rules, &eval, opts, popts);
  auto r = searcher.Run(initial);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  CheckPublishedSequence(*sink, *r);
}

TEST(Streaming, LeafParallelPublishesStrictlyImprovingSequence) {
  auto queries = WorkloadLog("synthetic", 6);
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval(SmallEvalOptions(), queries);
  SearchOptions opts = FastOptions(20);
  auto sink = std::make_shared<ProgressSink>();
  opts.progress = sink;
  ParallelOptions popts;
  popts.num_threads = 2;
  popts.mode = ParallelMode::kLeaf;
  popts.leaf_rollouts = 2;
  ParallelMctsSearcher searcher(&rules, &eval, opts, popts);
  auto r = searcher.Run(initial);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  CheckPublishedSequence(*sink, *r);
}

/// The no-deadline differential pin: with time control off, attaching the
/// streaming machinery (sink + stop handle) must leave the serial search
/// bit-identical to a plain run — publishing consumes no RNG draws and the
/// RunControl layer stays inert.
TEST(Streaming, SinkAndStopWiringDoesNotPerturbSerialSearch) {
  for (const std::string& name : {"flights", "sdss", "synthetic"}) {
    SCOPED_TRACE(name);
    auto queries = WorkloadLog(name, 6);
    RuleEngine rules;
    DiffTree initial = *BuildInitialTree(queries);

    // Fresh evaluator per run: a warm cache would change RNG consumption.
    StateEvaluator plain_eval(SmallEvalOptions(), queries);
    MctsSearcher plain(&rules, &plain_eval, FastOptions(25));
    auto plain_result = plain.Run(initial);
    ASSERT_TRUE(plain_result.ok());

    StateEvaluator wired_eval(SmallEvalOptions(), queries);
    SearchOptions wired_opts = FastOptions(25);
    wired_opts.progress = std::make_shared<ProgressSink>();
    wired_opts.stop = std::make_shared<StopHandle>();
    MctsSearcher wired(&rules, &wired_eval, wired_opts);
    auto wired_result = wired.Run(initial);
    ASSERT_TRUE(wired_result.ok());

    EXPECT_EQ(wired_result->best_cost, plain_result->best_cost);
    EXPECT_EQ(wired_result->best_tree, plain_result->best_tree);
    EXPECT_EQ(wired_result->stats.iterations, plain_result->stats.iterations);
    EXPECT_EQ(wired_result->stats.rollouts, plain_result->stats.rollouts);
    EXPECT_EQ(wired_result->stats.states_expanded,
              plain_result->stats.states_expanded);
    EXPECT_EQ(wired_eval.evaluations(), plain_eval.evaluations());
    EXPECT_EQ(wired_result->stats.stop_reason, plain_result->stats.stop_reason);
  }
}

// ------------------------------------------------------------- ProgressSink

TEST(ProgressSink, WaitVersionAboveWakesOnPublish) {
  auto queries = SmallLog();
  DiffTree tree = *BuildInitialTree(queries);
  ProgressSink sink;
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sink.Publish(tree, 1.0, 1, 20);
  });
  const uint64_t v = sink.WaitVersionAbove(0, 5000);
  publisher.join();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(sink.Latest().cost, 1.0);
}

TEST(ProgressSink, WaitTimesOutWithoutPublish) {
  ProgressSink sink;
  EXPECT_EQ(sink.WaitVersionAbove(0, 10), 0u);
  EXPECT_EQ(sink.WaitVersionAbove(0, 0), 0u);  // wait_ms <= 0: immediate
}

TEST(ProgressSink, CloseWakesWaitersAndDropsLatePublishes) {
  auto queries = SmallLog();
  DiffTree tree = *BuildInitialTree(queries);
  ProgressSink sink;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sink.Close();
  });
  EXPECT_EQ(sink.WaitVersionAbove(0, 5000), 0u);
  closer.join();
  EXPECT_TRUE(sink.closed());
  sink.Publish(tree, 1.0, 1, 1);  // late straggler: ignored
  EXPECT_EQ(sink.version(), 0u);
}

TEST(ProgressSink, HistoryIsBoundedButVersionsKeepIncreasing) {
  auto queries = SmallLog();
  DiffTree tree = *BuildInitialTree(queries);
  ProgressSink sink;
  const size_t total = ProgressSink::kMaxHistory + 32;
  for (size_t i = 0; i < total; ++i) {
    sink.Publish(tree, static_cast<double>(total - i), i, static_cast<int64_t>(i));
  }
  EXPECT_EQ(sink.version(), total);
  auto events = sink.EventsAfter(0);
  EXPECT_EQ(events.size(), ProgressSink::kMaxHistory);
  // Oldest events fell out; what remains is the most recent window with
  // strictly increasing versions ending at the latest.
  EXPECT_EQ(events.front().version, total - ProgressSink::kMaxHistory + 1);
  EXPECT_EQ(events.back().version, total);
  EXPECT_TRUE(sink.EventsAfter(total).empty());
}

// ------------------------------------------------------- TimeManager units

TEST(TimeManager, SearchSliceReservesFinalPhaseHeadroom) {
  TimeControlOptions tc;
  EXPECT_EQ(tc.SearchSliceMs(), 0) << "no deadline: no slice";
  tc.deadline_ms = 100;
  tc.final_phase_fraction = 0.15;
  EXPECT_EQ(tc.SearchSliceMs(), 85);
  tc.final_phase_fraction = 0.0;
  EXPECT_EQ(tc.SearchSliceMs(), 100);
  tc.deadline_ms = 1;
  tc.final_phase_fraction = 0.9;
  EXPECT_GE(tc.SearchSliceMs(), 1) << "slice never rounds down to zero";
}

TEST(TimeManager, EffectiveBudgetIsIdentityWithTimeControlOff) {
  TimeControlOptions off;
  EXPECT_EQ(EffectiveSearchBudgetMs(0, off), 0);
  EXPECT_EQ(EffectiveSearchBudgetMs(250, off), 250);

  TimeControlOptions tc;
  tc.deadline_ms = 100;  // slice 85 with the default 0.15 headroom
  EXPECT_EQ(EffectiveSearchBudgetMs(0, tc), 85) << "deadline alone binds";
  EXPECT_EQ(EffectiveSearchBudgetMs(40, tc), 40) << "tighter budget wins";
  EXPECT_EQ(EffectiveSearchBudgetMs(500, tc), 85) << "tighter deadline wins";
}

TEST(TimeManager, DeadlineLatchesAtSliceNotAtFullDeadline) {
  TimeControlOptions tc;
  tc.deadline_ms = 100;
  tc.final_phase_fraction = 0.15;  // slice = 85
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);
  EXPECT_EQ(tm.Update(16, 84, 10.0), StopReason::kNone);
  EXPECT_FALSE(stop.stop_requested());
  EXPECT_EQ(tm.Update(16, 85, 10.0), StopReason::kDeadline);
  EXPECT_TRUE(stop.stop_requested());
  EXPECT_EQ(stop.reason(), StopReason::kDeadline);
  // Latched: later updates cannot change the reason.
  EXPECT_EQ(tm.Update(16, 300, 0.001), StopReason::kDeadline);
}

TEST(TimeManager, TargetCostStops) {
  TimeControlOptions tc;
  tc.target_cost = 5.0;
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);
  EXPECT_EQ(tm.Update(8, 1, 9.0), StopReason::kNone);
  EXPECT_EQ(tm.Update(8, 2, 5.0), StopReason::kTargetCost);
  EXPECT_TRUE(stop.stop_requested());
}

TEST(TimeManager, PlateauFiresIffNoImprovementWindow) {
  TimeControlOptions tc;
  tc.plateau_fraction = 0.5;
  tc.plateau_min_ms = 50;
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);
  // Steady improvement: never fires, no matter how long.
  double cost = 100.0;
  for (int64_t ms = 10; ms <= 400; ms += 10) {
    cost -= 1.0;
    ASSERT_EQ(tm.Update(16, ms, cost), StopReason::kNone) << "at " << ms;
  }
  // Improvement stops at 400ms. Window = max(50, 0.5 * elapsed). At 500ms
  // the stall is 100ms < 250; at 810ms the stall is 410 >= 405 — fires.
  EXPECT_EQ(tm.Update(16, 500, cost), StopReason::kNone);
  EXPECT_EQ(tm.Update(16, 790, cost), StopReason::kNone);
  EXPECT_EQ(tm.Update(16, 810, cost), StopReason::kPlateau);
}

TEST(TimeManager, PlateauMinWindowBlocksInstantStops) {
  TimeControlOptions tc;
  tc.plateau_fraction = 0.9;
  tc.plateau_min_ms = 50;
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);
  // 10ms in with no improvement yet: 10 < max(50, 9) — must not fire.
  EXPECT_EQ(tm.Update(16, 10, 100.0), StopReason::kNone);
}

TEST(TimeManager, IterationBudgetMonotoneNonIncreasing) {
  TimeControlOptions tc;
  tc.deadline_ms = 200;  // slice 170
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);
  tm.Update(100, 50, 10.0);  // observed rate: 2 iterations/ms
  size_t prev = std::numeric_limits<size_t>::max();
  for (int64_t ms = 50; ms <= 200; ms += 10) {
    const size_t budget = tm.IterationBudget(ms);
    EXPECT_LE(budget, prev) << "budget must not grow as time passes (ms=" << ms
                            << ")";
    prev = budget;
  }
  EXPECT_EQ(tm.IterationBudget(170), 0u) << "slice spent: zero budget";

  TimeControlOptions off;
  StopHandle stop2;
  TimeManager unlimited(off, 0, &stop2);
  EXPECT_EQ(unlimited.IterationBudget(1000), std::numeric_limits<size_t>::max());
}

/// Deadline overshoot is bounded in *iterations*, not wall-clock: a hot loop
/// that consults the manager every check_interval iterations runs at most
/// check_interval further iterations past the crossing point. Simulated
/// loop with injected elapsed time — no sleeps, no timing flake.
TEST(TimeManager, DeadlineOvershootBoundedInIterations) {
  TimeControlOptions tc;
  tc.deadline_ms = 100;
  tc.final_phase_fraction = 0.0;  // slice = 100
  tc.check_interval = 16;
  StopHandle stop;
  TimeManager tm(tc, 0, &stop);

  // 1 iteration == 1 ms; the deadline crosses at iteration 100.
  const size_t crossing = 100;
  size_t iterations = 0;
  uint32_t since_check = 0;
  while (iterations < 10000) {
    if (stop.stop_requested()) break;
    ++iterations;
    if (++since_check >= tc.check_interval) {
      tm.Update(since_check, static_cast<int64_t>(iterations), 42.0);
      since_check = 0;
    }
  }
  EXPECT_GE(iterations, crossing);
  EXPECT_LE(iterations, crossing + tc.check_interval)
      << "overshoot must be bounded by one check interval";
  EXPECT_EQ(tm.reason(), StopReason::kDeadline);
}

TEST(TimeManager, StopHandleFirstReasonWins) {
  StopHandle stop;
  stop.RequestStop(StopReason::kCancelled);
  stop.RequestStop(StopReason::kDeadline);
  EXPECT_TRUE(stop.stop_requested());
  EXPECT_EQ(stop.reason(), StopReason::kCancelled);
}

TEST(TimeManager, ResolveStopReasonPrecedence) {
  TimeControlOptions off;
  // Latched handle wins over everything.
  StopHandle cancelled;
  cancelled.RequestStop(StopReason::kCancelled);
  EXPECT_EQ(ResolveStopReason(&cancelled, true, 100, off, 50, 50),
            StopReason::kCancelled);
  // Expired deadline with no time control: the plain budget.
  EXPECT_EQ(ResolveStopReason(nullptr, true, 100, off, 10, 50),
            StopReason::kBudget);
  // Expired deadline where the deadline slice was the binding bound.
  TimeControlOptions tc;
  tc.deadline_ms = 50;
  EXPECT_EQ(ResolveStopReason(nullptr, true, 0, tc, 10, 50),
            StopReason::kDeadline);
  // Iteration cap.
  EXPECT_EQ(ResolveStopReason(nullptr, false, 0, off, 50, 50),
            StopReason::kIterations);
  // Nothing bound: the loop ran out of work.
  EXPECT_EQ(ResolveStopReason(nullptr, false, 0, off, 10, 50),
            StopReason::kExhausted);
}

/// Property fuzz: for any random (deadline, target_cost, plateau) config, a
/// simulated search loop always terminates with a definite stop reason and
/// never exceeds the hard iteration cap.
TEST(TimeManager, PropertyFuzzAlwaysTerminatesWithReason) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<int64_t> deadline_dist(0, 200);
  std::uniform_real_distribution<double> target_dist(0.0, 2.0);
  std::uniform_real_distribution<double> plateau_dist(0.0, 1.0);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(trial);
    TimeControlOptions tc;
    if (coin(rng)) tc.deadline_ms = deadline_dist(rng);
    if (coin(rng)) tc.target_cost = target_dist(rng);
    if (coin(rng)) tc.plateau_fraction = plateau_dist(rng);
    tc.plateau_min_ms = 10;
    tc.check_interval = 1 + static_cast<uint32_t>(rng() % 32);

    const size_t hard_cap = 64 + rng() % 512;
    StopHandle stop;
    TimeManager tm(tc, hard_cap, &stop);

    // Cost decays toward zero with random plateaus; 1 iteration == 1 ms.
    double cost = 10.0;
    size_t iterations = 0;
    uint32_t since_check = 0;
    bool deadline_expired = false;
    const int64_t effective = EffectiveSearchBudgetMs(0, tc);
    while (iterations < hard_cap) {
      if (stop.stop_requested()) break;
      ++iterations;
      if (coin(rng)) cost *= 0.95;  // improvement ~half the time
      const auto elapsed = static_cast<int64_t>(iterations);
      if (effective > 0 && elapsed >= effective) {
        deadline_expired = true;
        break;
      }
      if (++since_check >= tc.check_interval) {
        tm.Update(since_check, elapsed, cost);
        since_check = 0;
      }
    }
    EXPECT_LE(iterations, hard_cap);
    const StopReason reason = ResolveStopReason(
        &stop, deadline_expired, 0, tc, iterations, hard_cap);
    EXPECT_NE(reason, StopReason::kNone)
        << "every terminated loop must report why it stopped";
    EXPECT_NE(reason, StopReason::kExhausted)
        << "nothing was exhausted in this simulation";
    EXPECT_FALSE(StopReasonName(reason).empty());
  }
}

// ------------------------------------------------- service-level streaming

JobSpec StreamingJob(uint64_t seed, size_t max_iterations,
                     int64_t time_budget_ms) {
  JobSpec spec;
  spec.sqls = {
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
      "select a from t where y between 0 and 4",
  };
  spec.options.screen = {80, 24};
  spec.options.search.time_budget_ms = time_budget_ms;
  spec.options.search.max_iterations = max_iterations;
  spec.options.search.seed = seed;
  return spec;
}

TEST(StreamingService, DeadlineJobReturnsValidInterfaceAtDeadline) {
  auto bundle = LoadWorkload("flights");
  ASSERT_TRUE(bundle.ok());
  JobSpec spec;
  spec.sqls.assign(bundle->log.begin(),
                   bundle->log.begin() + std::min<size_t>(6, bundle->log.size()));
  spec.options.screen = {80, 24};
  spec.options.search.time_budget_ms = 0;
  spec.options.search.max_iterations = 0;  // the deadline is the only bound
  spec.options.search.seed = 7;
  spec.options.search.time_control.deadline_ms = 50;

  GenerationService::Options opts;
  opts.num_threads = 1;
  GenerationService service(opts);
  auto id = service.SubmitJob(spec);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kDone);
  ASSERT_NE(info->result, nullptr);
  EXPECT_TRUE(std::isfinite(info->result->cost.total()));
  // The search phase stops at the deadline slice (or exhausts the space
  // first on a small log); it must not run long past it.
  EXPECT_TRUE(info->result->stats.stop_reason == StopReason::kDeadline ||
              info->result->stats.stop_reason == StopReason::kExhausted)
      << StopReasonName(info->result->stats.stop_reason);
  EXPECT_LT(info->run_ms, 5000) << "50ms deadline must not run for seconds";
}

TEST(StreamingService, ProgressVersionsStrictlyIncreaseToTerminal) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  GenerationService service(opts);
  auto id = service.SubmitJob(StreamingJob(3, 300, 0));
  ASSERT_TRUE(id.ok());

  uint64_t last_seen = 0;
  double last_cost = std::numeric_limits<double>::infinity();
  int frames = 0;
  while (true) {
    auto p = service.GetJobProgress(*id, last_seen, 2000);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    if (p->version > last_seen) {
      EXPECT_GT(p->version, last_seen) << "versions strictly increase";
      EXPECT_LT(p->best_cost, last_cost) << "best cost strictly improves";
      ASSERT_NE(p->best_tree, nullptr);
      last_seen = p->version;
      last_cost = p->best_cost;
      ++frames;
    }
    if (p->terminal) break;
  }
  EXPECT_GE(frames, 1) << "at least the first best-so-far must be published";

  // Terminal frame agrees with the job result.
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, JobState::kDone);
  ASSERT_NE(info->result, nullptr);
  EXPECT_EQ(info->result->cost.total(), last_cost)
      << "final published cost must equal the finished result's";
}

TEST(StreamingService, ProgressForUnknownJobIsNotFound) {
  GenerationService service(GenerationService::Options{});
  auto p = service.GetJobProgress(999, 0, 0);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(StreamingService, CancelRunningJobYieldsPartialResult) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  GenerationService service(opts);
  // Effectively unbounded iterations; the 10s budget is only a backstop so
  // a broken cancel path fails the test instead of hanging it.
  auto id = service.SubmitJob(StreamingJob(5, 100000000, 10000));
  ASSERT_TRUE(id.ok());

  // Wait until the job is demonstrably mid-run: at least one best-so-far
  // has been published.
  auto p = service.GetJobProgress(*id, 0, 5000);
  ASSERT_TRUE(p.ok());
  ASSERT_GE(p->version, 1u) << "job never started improving";

  auto cancel = service.CancelJob(*id);
  ASSERT_TRUE(cancel.ok());
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kCancelled);
  EXPECT_EQ(info->error.code(), StatusCode::kCancelled);
  // Best-so-far partial must ride along.
  ASSERT_NE(info->result, nullptr);
  EXPECT_TRUE(std::isfinite(info->result->cost.total()));
  EXPECT_EQ(info->result->stats.stop_reason, StopReason::kCancelled);

  // The progress stream is closed with a terminal frame.
  auto final_p = service.GetJobProgress(*id, 0, 0);
  ASSERT_TRUE(final_p.ok());
  EXPECT_TRUE(final_p->terminal);
  EXPECT_EQ(final_p->state, JobState::kCancelled);
}

TEST(StreamingService, CancelledJobSkipsResultCache) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  GenerationService service(opts);
  JobSpec spec = StreamingJob(6, 100000000, 10000);
  auto id = service.SubmitJob(spec);
  ASSERT_TRUE(id.ok());
  auto p = service.GetJobProgress(*id, 0, 5000);
  ASSERT_TRUE(p.ok());
  ASSERT_GE(p->version, 1u);
  ASSERT_TRUE(service.CancelJob(*id).ok());
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->state, JobState::kCancelled);

  // Resubmitting the identical spec must run fresh, not replay the
  // cancelled partial from the cache.
  JobSpec again = StreamingJob(6, 20, 0);
  auto id2 = service.SubmitJob(again);
  ASSERT_TRUE(id2.ok());
  auto info2 = service.WaitJob(*id2);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->state, JobState::kDone);
  EXPECT_FALSE(info2->cache_hit);
}

/// Concurrency smoke for TSan: progress pollers, a canceller, and the worker
/// all race on one job's sink/stop/record.
TEST(StreamingService, ConcurrentCancelAndProgressPolling) {
  GenerationService::Options opts;
  opts.num_threads = 2;
  GenerationService service(opts);
  auto id = service.SubmitJob(StreamingJob(9, 100000000, 10000));
  ASSERT_TRUE(id.ok());

  std::atomic<bool> done{false};
  std::vector<std::thread> pollers;
  for (int t = 0; t < 3; ++t) {
    pollers.emplace_back([&, t] {
      uint64_t last_seen = 0;
      double last_cost = std::numeric_limits<double>::infinity();
      while (!done.load(std::memory_order_relaxed)) {
        auto p = service.GetJobProgress(*id, last_seen, 20);
        if (!p.ok()) break;
        if (p->version > last_seen) {
          // Each poller independently observes a strictly improving stream.
          EXPECT_LT(p->best_cost, last_cost) << "poller " << t;
          last_seen = p->version;
          last_cost = p->best_cost;
        }
        if (p->terminal) break;
      }
    });
  }
  std::thread canceller([&] {
    auto p = service.GetJobProgress(*id, 0, 5000);
    ASSERT_TRUE(p.ok());
    service.CancelJob(*id);
  });
  canceller.join();
  auto info = service.WaitJob(*id);
  done.store(true, std::memory_order_relaxed);
  for (auto& th : pollers) th.join();
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->terminal());
}

}  // namespace
}  // namespace ifgen
