#include <gtest/gtest.h>

#include "engine/csv.h"
#include "engine/datagen.h"
#include "engine/executor.h"
#include "workload/flights.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

Database TinyDb() {
  TableSchema schema{"t",
                     {{"a", ColumnType::kInt64},
                      {"b", ColumnType::kDouble},
                      {"s", ColumnType::kString}}};
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.5), Value(std::string("x"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(2.5), Value(std::string("y"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(3.5), Value(std::string("x"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value(), Value(std::string("z"))}).ok());
  Database db;
  db.AddTable(std::move(t));
  return db;
}

TEST(Value, CompareNumeric) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.0)), 0);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
}

TEST(Value, NullsOrderFirst) {
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
  EXPECT_EQ(Value(std::string("ab")).ToString(), "ab");
}

TEST(Table, RejectsBadArityAndTypes) {
  TableSchema schema{"t", {{"a", ColumnType::kInt64}}};
  Table t(schema);
  EXPECT_FALSE(t.AppendRow({}).ok());
  EXPECT_FALSE(t.AppendRow({Value(std::string("not a number"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value()}).ok());  // NULL is always allowed
}

TEST(Table, Gather) {
  Database db = TinyDb();
  const Table* t = *db.GetTable("t");
  Table g = t->Gather({2, 0});
  ASSERT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.At(0, 0).AsInt(), 3);
  EXPECT_EQ(g.At(1, 0).AsInt(), 1);
}

TEST(Executor, FilterAndProject) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select a from t where b > 2.0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->At(0, 0).AsInt(), 2);
  EXPECT_EQ(r->At(1, 0).AsInt(), 3);
}

TEST(Executor, SelectStar) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select * from t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_columns(), 3u);
  EXPECT_EQ(r->num_rows(), 4u);
}

TEST(Executor, CountStar) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select count(*) from t where s = 'x'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->At(0, 0).AsInt(), 2);
}

TEST(Executor, AggregatesIgnoreNulls) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select count(b), sum(b), avg(b), min(b), max(b) from t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->At(0, 0).AsInt(), 3);        // count skips the NULL
  EXPECT_DOUBLE_EQ(r->At(0, 1).AsDouble(), 7.5);
  EXPECT_DOUBLE_EQ(r->At(0, 2).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(r->At(0, 3).AsDouble(), 1.5);
  EXPECT_DOUBLE_EQ(r->At(0, 4).AsDouble(), 3.5);
}

TEST(Executor, GroupBy) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select s, count(*) from t group by s order by s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->At(0, 0).AsString(), "x");
  EXPECT_EQ(r->At(0, 1).AsInt(), 2);
}

TEST(Executor, EmptyGroupProducesOneRow) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select count(*) from t where a > 100");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 1u);
  EXPECT_EQ(r->At(0, 0).AsInt(), 0);
}

TEST(Executor, OrderByDescAndLimit) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select a from t order by a desc limit 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->At(0, 0).AsInt(), 4);
  EXPECT_EQ(r->At(1, 0).AsInt(), 3);
}

TEST(Executor, TopEquivalentToLimit) {
  Database db = TinyDb();
  Executor ex(&db);
  auto top = ex.ExecuteSql("select top 2 a from t");
  auto lim = ex.ExecuteSql("select a from t limit 2");
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(lim.ok());
  EXPECT_EQ(top->num_rows(), lim->num_rows());
}

TEST(Executor, Between) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select a from t where a between 2 and 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
}

TEST(Executor, InAndLike) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r1 = ex.ExecuteSql("select a from t where a in (1, 4)");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->num_rows(), 2u);
  auto r2 = ex.ExecuteSql("select a from t where s like '_'");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_rows(), 4u);
  auto r3 = ex.ExecuteSql("select a from t where s like 'x%'");
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->num_rows(), 2u);
}

TEST(Executor, Distinct) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select distinct s from t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
}

TEST(Executor, NotAndOr) {
  Database db = TinyDb();
  Executor ex(&db);
  auto r = ex.ExecuteSql("select a from t where not (a = 1) and (s = 'x' or s = 'y')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);  // rows 2 (y) and 3 (x)
}

TEST(Executor, ErrorsOnUnknownThings) {
  Database db = TinyDb();
  Executor ex(&db);
  EXPECT_FALSE(ex.ExecuteSql("select a from missing").ok());
  EXPECT_FALSE(ex.ExecuteSql("select nope from t").ok());
  EXPECT_FALSE(ex.ExecuteSql("select frob(a) from t").ok());
}

TEST(Csv, RoundTrip) {
  Database db = TinyDb();
  const Table* t = *db.GetTable("t");
  std::string csv = ToCsv(*t);
  auto back = ParseCsv(t->schema(), csv);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_rows(), t->num_rows());
  for (size_t r = 0; r < t->num_rows(); ++r) {
    for (size_t c = 0; c < t->num_columns(); ++c) {
      EXPECT_EQ(back->At(r, c).ToString(), t->At(r, c).ToString());
    }
  }
}

TEST(Csv, QuotedFields) {
  TableSchema schema{"q", {{"s", ColumnType::kString}}};
  auto t = ParseCsv(schema, "s\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->At(0, 0).AsString(), "a,b");
  EXPECT_EQ(t->At(1, 0).AsString(), "say \"hi\"");
}

TEST(Csv, Errors) {
  TableSchema schema{"q", {{"a", ColumnType::kInt64}}};
  EXPECT_FALSE(ParseCsv(schema, "").ok());
  EXPECT_FALSE(ParseCsv(schema, "wrong\n1\n").ok());
  EXPECT_FALSE(ParseCsv(schema, "a\nnotanumber\n").ok());
  EXPECT_FALSE(ParseCsv(schema, "a\n\"unterminated\n").ok());
}

TEST(Datagen, SdssShape) {
  Table t = MakeSdssTable("stars", 50, 1);
  EXPECT_EQ(t.num_rows(), 50u);
  EXPECT_EQ(t.schema().FindColumn("u"), 1);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    double u = t.At(r, 1).AsDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 30.0);
  }
}

TEST(Datagen, Deterministic) {
  Table a = MakeSdssTable("stars", 10, 42);
  Table b = MakeSdssTable("stars", 10, 42);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(a.At(r, 1).AsDouble(), b.At(r, 1).AsDouble());
  }
}

TEST(Workloads, SdssQueriesRunOnSdssData) {
  Database db = MakeSdssDatabase(100, 7);
  Executor ex(&db);
  for (const std::string& sql : SdssListing1()) {
    auto r = ex.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }
}

TEST(Workloads, FlightsQueriesRunOnFlightsData) {
  Database db = MakeFlightsDatabase(200, 7);
  Executor ex(&db);
  for (const std::string& sql : FlightsLog()) {
    auto r = ex.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  }
}

}  // namespace
}  // namespace ifgen
