// HTTP transport tests: the embedded server + REST/SSE adapter driven over
// real sockets — generate → job poll → session → events → feed, with the
// polled tables checked bit-identical against an InteractiveRuntime driven
// in-process, plus the transport error model (ErrorBody everywhere, 429
// backpressure) and concurrent sessions/pollers for TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <limits>
#include <thread>

#include "api/api_service.h"
#include "core/interface_generator.h"
#include "http/api_http.h"
#include "http/http_client.h"
#include "obs/metrics.h"
#include "util/json.h"
#include "util/rng.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

using api::ApiService;
using api::TableDto;

constexpr const char* kHost = "127.0.0.1";

/// Server-under-test: an ApiService + HTTP frontend on an ephemeral port.
class HttpTest : public ::testing::Test {
 protected:
  void StartServer(ApiService::Options opts) {
    auto svc = ApiService::Create(opts);
    ASSERT_TRUE(svc.ok()) << svc.status().ToString();
    service_ = std::move(*svc);
    frontend_ = std::make_unique<http::ApiHttpFrontend>(service_.get());
    http::ApiHttpFrontend::Options fopts;
    fopts.http.port = 0;
    fopts.http.num_threads = 6;  // events + feed pollers + SSE concurrently
    ASSERT_TRUE(frontend_->Start(fopts).ok());
    port_ = frontend_->port();
    ASSERT_GT(port_, 0);
  }

  void StartServer() {
    ApiService::Options opts;
    opts.workload_rows = 300;
    opts.service.num_threads = 2;
    StartServer(opts);
  }

  void TearDown() override {
    if (frontend_ != nullptr) frontend_->Stop();
  }

  /// GET/POST returning the parsed JSON body; asserts the HTTP status.
  JsonValue Call(const std::string& method, const std::string& target,
                 const std::string& body, int expect_status) {
    auto resp = http::Fetch(kHost, port_, method, target, body);
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    if (!resp.ok()) return JsonValue();
    EXPECT_EQ(resp->status, expect_status)
        << method << " " << target << " -> " << resp->body;
    auto parsed = ParseJson(resp->body);
    EXPECT_TRUE(parsed.ok()) << resp->body;
    return parsed.ok() ? *parsed : JsonValue();
  }

  /// Submits a deterministic flights job and waits for completion.
  std::string GenerateFlightsJob() {
    JsonValue body = JsonValue::Object();
    body.Set("workload", JsonValue::Str("flights"));
    JsonValue options = JsonValue::Object();
    options.Set("time_budget_ms", JsonValue::Int(0));
    options.Set("max_iterations", JsonValue::Int(12));
    options.Set("seed", JsonValue::Int(5));
    options.Set("screen_width", JsonValue::Int(90));
    options.Set("screen_height", JsonValue::Int(32));
    body.Set("options", std::move(options));
    JsonValue accepted = Call("POST", "/v1/generate", WriteJson(body), 202);
    const JsonValue* job_id = accepted.Find("job_id");
    EXPECT_NE(job_id, nullptr);
    if (job_id == nullptr) return "";
    JsonValue status =
        Call("GET", "/v1/jobs/" + job_id->AsString() + "?wait_ms=30000", "", 200);
    const JsonValue* state = status.Find("state");
    EXPECT_NE(state, nullptr);
    if (state != nullptr) EXPECT_EQ(state->AsString(), "done");
    return job_id->AsString();
  }

  std::unique_ptr<ApiService> service_;
  std::unique_ptr<http::ApiHttpFrontend> frontend_;
  int port_ = 0;
};

TEST_F(HttpTest, HealthzCatalogAndErrorModel) {
  StartServer();
  JsonValue health = Call("GET", "/v1/healthz", "", 200);
  ASSERT_NE(health.Find("status"), nullptr);
  EXPECT_EQ(health.Find("status")->AsString(), "ok");

  JsonValue catalog = Call("GET", "/v1/catalog", "", 200);
  ASSERT_NE(catalog.Find("workloads"), nullptr);
  EXPECT_EQ(catalog.Find("workloads")->size(), 3u);

  // Every error is a structured ErrorBody with a stable code.
  JsonValue missing = Call("GET", "/v1/nothing/here", "", 404);
  ASSERT_NE(missing.Find("code"), nullptr);
  EXPECT_EQ(missing.Find("code")->AsString(), "NotFound");

  JsonValue bad_json = Call("POST", "/v1/generate", "{not json", 400);
  ASSERT_NE(bad_json.Find("code"), nullptr);
  EXPECT_EQ(bad_json.Find("code")->AsString(), "ParseError");

  JsonValue unknown_field =
      Call("POST", "/v1/generate", R"({"workload":"flights","bogus":1})", 400);
  EXPECT_EQ(unknown_field.Find("code")->AsString(), "InvalidArgument");

  JsonValue out_of_range = Call(
      "POST", "/v1/generate",
      R"({"workload":"flights","options":{"time_budget_ms":0,"max_iterations":0}})",
      400);
  EXPECT_EQ(out_of_range.Find("code")->AsString(), "OutOfRange");

  JsonValue no_session = Call("GET", "/v1/sessions/s-999/feed", "", 404);
  EXPECT_EQ(no_session.Find("code")->AsString(), "NotFound");

  JsonValue no_job = Call("GET", "/v1/jobs/j-424242", "", 404);
  EXPECT_EQ(no_job.Find("code")->AsString(), "NotFound");

  auto stats = Call("GET", "/v1/stats", "", 200);
  ASSERT_NE(stats.Find("jobs"), nullptr);
}

TEST_F(HttpTest, CorsIsOffByDefault) {
  StartServer();
  auto resp = http::Get(kHost, port_, "/v1/healthz");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  // No opt-in -> no CORS headers: browsers must not let cross-origin pages
  // drive a localhost-bound server.
  EXPECT_EQ(resp->headers.count("access-control-allow-origin"), 0u);
}

TEST(HttpServer, CorsOptInEmitsHeaderAndAnswersPreflight) {
  http::HttpServer server;
  http::HttpServer::Options opts;
  opts.port = 0;
  opts.num_threads = 1;
  opts.cors_allow_origin = "*";
  ASSERT_TRUE(server
                  .Start(opts,
                         [](const http::HttpRequest&) {
                           http::HttpResponse r;
                           r.body = "{}";
                           return r;
                         })
                  .ok());
  auto resp = http::Get(kHost, server.port(), "/x");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  ASSERT_EQ(resp->headers.count("access-control-allow-origin"), 1u);
  EXPECT_EQ(resp->headers["access-control-allow-origin"], "*");

  auto preflight = http::Fetch(kHost, server.port(), "OPTIONS", "/x");
  ASSERT_TRUE(preflight.ok());
  EXPECT_EQ(preflight->status, 204);
  EXPECT_EQ(preflight->headers["access-control-allow-origin"], "*");
  EXPECT_EQ(preflight->headers.count("access-control-allow-methods"), 1u);
}

TEST(HttpServer, OversizedHeaderBlockAnswers431) {
  http::HttpServer server;
  http::HttpServer::Options opts;
  opts.port = 0;
  opts.num_threads = 1;
  opts.max_body_bytes = 16;  // header cap is max_body_bytes + 16 KiB
  ASSERT_TRUE(server
                  .Start(opts,
                         [](const http::HttpRequest&) {
                           http::HttpResponse r;
                           r.body = "{}";
                           return r;
                         })
                  .ok());
  // Much larger than the cap: most of it is still in flight when the server
  // rejects, so the 431 only reaches the client if the server drains before
  // closing (a bare close would RST the response away).
  std::string huge_target = "/" + std::string(200000, 'a');
  auto resp = http::Get(kHost, server.port(), huge_target);
  // The server must answer with a status, not silently reset the connection.
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 431);
}

TEST_F(HttpTest, BackpressureReturns429) {
  ApiService::Options opts;
  opts.workload_rows = 300;
  opts.service.num_threads = 1;
  opts.service.max_pending_jobs = 1;
  opts.service.cache_capacity = 0;
  StartServer(opts);

  std::string body =
      R"({"workload":"flights","options":{"time_budget_ms":0,"max_iterations":80,"seed":%SEED%}})";
  int saw_429 = 0;
  int saw_202 = 0;
  for (int i = 0; i < 6; ++i) {
    std::string b = body;
    b.replace(b.find("%SEED%"), 6, std::to_string(i));
    auto resp = http::Post(kHost, port_, "/v1/generate", b);
    ASSERT_TRUE(resp.ok());
    if (resp->status == 429) {
      ++saw_429;
      auto parsed = ParseJson(resp->body);
      ASSERT_TRUE(parsed.ok());
      EXPECT_EQ(parsed->Find("code")->AsString(), "ResourceExhausted");
    } else {
      EXPECT_EQ(resp->status, 202);
      ++saw_202;
    }
  }
  EXPECT_GT(saw_202, 0);
  EXPECT_GT(saw_429, 0) << "bounded queue never pushed back";
}

/// Walks the widgets JSON for (choice, options, kind) triples.
void CollectChoices(const JsonValue& node,
                    std::vector<std::tuple<int64_t, int64_t, std::string>>* out) {
  const JsonValue* choice = node.Find("choice");
  const JsonValue* widget = node.Find("widget");
  if (choice != nullptr && widget != nullptr) {
    const JsonValue* options = node.Find("options");
    out->emplace_back(choice->AsInt(),
                      options != nullptr ? static_cast<int64_t>(options->size()) : 0,
                      widget->AsString());
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->items()) CollectChoices(c, out);
  }
}

JsonValue EventBody(int64_t choice_id, const std::string& kind, int64_t arg) {
  JsonValue e = JsonValue::Object();
  if (kind == "Checkbox" || kind == "Toggle") {
    e.Set("kind", JsonValue::Str("set_opt"));
    e.Set("choice_id", JsonValue::Int(choice_id));
    e.Set("present", JsonValue::Bool(arg != 0));
  } else {
    e.Set("kind", JsonValue::Str("set_any"));
    e.Set("choice_id", JsonValue::Int(choice_id));
    e.Set("option_index", JsonValue::Int(arg));
  }
  return e;
}

TEST_F(HttpTest, EndToEndDifferentialAgainstInProcessRuntime) {
  // The acceptance path over real sockets: submit flights log -> interface
  // JSON -> open session -> widget events -> polled diff batches, with the
  // polled table bit-identical to an InteractiveRuntime driven in-process.
  StartServer();
  const std::string job_id = GenerateFlightsJob();
  ASSERT_FALSE(job_id.empty());

  // In-process arm (same deterministic generation over the same store).
  auto bundle = LoadWorkload("flights", 300);
  ASSERT_TRUE(bundle.ok());
  GeneratorOptions gen_opts;
  gen_opts.screen = {90, 32};
  gen_opts.search.time_budget_ms = 0;
  gen_opts.search.max_iterations = 12;
  gen_opts.search.seed = 5;
  auto iface = GenerateInterface(bundle->log, gen_opts);
  ASSERT_TRUE(iface.ok());
  auto backend = MakeBackendFor(*bundle, gen_opts.backend);
  ASSERT_TRUE(backend.ok());
  std::shared_ptr<ExecutionBackend> shared_backend(std::move(*backend));
  auto runtime =
      InteractiveRuntime::Create(*iface, gen_opts.constants, shared_backend);
  ASSERT_TRUE(runtime.ok());

  // Open the HTTP session.
  JsonValue open = JsonValue::Object();
  open.Set("job_id", JsonValue::Str(job_id));
  JsonValue session = Call("POST", "/v1/sessions", WriteJson(open), 200);
  ASSERT_NE(session.Find("session_id"), nullptr);
  const std::string sid = session.Find("session_id")->AsString();

  // Initial table matches bit-identically across the wire.
  auto initial = TableDto::FromJson(*session.Find("table"));
  ASSERT_TRUE(initial.ok());
  {
    auto in_proc = (*runtime)->CurrentResult();
    ASSERT_TRUE(in_proc.ok());
    EXPECT_TRUE(*initial == TableDto::FromTable(*in_proc));
  }

  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(*session.Find("widgets"), &choices);
  ASSERT_FALSE(choices.empty());

  size_t applied = 0;
  std::vector<std::vector<Value>> mirror = initial->rows;
  for (const auto& [choice_id, option_count, kind] : choices) {
    std::vector<int64_t> args;
    if (kind == "Checkbox" || kind == "Toggle") {
      args = {0, 1};
    } else if (option_count > 0) {
      for (int64_t i = 0; i < std::min<int64_t>(option_count, 2); ++i) {
        args.push_back(i);
      }
    }
    for (int64_t arg : args) {
      JsonValue body = EventBody(choice_id, kind, arg);
      auto resp = http::Post(kHost, port_, "/v1/sessions/" + sid + "/events",
                             WriteJson(body));
      ASSERT_TRUE(resp.ok());
      const bool opt = kind == "Checkbox" || kind == "Toggle";
      Result<InteractiveRuntime::StepReport> in_proc_step =
          opt ? (*runtime)->SetOptPresent(static_cast<int>(choice_id), arg != 0)
              : (*runtime)->SetAnyChoice(static_cast<int>(choice_id),
                                         static_cast<int>(arg));
      ASSERT_EQ(resp->status == 200, in_proc_step.ok())
          << "arms diverged on choice " << choice_id << ": " << resp->body;
      if (resp->status != 200) continue;
      ++applied;

      auto step = ParseJson(resp->body);
      ASSERT_TRUE(step.ok());
      // Transition classification survives the wire.
      const JsonValue* report = step->Find("report");
      ASSERT_NE(report, nullptr);
      EXPECT_EQ(report->Find("transition")->AsString(),
                TransitionClassName(in_proc_step->transition));

      // Feed batch applies onto the mirror...
      JsonValue feed = Call("GET", "/v1/sessions/" + sid + "/feed", "", 200);
      auto batch = api::ChangeBatchDto::FromJson(feed);
      ASSERT_TRUE(batch.ok()) << WriteJson(feed);
      for (const api::RowChangeDto& c : batch->changes) {
        if (c.kind == "add") {
          mirror.push_back(c.row);
        } else {
          const std::vector<Value>& victim = c.kind == "update" ? c.old_row : c.row;
          auto it = std::find(mirror.begin(), mirror.end(), victim);
          ASSERT_NE(it, mirror.end());
          mirror.erase(it);
          if (c.kind == "update") mirror.push_back(c.row);
        }
      }

      // ...and both the mirror and the in-process runtime agree with the
      // served table, bit-identically, after a JSON round trip.
      JsonValue table_json = Call("GET", "/v1/sessions/" + sid + "/table", "", 200);
      auto table = TableDto::FromJson(table_json);
      ASSERT_TRUE(table.ok());
      auto in_proc_table = (*runtime)->CurrentResult();
      ASSERT_TRUE(in_proc_table.ok());
      EXPECT_TRUE(*table == TableDto::FromTable(*in_proc_table))
          << "polled table diverged from in-process runtime";
      auto sorted = [](std::vector<std::vector<Value>> rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const std::vector<Value>& a, const std::vector<Value>& b) {
                    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
                      int c = a[i].Compare(b[i]);
                      if (c != 0) return c < 0;
                    }
                    return a.size() < b.size();
                  });
        return rows;
      };
      EXPECT_TRUE(sorted(mirror) == sorted(table->rows))
          << "feed mirror diverged from served table";
    }
  }
  EXPECT_GT(applied, 4u);

  // Clean close.
  auto closed = Call("DELETE", "/v1/sessions/" + sid, "", 200);
  EXPECT_NE(closed.Find("closed"), nullptr);
  Call("GET", "/v1/sessions/" + sid + "/table", "", 404);
}

TEST_F(HttpTest, LongPollWaitsForEvent) {
  StartServer();
  const std::string job_id = GenerateFlightsJob();
  JsonValue open = JsonValue::Object();
  open.Set("job_id", JsonValue::Str(job_id));
  JsonValue session = Call("POST", "/v1/sessions", WriteJson(open), 200);
  const std::string sid = session.Find("session_id")->AsString();
  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(*session.Find("widgets"), &choices);
  ASSERT_FALSE(choices.empty());

  // Fire an event shortly after the poll goes out.
  std::thread later([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    for (const auto& [choice_id, option_count, kind] : choices) {
      JsonValue body =
          EventBody(choice_id, kind, kind == "Checkbox" || kind == "Toggle" ? 0 : 0);
      auto resp = http::Post(kHost, port_, "/v1/sessions/" + sid + "/events",
                             WriteJson(body));
      if (resp.ok() && resp->status == 200) break;  // one successful step
    }
  });
  JsonValue batch =
      Call("GET", "/v1/sessions/" + sid + "/feed?timeout_ms=5000", "", 200);
  later.join();
  ASSERT_NE(batch.Find("to_version"), nullptr);
  EXPECT_GT(batch.Find("to_version")->AsInt(), batch.Find("from_version")->AsInt())
      << "long poll returned without observing the event";
}

TEST_F(HttpTest, SseStreamsEventBatches) {
  StartServer();
  const std::string job_id = GenerateFlightsJob();
  JsonValue open = JsonValue::Object();
  open.Set("job_id", JsonValue::Str(job_id));
  JsonValue session = Call("POST", "/v1/sessions", WriteJson(open), 200);
  const std::string sid = session.Find("session_id")->AsString();
  std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
  CollectChoices(*session.Find("widgets"), &choices);

  http::SseClient sse;
  ASSERT_TRUE(sse.Connect(kHost, port_, "/v1/sessions/" + sid + "/feed?sse=1").ok());

  size_t fired = 0;
  for (const auto& [choice_id, option_count, kind] : choices) {
    JsonValue body =
        EventBody(choice_id, kind, kind == "Checkbox" || kind == "Toggle" ? 0 : 0);
    auto resp =
        http::Post(kHost, port_, "/v1/sessions/" + sid + "/events", WriteJson(body));
    if (resp.ok() && resp->status == 200) {
      ++fired;
      if (fired == 2) break;
    }
  }
  ASSERT_GE(fired, 1u);

  // The stream delivers each step as one ChangeBatch event.
  auto event = sse.NextEvent(/*timeout_ms=*/5000);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  auto parsed = ParseJson(*event);
  ASSERT_TRUE(parsed.ok()) << *event;
  auto batch = api::ChangeBatchDto::FromJson(*parsed);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->to_version, batch->from_version);
  sse.Close();

  // Shutdown with an SSE stream open must not hang (covered by TearDown's
  // Stop(), but make it explicit with a live stream).
  http::SseClient hanging;
  ASSERT_TRUE(
      hanging.Connect(kHost, port_, "/v1/sessions/" + sid + "/feed?sse=1").ok());
  frontend_->Stop();  // must unblock the stream loop and join workers
}

/// Pins the feed-loop fix: an idle SSE stream parks on the runtime's
/// version condvar in `feed_wait_slice_ms` blocks instead of busy-polling.
/// Before the fix the loop slept 15 ms per iteration — an idle 2 s stream
/// burned ~130 wakeups; now it wakes ~2x/s just to notice a dead socket.
TEST_F(HttpTest, IdleSseFeedDoesNotBusyPoll) {
  StartServer();
  const std::string job_id = GenerateFlightsJob();
  JsonValue open = JsonValue::Object();
  open.Set("job_id", JsonValue::Str(job_id));
  JsonValue session = Call("POST", "/v1/sessions", WriteJson(open), 200);
  const std::string sid = session.Find("session_id")->AsString();

  const uint64_t before = obs::MetricsRegistry::Default().CounterTotal(
      "ifgen_http_feed_wakeups_total");
  http::SseClient sse;
  ASSERT_TRUE(
      sse.Connect(kHost, port_, "/v1/sessions/" + sid + "/feed?sse=1").ok());
  // No events fired: the stream is completely idle for the whole window.
  std::this_thread::sleep_for(std::chrono::seconds(2));
  sse.Close();
  const uint64_t after = obs::MetricsRegistry::Default().CounterTotal(
      "ifgen_http_feed_wakeups_total");

  const uint64_t wakeups = after - before;
  EXPECT_GE(wakeups, 1u) << "the stream loop never ran";
  EXPECT_LE(wakeups, 8u)
      << "idle feed stream woke " << wakeups
      << " times in 2 s — the loop is busy-polling again";
}

// ---------------------------------------------------- job progress + stream

/// Submits a flights job WITHOUT waiting for completion; `max_iterations`
/// sizes the run so streaming tests have a mid-run window to observe.
std::string SubmitFlightsJob(int port, int max_iterations, int seed) {
  JsonValue body = JsonValue::Object();
  body.Set("workload", JsonValue::Str("flights"));
  JsonValue options = JsonValue::Object();
  options.Set("time_budget_ms", JsonValue::Int(0));
  options.Set("max_iterations", JsonValue::Int(max_iterations));
  options.Set("seed", JsonValue::Int(seed));
  body.Set("options", std::move(options));
  auto resp = http::Post("127.0.0.1", port, "/v1/generate", WriteJson(body));
  EXPECT_TRUE(resp.ok());
  if (!resp.ok()) return "";
  EXPECT_EQ(resp->status, 202) << resp->body;
  auto parsed = ParseJson(resp->body);
  EXPECT_TRUE(parsed.ok());
  const JsonValue* job_id = parsed->Find("job_id");
  EXPECT_NE(job_id, nullptr);
  return job_id != nullptr ? job_id->AsString() : "";
}

TEST_F(HttpTest, JobProgressLongPollStrictlyIncreasingNoLostFinal) {
  StartServer();
  const std::string job_id = SubmitFlightsJob(port_, 40, 21);
  ASSERT_FALSE(job_id.empty());

  // Concurrent pollers: each must independently observe a strictly
  // increasing version sequence and must not miss the terminal frame.
  constexpr int kPollers = 3;
  std::vector<std::thread> threads;
  std::vector<std::vector<int64_t>> seen(kPollers);
  // Not vector<bool>: its bit-packing makes per-thread writes to distinct
  // indices race on the shared word.
  std::array<std::atomic<bool>, kPollers> got_final{};
  for (int t = 0; t < kPollers; ++t) {
    threads.emplace_back([&, t] {
      int64_t last_seen = 0;
      for (int polls = 0; polls < 600; ++polls) {
        auto resp = http::Get(kHost, port_,
                              "/v1/jobs/" + job_id + "/progress?version=" +
                                  std::to_string(last_seen) + "&wait_ms=2000");
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp->status, 200) << resp->body;
        auto parsed = ParseJson(resp->body);
        ASSERT_TRUE(parsed.ok());
        // Every frame must round-trip through the DTO codec.
        auto frame = api::JobProgressResponse::FromJson(*parsed);
        ASSERT_TRUE(frame.ok()) << resp->body;
        if (frame->version > last_seen) {
          seen[t].push_back(frame->version);
          last_seen = frame->version;
        }
        if (frame->final_frame) {
          got_final[t] = true;
          EXPECT_EQ(frame->state, "done");
          ASSERT_TRUE(frame->result.value.has_value())
              << "final frame must embed the result";
          EXPECT_EQ(frame->result.value->workload, "flights");
          break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kPollers; ++t) {
    SCOPED_TRACE(t);
    EXPECT_TRUE(got_final[t]) << "poller lost the terminal update";
    for (size_t i = 1; i < seen[t].size(); ++i) {
      EXPECT_GT(seen[t][i], seen[t][i - 1]) << "versions must strictly increase";
    }
  }
}

TEST_F(HttpTest, JobStreamSseToCompletion) {
  StartServer();
  const std::string job_id = SubmitFlightsJob(port_, 60, 23);
  ASSERT_FALSE(job_id.empty());

  http::SseClient sse;
  ASSERT_TRUE(sse.Connect(kHost, port_, "/v1/jobs/" + job_id + "/stream").ok());

  int64_t last_version = 0;
  double last_cost = std::numeric_limits<double>::infinity();
  int mid_run_frames = 0;
  bool final_seen = false;
  while (!final_seen) {
    auto event = sse.NextEvent(/*timeout_ms=*/30000);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    auto parsed = ParseJson(*event);
    ASSERT_TRUE(parsed.ok()) << *event;
    auto frame = api::JobProgressResponse::FromJson(*parsed);
    ASSERT_TRUE(frame.ok()) << *event;
    EXPECT_GE(frame->version, last_version) << "stream went backwards";
    if (frame->final_frame) {
      final_seen = true;
      EXPECT_EQ(frame->state, "done");
      ASSERT_TRUE(frame->result.value.has_value());
      // The final embedded result is the full interface: widgets present.
      EXPECT_TRUE(frame->result.value->widgets.is_object());
      EXPECT_GT(frame->result.value->widgets.size(), 0u);
    } else if (frame->version > last_version) {
      ++mid_run_frames;
      // Mid-run partials carry the best-so-far difftree and its cost, and
      // the stream is strictly improving.
      ASSERT_TRUE(frame->result.value.has_value());
      const JsonValue* total = frame->result.value->cost.Find("total");
      ASSERT_NE(total, nullptr);
      EXPECT_LT(total->AsDouble(), last_cost) << "partials must improve";
      last_cost = total->AsDouble();
      EXPECT_GT(frame->result.value->difftree.size(), 0u);
    }
    last_version = frame->version;
  }
  EXPECT_GE(mid_run_frames, 1)
      << "stream ended without a single mid-run improvement frame";
  sse.Close();
}

TEST_F(HttpTest, JobStreamClientDisconnectMidStreamLeavesServerHealthy) {
  StartServer();
  const std::string job_id = SubmitFlightsJob(port_, 60, 29);
  ASSERT_FALSE(job_id.empty());

  {
    http::SseClient sse;
    ASSERT_TRUE(sse.Connect(kHost, port_, "/v1/jobs/" + job_id + "/stream").ok());
    auto event = sse.NextEvent(/*timeout_ms=*/30000);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    sse.Close();  // hang up mid-stream
  }

  // The job must still run to completion and the server keep serving.
  JsonValue status =
      Call("GET", "/v1/jobs/" + job_id + "?wait_ms=30000", "", 200);
  ASSERT_NE(status.Find("state"), nullptr);
  EXPECT_EQ(status.Find("state")->AsString(), "done");
  JsonValue health = Call("GET", "/v1/healthz", "", 200);
  EXPECT_EQ(health.Find("status")->AsString(), "ok");
}

TEST_F(HttpTest, JobStreamForUnknownJobEmitsErrorEvent) {
  StartServer();
  http::SseClient sse;
  ASSERT_TRUE(sse.Connect(kHost, port_, "/v1/jobs/j-424242/stream").ok());
  auto event = sse.NextEvent(/*timeout_ms=*/5000);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  auto parsed = ParseJson(*event);
  ASSERT_TRUE(parsed.ok()) << *event;
  ASSERT_NE(parsed->Find("code"), nullptr);
  EXPECT_EQ(parsed->Find("code")->AsString(), "NotFound");
}

TEST_F(HttpTest, CancelRunningJobOverHttpReturnsPartialResult) {
  StartServer();
  // Big budget: the cancel must land mid-run.
  const std::string job_id = SubmitFlightsJob(port_, 5000, 31);
  ASSERT_FALSE(job_id.empty());

  // Wait until at least one improvement is published, then cancel.
  JsonValue first = Call(
      "GET", "/v1/jobs/" + job_id + "/progress?version=0&wait_ms=20000", "", 200);
  ASSERT_NE(first.Find("version"), nullptr);
  ASSERT_GE(first.Find("version")->AsInt(), 1);
  Call("POST", "/v1/jobs/" + job_id + "/cancel", "", 200);

  JsonValue status =
      Call("GET", "/v1/jobs/" + job_id + "?wait_ms=30000", "", 200);
  ASSERT_NE(status.Find("state"), nullptr);
  EXPECT_EQ(status.Find("state")->AsString(), "cancelled");
  // Both the Cancelled error and the best-so-far partial ride along.
  ASSERT_NE(status.Find("error"), nullptr);
  EXPECT_EQ(status.Find("error")->Find("code")->AsString(), "Cancelled");
  ASSERT_NE(status.Find("result"), nullptr)
      << "cancelled mid-run job must carry its best-so-far partial";
  auto result = api::GenerateResponse::FromJson(*status.Find("result"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.stop_reason, "cancelled");
}

/// The SseClient timeout is a *total* deadline: a server trickling heartbeat
/// frames forever (bytes arriving well within every per-recv window) must
/// still time the client out.
TEST(SseClientTimeout, TricklingStreamHonorsTotalDeadline) {
  http::HttpServer server;
  http::HttpServer::Options opts;
  opts.port = 0;
  opts.num_threads = 1;
  ASSERT_TRUE(server
                  .Start(opts,
                         [](const http::HttpRequest&) {
                           http::HttpResponse r;
                           r.content_type = "text/event-stream";
                           r.stream = [](http::HttpStream* stream) {
                             // Heartbeats only — never a data frame.
                             for (int i = 0; i < 200 && stream->alive(); ++i) {
                               if (!stream->Write(": heartbeat\n\n")) return;
                               std::this_thread::sleep_for(
                                   std::chrono::milliseconds(20));
                             }
                           };
                           return r;
                         })
                  .ok());
  http::SseClient sse;
  ASSERT_TRUE(sse.Connect("127.0.0.1", server.port(), "/trickle").ok());
  const auto start = std::chrono::steady_clock::now();
  auto event = sse.NextEvent(/*timeout_ms=*/300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_FALSE(event.ok()) << "heartbeat-only stream must not yield an event";
  EXPECT_EQ(event.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(elapsed, 3000)
      << "timeout must bound the whole call, not each recv";
  server.Stop();
}

TEST_F(HttpTest, ConcurrentSessionsAndPollersOverHttp) {
  StartServer();
  const std::string job_id = GenerateFlightsJob();

  constexpr int kSessions = 3;
  std::vector<std::string> sids;
  std::vector<std::vector<std::tuple<int64_t, int64_t, std::string>>> choices(
      kSessions);
  for (int i = 0; i < kSessions; ++i) {
    JsonValue open = JsonValue::Object();
    open.Set("job_id", JsonValue::Str(job_id));
    JsonValue session = Call("POST", "/v1/sessions", WriteJson(open), 200);
    ASSERT_NE(session.Find("session_id"), nullptr);
    sids.push_back(session.Find("session_id")->AsString());
    CollectChoices(*session.Find("widgets"), &choices[i]);
    ASSERT_FALSE(choices[i].empty());
  }

  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      Rng rng(7 + i);
      for (int step = 0; step < 15; ++step) {
        const auto& [choice_id, option_count, kind] =
            choices[i][rng.UniformIndex(choices[i].size())];
        int64_t arg = kind == "Checkbox" || kind == "Toggle"
                          ? rng.UniformInt(0, 1)
                          : (option_count > 0 ? rng.UniformInt(0, option_count - 1)
                                              : 0);
        (void)http::Post(kHost, port_, "/v1/sessions/" + sids[i] + "/events",
                         WriteJson(EventBody(choice_id, kind, arg)));
      }
    });
    threads.emplace_back([&, i] {
      for (int polls = 0; polls < 10; ++polls) {
        (void)http::Get(kHost, port_,
                        "/v1/sessions/" + sids[i] + "/feed?timeout_ms=50");
        (void)http::Get(kHost, port_, "/v1/stats");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& sid : sids) {
    Call("DELETE", "/v1/sessions/" + sid, "", 200);
  }
}

}  // namespace
}  // namespace ifgen
