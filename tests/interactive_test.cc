// Differential/property harness for the incremental interactive runtime:
// randomized widget-interaction walks assert that incrementally maintained
// results are bit-identical to full re-execution on every step, across all
// compiled-in backends and all three workloads, and that change-feed diffs
// applied to the old table reproduce the new one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/interface_generator.h"
#include "engine/delta_exec.h"
#include "runtime/interactive.h"
#include "runtime/service.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

GeneratedInterface MakeInterface(const std::vector<std::string>& sqls,
                                 size_t iterations = 25) {
  GeneratorOptions opt;
  opt.screen = {100, 40};
  opt.search.time_budget_ms = 0;  // iteration-capped: deterministic
  opt.search.max_iterations = iterations;
  opt.search.seed = 11;
  auto r = GenerateInterface(sqls, opt);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValueUnsafe();
}

/// Exact cell equality: same type class and same content. Stricter than
/// TablesEquivalent (no numeric tolerance, no canonical re-sort) — the
/// incremental paths promise *bit-identical* results on the same backend.
bool CellsIdentical(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_int() != b.is_int() || a.is_double() != b.is_double() ||
      a.is_string() != b.is_string()) {
    return false;
  }
  if (a.is_int()) return a.AsInt() == b.AsInt();
  if (a.is_double()) return a.AsDouble() == b.AsDouble();
  return a.AsString() == b.AsString();
}

::testing::AssertionResult TablesIdentical(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) {
    return ::testing::AssertionFailure()
           << "column count " << a.num_columns() << " vs " << b.num_columns();
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (a.schema().columns[c].name != b.schema().columns[c].name) {
      return ::testing::AssertionFailure()
             << "column " << c << " name " << a.schema().columns[c].name << " vs "
             << b.schema().columns[c].name;
    }
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!CellsIdentical(a.At(r, c), b.At(r, c))) {
        return ::testing::AssertionFailure()
               << "cell (" << r << ", " << c << "): " << a.At(r, c).ToString()
               << " vs " << b.At(r, c).ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// One pre-generated interaction; validity is state-dependent, success is
/// deterministic given the same starting state and sequence.
struct WalkAction {
  enum class Kind : uint8_t { kAny, kOpt, kMulti, kLoad } kind = Kind::kLoad;
  int choice_id = 0;
  int arg = 0;      // option index / present / count
  size_t qidx = 0;  // kLoad
};

std::vector<WalkAction> MakeWalk(const DiffTree& tree, size_t num_queries,
                                 Rng* rng, size_t length) {
  ChoiceIndex index(tree);
  std::vector<WalkAction> walk;
  walk.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    WalkAction a;
    // ~1 in 4 steps replays a log query (shape changes + min-change
    // transitions); the rest are direct widget manipulations.
    if (index.size() == 0 || rng->UniformIndex(4) == 0) {
      a.kind = WalkAction::Kind::kLoad;
      a.qidx = rng->UniformIndex(num_queries);
      walk.push_back(a);
      continue;
    }
    a.choice_id = static_cast<int>(rng->UniformIndex(index.size()));
    const DiffTree* node = index.node(static_cast<size_t>(a.choice_id));
    switch (node->kind) {
      case DKind::kAny:
        a.kind = WalkAction::Kind::kAny;
        a.arg = static_cast<int>(rng->UniformIndex(node->children.size()));
        break;
      case DKind::kOpt:
        a.kind = WalkAction::Kind::kOpt;
        a.arg = rng->Bernoulli(0.5) ? 1 : 0;
        break;
      case DKind::kMulti:
        a.kind = WalkAction::Kind::kMulti;
        a.arg = static_cast<int>(rng->UniformIndex(3));
        break;
      case DKind::kAll:
        a.kind = WalkAction::Kind::kLoad;
        a.qidx = rng->UniformIndex(num_queries);
        break;
    }
    walk.push_back(a);
  }
  return walk;
}

Result<InteractiveRuntime::StepReport> ApplyAction(InteractiveRuntime* rt,
                                                   const std::vector<Ast>& queries,
                                                   const WalkAction& a) {
  switch (a.kind) {
    case WalkAction::Kind::kAny:
      return rt->SetAnyChoice(a.choice_id, a.arg);
    case WalkAction::Kind::kOpt:
      return rt->SetOptPresent(a.choice_id, a.arg != 0);
    case WalkAction::Kind::kMulti:
      return rt->SetMultiCount(a.choice_id, static_cast<size_t>(a.arg));
    case WalkAction::Kind::kLoad:
      return rt->LoadQuery(queries[a.qidx]);
  }
  return Status::Invalid("bad action");
}

// ---------------------------------------------------------------------------
// Transition classification semantics (unit-level pins).

TEST(DeltaClassify, DirectionalPredicatesAndLimits) {
  Ast q = *ParseQuery("select a from t where a > 5 and s = 'x' limit 9");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  ASSERT_EQ(pq->params.size(), 3u);  // 5, 'x', 9
  ShapeDeltaInfo info = AnalyzeShape(*pq);
  ASSERT_EQ(info.roles.size(), 3u);
  EXPECT_EQ(info.roles[0], ShapeDeltaInfo::ParamRole::kLowerBound);
  EXPECT_EQ(info.roles[1], ShapeDeltaInfo::ParamRole::kOpaque);
  EXPECT_EQ(info.roles[2], ShapeDeltaInfo::ParamRole::kLimit);

  const std::vector<Value> base = pq->params;
  auto with = [&](size_t i, Value v) {
    std::vector<Value> p = base;
    p[i] = std::move(v);
    return p;
  };
  EXPECT_EQ(ClassifyParamDelta(info, base, base), TransitionClass::kNoop);
  EXPECT_EQ(ClassifyParamDelta(info, base, with(0, Value(int64_t{6}))),
            TransitionClass::kTighten);
  EXPECT_EQ(ClassifyParamDelta(info, base, with(0, Value(int64_t{4}))),
            TransitionClass::kLoosen);
  EXPECT_EQ(ClassifyParamDelta(info, base, with(2, Value(int64_t{3}))),
            TransitionClass::kLimitOnly);
  EXPECT_EQ(ClassifyParamDelta(info, base, with(1, Value(std::string("y")))),
            TransitionClass::kRebind);
  // Predicate + limit changed together still classifies by the predicate
  // direction: the delta executor re-resolves the row cap from the new
  // params, so a limit change rides along with a tighten for free.
  auto both = with(0, Value(int64_t{6}));
  both[2] = Value(int64_t{3});
  EXPECT_EQ(ClassifyParamDelta(info, base, both), TransitionClass::kTighten);
  // Cross-type flip on a directional param degrades to rebind.
  EXPECT_EQ(ClassifyParamDelta(info, base, with(0, Value(std::string("5")))),
            TransitionClass::kRebind);
  EXPECT_TRUE(info.has_limit_param());
  auto limit = ResolveLimitParams(info, base);
  ASSERT_TRUE(limit.ok());
  EXPECT_EQ(*limit, 9);
}

TEST(DeltaClassify, PolarityFlipsUnderNot) {
  Ast q = *ParseQuery("select a from t where not (a > 5)");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  ShapeDeltaInfo info = AnalyzeShape(*pq);
  ASSERT_EQ(info.roles.size(), 1u);
  // NOT(a > p): raising p admits more rows — p acts as an upper bound.
  EXPECT_EQ(info.roles[0], ShapeDeltaInfo::ParamRole::kUpperBound);
  EXPECT_EQ(ClassifyParamDelta(info, pq->params, {Value(int64_t{6})}),
            TransitionClass::kLoosen);
  EXPECT_EQ(ClassifyParamDelta(info, pq->params, {Value(int64_t{4})}),
            TransitionClass::kTighten);
}

TEST(DeltaClassify, BetweenBoundsAndMixedDirections) {
  Ast q = *ParseQuery("select a from t where a between 2 and 8");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  ShapeDeltaInfo info = AnalyzeShape(*pq);
  ASSERT_EQ(info.roles.size(), 2u);
  EXPECT_EQ(info.roles[0], ShapeDeltaInfo::ParamRole::kLowerBound);
  EXPECT_EQ(info.roles[1], ShapeDeltaInfo::ParamRole::kUpperBound);
  auto cls = [&](int64_t lo, int64_t hi) {
    return ClassifyParamDelta(info, pq->params, {Value(lo), Value(hi)});
  };
  EXPECT_EQ(cls(3, 8), TransitionClass::kTighten);  // narrow from below
  EXPECT_EQ(cls(3, 7), TransitionClass::kTighten);  // narrow both
  EXPECT_EQ(cls(1, 9), TransitionClass::kLoosen);   // widen both
  EXPECT_EQ(cls(3, 9), TransitionClass::kRebind);   // shift: mixed directions
}

TEST(DeltaClassify, InListIsOpaque) {
  Ast q = *ParseQuery("select a from t where a in (1, 4)");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  ShapeDeltaInfo info = AnalyzeShape(*pq);
  for (auto role : info.roles) {
    EXPECT_EQ(role, ShapeDeltaInfo::ParamRole::kOpaque);
  }
}

// ---------------------------------------------------------------------------
// The differential harness: incremental == full re-execution, bit-identical,
// on randomized interaction walks, for every workload × backend.

struct WalkStats {
  size_t steps = 0;
  size_t rejected = 0;
};

void DriveAndVerify(InteractiveRuntime* rt, ExecutionBackend* oracle,
                    const std::vector<Ast>& queries,
                    const std::vector<WalkAction>& walk, const char* context,
                    WalkStats* stats) {
  for (const WalkAction& a : walk) {
    auto report = ApplyAction(rt, queries, a);
    if (!report.ok()) {
      ++stats->rejected;  // inactive widget / inexpressible / exec error
      continue;
    }
    ++stats->steps;
    auto q = rt->session().CurrentQuery();
    ASSERT_TRUE(q.ok()) << context << ": " << q.status().ToString();
    auto full = oracle->Execute(*q);
    // The oracle executes the same query fully; the runtime succeeded, so
    // the oracle must too (same engine semantics).
    ASSERT_TRUE(full.ok()) << context << ": " << full.status().ToString();
    auto maintained = rt->CurrentResult();
    ASSERT_TRUE(maintained.ok()) << context;
    EXPECT_TRUE(TablesIdentical(*maintained, *full))
        << context << " step " << stats->steps << " transition "
        << TransitionClassName(report->transition) << " sql "
        << *rt->CurrentSql();
  }
}

TEST(InteractiveDifferential, RandomWalksBitIdenticalAcrossBackends) {
  const size_t kSteps = 200;
  struct Sized {
    const char* name;
    size_t rows;
  };
  const Sized workloads[] = {{"flights", 300}, {"sdss", 200}, {"synthetic", 200}};
  // Selection-delta executions summed per backend across all workloads (a
  // single workload's walk may legitimately serve every same-shape revisit
  // from the memo).
  std::map<BackendKind, size_t> delta_execs_by_kind;
  for (const Sized& sized : workloads) {
    auto w = LoadWorkload(sized.name, sized.rows);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    GeneratedInterface iface = MakeInterface(w->log);
    auto queries = ParseQueries(w->log);
    ASSERT_TRUE(queries.ok());
    for (BackendKind kind : AvailableBackends()) {
      std::string context =
          std::string(sized.name) + "/" + std::string(BackendKindName(kind));
      auto backend = CreateBackend(kind, &w->db);
      ASSERT_TRUE(backend.ok()) << context;
      std::shared_ptr<ExecutionBackend> shared(std::move(*backend));
      auto rt = InteractiveRuntime::Create(iface, GeneratorOptions().constants,
                                           shared);
      ASSERT_TRUE(rt.ok()) << context << ": " << rt.status().ToString();
      auto oracle = CreateBackend(kind, &w->db);  // independent full executor
      ASSERT_TRUE(oracle.ok());

      Rng rng(0xD1FF + static_cast<uint64_t>(kind) * 7919 + sized.rows);
      // Generate enough attempts that >= kSteps succeed (invalid widget ops
      // are rejected without mutating state).
      std::vector<WalkAction> walk =
          MakeWalk((*rt)->session().difftree(), queries->size(), &rng, kSteps * 4);
      WalkStats stats;
      DriveAndVerify(rt->get(), oracle->get(), *queries, walk, context.c_str(),
                     &stats);
      if (HasFatalFailure()) return;
      EXPECT_GE(stats.steps, kSteps) << context;
      // The walk must genuinely exercise the incremental machinery (memo
      // hits and noops at minimum; selection deltas on the columnar
      // backend, which is delta-capable).
      auto counters = (*rt)->counters();
      EXPECT_GT(counters.noops + counters.cache_hits + counters.delta_execs +
                    counters.retruncates,
                0u)
          << context;
      delta_execs_by_kind[kind] += counters.delta_execs + counters.retruncates;
      if (kind != BackendKind::kColumnar) {
        EXPECT_EQ(counters.delta_execs, 0u) << context;  // fallback contract
        EXPECT_EQ(counters.retruncates, 0u) << context;
      }
    }
  }
  // The columnar backend (the delta-capable one) must have exercised the
  // selection-delta / retruncation paths somewhere in the sweep.
  EXPECT_GT(delta_execs_by_kind[BackendKind::kColumnar], 0u);
}

TEST(InteractiveDifferential, DeltaOffIsIdenticalAndFullyExecutes) {
  auto w = LoadWorkload("flights", 250);
  ASSERT_TRUE(w.ok());
  GeneratedInterface iface = MakeInterface(w->log);
  auto queries = ParseQueries(w->log);
  ASSERT_TRUE(queries.ok());
  auto backend = CreateBackend(BackendKind::kColumnar, &w->db);
  ASSERT_TRUE(backend.ok());
  std::shared_ptr<ExecutionBackend> shared(std::move(*backend));

  InteractiveRuntime::Options on;
  InteractiveRuntime::Options off;
  off.enable_delta = false;
  auto rt_on =
      InteractiveRuntime::Create(iface, GeneratorOptions().constants, shared, on);
  auto rt_off =
      InteractiveRuntime::Create(iface, GeneratorOptions().constants, shared, off);
  ASSERT_TRUE(rt_on.ok() && rt_off.ok());

  Rng rng(424242);
  std::vector<WalkAction> walk =
      MakeWalk((*rt_on)->session().difftree(), queries->size(), &rng, 400);
  size_t agreed = 0;
  for (const WalkAction& a : walk) {
    auto r1 = ApplyAction(rt_on->get(), *queries, a);
    auto r2 = ApplyAction(rt_off->get(), *queries, a);
    ASSERT_EQ(r1.ok(), r2.ok()) << "delta on/off diverged on step validity";
    if (!r1.ok()) continue;
    auto t1 = (*rt_on)->CurrentResult();
    auto t2 = (*rt_off)->CurrentResult();
    ASSERT_TRUE(t1.ok() && t2.ok());
    ASSERT_TRUE(TablesIdentical(*t1, *t2))
        << "step transition " << TransitionClassName(r1->transition);
    // Both arms classify identically; only maintenance differs.
    EXPECT_EQ(r1->transition, r2->transition);
    ++agreed;
  }
  ASSERT_GT(agreed, 100u);
  auto on_counters = (*rt_on)->counters();
  auto off_counters = (*rt_off)->counters();
  EXPECT_EQ(off_counters.full_execs, off_counters.steps);
  EXPECT_LT(on_counters.full_execs, on_counters.steps);
  EXPECT_GT(on_counters.cache_hits + on_counters.noops + on_counters.delta_execs +
                on_counters.retruncates,
            0u);
}

// ---------------------------------------------------------------------------
// Change feed: applying a poll's diffs to the previously delivered table
// reproduces the current table (as a multiset).

// Deliberately independent of the runtime's internal cell encoding: the
// mirror is an *oracle* for the change-feed contract, so sharing the
// production fingerprint helper would let an encoding bug hide itself.
std::string RowKeyOf(const std::vector<Value>& row) {
  std::string k;
  for (const Value& v : row) {
    if (v.is_null()) {
      k += "n|";
    } else if (v.is_int()) {
      k += "i" + std::to_string(v.AsInt()) + "|";
    } else if (v.is_double()) {
      char buf[64];
      snprintf(buf, sizeof(buf), "d%.17g|", v.AsDouble());
      k += buf;
    } else {
      k += "s" + std::to_string(v.AsString().size()) + ":" + v.AsString() + "|";
    }
  }
  return k;
}

std::vector<Value> TableRow(const Table& t, size_t r) {
  std::vector<Value> row;
  for (size_t c = 0; c < t.num_columns(); ++c) row.push_back(t.At(r, c));
  return row;
}

/// A schema-free multiset mirror of a subscriber's view.
struct Mirror {
  std::vector<std::vector<Value>> rows;

  Status Apply(const InteractiveRuntime::ChangeBatch& batch) {
    auto remove_one = [this](const std::vector<Value>& victim) -> Status {
      std::string key = RowKeyOf(victim);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (RowKeyOf(rows[i]) == key) {
          rows.erase(rows.begin() + static_cast<long>(i));
          return Status::OK();
        }
      }
      return Status::Invalid("change feed removed a row the mirror lacks");
    };
    for (const auto& c : batch.changes) {
      using Kind = InteractiveRuntime::RowChange::Kind;
      switch (c.kind) {
        case Kind::kAdd:
          rows.push_back(c.row);
          break;
        case Kind::kRemove: {
          auto s = remove_one(c.row);
          if (!s.ok()) return s;
          break;
        }
        case Kind::kUpdate: {
          auto s = remove_one(c.old_row);
          if (!s.ok()) return s;
          rows.push_back(c.row);
          break;
        }
      }
    }
    return Status::OK();
  }

  ::testing::AssertionResult Matches(const Table& t) const {
    if (rows.size() != t.num_rows()) {
      return ::testing::AssertionFailure()
             << "mirror has " << rows.size() << " rows, table " << t.num_rows();
    }
    std::multiset<std::string> a;
    std::multiset<std::string> b;
    for (const auto& r : rows) a.insert(RowKeyOf(r));
    for (size_t r = 0; r < t.num_rows(); ++r) b.insert(RowKeyOf(TableRow(t, r)));
    if (a != b) {
      return ::testing::AssertionFailure() << "mirror multiset differs";
    }
    return ::testing::AssertionSuccess();
  }
};

TEST(ChangeFeed, DiffsApplyCleanlyAcrossRandomWalk) {
  auto w = LoadWorkload("sdss", 200);
  ASSERT_TRUE(w.ok());
  GeneratedInterface iface = MakeInterface(w->log);
  auto queries = ParseQueries(w->log);
  ASSERT_TRUE(queries.ok());
  auto backend = CreateBackend(BackendKind::kColumnar, &w->db);
  ASSERT_TRUE(backend.ok());
  auto rt = InteractiveRuntime::Create(iface, GeneratorOptions().constants,
                                       std::shared_ptr<ExecutionBackend>(
                                           std::move(*backend)));
  ASSERT_TRUE(rt.ok());

  auto sub = (*rt)->Subscribe();
  Mirror mirror;
  {
    auto current = (*rt)->CurrentResult();
    ASSERT_TRUE(current.ok());
    for (size_t r = 0; r < current->num_rows(); ++r) {
      mirror.rows.push_back(TableRow(*current, r));
    }
  }

  Rng rng(777);
  std::vector<WalkAction> walk =
      MakeWalk((*rt)->session().difftree(), queries->size(), &rng, 300);
  size_t applied = 0;
  uint64_t last_version = (*rt)->version();
  for (size_t i = 0; i < walk.size(); ++i) {
    auto r = ApplyAction(rt->get(), *queries, walk[i]);
    if (r.ok()) ++applied;
    if (i % 3 != 2) continue;
    auto batch = (*rt)->Poll(sub);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(batch->from_version, last_version);  // resumes where it left off
    EXPECT_LE(batch->from_version, batch->to_version);
    last_version = batch->to_version;
    ASSERT_TRUE(mirror.Apply(*batch).ok());
    auto current = (*rt)->CurrentResult();
    ASSERT_TRUE(current.ok());
    EXPECT_TRUE(mirror.Matches(*current)) << "after step " << i;
  }
  ASSERT_GT(applied, 50u);
  // Final drain: mirror converges exactly.
  auto batch = (*rt)->Poll(sub);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(mirror.Apply(*batch).ok());
  auto current = (*rt)->CurrentResult();
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(mirror.Matches(*current));
  EXPECT_TRUE((*rt)->Unsubscribe(sub).ok());
  EXPECT_FALSE((*rt)->Poll(sub).ok());
}

TEST(ChangeFeed, ConcurrentPollersConverge) {
  auto w = LoadWorkload("flights", 150);
  ASSERT_TRUE(w.ok());
  GeneratedInterface iface = MakeInterface(w->log, 15);
  auto queries = ParseQueries(w->log);
  ASSERT_TRUE(queries.ok());
  ASSERT_GE(queries->size(), 2u);
  auto backend = CreateBackend(BackendKind::kColumnar, &w->db);
  ASSERT_TRUE(backend.ok());
  auto rt = InteractiveRuntime::Create(iface, GeneratorOptions().constants,
                                       std::shared_ptr<ExecutionBackend>(
                                           std::move(*backend)));
  ASSERT_TRUE(rt.ok());
  InteractiveRuntime* runtime = rt->get();

  std::atomic<bool> done{false};
  std::atomic<size_t> poll_failures{0};
  auto poller = [&] {
    // The snapshot-returning Subscribe is atomic with the cursor position,
    // so the mirror's base table matches the first Poll's from_version even
    // while the writer thread is stepping.
    Table base;
    auto sub = runtime->Subscribe(&base);
    Mirror mirror;
    for (size_t r = 0; r < base.num_rows(); ++r) {
      mirror.rows.push_back(TableRow(base, r));
    }
    while (!done.load()) {
      auto batch = runtime->Poll(sub);
      if (!batch.ok() || !mirror.Apply(*batch).ok()) {
        poll_failures.fetch_add(1);
        return;
      }
      std::this_thread::yield();
    }
    auto batch = runtime->Poll(sub);
    if (!batch.ok() || !mirror.Apply(*batch).ok()) {
      poll_failures.fetch_add(1);
      return;
    }
    auto current = runtime->CurrentResult();
    if (!current.ok() || !mirror.Matches(*current)) poll_failures.fetch_add(1);
  };

  std::thread p1(poller);
  std::thread p2(poller);
  for (int round = 0; round < 40; ++round) {
    (void)runtime->LoadQuery((*queries)[static_cast<size_t>(round) %
                                        queries->size()]);
  }
  done.store(true);
  p1.join();
  p2.join();
  EXPECT_EQ(poll_failures.load(), 0u);
}

// ---------------------------------------------------------------------------
// Wiring and the session executor-cache fix.

TEST(InteractiveWiring, ServiceOpensSessionsOnSharedBackend) {
  auto w = LoadWorkload("flights", 150);
  ASSERT_TRUE(w.ok());
  GeneratedInterface iface = MakeInterface(w->log, 15);
  GenerationService service;
  auto s1 = service.OpenSession(iface, GeneratorOptions().constants, &w->db,
                                BackendKind::kColumnar);
  auto s2 = service.OpenSession(iface, GeneratorOptions().constants, &w->db,
                                BackendKind::kColumnar);
  ASSERT_TRUE(s1.ok() && s2.ok()) << s1.status().ToString();
  EXPECT_EQ(service.backends_created(), 1u);  // one columnar store, shared
  EXPECT_EQ(service.sessions_opened(), 2u);
  // Independent widget state over the shared backend.
  auto queries = ParseQueries(w->log);
  ASSERT_TRUE(queries.ok());
  auto r = (*s1)->LoadQuery((*queries)[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE((*s1)->version(), 2u);
  EXPECT_EQ((*s2)->version(), 1u);
}

TEST(SessionExecutorCache, RepeatedExecuteCurrentReusesBackend) {
  auto w = LoadWorkload("flights", 150);
  ASSERT_TRUE(w.ok());
  GeneratedInterface iface = MakeInterface(w->log, 15);
  auto session = InterfaceSession::Create(iface, GeneratorOptions().constants);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->backends_created(), 0u);
  for (int i = 0; i < 5; ++i) {
    auto t = session->ExecuteCurrent(w->db);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
  }
  // One cached reference backend; repeated executions rebind its plans.
  EXPECT_EQ(session->backends_created(), 1u);
}

}  // namespace
}  // namespace ifgen
