#include <gtest/gtest.h>

#include <cmath>

#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "search/mcts.h"
#include "search/parallel_mcts.h"
#include "sql/parser.h"

namespace ifgen {
namespace {

std::vector<Ast> SmallLog() {
  return *ParseQueries(std::vector<std::string>{
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
  });
}

SearchOptions FastOptions(size_t iterations) {
  SearchOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = iterations;
  o.seed = 17;
  return o;
}

EvalOptions SmallEvalOptions() {
  EvalOptions e;
  e.screen = {80, 24};
  return e;
}

/// The determinism contract: a parallel searcher configured for one thread
/// IS the serial searcher — same best tree, same cost, same stats, same RNG
/// consumption, bit for bit.
TEST(ParallelMcts, SingleThreadMatchesSerialBitForBit) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);

  // Fresh evaluator per run: a warm cache would change RNG consumption.
  StateEvaluator serial_eval(SmallEvalOptions(), queries);
  MctsSearcher serial(&rules, &serial_eval, FastOptions(25));
  auto serial_result = serial.Run(initial);
  ASSERT_TRUE(serial_result.ok());

  StateEvaluator parallel_eval(SmallEvalOptions(), queries);
  ParallelOptions popts;
  popts.num_threads = 1;
  ParallelMctsSearcher parallel(&rules, &parallel_eval, FastOptions(25), popts);
  auto parallel_result = parallel.Run(initial);
  ASSERT_TRUE(parallel_result.ok());

  EXPECT_EQ(parallel_result->best_cost, serial_result->best_cost);
  EXPECT_EQ(parallel_result->best_tree, serial_result->best_tree);
  EXPECT_EQ(parallel_result->stats.iterations, serial_result->stats.iterations);
  EXPECT_EQ(parallel_result->stats.states_expanded,
            serial_result->stats.states_expanded);
  EXPECT_EQ(parallel_result->stats.rollouts, serial_result->stats.rollouts);
  EXPECT_EQ(parallel_result->stats.rollout_steps, serial_result->stats.rollout_steps);
  EXPECT_EQ(parallel_eval.evaluations(), serial_eval.evaluations());
}

TEST(ParallelMcts, SerialSearcherIsItselfDeterministic) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval_a(SmallEvalOptions(), queries);
  MctsSearcher a(&rules, &eval_a, FastOptions(25));
  StateEvaluator eval_b(SmallEvalOptions(), queries);
  MctsSearcher b(&rules, &eval_b, FastOptions(25));
  auto ra = a.Run(initial);
  auto rb = b.Run(initial);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->best_cost, rb->best_cost);
  EXPECT_EQ(ra->best_tree, rb->best_tree);
}

TEST(ParallelMcts, RootParallelImprovesOverInitialState) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval(SmallEvalOptions(), queries);
  ParallelOptions popts;
  popts.num_threads = 3;
  popts.mode = ParallelMode::kRoot;
  ParallelMctsSearcher searcher(&rules, &eval, FastOptions(30), popts);
  auto r = searcher.Run(initial);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->best_cost, r->stats.initial_cost);
  EXPECT_EQ(r->stats.trees, 3u);
  // 30 iterations split over 3 trees.
  EXPECT_EQ(r->stats.iterations, 30u);

  // The merged root-action ranking is populated and sorted by
  // visit-weighted mean reward.
  ASSERT_FALSE(r->root_actions.empty());
  for (size_t i = 1; i < r->root_actions.size(); ++i) {
    EXPECT_GE(r->root_actions[i - 1].MeanReward(), r->root_actions[i].MeanReward());
  }
}

TEST(ParallelMcts, LeafParallelImprovesOverInitialState) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval(SmallEvalOptions(), queries);
  ParallelOptions popts;
  popts.num_threads = 2;
  popts.mode = ParallelMode::kLeaf;
  popts.leaf_rollouts = 2;
  ParallelMctsSearcher searcher(&rules, &eval, FastOptions(20), popts);
  auto r = searcher.Run(initial);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->best_cost, r->stats.initial_cost);
  EXPECT_GT(r->stats.rollouts, 0u);
}

TEST(ParallelMcts, SharedTranspositionTableDeduplicatesAcrossTrees) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);
  StateEvaluator eval(SmallEvalOptions(), queries);
  ParallelOptions popts;
  popts.num_threads = 4;
  ParallelMctsSearcher searcher(&rules, &eval, FastOptions(40), popts);
  auto r = searcher.Run(initial);
  ASSERT_TRUE(r.ok());
  // Independent trees expanding the same small space must collide: the
  // shared table turns the other trees' states into transposition hits.
  EXPECT_GT(r->stats.transposition_hits, 0u);
}

TEST(ParallelMcts, MakeSearcherSelectsParallelImplementation) {
  auto queries = SmallLog();
  RuleEngine rules;
  StateEvaluator eval(SmallEvalOptions(), queries);
  ParallelOptions four_threads;
  four_threads.num_threads = 4;
  auto parallel =
      MakeSearcher(Algorithm::kMcts, &rules, &eval, FastOptions(5), four_threads);
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->name(), "mcts-parallel");

  auto serial = MakeSearcher(Algorithm::kMcts, &rules, &eval, FastOptions(5));
  ASSERT_NE(serial, nullptr);
  EXPECT_EQ(serial->name(), "mcts");

  // Non-MCTS algorithms never go parallel.
  auto greedy =
      MakeSearcher(Algorithm::kGreedy, &rules, &eval, FastOptions(5), four_threads);
  ASSERT_NE(greedy, nullptr);
  EXPECT_EQ(greedy->name(), "greedy");
}

TEST(ParallelMcts, GenerateInterfaceWiresNumThreadsThrough) {
  std::vector<std::string> sqls = {
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
  };
  GeneratorOptions options;
  options.screen = {80, 24};
  options.search.time_budget_ms = 0;
  options.search.max_iterations = 8;
  options.parallel.num_threads = 2;
  auto r = GenerateInterface(sqls, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(std::isfinite(r->cost.total()));
  EXPECT_EQ(r->stats.trees, 2u);
}

}  // namespace
}  // namespace ifgen
