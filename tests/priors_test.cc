#include <gtest/gtest.h>

#include <cmath>

#include "core/interface_generator.h"
#include "cost/evaluator.h"
#include "difftree/builder.h"
#include "search/mcts.h"
#include "search/parallel_mcts.h"
#include "search/priors.h"
#include "sql/parser.h"

namespace ifgen {
namespace {

std::vector<Ast> SmallLog() {
  return *ParseQueries(std::vector<std::string>{
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
  });
}

SearchOptions FastOptions(size_t iterations) {
  SearchOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = iterations;
  o.seed = 17;
  return o;
}

int RuleIndexByName(const RuleEngine& rules, std::string_view name) {
  for (size_t r = 0; r < rules.num_rules(); ++r) {
    if (rules.rule(r).name() == name) return static_cast<int>(r);
  }
  return -1;
}

TEST(ActionPriors, NormalizationSumsToOne) {
  auto queries = SmallLog();
  RuleEngine rules;
  ActionPriorModel model(rules, queries, PriorOptions{});
  DiffTree state = *BuildInitialTree(queries);

  // The initial state and every single-application successor: priors must
  // be a proper distribution at each of them.
  std::vector<DiffTree> states = {state};
  for (const RuleApplication& app : rules.EnumerateApplications(state)) {
    auto next = rules.Apply(state, app);
    if (next.ok()) states.push_back(*std::move(next));
    if (states.size() >= 20) break;
  }
  for (const DiffTree& s : states) {
    auto apps = rules.EnumerateApplications(s);
    if (apps.empty()) continue;
    std::vector<double> priors = model.Evaluate(s, apps);
    ASSERT_EQ(priors.size(), apps.size());
    double sum = 0.0;
    for (double p : priors) {
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ActionPriors, EmptyApplicationsYieldEmptyPriors) {
  auto queries = SmallLog();
  RuleEngine rules;
  ActionPriorModel model(rules, queries, PriorOptions{});
  EXPECT_TRUE(model.Evaluate(*BuildInitialTree(queries), {}).empty());
}

TEST(ActionPriors, ForwardFactoringRulesOutweighInverses) {
  auto queries = SmallLog();
  RuleEngine rules;
  ActionPriorModel model(rules, queries, PriorOptions{});
  double merge = model.RuleWeight(RuleIndexByName(rules, "Merge"));
  double lift = model.RuleWeight(RuleIndexByName(rules, "Lift"));
  double all2any = model.RuleWeight(RuleIndexByName(rules, "All2Any"));
  double noop = model.RuleWeight(RuleIndexByName(rules, "Noop"));
  EXPECT_GT(merge, all2any);
  EXPECT_GT(merge, noop);
  EXPECT_GT(lift, all2any);
}

TEST(ActionPriors, LabelFrequencyTracksTheLog) {
  auto queries = *ParseQueries(std::vector<std::string>{
      "select a from t", "select a from u", "select b from t"});
  RuleEngine rules;
  ActionPriorModel model(rules, queries, PriorOptions{});
  EXPECT_EQ(model.observations(), 3u);
  // "a" appears in 2 of 3 queries, "b" in 1; "t" is the most frequent label.
  EXPECT_DOUBLE_EQ(model.LabelFrequency(Symbol::kTable, "t"), 1.0);
  double fa = model.LabelFrequency(Symbol::kColExpr, "a");
  double fb = model.LabelFrequency(Symbol::kColExpr, "b");
  EXPECT_GT(fa, fb);
  EXPECT_GT(fb, 0.0);
  EXPECT_DOUBLE_EQ(model.LabelFrequency(Symbol::kColExpr, "never-seen"), 0.0);
}

TEST(ProgressiveWidening, ScheduleIsMonotoneAndStartsSmall) {
  PriorOptions opts;
  size_t prev = 0;
  for (size_t v = 0; v <= 2000; ++v) {
    size_t limit = ProgressiveWideningLimit(v, opts);
    EXPECT_GE(limit, 1u);
    EXPECT_GE(limit, prev) << "not monotone at visits=" << v;
    prev = limit;
  }
  // The schedule must actually widen: far more children are allowed after
  // many visits than at first selection, but never all at once.
  EXPECT_LT(ProgressiveWideningLimit(0, opts), 8u);
  EXPECT_GT(ProgressiveWideningLimit(1000, opts),
            4 * ProgressiveWideningLimit(0, opts));
}

TEST(PriorGuidedMcts, ImprovesAndIsDeterministic) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  auto run = [&]() {
    StateEvaluator eval(eopts, queries);
    SearchOptions o = FastOptions(30);
    o.priors.use_priors = true;
    o.priors.progressive_widening = true;
    MctsSearcher mcts(&rules, &eval, o);
    return *mcts.Run(*BuildInitialTree(queries));
  };
  SearchResult a = run();
  SearchResult b = run();
  EXPECT_LT(a.best_cost, a.stats.initial_cost);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_tree, b.best_tree);
  EXPECT_EQ(a.stats.states_expanded, b.stats.states_expanded);
}

TEST(PriorGuidedMcts, UniformAblationStillImproves) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  SearchOptions o = FastOptions(30);
  o.priors.use_priors = false;
  o.priors.progressive_widening = false;
  MctsSearcher mcts(&rules, &eval, o);
  auto r = mcts.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->best_cost, r->stats.initial_cost);
}

TEST(PriorGuidedMcts, SharedModelAcrossRootParallelTrees) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  SearchOptions o = FastOptions(24);
  o.priors.use_priors = true;
  ParallelOptions popts;
  popts.num_threads = 3;
  ParallelMctsSearcher searcher(&rules, &eval, o, popts);
  auto r = searcher.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->best_cost, r->stats.initial_cost);
  EXPECT_EQ(r->stats.trees, 3u);
}

/// The delta-cost contract: with the caches on, every sampled cost is
/// bit-identical to a full re-evaluation — across the initial state and
/// every state one rule application away (which collectively exercises
/// every rule type applicable to the log's difftree).
TEST(DeltaCost, BitIdenticalToFullReevaluationAcrossAllRules) {
  auto queries = SmallLog();
  RuleEngine rules;
  DiffTree initial = *BuildInitialTree(queries);

  std::vector<DiffTree> states = {initial};
  for (const RuleApplication& app : rules.EnumerateApplications(initial)) {
    auto next = rules.Apply(initial, app);
    if (next.ok()) states.push_back(*std::move(next));
  }
  // Two-step states: rewrites whose parent already populated the caches —
  // the case where delta evaluation actually reuses subtree terms.
  const DiffTree one_step = states.size() > 1 ? states[1] : initial;
  for (const RuleApplication& app : rules.EnumerateApplications(one_step)) {
    auto next = rules.Apply(one_step, app);
    if (next.ok()) states.push_back(*std::move(next));
    if (states.size() >= 120) break;
  }

  EvalOptions delta_on;
  delta_on.screen = {80, 24};
  delta_on.delta_eval = true;
  delta_on.cache_enabled = false;  // isolate the delta layer from the state memo
  EvalOptions delta_off = delta_on;
  delta_off.delta_eval = false;
  StateEvaluator with_delta(delta_on, queries);
  StateEvaluator full(delta_off, queries);

  for (size_t i = 0; i < states.size(); ++i) {
    Rng rng_a(1000 + i);
    Rng rng_b(1000 + i);
    double a = with_delta.SampleCost(states[i], &rng_a);
    double b = full.SampleCost(states[i], &rng_b);
    EXPECT_EQ(a, b) << "state " << i << " diverged";  // bit-identical
  }

  // The ablation's point: same costs, far fewer subtree recomputes.
  EXPECT_EQ(full.subtree_cache_hits(), 0u);
  EXPECT_GT(with_delta.subtree_cache_hits(), 0u);
  EXPECT_LT(with_delta.subtree_recomputes(), full.subtree_recomputes());
}

TEST(DeltaCost, FindBestMatchesAndReusesThePlan) {
  auto queries = SmallLog();
  DiffTree initial = *BuildInitialTree(queries);

  EvalOptions delta_on;
  delta_on.screen = {80, 24};
  EvalOptions delta_off = delta_on;
  delta_off.delta_eval = false;
  StateEvaluator with_delta(delta_on, queries);
  StateEvaluator full(delta_off, queries);

  Rng rng_s1(7);
  Rng rng_s2(7);
  EXPECT_EQ(with_delta.SampleCost(initial, &rng_s1),
            full.SampleCost(initial, &rng_s2));

  Rng rng_a(7);
  Rng rng_b(7);
  auto a = with_delta.FindBest(initial, &rng_a);
  auto b = full.FindBest(initial, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cost.total(), b->cost.total());
  // SampleCost computed the plan; FindBest on the same state reuses it.
  EXPECT_GT(with_delta.plan_cache_hits(), 0u);
  EXPECT_EQ(full.plan_cache_hits(), 0u);
}

}  // namespace
}  // namespace ifgen
