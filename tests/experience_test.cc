// Learn layer tests (docs/learning.md): the ExperienceStore's merge and
// persistence contracts (round-trip equality, best-cost-wins, corrupt-file
// cold starts), the prior fitter's weight fitting + JSON round-trip, the
// experience-off bit-identity guarantee, warm-start seed/record counters,
// save-while-searching under TSan — and the cluster arm: a worker persists
// its store on SIGTERM drain and a restarted worker on the same port
// warm-starts from it.
//
// Like cluster_test.cc, this binary doubles as the worker binary: main()
// checks IsWorkerInvocation before InitGoogleTest so the cluster arm can
// re-exec /proc/self/exe with --experience-dir.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/dto.h"
#include "api/rpc.h"
#include "cluster/frame.h"
#include "cluster/process.h"
#include "core/json_export.h"
#include "learn/experience.h"
#include "learn/prior_fit.h"
#include "runtime/service.h"
#include "util/json.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

using api::GenerateRequest;
using api::RpcEnvelope;
using api::RpcReply;
using learn::ExperienceRecord;
using learn::ExperienceStore;

// ---------------------------------------------------------------- helpers

/// Fresh per-test scratch directory (removed best-effort on destruction).
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ifgen_exp_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }
  ~TempDir() {
    if (path.empty()) return;
    // Tests only create flat files under the directory.
    std::string cmd = "rm -rf '" + path + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  std::string File(const std::string& name) const { return path + "/" + name; }
};

ExperienceRecord MakeRecord(uint64_t schema_fp, uint64_t canonical,
                            double cost, uint64_t visits = 1,
                            uint64_t best_action = 0, uint64_t epoch = 1) {
  ExperienceRecord r;
  r.schema_fp = schema_fp;
  r.canonical = canonical;
  r.best_action = best_action;
  r.best_cost = cost;
  r.visits = visits;
  r.epoch = epoch;
  return r;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ------------------------------------------------------- store semantics

TEST(ExperienceStore, RecordProbeAndBestCostWins) {
  ExperienceStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Probe(1, 10).has_value());
  EXPECT_EQ(store.misses(), 1u);

  store.Record(MakeRecord(1, 10, 5.0, /*visits=*/2, /*best_action=*/77));
  auto got = store.Probe(1, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(got->best_cost, 5.0);
  EXPECT_EQ(got->best_action, 77u);
  EXPECT_EQ(got->visits, 2u);

  // A worse cost does not displace the best; visits still accumulate.
  store.Record(MakeRecord(1, 10, 9.0, /*visits=*/3, /*best_action=*/88));
  got = store.Probe(1, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->best_cost, 5.0);
  EXPECT_EQ(got->best_action, 77u);
  EXPECT_EQ(got->visits, 5u);

  // A better cost replaces action + cost + epoch.
  store.Record(MakeRecord(1, 10, 3.5, /*visits=*/1, /*best_action=*/99,
                          /*epoch=*/4));
  got = store.Probe(1, 10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->best_cost, 3.5);
  EXPECT_EQ(got->best_action, 99u);
  EXPECT_EQ(got->visits, 6u);
  EXPECT_EQ(got->epoch, 4u);

  // Non-finite costs are dropped at the door.
  store.Record(
      MakeRecord(1, 11, std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(store.Probe(1, 11).has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST(ExperienceStore, SnapshotFiltersOrdersAndLimits) {
  ExperienceStore store;
  store.Record(MakeRecord(7, 100, 1.0, /*visits=*/2));
  store.Record(MakeRecord(7, 101, 1.0, /*visits=*/9));
  store.Record(MakeRecord(7, 102, 1.0, /*visits=*/9));
  store.Record(MakeRecord(8, 103, 1.0, /*visits=*/50));  // other fingerprint

  auto snap = store.Snapshot(7, 16);
  ASSERT_EQ(snap.size(), 3u);
  // Most-visited first; canonical ascending breaks the 101/102 tie.
  EXPECT_EQ(snap[0].canonical, 101u);
  EXPECT_EQ(snap[1].canonical, 102u);
  EXPECT_EQ(snap[2].canonical, 100u);

  auto limited = store.Snapshot(7, 1);
  ASSERT_EQ(limited.size(), 1u);
  EXPECT_EQ(limited[0].canonical, 101u);

  EXPECT_TRUE(store.Snapshot(9, 16).empty());
}

// ------------------------------------------------------------ persistence

TEST(ExperienceStore, SaveLoadRoundTripIsExact) {
  TempDir dir;
  ExperienceStore store;
  store.Record(MakeRecord(1, 10, 5.0, 2, 77, /*epoch=*/3));
  store.Record(MakeRecord(1, 11, 0.25, 1, 0, /*epoch=*/1));
  store.Record(MakeRecord(2, 12, -1.5, 9, 42, /*epoch=*/7));

  const std::string path = dir.File("store.exp");
  ASSERT_TRUE(store.SaveTo(path).ok());
  EXPECT_EQ(store.saves(), 1u);

  ExperienceStore back;
  auto loaded = back.LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 3u);
  EXPECT_EQ(back.loads(), 1u);
  EXPECT_EQ(back.All(), store.All());
  // The reloaded store's epoch has advanced past every epoch in the file,
  // so new records written by this process generation sort after old ones.
  EXPECT_GT(back.epoch(), 7u);
}

TEST(ExperienceStore, LoadMergesBestCostWins) {
  TempDir dir;
  ExperienceStore on_disk;
  on_disk.Record(MakeRecord(1, 10, 3.0, /*visits=*/4, /*best_action=*/5));
  on_disk.Record(MakeRecord(1, 11, 8.0, /*visits=*/1, /*best_action=*/6));
  const std::string path = dir.File("merge.exp");
  ASSERT_TRUE(on_disk.SaveTo(path).ok());

  ExperienceStore warm;
  warm.Record(MakeRecord(1, 10, 7.0, /*visits=*/2, /*best_action=*/9));
  warm.Record(MakeRecord(1, 11, 2.0, /*visits=*/2, /*best_action=*/9));
  auto loaded = warm.LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2u);

  // File wins where the file was better...
  auto a = warm.Probe(1, 10);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->best_cost, 3.0);
  EXPECT_EQ(a->best_action, 5u);
  EXPECT_EQ(a->visits, 6u);
  // ...and loses where the live store was.
  auto b = warm.Probe(1, 11);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->best_cost, 2.0);
  EXPECT_EQ(b->best_action, 9u);
  EXPECT_EQ(b->visits, 3u);
}

TEST(ExperienceStore, MissingFileIsSilentColdStart) {
  TempDir dir;
  ExperienceStore store;
  auto loaded = store.LoadFrom(dir.File("nope.exp"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(ExperienceStore, CorruptFilesLoadAsCleanColdStart) {
  TempDir dir;
  ExperienceStore source;
  for (uint64_t i = 0; i < 8; ++i) {
    source.Record(MakeRecord(3, 100 + i, 1.0 + static_cast<double>(i), i + 1));
  }
  const std::string good_path = dir.File("good.exp");
  ASSERT_TRUE(source.SaveTo(good_path).ok());
  const std::string good = ReadFileBytes(good_path);
  ASSERT_GT(good.size(), 24u);

  std::vector<std::pair<std::string, std::string>> corruptions;
  // Truncations: mid-magic, header-only, mid-payload, one byte short.
  for (size_t cut : {size_t{2}, size_t{16}, good.size() / 2, good.size() - 1}) {
    corruptions.emplace_back("truncate@" + std::to_string(cut),
                             good.substr(0, cut));
  }
  std::string flipped = good;
  flipped[good.size() - 5] = static_cast<char>(flipped[good.size() - 5] ^ 0x40);
  corruptions.emplace_back("bit-flip", flipped);
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  corruptions.emplace_back("wrong-magic", bad_magic);
  std::string bad_version = good;
  bad_version[4] = static_cast<char>(0xEE);
  corruptions.emplace_back("wrong-version", bad_version);

  for (const auto& [label, bytes] : corruptions) {
    const std::string path = dir.File("corrupt.exp");
    WriteFileBytes(path, bytes);
    ExperienceStore fresh;
    auto loaded = fresh.LoadFrom(path);
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.status().ToString();
    EXPECT_EQ(*loaded, 0u) << label;
    EXPECT_EQ(fresh.size(), 0u) << label;

    // Validation happens before any merge: a warm store keeps exactly what
    // it had — never partial state from the bad file.
    ExperienceStore warm;
    warm.Record(MakeRecord(9, 1, 4.0));
    const auto before = warm.All();
    auto warm_loaded = warm.LoadFrom(path);
    ASSERT_TRUE(warm_loaded.ok()) << label;
    EXPECT_EQ(*warm_loaded, 0u) << label;
    EXPECT_EQ(warm.All(), before) << label;
  }

  // The intact file still loads after all that.
  ExperienceStore fresh;
  auto loaded = fresh.LoadFrom(good_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 8u);
}

TEST(ExperienceStore, ConcurrentRecordProbeSnapshotSave) {
  TempDir dir;
  ExperienceStore store;
  std::atomic<bool> stop{false};
  const std::string path = dir.File("live.exp");

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, t] {
      for (uint64_t i = 0; i < 300; ++i) {
        // Overlapping keys across threads exercise the merge path.
        store.Record(MakeRecord(1, i % 64, static_cast<double>((t + i) % 7),
                                /*visits=*/1, /*best_action=*/t + 1));
      }
    });
  }
  std::thread reader([&store, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.Probe(1, 3);
      (void)store.Snapshot(1, 8);
    }
  });
  std::thread saver([&store, &stop, &path] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_TRUE(store.SaveTo(path).ok());
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  saver.join();

  EXPECT_EQ(store.size(), 64u);
  ASSERT_TRUE(store.SaveTo(path).ok());
  ExperienceStore back;
  auto loaded = back.LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 64u);
  EXPECT_EQ(back.All(), store.All());
}

// -------------------------------------------------------------- prior fit

TEST(PriorFit, FitsClipsAndFiltersByUses) {
  std::vector<learn::RuleOutcome> outcomes;
  outcomes.push_back({"steady", 100, 50.0});   // mean 0.5
  outcomes.push_back({"strong", 100, 90.0});   // mean 0.9
  outcomes.push_back({"weak", 100, 1.0});      // mean 0.01 -> clipped low
  outcomes.push_back({"rare", 3, 3.0});        // under min_uses: dropped

  auto weights = learn::FitPriorWeights(outcomes, /*min_uses=*/8);
  ASSERT_EQ(weights.size(), 3u);
  double strong = 0, steady = 0, weak = 0;
  for (const auto& [name, w] : weights) {
    EXPECT_GE(w, 0.2);
    EXPECT_LE(w, 3.0);
    if (name == "strong") strong = w;
    if (name == "steady") steady = w;
    if (name == "weak") weak = w;
  }
  EXPECT_GT(strong, steady);
  EXPECT_GT(steady, weak);
  EXPECT_EQ(weak, 0.2);  // clipped at the floor

  EXPECT_TRUE(learn::FitPriorWeights({}, 8).empty());
}

TEST(PriorFit, WeightsRoundTripAndRejectBadFiles) {
  TempDir dir;
  const std::vector<std::pair<std::string, double>> weights = {
      {"filter", 1.5}, {"project", 0.75}};
  const std::string path = dir.File("priors.json");
  ASSERT_TRUE(learn::SavePriorWeights(path, weights).ok());
  auto back = learn::LoadPriorWeights(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, weights);

  auto missing = learn::LoadPriorWeights(dir.File("absent.json"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  WriteFileBytes(path, "{\"version\":1,\"weights\":[not json");
  auto bad = learn::LoadPriorWeights(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------- service integration + off

Result<GeneratedInterface> RunJob(GenerationService& service,
                                  const std::vector<std::string>& log,
                                  bool experience) {
  JobSpec spec;
  spec.sqls = log;
  spec.options.experience = experience;
  spec.options.search.time_budget_ms = 0;  // iteration-capped: deterministic
  spec.options.search.max_iterations = 24;
  spec.options.search.seed = 9;
  return service.Submit(spec).get();
}

/// experience=false jobs must be bit-identical whether or not the service
/// carries a store — the wiring consumes zero RNG draws when off.
TEST(ExperienceService, OffArmBitIdenticalWithAndWithoutStore) {
  auto bundle = LoadWorkload("flights", 200);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  GenerationService::Options plain_opts;
  plain_opts.num_threads = 1;
  plain_opts.cache_capacity = 0;
  GenerationService plain(plain_opts);

  GenerationService::Options stored_opts;
  stored_opts.num_threads = 1;
  stored_opts.cache_capacity = 0;
  stored_opts.experience = std::make_shared<ExperienceStore>();
  // A non-empty store makes the check strict: off means off.
  stored_opts.experience->Record(MakeRecord(1, 2, 3.0));
  GenerationService stored(stored_opts);

  auto lhs = RunJob(plain, bundle->log, /*experience=*/false);
  auto rhs = RunJob(stored, bundle->log, /*experience=*/false);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();

  EXPECT_EQ(lhs->cost.total(), rhs->cost.total());
  EXPECT_EQ(lhs->stats.iterations, rhs->stats.iterations);
  EXPECT_EQ(lhs->stats.states_expanded, rhs->stats.states_expanded);
  EXPECT_EQ(lhs->stats.rollouts, rhs->stats.rollouts);
  EXPECT_EQ(WriteJson(DiffTreeToJsonValue(lhs->difftree)),
            WriteJson(DiffTreeToJsonValue(rhs->difftree)));
  EXPECT_EQ(WriteJson(CostToJsonValue(lhs->cost)),
            WriteJson(CostToJsonValue(rhs->cost)));

  const auto counters = stored.counters_snapshot();
  EXPECT_EQ(counters.learn_seeded, 0u);
  EXPECT_EQ(counters.learn_recorded, 0u);
}

TEST(ExperienceService, WarmStartSeedsFromRecordedExperience) {
  auto bundle = LoadWorkload("flights", 200);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto store = std::make_shared<ExperienceStore>();

  {
    GenerationService::Options opts;
    opts.num_threads = 1;
    opts.cache_capacity = 0;
    opts.experience = store;
    GenerationService cold(opts);
    auto result = RunJob(cold, bundle->log, /*experience=*/true);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto counters = cold.counters_snapshot();
    EXPECT_GT(counters.learn_recorded, 0u);
    EXPECT_EQ(counters.learn_seeded, 0u);  // nothing to seed from, first run
    EXPECT_GT(counters.learn_store_entries, 0u);
  }

  // A fresh service over the same store (same process restart shape as the
  // servers' load path) seeds the next identical job.
  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.cache_capacity = 0;
  opts.experience = store;
  GenerationService warm(opts);
  auto result = RunJob(warm, bundle->log, /*experience=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto counters = warm.counters_snapshot();
  EXPECT_GT(counters.learn_seeded, 0u);
  EXPECT_GT(result->stats.root_seeded, 0u);
}

TEST(ExperienceService, SaveWhileSearchingIsSafe) {
  TempDir dir;
  auto bundle = LoadWorkload("flights", 200);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto store = std::make_shared<ExperienceStore>();

  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.cache_capacity = 0;
  opts.experience = store;
  GenerationService service(opts);

  JobSpec spec;
  spec.sqls = bundle->log;
  spec.options.experience = true;
  spec.options.search.time_budget_ms = 0;
  spec.options.search.max_iterations = 120;
  spec.options.search.seed = 11;
  auto pending = service.Submit(spec);

  const std::string path = dir.File("racing.exp");
  while (pending.wait_for(std::chrono::milliseconds(0)) !=
         std::future_status::ready) {
    ASSERT_TRUE(store->SaveTo(path).ok());
  }
  auto result = pending.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(store->SaveTo(path).ok());

  ExperienceStore back;
  auto loaded = back.LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, store->size());
}

// ------------------------------------------------------------ cluster arm

/// Raw client for one request/reply against a WorkerServer.
Result<RpcReply> RawCall(int port, const JsonValue& frame_json) {
  IFGEN_ASSIGN_OR_RETURN(int fd, cluster::ConnectTcp("127.0.0.1", port, 2000));
  Status w = cluster::WriteFrame(fd, WriteJson(frame_json));
  if (!w.ok()) {
    ::close(fd);
    return w;
  }
  auto frame = cluster::ReadFrame(fd, 10000);
  ::close(fd);
  IFGEN_RETURN_NOT_OK(frame.status());
  IFGEN_ASSIGN_OR_RETURN(JsonValue parsed, ParseJson(*frame));
  return RpcReply::FromJson(parsed);
}

/// Spawns one worker (this binary re-exec'd) with --experience-dir wired.
class ExperienceClusterTest : public ::testing::Test {
 protected:
  std::vector<std::string> WorkerArgs() const {
    return {"--rows",           "300",
            "--threads",        "1",
            "--max-pending",    "64",
            "--experience-dir", dir_.path,
            "--worker-index",   "0"};
  }

  void SpawnWorker(int port = 0) {
    auto self = cluster::SelfExePath();
    ASSERT_TRUE(self.ok()) << self.status().ToString();
    std::vector<std::string> args = WorkerArgs();
    if (port != 0) {
      args.push_back("--port");
      args.push_back(std::to_string(port));
    }
    auto w = cluster::SpawnWorkerProcess(*self, args);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    worker_ = *w;
  }

  void TearDown() override {
    if (worker_.pid > 0 && (::kill(worker_.pid, 0) == 0 || errno != ESRCH)) {
      cluster::TerminateWorker(worker_.pid, /*grace_ms=*/5000);
    }
  }

  /// Submits an experience-on generate and waits for the terminal state.
  api::JobStatusResponse SubmitAndWait(int64_t request_id) {
    GenerateRequest gen;
    gen.workload = "flights";
    gen.options.time_budget_ms = 0;  // iteration-capped: deterministic
    gen.options.max_iterations = 24;
    gen.options.seed = 9;
    gen.options.experience = true;
    RpcEnvelope submit;
    submit.method = api::kMethodSubmitGenerate;
    submit.request_id = request_id;
    submit.payload = gen.ToJson();
    auto accepted_reply = RawCall(worker_.port, submit.ToJson());
    EXPECT_TRUE(accepted_reply.ok()) << accepted_reply.status().ToString();
    EXPECT_TRUE(accepted_reply->ok) << accepted_reply->error.message;
    auto accepted = api::GenerateAccepted::FromJson(accepted_reply->payload);
    EXPECT_TRUE(accepted.ok());

    api::JobStatusResponse status;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      RpcEnvelope get;
      get.method = api::kMethodGetJob;
      get.request_id = request_id + 1000;
      api::IdRequest id;
      id.id = accepted->job_id;
      id.wait_ms = 500;
      get.payload = id.ToJson();
      auto reply = RawCall(worker_.port, get.ToJson());
      EXPECT_TRUE(reply.ok()) << reply.status().ToString();
      auto parsed = api::JobStatusResponse::FromJson(reply->payload);
      EXPECT_TRUE(parsed.ok());
      status = *parsed;
      if (status.state != "queued" && status.state != "running") break;
    }
    EXPECT_EQ(status.state, "done");
    return status;
  }

  api::StatsResponse WorkerStats() {
    RpcEnvelope env;
    env.method = api::kMethodStats;
    env.request_id = 99;
    auto reply = RawCall(worker_.port, env.ToJson());
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    auto stats = api::StatsResponse::FromJson(reply->payload);
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? *stats : api::StatsResponse{};
  }

  TempDir dir_;
  cluster::SpawnedWorker worker_{};
};

/// The cluster acceptance arm: run a job, SIGTERM the worker (the drain
/// path persists worker-0.exp), restart on the same port with the same
/// directory, and the restarted worker warm-starts from the file.
TEST_F(ExperienceClusterTest, WorkerRestartWarmStartsFromPersistedStore) {
  SpawnWorker();
  const int port = worker_.port;

  api::JobStatusResponse first = SubmitAndWait(1);
  ASSERT_EQ(first.state, "done");
  api::StatsResponse before = WorkerStats();
  EXPECT_GT(before.learn_recorded, 0);
  EXPECT_EQ(before.learn_seeded, 0);

  // SIGTERM -> drain -> final SaveTo, across the real exec boundary.
  ASSERT_TRUE(cluster::TerminateWorker(worker_.pid, /*grace_ms=*/10000).ok());
  const std::string store_path = dir_.File("worker-0.exp");
  ExperienceStore persisted;
  auto loaded = persisted.LoadFrom(store_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(*loaded, 0u);

  SpawnWorker(port);
  ASSERT_EQ(worker_.port, port);
  api::JobStatusResponse second = SubmitAndWait(2);
  ASSERT_EQ(second.state, "done");
  api::StatsResponse after = WorkerStats();
  // The restarted process loaded the file and seeded the identical job.
  EXPECT_GT(after.learn_store_entries, 0);
  EXPECT_GT(after.learn_seeded, 0);
}

}  // namespace
}  // namespace ifgen

int main(int argc, char** argv) {
  if (ifgen::cluster::IsWorkerInvocation(argc, argv)) {
    return ifgen::cluster::RunWorkerMain(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
