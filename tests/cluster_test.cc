// Cluster layer tests: the length-prefixed frame transport, the RPC
// envelope codec, the WorkerServer dispatch (in-process), and the
// ClusterRouter driven against real worker processes — with the headline
// multi-process differential battery pinning a 3-worker cluster
// bit-identical to the in-process ApiService, and a worker-kill test
// pinning the retryable-error + reroute contract.
//
// This binary doubles as the worker binary: main() checks
// IsWorkerInvocation before InitGoogleTest, and the fixtures re-exec
// /proc/self/exe to spawn workers (fork+exec — TSan-safe).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/api_service.h"
#include "api/dto.h"
#include "api/rpc.h"
#include "cluster/cluster_router.h"
#include "cluster/frame.h"
#include "cluster/process.h"
#include "cluster/worker_server.h"
#include "util/json.h"

namespace ifgen {
namespace {

using api::ApiOptions;
using api::ApiService;
using api::ErrorBody;
using api::GenerateRequest;
using api::RpcEnvelope;
using api::RpcReply;
using api::SessionOpenRequest;
using api::WidgetEventRequest;
using cluster::ClusterRouter;
using cluster::ReadFrame;
using cluster::WorkerServer;
using cluster::WriteFrame;

// ------------------------------------------------------------ frames

TEST(Frame, RoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  for (const std::string payload :
       {std::string(""), std::string("{\"a\":1}"), std::string(1 << 20, 'x')}) {
    // Writer on its own thread: a frame larger than the socket buffer
    // would otherwise deadlock against the not-yet-started read.
    std::thread writer(
        [&] { EXPECT_TRUE(WriteFrame(fds[0], payload).ok()); });
    auto back = ReadFrame(fds[1], /*timeout_ms=*/10000);
    writer.join();
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, payload);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Frame, OversizeAndEofAreDistinctFailures) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix over the cap is rejected without allocating the body.
  const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fds[0], huge, 4, 0), 4);
  auto oversize = ReadFrame(fds[1], 2000, /*max_frame_bytes=*/1024);
  ASSERT_FALSE(oversize.ok());
  EXPECT_EQ(oversize.status().code(), StatusCode::kInvalidArgument);
  // Peer hangup mid-frame is the retryable transport failure.
  const unsigned char partial[4] = {0x00, 0x00, 0x00, 0x10};
  ASSERT_EQ(::send(fds[0], partial, 4, 0), 4);
  ::close(fds[0]);
  auto eof = ReadFrame(fds[1], 2000);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(ErrorBody::FromStatus(eof.status()).retryable);
  ::close(fds[1]);
}

// ------------------------------------------------------ envelope codec

TEST(RpcEnvelope, RoundTripAndValidation) {
  RpcEnvelope env;
  env.method = api::kMethodGetJob;
  env.request_id = 42;
  env.payload = JsonValue::Object();
  env.payload.Set("id", JsonValue::Str("j-7"));
  auto back = RpcEnvelope::FromJson(env.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->api_version, "v1");
  EXPECT_EQ(back->method, env.method);
  EXPECT_EQ(back->request_id, 42);
  EXPECT_EQ(back->payload, env.payload);

  // A non-object payload is rejected at the codec, not at dispatch.
  auto v = env.ToJson();
  v.Set("payload", JsonValue::Int(3));
  EXPECT_FALSE(RpcEnvelope::FromJson(v).ok());
}

TEST(RpcReply, SuccessAndFailureRoundTrip) {
  JsonValue payload = JsonValue::Object();
  payload.Set("x", JsonValue::Int(1));
  auto ok_back = RpcReply::FromJson(RpcReply::Success(7, payload).ToJson());
  ASSERT_TRUE(ok_back.ok());
  EXPECT_TRUE(ok_back->ok);
  EXPECT_EQ(ok_back->request_id, 7);
  EXPECT_EQ(ok_back->payload, payload);

  auto fail_back = RpcReply::FromJson(
      RpcReply::Failure(8, Status::Unavailable("worker down")).ToJson());
  ASSERT_TRUE(fail_back.ok());
  EXPECT_FALSE(fail_back->ok);
  EXPECT_EQ(fail_back->request_id, 8);
  EXPECT_TRUE(fail_back->error.retryable);
  EXPECT_EQ(fail_back->error.ToStatus().code(), StatusCode::kUnavailable);
}

// --------------------------------------------- worker server, in-process

ApiService::Options SmallServiceOptions() {
  ApiService::Options o;
  o.workload_rows = 300;
  o.service.num_threads = 1;
  return o;
}

ApiOptions FastGenOptions() {
  ApiOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = 12;
  o.seed = 5;
  o.screen_width = 90;
  o.screen_height = 32;
  return o;
}

/// Raw client for one request/reply against a WorkerServer.
Result<RpcReply> RawCall(int port, const JsonValue& frame_json) {
  IFGEN_ASSIGN_OR_RETURN(int fd, cluster::ConnectTcp("127.0.0.1", port, 2000));
  Status w = WriteFrame(fd, WriteJson(frame_json));
  if (!w.ok()) {
    ::close(fd);
    return w;
  }
  auto frame = ReadFrame(fd, 10000);
  ::close(fd);
  IFGEN_RETURN_NOT_OK(frame.status());
  IFGEN_ASSIGN_OR_RETURN(JsonValue parsed, ParseJson(*frame));
  return RpcReply::FromJson(parsed);
}

TEST(WorkerServer, DispatchVersionGateAndUnknownMethod) {
  WorkerServer server;
  WorkerServer::Options opts;
  opts.service = SmallServiceOptions();
  ASSERT_TRUE(server.Start(std::move(opts)).ok());

  // ping round-trips through the live socket.
  RpcEnvelope ping;
  ping.method = api::kMethodPing;
  ping.request_id = 1;
  auto reply = RawCall(server.port(), ping.ToJson());
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->ok) << reply->error.message;
  auto pong = api::WorkerPingResponse::FromJson(reply->payload);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->jobs_submitted, 0);
  EXPECT_FALSE(pong->draining);

  // Version mismatch: InvalidArgument, not retryable.
  RpcEnvelope bad = ping;
  bad.request_id = 2;
  JsonValue bad_json = bad.ToJson();
  bad_json.Set("api_version", JsonValue::Str("v2"));
  auto mismatch = RawCall(server.port(), bad_json);
  ASSERT_TRUE(mismatch.ok());
  EXPECT_FALSE(mismatch->ok);
  EXPECT_EQ(mismatch->error.ToStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(mismatch->error.retryable);

  // Unknown method: Unimplemented.
  RpcEnvelope unknown;
  unknown.method = "job.reticulate";
  unknown.request_id = 3;
  auto unimpl = RawCall(server.port(), unknown.ToJson());
  ASSERT_TRUE(unimpl.ok());
  EXPECT_FALSE(unimpl->ok);
  EXPECT_EQ(unimpl->error.ToStatus().code(), StatusCode::kUnimplemented);

  // Draining: submissions answer retryable Unavailable, reads still work.
  server.Drain();
  RpcEnvelope submit;
  submit.method = api::kMethodSubmitGenerate;
  submit.request_id = 4;
  GenerateRequest gen;
  gen.workload = "flights";
  gen.options = FastGenOptions();
  submit.payload = gen.ToJson();
  auto refused = RawCall(server.port(), submit.ToJson());
  ASSERT_TRUE(refused.ok());
  EXPECT_FALSE(refused->ok);
  EXPECT_EQ(refused->error.ToStatus().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(refused->error.retryable);
  auto ping2 = RawCall(server.port(), ping.ToJson());
  ASSERT_TRUE(ping2.ok());
  EXPECT_TRUE(ping2->ok);
  server.Stop();
}

// ------------------------------------------------- multi-process fixture

/// Spawns N workers (this test binary re-exec'd) + a router over them.
class ClusterTest : public ::testing::Test {
 protected:
  static constexpr int kWorkers = 3;

  void StartCluster(size_t max_inflight = 64, bool cache_peering = true) {
    auto self = cluster::SelfExePath();
    ASSERT_TRUE(self.ok()) << self.status().ToString();
    ClusterRouter::Options ropts;
    for (int i = 0; i < kWorkers; ++i) {
      auto w = cluster::SpawnWorkerProcess(*self, WorkerArgs());
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      spawned_.push_back(*w);
      ropts.workers.push_back({"127.0.0.1", w->port});
    }
    ropts.max_inflight_per_worker = max_inflight;
    ropts.health_interval_ms = 100;  // fast recovery detection in tests
    ropts.reconnect_backoff_ms = 50;
    ropts.cache_peering = cache_peering;
    ASSERT_TRUE(router_.Start(std::move(ropts)).ok());
  }

  static std::vector<std::string> WorkerArgs() {
    return {"--rows", "300", "--threads", "1", "--max-pending", "64"};
  }

  /// Replaces a (dead) worker with a fresh process bound to the SAME port —
  /// the rolling-restart scenario: the router's recorded routes still point
  /// at the address, but the dense id space behind it has reset.
  void RestartWorkerOnSamePort(size_t idx) {
    auto self = cluster::SelfExePath();
    ASSERT_TRUE(self.ok());
    std::vector<std::string> args = WorkerArgs();
    args.push_back("--port");
    args.push_back(std::to_string(spawned_[idx].port));
    auto w = cluster::SpawnWorkerProcess(*self, args);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_EQ(w->port, spawned_[idx].port);
    spawned_[idx] = *w;
  }

  /// Polls until worker `idx` reports healthy (the health loop has to
  /// notice the restarted process on its probe schedule).
  void WaitWorkerHealthy(size_t idx, int64_t timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      auto info = router_.Cluster();
      if (info.ok() && info->workers[idx].healthy) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    FAIL() << "worker " << idx << " did not recover in time";
  }

  void TearDown() override {
    router_.Stop();
    for (const cluster::SpawnedWorker& w : spawned_) {
      if (::kill(w.pid, 0) == 0 || errno != ESRCH) {
        cluster::TerminateWorker(w.pid, /*grace_ms=*/5000);
      }
    }
  }

  std::vector<cluster::SpawnedWorker> spawned_;
  ClusterRouter router_;
};

/// Masks the wall-clock fields two identical runs legitimately disagree on;
/// everything else must match bit-for-bit.
void NormalizeResult(api::GenerateResponse* g) {
  g->stats.elapsed_ms = 0;
  for (api::TracePoint& p : g->stats.trace) p.ms = 0;
}

void NormalizeStatus(api::JobStatusResponse* s) {
  s->queued_ms = 0;
  s->run_ms = 0;
  if (s->result.value.has_value()) NormalizeResult(&*s->result.value);
}

/// Collects (choice_id, option_count, kind) triples from a widgets tree.
void CollectChoices(const JsonValue& node,
                    std::vector<std::tuple<int64_t, int64_t, std::string>>* out) {
  const JsonValue* choice = node.Find("choice");
  const JsonValue* widget = node.Find("widget");
  if (choice != nullptr && widget != nullptr) {
    const JsonValue* options = node.Find("options");
    out->emplace_back(choice->AsInt(),
                      options != nullptr ? static_cast<int64_t>(options->size()) : 0,
                      widget->AsString());
  }
  const JsonValue* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->items()) CollectChoices(c, out);
  }
}

/// The headline acceptance test: the same workload battery through the
/// in-process frontend and through a 3-worker cluster must produce
/// bit-identical responses — ids, interfaces, costs, session tables.
TEST_F(ClusterTest, DifferentialBatteryMatchesInProcessBitIdentical) {
  StartCluster();
  auto local = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  api::ServiceFrontend* lhs = local->get();  // in-process
  api::ServiceFrontend* rhs = &router_;      // 3 worker processes

  struct Case {
    const char* workload;
    int64_t seed;
  };
  const Case battery[] = {
      {"flights", 5}, {"sdss", 11}, {"synthetic", 17}, {"flights", 23}};

  for (const Case& c : battery) {
    SCOPED_TRACE(std::string(c.workload) + "/seed=" + std::to_string(c.seed));
    GenerateRequest req;
    req.workload = c.workload;
    req.options = FastGenOptions();
    req.options.seed = c.seed;

    auto a = lhs->SubmitGenerate(req);
    auto b = rhs->SubmitGenerate(req);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    // Dense router-owned id spaces: cluster ids match single-process ids.
    EXPECT_EQ(a->job_id, b->job_id);

    auto sa = lhs->GetJob(a->job_id, /*wait_ms=*/30000);
    auto sb = rhs->GetJob(b->job_id, /*wait_ms=*/30000);
    ASSERT_TRUE(sa.ok()) << sa.status().ToString();
    ASSERT_TRUE(sb.ok()) << sb.status().ToString();
    ASSERT_EQ(sa->state, "done");
    ASSERT_EQ(sb->state, "done");
    NormalizeStatus(&*sa);
    NormalizeStatus(&*sb);
    EXPECT_TRUE(*sa == *sb) << "job status diverged:\n"
                            << WriteJson(sa->ToJson()) << "\nvs\n"
                            << WriteJson(sb->ToJson());

    // Session arm: open over the job, fire a deterministic event battery,
    // compare every step response and the final table exactly.
    SessionOpenRequest open;
    open.job_id = a->job_id;
    auto oa = lhs->OpenSession(open);
    auto ob = rhs->OpenSession(open);
    ASSERT_TRUE(oa.ok()) << oa.status().ToString();
    ASSERT_TRUE(ob.ok()) << ob.status().ToString();
    EXPECT_EQ(oa->session_id, ob->session_id);
    api::SessionOpenResponse norm_b = *ob;
    EXPECT_TRUE(*oa == norm_b) << "session open diverged";

    std::vector<std::tuple<int64_t, int64_t, std::string>> choices;
    CollectChoices(oa->widgets, &choices);
    int fired = 0;
    for (const auto& [choice_id, option_count, kind] : choices) {
      WidgetEventRequest e;
      if (kind == "Checkbox" || kind == "Toggle") {
        e.kind = "set_opt";
        e.choice_id = choice_id;
        e.present = true;
      } else if (option_count > 0) {
        e.kind = "set_any";
        e.choice_id = choice_id;
        e.option_index = (c.seed + fired) % option_count;
      } else {
        continue;
      }
      auto ra = lhs->ApplyEvent(oa->session_id, e);
      auto rb = rhs->ApplyEvent(ob->session_id, e);
      ASSERT_EQ(ra.ok(), rb.ok()) << "event " << fired << " diverged in status";
      if (ra.ok()) {
        EXPECT_TRUE(*ra == *rb)
            << "step " << fired << " diverged:\n"
            << WriteJson(ra->ToJson()) << "\nvs\n" << WriteJson(rb->ToJson());
      }
      if (++fired >= 6) break;
    }
    EXPECT_GT(fired, 0) << "battery fired no events";

    auto ta = lhs->SessionTable(oa->session_id);
    auto tb = rhs->SessionTable(ob->session_id);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    EXPECT_TRUE(*ta == *tb) << "final session tables diverged";

    EXPECT_TRUE(lhs->CloseSession(oa->session_id).ok());
    EXPECT_TRUE(rhs->CloseSession(ob->session_id).ok());
  }

  // The cluster identifies itself; the in-process frontend stays "single".
  auto cluster_info = rhs->Cluster();
  ASSERT_TRUE(cluster_info.ok());
  EXPECT_EQ(cluster_info->mode, "cluster");
  ASSERT_EQ(cluster_info->workers.size(), static_cast<size_t>(kWorkers));
  auto local_info = lhs->Cluster();
  ASSERT_TRUE(local_info.ok());
  EXPECT_EQ(local_info->mode, "single");
  EXPECT_TRUE(local_info->workers.empty());

  // Catalogs agree (workers load the same registered workloads).
  auto ca = lhs->Catalog();
  auto cb = rhs->Catalog();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_TRUE(*ca == *cb);

  // Aggregated cluster stats cover the same work the local frontend did.
  auto st = rhs->Stats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->jobs_submitted, 4);
  EXPECT_EQ(st->sessions_opened, 4);
  ASSERT_EQ(st->cluster_workers.size(), static_cast<size_t>(kWorkers));
  int64_t per_worker_submitted = 0;
  for (const api::WorkerStatsDto& w : st->cluster_workers) {
    EXPECT_TRUE(w.healthy);
    per_worker_submitted += w.jobs_submitted;
  }
  EXPECT_EQ(per_worker_submitted, 4);
}

TEST_F(ClusterTest, JobsSpreadAcrossWorkers) {
  StartCluster();
  // Distinct requests hash to distinct ring points; with 24 seeds over 3
  // workers the odds of all landing on one worker are (1/3)^23.
  std::vector<std::string> jobs;
  for (int64_t seed = 0; seed < 24; ++seed) {
    GenerateRequest req;
    req.workload = "synthetic";
    req.options = FastGenOptions();
    req.options.max_iterations = 2;
    req.options.seed = seed;
    auto acc = router_.SubmitGenerate(req);
    ASSERT_TRUE(acc.ok()) << acc.status().ToString();
    jobs.push_back(acc->job_id);
  }
  std::vector<bool> hit(kWorkers, false);
  for (const std::string& id : jobs) {
    auto idx = router_.WorkerIndexForJob(id);
    ASSERT_TRUE(idx.ok());
    hit[*idx] = true;
  }
  EXPECT_GT(std::count(hit.begin(), hit.end(), true), 1)
      << "all jobs landed on one worker — the ring is not spreading";
  // Identical requests co-locate (cache affinity): resubmitting seed 0
  // must route to the same worker.
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  req.options.max_iterations = 2;
  req.options.seed = 0;
  auto again = router_.SubmitGenerate(req);
  ASSERT_TRUE(again.ok());
  auto idx_first = router_.WorkerIndexForJob(jobs[0]);
  auto idx_again = router_.WorkerIndexForJob(again->job_id);
  ASSERT_TRUE(idx_first.ok());
  ASSERT_TRUE(idx_again.ok());
  EXPECT_EQ(*idx_first, *idx_again);
}

/// Acceptance: killing a worker mid-job surfaces a retryable error for that
/// job, and subsequent submissions reroute to the surviving workers.
TEST_F(ClusterTest, WorkerKillMidJobIsRetryableAndReroutes) {
  StartCluster();
  // A long iteration-capped job keeps the owning worker busy while we
  // kill it (threads=1 serializes any queue behind it).
  GenerateRequest slow;
  slow.workload = "flights";
  slow.options = FastGenOptions();
  slow.options.max_iterations = 200000;
  auto acc = router_.SubmitGenerate(slow);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  auto owner = router_.WorkerIndexForJob(acc->job_id);
  ASSERT_TRUE(owner.ok());
  ASSERT_EQ(::kill(spawned_[*owner].pid, SIGKILL), 0);
  ::waitpid(spawned_[*owner].pid, nullptr, 0);

  // Polling the dead worker's job: retryable Unavailable (its state lived
  // in that process), surfaced as HTTP 503 + retryable on the wire.
  auto dead = router_.GetJob(acc->job_id, /*wait_ms=*/5000);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable)
      << dead.status().ToString();
  EXPECT_TRUE(ErrorBody::FromStatus(dead.status()).retryable);

  // New jobs reroute around the corpse and still finish.
  for (int64_t seed = 100; seed < 106; ++seed) {
    GenerateRequest req;
    req.workload = "synthetic";
    req.options = FastGenOptions();
    req.options.seed = seed;
    auto retry = router_.SubmitGenerate(req);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    auto idx = router_.WorkerIndexForJob(retry->job_id);
    ASSERT_TRUE(idx.ok());
    EXPECT_NE(*idx, *owner) << "routed a job to the killed worker";
    auto done = router_.GetJob(retry->job_id, /*wait_ms=*/30000);
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    EXPECT_EQ(done->state, "done");
  }

  // The topology reports the dead worker unhealthy.
  auto info = router_.Cluster();
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info->workers[*owner].healthy);
}

TEST_F(ClusterTest, BoundedAdmissionAnswersResourceExhausted) {
  // max_inflight_per_worker=0 makes every RPC trip the admission bound —
  // deterministic 429 without having to race real congestion.
  StartCluster(/*max_inflight=*/0);
  GenerateRequest req;
  req.workload = "flights";
  req.options = FastGenOptions();
  auto r = router_.SubmitGenerate(req);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_TRUE(ErrorBody::FromStatus(r.status()).retryable);
}

TEST_F(ClusterTest, DrainRefusesNewWorkKeepsReads) {
  StartCluster();
  GenerateRequest req;
  req.workload = "synthetic";
  req.options = FastGenOptions();
  auto acc = router_.SubmitGenerate(req);
  ASSERT_TRUE(acc.ok());
  auto done = router_.GetJob(acc->job_id, /*wait_ms=*/30000);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, "done");

  router_.DrainWorkers();
  EXPECT_TRUE(router_.WaitDrained(/*timeout_ms=*/10000));
  // Draining workers refuse new jobs (retryable — a rolling restart wants
  // the client to come back)...
  req.options.seed = 99;
  auto refused = router_.SubmitGenerate(req);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(ErrorBody::FromStatus(refused.status()).retryable)
      << refused.status().ToString();
  // ...but finished state stays readable for the drain window.
  auto still = router_.GetJob(acc->job_id);
  ASSERT_TRUE(still.ok()) << still.status().ToString();
  EXPECT_EQ(still->state, "done");
}

// ------------------------------------------------------- cache peering

ApiOptions PeeringGenOptions(int64_t max_iterations) {
  ApiOptions o = FastGenOptions();
  o.cache_peering = true;
  o.max_iterations = max_iterations;
  return o;
}

/// Sums a per-worker counter over a Stats response's cluster rows.
int64_t SumWorkers(const api::StatsResponse& st,
                   int64_t api::WorkerStatsDto::*field) {
  int64_t total = 0;
  for (const api::WorkerStatsDto& w : st.cluster_workers) total += w.*field;
  return total;
}

/// The tentpole acceptance test: a same-schema job storm (same workload +
/// seed, different budgets — same TT store, distinct result-cache keys)
/// through a 3-worker peering cluster must stay bit-identical to the
/// in-process frontend while the transposition gossip demonstrably flows:
/// cross-worker ingests, warm-start hits, and router publishes all nonzero.
TEST_F(ClusterTest, PeeringStormBitIdenticalWithNonzeroTtGossip) {
  StartCluster();
  auto local = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  api::ServiceFrontend* lhs = local->get();
  api::ServiceFrontend* rhs = &router_;

  // Sequential storm so gossip rounds (every health tick, 100 ms here) run
  // between jobs: later budgets warm-start from earlier exports.
  const int64_t budgets[] = {200, 24, 60, 36, 96, 48};
  for (const int64_t budget : budgets) {
    SCOPED_TRACE("budget=" + std::to_string(budget));
    GenerateRequest req;
    req.workload = "flights";
    req.options = PeeringGenOptions(budget);

    auto a = lhs->SubmitGenerate(req);
    auto b = rhs->SubmitGenerate(req);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->job_id, b->job_id);
    auto sa = lhs->GetJob(a->job_id, /*wait_ms=*/30000);
    auto sb = rhs->GetJob(b->job_id, /*wait_ms=*/30000);
    ASSERT_TRUE(sa.ok()) << sa.status().ToString();
    ASSERT_TRUE(sb.ok()) << sb.status().ToString();
    ASSERT_EQ(sa->state, "done");
    ASSERT_EQ(sb->state, "done");
    NormalizeStatus(&*sa);
    NormalizeStatus(&*sb);
    EXPECT_TRUE(*sa == *sb)
        << "peered cluster diverged from single-process:\n"
        << WriteJson(sa->ToJson()) << "\nvs\n" << WriteJson(sb->ToJson());
    // A pause per job: the health loop's gossip round distributes the
    // just-finished job's hot entries before the next budget runs.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }

  // Gossip evidence, polled until the health loop's pings have refreshed
  // the per-worker rows: some worker merged entries it did not discover
  // (cross-worker ingest), some search was served by a peer-seeded entry,
  // and the router published batches.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  api::StatsResponse last;
  while (std::chrono::steady_clock::now() < deadline) {
    auto st = rhs->Stats();
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    last = *st;
    if (SumWorkers(last, &api::WorkerStatsDto::tt_peer_ingested) > 0 &&
        SumWorkers(last, &api::WorkerStatsDto::tt_peer_hits) > 0 &&
        SumWorkers(last, &api::WorkerStatsDto::tt_published) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_GT(SumWorkers(last, &api::WorkerStatsDto::tt_peer_ingested), 0)
      << "no worker ingested gossiped transposition entries";
  EXPECT_GT(SumWorkers(last, &api::WorkerStatsDto::tt_peer_hits), 0)
      << "no search warm-started from peer-seeded entries";
  EXPECT_GT(SumWorkers(last, &api::WorkerStatsDto::tt_published), 0)
      << "the router published no gossip batches";
}

/// Cross-worker result-cache peering, exercised through the only topology
/// where placement and holder can differ: the owner dies, an identical
/// resubmission reroutes to a sibling (which computes and caches), the
/// owner returns empty on the same port — and the next identical submit is
/// probe-routed to the sibling's cache instead of recomputing on placement.
/// The same restart pins the stale-id contract: ids minted by the dead
/// incarnation answer NotFound, never a new job's aliased result.
TEST_F(ClusterTest, ResultPeeringAfterOwnerRestartAndStaleIdsAreNotFound) {
  StartCluster();
  GenerateRequest req;
  req.workload = "flights";
  req.options = PeeringGenOptions(12);

  auto first = router_.SubmitGenerate(req);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto owner = router_.WorkerIndexForJob(first->job_id);
  ASSERT_TRUE(owner.ok());
  auto done = router_.GetJob(first->job_id, /*wait_ms=*/30000);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, "done");
  api::JobStatusResponse baseline = *done;
  NormalizeStatus(&baseline);
  const std::string stale_id = first->job_id;

  // Kill the owner; the identical resubmission reroutes to a sibling,
  // which computes the same result and caches it under the same key.
  ASSERT_EQ(::kill(spawned_[*owner].pid, SIGKILL), 0);
  ::waitpid(spawned_[*owner].pid, nullptr, 0);
  auto rerouted = router_.SubmitGenerate(req);
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  auto sibling = router_.WorkerIndexForJob(rerouted->job_id);
  ASSERT_TRUE(sibling.ok());
  ASSERT_NE(*sibling, *owner);
  auto sibling_done = router_.GetJob(rerouted->job_id, /*wait_ms=*/30000);
  ASSERT_TRUE(sibling_done.ok());
  ASSERT_EQ(sibling_done->state, "done");

  // The owner returns on the SAME port as a fresh process (empty caches,
  // reset dense id space); the health loop readopts it.
  RestartWorkerOnSamePort(*owner);
  WaitWorkerHealthy(*owner);

  // Mint jobs on the restarted worker until its fresh id space has issued
  // at least one local id — the aliasing hazard the epoch check exists for.
  bool aliased = false;
  for (int64_t seed = 900; seed < 960 && !aliased; ++seed) {
    GenerateRequest probe;
    probe.workload = "synthetic";
    probe.options = FastGenOptions();
    probe.options.max_iterations = 2;
    probe.options.seed = seed;
    auto acc = router_.SubmitGenerate(probe);
    ASSERT_TRUE(acc.ok()) << acc.status().ToString();
    auto idx = router_.WorkerIndexForJob(acc->job_id);
    ASSERT_TRUE(idx.ok());
    aliased = (*idx == *owner);
  }
  ASSERT_TRUE(aliased) << "no probe job landed on the restarted worker";

  // The dead incarnation's id must answer NotFound — the restarted worker
  // now owns a job with the same worker-local dense id, and serving it
  // would hand this caller another job's result.
  auto stale = router_.GetJob(stale_id);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound)
      << stale.status().ToString();

  // Identical submit again: placement hashes to the restarted owner (empty
  // cache), but the probe finds the sibling's cached result and routes
  // there — a cross-worker cache hit, bit-identical to the original run.
  auto peered = router_.SubmitGenerate(req);
  ASSERT_TRUE(peered.ok()) << peered.status().ToString();
  auto holder = router_.WorkerIndexForJob(peered->job_id);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(*holder, *sibling) << "submit was not routed to the cache holder";
  auto hit = router_.GetJob(peered->job_id, /*wait_ms=*/30000);
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->state, "done");
  EXPECT_TRUE(hit->cache_hit) << "peer-routed submit recomputed";
  api::JobStatusResponse norm_hit = *hit;
  NormalizeStatus(&norm_hit);
  norm_hit.cache_hit = baseline.cache_hit;  // provenance flag, not payload
  norm_hit.job_id = baseline.job_id;
  if (norm_hit.result.value.has_value() && baseline.result.value.has_value()) {
    norm_hit.result.value->job_id = baseline.result.value->job_id;
  }
  EXPECT_TRUE(norm_hit == baseline)
      << "cross-worker cache hit diverged from the original result:\n"
      << WriteJson(norm_hit.ToJson()) << "\nvs\n"
      << WriteJson(baseline.ToJson());

  // The router observed the redirect, and the sibling answered the probe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  api::StatsResponse last;
  while (std::chrono::steady_clock::now() < deadline) {
    auto st = router_.Stats();
    ASSERT_TRUE(st.ok());
    last = *st;
    if (last.cluster_workers[*sibling].result_peer_hits > 0 &&
        SumWorkers(last, &api::WorkerStatsDto::cache_probe_hits) > 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_GT(last.cluster_workers[*sibling].result_peer_hits, 0);
  EXPECT_GT(SumWorkers(last, &api::WorkerStatsDto::cache_probe_hits), 0);
}

/// A worker dying in the middle of a long-poll (not just before submit)
/// must surface retryable Unavailable to the parked caller — the reply
/// stream just vanished; an Internal or a hang are both wrong.
TEST_F(ClusterTest, WorkerKillMidLongPollSurfacesRetryableUnavailable) {
  StartCluster();
  GenerateRequest slow;
  slow.workload = "flights";
  slow.options = FastGenOptions();
  slow.options.max_iterations = 200000;
  auto acc = router_.SubmitGenerate(slow);
  ASSERT_TRUE(acc.ok()) << acc.status().ToString();
  auto owner = router_.WorkerIndexForJob(acc->job_id);
  ASSERT_TRUE(owner.ok());

  // Park two callers on the running job: a progress long-poll and a
  // terminal-state wait. Both must come back retryable when the worker dies.
  Status progress_status = Status::OK();
  Status wait_status = Status::OK();
  std::thread progress_poller([&] {
    auto r = router_.GetJobProgress(acc->job_id, /*last_seen_version=*/0,
                                    /*wait_ms=*/30000);
    // A version-0 poll may return the initial frame immediately; keep
    // polling past whatever version it reports until the kill lands.
    int64_t last_seen = 0;
    while (r.ok()) {
      last_seen = r->version;
      r = router_.GetJobProgress(acc->job_id, last_seen, /*wait_ms=*/30000);
    }
    progress_status = r.status();
  });
  std::thread job_waiter([&] {
    auto r = router_.GetJob(acc->job_id, /*wait_ms=*/30000);
    while (r.ok() && r->state == "running") {
      r = router_.GetJob(acc->job_id, /*wait_ms=*/30000);
    }
    wait_status = r.ok() ? Status::Internal("job finished before the kill")
                         : r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_EQ(::kill(spawned_[*owner].pid, SIGKILL), 0);
  ::waitpid(spawned_[*owner].pid, nullptr, 0);
  progress_poller.join();
  job_waiter.join();

  EXPECT_EQ(progress_status.code(), StatusCode::kUnavailable)
      << progress_status.ToString();
  EXPECT_TRUE(ErrorBody::FromStatus(progress_status).retryable);
  EXPECT_EQ(wait_status.code(), StatusCode::kUnavailable)
      << wait_status.ToString();
  EXPECT_TRUE(ErrorBody::FromStatus(wait_status).retryable);
}

/// Ablation arm: with peering off at the router (and off in requests, the
/// default), the cluster behaves exactly as before the peering tier —
/// bit-identical results and zero probe/gossip traffic.
TEST_F(ClusterTest, PeeringOffAblationMatchesBaselineWithNoPeerTraffic) {
  StartCluster(/*max_inflight=*/64, /*cache_peering=*/false);
  auto local = ApiService::Create(SmallServiceOptions());
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  for (int64_t seed : {5, 11}) {
    GenerateRequest req;
    req.workload = "synthetic";
    req.options = FastGenOptions();
    req.options.seed = seed;
    auto a = (*local)->SubmitGenerate(req);
    auto b = router_.SubmitGenerate(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    auto sa = (*local)->GetJob(a->job_id, /*wait_ms=*/30000);
    auto sb = router_.GetJob(b->job_id, /*wait_ms=*/30000);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    NormalizeStatus(&*sa);
    NormalizeStatus(&*sb);
    EXPECT_TRUE(*sa == *sb) << "ablation arm diverged";
  }

  // Let a few health ticks pass: were gossip misguardedly enabled, it
  // would have run by now.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  auto st = router_.Stats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(SumWorkers(*st, &api::WorkerStatsDto::cache_probes), 0);
  EXPECT_EQ(SumWorkers(*st, &api::WorkerStatsDto::tt_peer_ingested), 0);
  EXPECT_EQ(SumWorkers(*st, &api::WorkerStatsDto::tt_published), 0);
  EXPECT_EQ(SumWorkers(*st, &api::WorkerStatsDto::result_peer_hits), 0);
}

}  // namespace
}  // namespace ifgen

/// This binary doubles as the worker executable (the fixtures re-exec
/// /proc/self/exe): the worker branch must run before gtest touches argv.
int main(int argc, char** argv) {
  if (ifgen::cluster::IsWorkerInvocation(argc, argv)) {
    return ifgen::cluster::RunWorkerMain(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
