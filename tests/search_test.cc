#include <gtest/gtest.h>

#include "core/interface_generator.h"
#include "difftree/builder.h"
#include "difftree/match.h"
#include "search/baselines.h"
#include "search/mcts.h"
#include "sql/parser.h"
#include "workload/sdss.h"

namespace ifgen {
namespace {

std::vector<Ast> SmallLog() {
  return *ParseQueries(std::vector<std::string>{
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
  });
}

SearchOptions FastOptions(size_t iterations) {
  SearchOptions o;
  o.time_budget_ms = 0;  // iteration-capped: deterministic
  o.max_iterations = iterations;
  o.seed = 17;
  return o;
}

TEST(Mcts, ImprovesOverInitialState) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  MctsSearcher mcts(&rules, &eval, FastOptions(40));
  DiffTree initial = *BuildInitialTree(queries);
  auto r = mcts.Run(initial);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->best_cost, r->stats.initial_cost);
  EXPECT_TRUE(ExpressesAll(r->best_tree, queries));
}

TEST(Mcts, DeterministicGivenSeed) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  auto run = [&]() {
    StateEvaluator eval(eopts, queries);
    MctsSearcher mcts(&rules, &eval, FastOptions(25));
    return *mcts.Run(*BuildInitialTree(queries));
  };
  SearchResult a = run();
  SearchResult b = run();
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.best_tree, b.best_tree);
  EXPECT_EQ(a.stats.states_expanded, b.stats.states_expanded);
}

TEST(Mcts, TracksAnytimeTrace) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  MctsSearcher mcts(&rules, &eval, FastOptions(40));
  auto r = mcts.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->stats.trace.empty());
  // Trace costs are strictly decreasing.
  for (size_t i = 1; i < r->stats.trace.size(); ++i) {
    EXPECT_LT(r->stats.trace[i].cost, r->stats.trace[i - 1].cost);
  }
}

TEST(Mcts, RecordsFanoutStats) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  MctsSearcher mcts(&rules, &eval, FastOptions(20));
  auto r = mcts.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.fanout_samples, 0u);
  EXPECT_GT(r->stats.fanout_max, 0u);
  EXPECT_GT(r->stats.MeanFanout(), 0.0);
}

TEST(RandomSearch, AlsoImprovesButTracksBest) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  RandomSearcher random(&rules, &eval, FastOptions(30));
  auto r = random.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->best_cost, r->stats.initial_cost);
  EXPECT_TRUE(ExpressesAll(r->best_tree, queries));
}

TEST(Greedy, NeverReturnsWorseThanInitial) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  GreedySearcher greedy(&rules, &eval, FastOptions(20));
  auto r = greedy.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->best_cost, r->stats.initial_cost);
}

TEST(Beam, ExploresDistinctStates) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  SearchOptions o = FastOptions(6);
  o.beam_width = 4;
  BeamSearcher beam(&rules, &eval, o);
  auto r = beam.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.states_expanded, 4u);
  EXPECT_LE(r->best_cost, r->stats.initial_cost);
}

TEST(Exhaustive, FindsOptimumOnTinyInput) {
  auto queries = *ParseQueries(
      std::vector<std::string>{"select a from t", "select b from t"});
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  eopts.k_assignments = 12;
  StateEvaluator eval(eopts, queries);
  SearchOptions o;
  o.time_budget_ms = 0;
  o.exhaustive_max_depth = 5;
  o.exhaustive_max_states = 3000;
  ExhaustiveSearcher ex(&rules, &eval, o);
  auto r = ex.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ex.complete());

  // MCTS with the same evaluator should reach the same optimum on this
  // trivially small space.
  StateEvaluator eval2(eopts, queries);
  MctsSearcher mcts(&rules, &eval2, FastOptions(60));
  auto m = mcts.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->best_cost, r->best_cost, 1e-9);
}

TEST(Exhaustive, TranspositionsDetected) {
  auto queries = SmallLog();
  RuleEngine rules;
  EvalOptions eopts;
  eopts.screen = {80, 24};
  StateEvaluator eval(eopts, queries);
  SearchOptions o;
  o.time_budget_ms = 0;
  o.exhaustive_max_depth = 3;
  o.exhaustive_max_states = 500;
  ExhaustiveSearcher ex(&rules, &eval, o);
  auto r = ex.Run(*BuildInitialTree(queries));
  ASSERT_TRUE(r.ok());
  // Rule applications commute often; revisits must be recognized.
  EXPECT_GT(r->stats.transposition_hits, 0u);
}

TEST(GenerateInterface, EndToEndMcts) {
  GeneratorOptions opt;
  opt.screen = {80, 24};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 30;
  auto r = GenerateInterface(
      {"select Sales from sales where cty = 'USA'",
       "select Costs from sales where cty = 'EUR'", "select Costs from sales"},
      opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->cost.valid);
  EXPECT_GE(r->coverage, 3.0);
  EXPECT_GE(r->widgets.CountInteractive(), 1u);
  // Every input query must be expressible by the output difftree.
  auto queries = *ParseQueries(std::vector<std::string>{
      "select Sales from sales where cty = 'USA'",
      "select Costs from sales where cty = 'EUR'", "select Costs from sales"});
  EXPECT_TRUE(ExpressesAll(r->difftree, queries));
}

TEST(GenerateInterface, AllAlgorithmsRun) {
  GeneratorOptions opt;
  opt.screen = {80, 24};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 8;
  opt.search.exhaustive_max_states = 200;
  for (Algorithm a :
       {Algorithm::kMcts, Algorithm::kRandom, Algorithm::kGreedy, Algorithm::kBeam,
        Algorithm::kExhaustive, Algorithm::kBottomUp}) {
    opt.algorithm = a;
    auto r = GenerateInterface({"select a from t", "select b from t"}, opt);
    ASSERT_TRUE(r.ok()) << AlgorithmName(a) << ": " << r.status().ToString();
    EXPECT_TRUE(r->cost.valid) << AlgorithmName(a);
  }
}

TEST(GenerateInterface, RejectsEmptyLog) {
  EXPECT_FALSE(GenerateInterface({}, {}).ok());
}

TEST(GenerateInterface, DeltaCostAblationIsBitIdenticalEndToEnd) {
  // The delta-cost ablation guard: forcing full re-evaluation must change
  // nothing about the search (costs are bit-identical, so every decision
  // built on them is too) — only the recompute counters move.
  std::vector<std::string> sqls = {
      "select Sales from sales where cty = 'USA'",
      "select Costs from sales where cty = 'EUR'", "select Costs from sales"};
  GeneratorOptions opt;
  opt.screen = {80, 24};
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 25;
  opt.delta_cost_eval = true;
  auto with_delta = GenerateInterface(sqls, opt);
  opt.delta_cost_eval = false;
  auto full = GenerateInterface(sqls, opt);
  ASSERT_TRUE(with_delta.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(with_delta->cost.total(), full->cost.total());
  EXPECT_EQ(with_delta->difftree, full->difftree);
  EXPECT_EQ(with_delta->cost.m_total, full->cost.m_total);
  EXPECT_EQ(with_delta->cost.u_total, full->cost.u_total);
}

TEST(GenerateInterface, PriorAblationFlagsSelectTheUniformSearch) {
  // Both the prior-guided default and the paper's uniform ablation must
  // produce valid interfaces over the same log (costs may differ — that
  // delta is what bench_ablation measures).
  std::vector<std::string> sqls = {
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9"};
  for (bool use_priors : {true, false}) {
    GeneratorOptions opt;
    opt.screen = {80, 24};
    opt.search.time_budget_ms = 0;
    opt.search.max_iterations = 20;
    opt.search.priors.use_priors = use_priors;
    opt.search.priors.progressive_widening = use_priors;
    auto r = GenerateInterface(sqls, opt);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->cost.valid);
  }
}

TEST(GenerateInterface, ScreenSensitivity) {
  // The narrow screen must still produce a valid interface, and it must fit.
  GeneratorOptions opt;
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 25;
  opt.screen = {30, 10};
  auto r = GenerateInterface(SdssQueries6To8(), opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->cost.valid) << r->cost.invalid_reason;
  EXPECT_LE(r->cost.layout_width, 30);
  EXPECT_LE(r->cost.layout_height, 10);
}

}  // namespace
}  // namespace ifgen
