#include <gtest/gtest.h>

#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "difftree/match.h"
#include "difftree/normalize.h"
#include "rules/rule.h"
#include "sql/parser.h"
#include "util/rng.h"
#include "workload/sdss.h"
#include "workload/synthetic.h"

namespace ifgen {
namespace {

Ast Q(const std::string& sql) {
  auto q = ParseQuery(sql);
  EXPECT_TRUE(q.ok()) << sql;
  return *q;
}

std::vector<RuleApplication> AppsOf(const RuleEngine& engine, const DiffTree& tree,
                                    std::string_view rule_name, int param = -2) {
  std::vector<RuleApplication> out;
  for (const RuleApplication& app : engine.EnumerateApplications(tree)) {
    if (engine.RuleName(app) == rule_name && (param == -2 || app.param == param)) {
      out.push_back(app);
    }
  }
  return out;
}

TEST(Rules, InitialFanoutSmall) {
  RuleEngine engine;
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  auto apps = engine.EnumerateApplications(d);
  EXPECT_GE(apps.size(), 2u);  // Any2All + Lift at least
}

TEST(Rules, Any2AllFactorsSharedStructure) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  auto apps = AppsOf(engine, d, "Any2All", 0);
  ASSERT_FALSE(apps.empty());
  DiffTree next = *engine.Apply(d, apps[0]);
  // Root becomes the shared Select; the From subtree is fully shared.
  EXPECT_EQ(next.kind, DKind::kAll);
  EXPECT_EQ(next.sym, Symbol::kSelect);
  EXPECT_TRUE(ExpressesAll(next, queries));
  // One choice remains: the projection column.
  EXPECT_EQ(next.ChoiceCount(), 1u);
}

TEST(Rules, Any2AllAlignsMissingClauseAsOptional) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t where x = 1"), Q("select a from t")};
  DiffTree d = *BuildInitialTree(queries);
  auto apps = AppsOf(engine, d, "Any2All", 0);
  ASSERT_FALSE(apps.empty());
  DiffTree next = *engine.Apply(d, apps[0]);
  EXPECT_TRUE(ExpressesAll(next, queries));
  // The Where column carries an Empty alternative -> Optional applies.
  EXPECT_FALSE(AppsOf(engine, next, "Optional", 0).empty());
}

TEST(Rules, Any2AllPositionalPairsDifferentSymbols) {
  RuleEngine engine;
  // objid vs count(*): symbol-LCS cannot pair them; positional can
  // (paper Figure 6a: one radio with both options). The divergence sits one
  // level down, so factor the root first.
  std::vector<Ast> queries = {Q("select objid from t"), Q("select count(*) from t")};
  DiffTree d = *BuildInitialTree(queries);
  d = *engine.Apply(d, AppsOf(engine, d, "Any2All", 0)[0]);
  // At the root level the alternatives' child symbols agree, so the
  // positional variant is suppressed there...
  EXPECT_TRUE(AppsOf(engine, d, "Any2All", 1).empty() ||
              NodeAt(d, AppsOf(engine, d, "Any2All", 1)[0].path) != &d);
  // ...but the projection ANY exposes it.
  auto pos = AppsOf(engine, d, "Any2All", 1);
  ASSERT_FALSE(pos.empty());
  DiffTree next = *engine.Apply(d, pos[0]);
  EXPECT_TRUE(ExpressesAll(next, queries));
  // One leaf ANY pairing the two projections; exact coverage of the log.
  EXPECT_EQ(next.ChoiceCount(), 1u);
  EXPECT_DOUBLE_EQ(CountExpressible(next), 2.0);
}

TEST(Rules, LiftKeepsWholeBodies) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t where x = 1"),
                              Q("select b from u where y = 2")};
  DiffTree d = *BuildInitialTree(queries);
  auto apps = AppsOf(engine, d, "Lift");
  ASSERT_FALSE(apps.empty());
  DiffTree next = *engine.Apply(d, apps[0]);
  EXPECT_EQ(next.sym, Symbol::kSelect);
  // Lift does not grow the language: whole bodies stay alternatives.
  EXPECT_DOUBLE_EQ(CountExpressible(next), 2.0);
  EXPECT_TRUE(ExpressesAll(next, queries));
}

TEST(Rules, MergeRemovesDuplicates) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t"), Q("select a from t"),
                              Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  auto apps = AppsOf(engine, d, "Merge");
  ASSERT_EQ(apps.size(), 1u);
  DiffTree next = *engine.Apply(d, apps[0]);
  EXPECT_EQ(next.kind, DKind::kAny);
  EXPECT_EQ(next.children.size(), 2u);
  EXPECT_TRUE(ExpressesAll(next, queries));
}

TEST(Rules, MergeCollapsesToSingleton) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t"), Q("select a from t")};
  DiffTree d = *BuildInitialTree(queries);
  auto apps = AppsOf(engine, d, "Merge");
  ASSERT_EQ(apps.size(), 1u);
  DiffTree next = *engine.Apply(d, apps[0]);
  EXPECT_EQ(next.ChoiceCount(), 0u);  // collapsed to the plain AST
}

TEST(Rules, OptionalBothDirections) {
  RuleEngine engine;
  DiffTree any = DiffTree::Any({DiffTree::Empty(), DiffTree::FromAst(Col("a"))});
  DiffTree host(Symbol::kProject, "", {any});
  auto fwd = AppsOf(engine, host, "Optional", 0);
  ASSERT_EQ(fwd.size(), 1u);
  DiffTree opted = *engine.Apply(host, fwd[0]);
  EXPECT_EQ(opted.children[0].kind, DKind::kOpt);

  auto bwd = AppsOf(engine, opted, "Optional", 1);
  ASSERT_EQ(bwd.size(), 1u);
  DiffTree back = *engine.Apply(opted, bwd[0]);
  EXPECT_EQ(back.children[0].kind, DKind::kAny);
  // Round trip is language-exact.
  EXPECT_DOUBLE_EQ(CountExpressible(back), CountExpressible(host));
}

TEST(Rules, NoopUnwrapsSingletonAny) {
  RuleEngine engine;
  DiffTree host(Symbol::kProject, "",
                {DiffTree::Any({DiffTree::FromAst(Col("a"))})});
  auto apps = AppsOf(engine, host, "Noop", 0);
  ASSERT_EQ(apps.size(), 1u);
  DiffTree next = *engine.Apply(host, apps[0]);
  EXPECT_EQ(next.ChoiceCount(), 0u);
}

TEST(Rules, NoopWrapDisabledByDefault) {
  RuleEngine engine;
  DiffTree d = DiffTree::FromAst(Q("select a from t"));
  EXPECT_TRUE(AppsOf(engine, d, "Noop", 1).empty());
  RuleSetOptions opts;
  opts.enable_noop_wrap = true;
  RuleEngine engine2(opts);
  EXPECT_FALSE(AppsOf(engine2, d, "Noop", 1).empty());
}

TEST(Rules, MultiRunPattern) {
  RuleEngine engine;
  // Project(a, a, a) has a run of identical children.
  DiffTree proj(Symbol::kProject, "",
                {DiffTree::FromAst(Col("a")), DiffTree::FromAst(Col("a")),
                 DiffTree::FromAst(Col("a"))});
  auto apps = AppsOf(engine, proj, "Multi");
  ASSERT_FALSE(apps.empty());
  DiffTree next = *engine.Apply(proj, apps[0]);
  ASSERT_EQ(next.children.size(), 1u);
  EXPECT_EQ(next.children[0].kind, DKind::kMulti);
  // The MULTI expresses the original 3-column projection.
  Ast three(Symbol::kProject, "", {Col("a"), Col("a"), Col("a")});
  EXPECT_TRUE(MatchQuery(next, three).has_value());
}

TEST(Rules, MultiRepeatUnionOnVaryingCounts) {
  RuleEngine engine;
  // Queries with 1 vs 2 conjuncts produce, after factoring, an ANY whose
  // alternatives are sequences of Between nodes of differing length.
  std::vector<Ast> queries = {Q("select a from t where u between 0 and 1"),
                              Q("select a from t where u between 0 and 1 and "
                                "g between 2 and 3")};
  DiffTree d = *BuildInitialTree(queries);
  // Factor the root, then the Where column, exposing And bodies.
  for (int i = 0; i < 4; ++i) {
    auto apps = AppsOf(engine, d, "Any2All");
    if (apps.empty()) break;
    d = *engine.Apply(d, apps[0]);
  }
  auto multi = AppsOf(engine, d, "Multi", -1);
  if (!multi.empty()) {
    DiffTree next = *engine.Apply(d, multi[0]);
    EXPECT_TRUE(ExpressesAll(next, queries));
    // The adder generalizes: more conjunct combinations become expressible.
    EXPECT_GE(CountExpressible(next, 3), CountExpressible(d, 3));
  }
}

TEST(Rules, All2AnyIsLanguageExactInverse) {
  RuleEngine engine;
  std::vector<Ast> queries = {Q("select a from t"), Q("select b from t")};
  DiffTree d = *BuildInitialTree(queries);
  DiffTree factored = *engine.Apply(d, AppsOf(engine, d, "Any2All", 0)[0]);
  double before = CountExpressible(factored);
  auto apps = AppsOf(engine, factored, "All2Any");
  ASSERT_FALSE(apps.empty());
  DiffTree split = *engine.Apply(factored, apps[0]);
  EXPECT_EQ(split.kind, DKind::kAny);
  EXPECT_DOUBLE_EQ(CountExpressible(split), before);
  EXPECT_TRUE(ExpressesAll(split, queries));
}

TEST(Rules, ApplyRejectsOversizedResults) {
  RuleSetOptions opts;
  opts.max_tree_nodes = 10;  // absurdly small
  RuleEngine engine(opts);
  DiffTree d = *BuildInitialTree({Q("select a from t where x = 1 and y = 2"),
                                  Q("select b from t where x = 3 and y = 4")});
  for (const auto& app : engine.EnumerateApplications(d)) {
    auto r = engine.Apply(d, app);
    if (r.ok()) {
      EXPECT_LE(r->NodeCount(), 10u);
    }
  }
}

TEST(Rules, DescribeIsHumanReadable) {
  RuleEngine engine;
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  auto apps = engine.EnumerateApplications(d);
  ASSERT_FALSE(apps.empty());
  std::string desc = engine.Describe(d, apps[0]);
  EXPECT_NE(desc.find("@"), std::string::npos);
}

TEST(Rules, IsForwardClassification) {
  RuleEngine engine;
  DiffTree d = *BuildInitialTree({Q("select a from t"), Q("select b from t")});
  for (const auto& app : engine.EnumerateApplications(d)) {
    if (engine.RuleName(app) == "All2Any") {
      EXPECT_FALSE(engine.IsForward(app));
    }
    if (engine.RuleName(app) == "Any2All") {
      EXPECT_TRUE(engine.IsForward(app));
    }
  }
}

// ---------------------------------------------------------------------------
// The load-bearing property: EVERY rule application preserves expressibility
// of the input queries (paper: rewrites factor redundancy, never lose logs).
// ---------------------------------------------------------------------------

class RulePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RulePropertyTest, RandomRuleSequencesPreserveExpressibility) {
  RuleEngine engine;
  Rng rng(GetParam());
  LogSpec spec;
  spec.num_queries = 4 + GetParam() % 4;
  spec.num_tables = 2;
  spec.num_projection_variants = 2;
  spec.num_predicates = 2;
  spec.vary_predicate_count = GetParam() % 2 == 0;
  spec.optional_where = GetParam() % 3 == 0;
  spec.seed = GetParam();
  auto queries = *ParseQueries(GenerateLog(spec));
  DiffTree tree = *BuildInitialTree(queries);
  ASSERT_TRUE(ExpressesAll(tree, queries));

  for (int step = 0; step < 25; ++step) {
    auto apps = engine.EnumerateApplications(tree);
    if (apps.empty()) break;
    const RuleApplication& app = apps[rng.UniformIndex(apps.size())];
    auto next = engine.Apply(tree, app);
    if (!next.ok()) continue;  // size guard may fire; state unchanged
    std::string why;
    ASSERT_TRUE(IsWellFormed(*next, &why))
        << why << " after " << engine.Describe(tree, app);
    ASSERT_TRUE(ExpressesAll(*next, queries))
        << "lost a query after " << engine.Describe(tree, app) << "\n"
        << next->ToString();
    tree = std::move(next).MoveValueUnsafe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(RuleProperty, SdssLogSurvivesLongForwardChains) {
  RuleEngine engine;
  auto queries = *ParseQueries(SdssListing1());
  DiffTree tree = *BuildInitialTree(queries);
  for (int step = 0; step < 40; ++step) {
    auto apps = engine.EnumerateApplications(tree);
    bool advanced = false;
    for (const auto& app : apps) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
    ASSERT_TRUE(ExpressesAll(tree, queries)) << "lost a query at step " << step;
  }
}

}  // namespace
}  // namespace ifgen
