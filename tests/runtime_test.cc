#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/service.h"
#include "runtime/thread_pool.h"
#include "runtime/tt.h"

namespace ifgen {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  int count = 0;  // no atomics needed: everything runs on this thread
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, NullPoolRunsInline) {
  int count = 0;
  TaskGroup group(nullptr);
  for (int i = 0; i < 10; ++i) group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, NestedTaskGroupsDoNotDeadlock) {
  // More nested waits than workers: only possible because Wait() helps run
  // pending tasks instead of blocking its worker.
  ThreadPool pool(2);
  std::atomic<int> leaf_count{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Run([&pool, &leaf_count] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j) {
        inner.Run([&leaf_count] { leaf_count.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaf_count.load(), 32);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

// ------------------------------------------------- TranspositionTable

TEST(TranspositionTable, VisitReportsFirstInsertion) {
  TranspositionTable tt(4);
  EXPECT_TRUE(tt.Visit(42));
  EXPECT_FALSE(tt.Visit(42));
  EXPECT_TRUE(tt.Visit(43));
  EXPECT_EQ(tt.transposition_hits(), 1u);
  EXPECT_EQ(tt.size(), 2u);
}

TEST(TranspositionTable, CostFirstWriterWins) {
  TranspositionTable tt(4);
  EXPECT_FALSE(tt.LookupCost(7).has_value());
  tt.StoreCost(7, 3.5);
  tt.StoreCost(7, 9.0);  // ignored: first writer wins
  auto cost = tt.LookupCost(7);
  ASSERT_TRUE(cost.has_value());
  EXPECT_DOUBLE_EQ(*cost, 3.5);
}

TEST(TranspositionTable, AccumulatesRewards) {
  TranspositionTable tt(2);
  tt.AccumulateReward(5, 0.25);
  tt.AccumulateReward(5, 0.75);
  auto e = tt.Get(5);
  EXPECT_EQ(e.visits, 2u);
  EXPECT_DOUBLE_EQ(e.total_reward, 1.0);
}

TEST(TranspositionTable, ConcurrentVisitsInsertEachKeyExactlyOnce) {
  constexpr size_t kThreads = 8;
  constexpr size_t kKeys = 512;
  TranspositionTable tt(16);
  std::vector<std::atomic<int>> first_visits(kKeys);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tt, &first_visits] {
      for (size_t k = 0; k < kKeys; ++k) {
        // Spread keys over shards: the canonical hashes this table is keyed
        // by are pre-mixed, so a multiplicative spread mimics real keys.
        uint64_t key = k * 0x9e3779b97f4a7c15ULL + 1;
        if (tt.Visit(key)) first_visits[k].fetch_add(1);
        tt.AccumulateReward(key, 0.5);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (size_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(first_visits[k].load(), 1) << "key " << k;
  }
  EXPECT_EQ(tt.size(), kKeys);
  EXPECT_EQ(tt.transposition_hits(), kKeys * (kThreads - 1));
}

TEST(TranspositionTable, ConcurrentCostStoresAgreeAfterwards) {
  constexpr size_t kThreads = 8;
  TranspositionTable tt(8);
  std::vector<std::thread> threads;
  std::vector<double> seen(kThreads, -1.0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tt, &seen, t] {
      tt.StoreCost(99, static_cast<double>(t) + 1.0);
      seen[t] = *tt.LookupCost(99);
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one writer won; every reader that looked afterwards saw the
  // winner (values never drift once stored).
  double winner = *tt.LookupCost(99);
  EXPECT_GE(winner, 1.0);
  EXPECT_LE(winner, static_cast<double>(kThreads));
  for (size_t t = 0; t < kThreads; ++t) EXPECT_DOUBLE_EQ(seen[t], winner);
}

// --------------------------------------------------- GenerationService

JobSpec SmallJob(uint64_t seed) {
  JobSpec spec;
  spec.sqls = {
      "select a from t where x between 1 and 5",
      "select b from t where x between 2 and 9",
      "select b from t",
  };
  spec.options.screen = {80, 24};
  spec.options.search.time_budget_ms = 0;  // iteration-capped: deterministic
  spec.options.search.max_iterations = 4;
  spec.options.search.seed = seed;
  return spec;
}

TEST(GenerationService, CompletesConcurrentBatch) {
  GenerationService::Options opts;
  opts.num_threads = 4;
  GenerationService service(opts);
  std::vector<JobSpec> jobs;
  for (uint64_t s = 0; s < 8; ++s) jobs.push_back(SmallJob(s));
  auto futures = service.SubmitBatch(std::move(jobs));
  ASSERT_EQ(futures.size(), 8u);
  for (auto& f : futures) {
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(std::isfinite(result->cost.total()));
    EXPECT_GT(result->widgets.CountInteractive(), 0u);
  }
  EXPECT_EQ(service.jobs_submitted(), 8u);
  EXPECT_EQ(service.jobs_executed(), 8u);
  EXPECT_EQ(service.cache_hits(), 0u);
}

TEST(GenerationService, IdenticalResubmissionHitsCache) {
  GenerationService::Options opts;
  opts.num_threads = 2;
  GenerationService service(opts);
  auto first = service.Submit(SmallJob(7)).get();
  ASSERT_TRUE(first.ok());
  auto second = service.Submit(SmallJob(7)).get();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.cache_hits(), 1u);
  EXPECT_EQ(service.jobs_executed(), 1u);  // the second never ran
  EXPECT_DOUBLE_EQ(first->cost.total(), second->cost.total());
}

TEST(GenerationService, JobKeyIgnoresQueryOrderAndWhitespace) {
  JobSpec a = SmallJob(1);
  JobSpec b = SmallJob(1);
  std::swap(b.sqls[0], b.sqls[2]);        // order must not matter
  b.sqls[1] = "select  b  from   t  where x between 2 and 9";  // nor format
  EXPECT_EQ(GenerationService::JobKey(a), GenerationService::JobKey(b));

  JobSpec c = SmallJob(2);  // different seed: different result, different key
  EXPECT_NE(GenerationService::JobKey(a), GenerationService::JobKey(c));

  JobSpec d = SmallJob(1);
  d.sqls.push_back("select a from t");  // different log
  EXPECT_NE(GenerationService::JobKey(a), GenerationService::JobKey(d));
}

TEST(GenerationService, DestructionWithInFlightJobsIsSafe) {
  // The service must join its workers before tearing down the cache state
  // they touch; the future must still resolve (the pool drains on exit).
  auto future = [] {
    GenerationService::Options opts;
    opts.num_threads = 2;
    GenerationService service(opts);
    return service.Submit(SmallJob(3));
  }();  // service destroyed here, job possibly still running
  auto result = future.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(GenerationService, JobKeySeparatesBackends) {
  // The backend is user-selectable per API request; two requests differing
  // only in backend must not alias one cached result (the response reports
  // the backend sessions will execute on).
  JobSpec a = SmallJob(1);
  a.options.backend = BackendKind::kColumnar;
  JobSpec b = SmallJob(1);
  b.options.backend = BackendKind::kReference;
  EXPECT_NE(GenerationService::JobKey(a), GenerationService::JobKey(b));
}

// ----------------------------------------------------- tracked job protocol

TEST(GenerationService, TrackedJobRunsToDone) {
  GenerationService::Options opts;
  opts.num_threads = 2;
  GenerationService service(opts);
  auto id = service.SubmitJob(SmallJob(11));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kDone);
  EXPECT_TRUE(info->terminal());
  ASSERT_NE(info->result, nullptr);
  EXPECT_GT(info->result->widgets.CountInteractive(), 0u);
  EXPECT_FALSE(info->cache_hit);
  EXPECT_EQ(service.jobs_pending(), 0u);

  // Identical resubmission: immediate kDone via the cache.
  auto id2 = service.SubmitJob(SmallJob(11));
  ASSERT_TRUE(id2.ok());
  auto info2 = service.GetJob(*id2);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info2->state, JobState::kDone);
  EXPECT_TRUE(info2->cache_hit);
  EXPECT_EQ(info2->run_ms, 0);
}

TEST(GenerationService, FailedJobReportsError) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  GenerationService service(opts);
  JobSpec bad = SmallJob(1);
  bad.sqls = {"this is not sql at all ((("};
  auto id = service.SubmitJob(std::move(bad));
  ASSERT_TRUE(id.ok());
  auto info = service.WaitJob(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, JobState::kFailed);
  EXPECT_FALSE(info->error.ok());
  EXPECT_EQ(info->result, nullptr);
}

TEST(GenerationService, UnknownJobIdIsNotFound) {
  GenerationService service(GenerationService::Options{});
  auto info = service.GetJob(12345);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

TEST(GenerationService, BoundedQueueRejectsWithResourceExhausted) {
  // One worker blocked on a long-ish job + queue bound 1: the next
  // submission must be rejected, not enqueued.
  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.max_pending_jobs = 1;
  opts.cache_capacity = 0;  // no cross-talk via the result cache
  GenerationService service(opts);
  auto first = service.SubmitJob(SmallJob(21));
  ASSERT_TRUE(first.ok());
  Result<GenerationService::JobId> second = service.SubmitJob(SmallJob(22));
  Result<GenerationService::JobId> third = service.SubmitJob(SmallJob(23));
  // At least one of the two extra submissions must have been rejected (the
  // first job may or may not have finished in between).
  const bool rejected = !second.ok() || !third.ok();
  EXPECT_TRUE(rejected);
  if (!second.ok()) {
    EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  }
  if (!third.ok()) {
    EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  }
  ASSERT_TRUE(service.WaitJob(*first).ok());
}

TEST(GenerationService, CancelQueuedJob) {
  // Saturate the single worker so a second job stays queued long enough to
  // cancel. Cancellation of running/terminal jobs is a documented no-op.
  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.cache_capacity = 0;
  GenerationService service(opts);
  std::vector<GenerationService::JobId> ids;
  for (uint64_t s = 0; s < 6; ++s) {
    auto id = service.SubmitJob(SmallJob(30 + s));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  // Cancel from the back: the last job is most likely still queued.
  auto cancelled = service.CancelJob(ids.back());
  ASSERT_TRUE(cancelled.ok());
  for (GenerationService::JobId id : ids) {
    auto info = service.WaitJob(id);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info->terminal());
    if (info->state == JobState::kCancelled) {
      EXPECT_EQ(info->error.code(), StatusCode::kCancelled);
      EXPECT_EQ(info->result, nullptr);
    }
  }
  EXPECT_EQ(service.jobs_pending(), 0u);
}

TEST(GenerationService, SubmitFutureAdapterMatchesTrackedPath) {
  // Submit is a future adapter over SubmitJob: both paths observe the same
  // tracked job machinery (submitted counter includes both).
  GenerationService::Options opts;
  opts.num_threads = 2;
  GenerationService service(opts);
  auto via_future = service.Submit(SmallJob(41)).get();
  ASSERT_TRUE(via_future.ok());
  auto id = service.SubmitJob(SmallJob(41));
  ASSERT_TRUE(id.ok());
  auto via_job = service.WaitJob(*id);
  ASSERT_TRUE(via_job.ok());
  ASSERT_EQ(via_job->state, JobState::kDone);
  EXPECT_TRUE(via_job->cache_hit);  // same spec: cache answers the second
  EXPECT_DOUBLE_EQ(via_future->cost.total(), via_job->result->cost.total());
  EXPECT_EQ(service.jobs_submitted(), 2u);
}

TEST(GenerationService, JobHistoryEvictsOldestFinished) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.job_history_capacity = 2;
  GenerationService service(opts);
  std::vector<GenerationService::JobId> ids;
  for (uint64_t s = 0; s < 4; ++s) {
    auto id = service.SubmitJob(SmallJob(50 + s));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    ASSERT_TRUE(service.WaitJob(*id).ok());
  }
  // Only the 2 most recent survive.
  EXPECT_EQ(service.GetJob(ids[0]).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.GetJob(ids[1]).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.GetJob(ids[2]).ok());
  EXPECT_TRUE(service.GetJob(ids[3]).ok());
}

TEST(GenerationService, CacheEvictsLeastRecentlyUsed) {
  GenerationService::Options opts;
  opts.num_threads = 1;
  opts.cache_capacity = 1;
  GenerationService service(opts);
  ASSERT_TRUE(service.Submit(SmallJob(1)).get().ok());
  ASSERT_TRUE(service.Submit(SmallJob(2)).get().ok());  // evicts job 1
  ASSERT_TRUE(service.Submit(SmallJob(1)).get().ok());  // must re-execute
  EXPECT_EQ(service.cache_hits(), 0u);
  EXPECT_EQ(service.jobs_executed(), 3u);
}

}  // namespace
}  // namespace ifgen
