#include <gtest/gtest.h>

#include <thread>

#include "core/interface_generator.h"
#include "core/session.h"
#include "engine/backend.h"
#include "engine/columnar/columnar_backend.h"
#include "engine/executor.h"
#include "runtime/service.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "util/rng.h"
#include "workload/loader.h"

namespace ifgen {
namespace {

Database TinyDb() {
  TableSchema schema{"t",
                     {{"a", ColumnType::kInt64},
                      {"b", ColumnType::kDouble},
                      {"s", ColumnType::kString}}};
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({Value(int64_t{1}), Value(1.5), Value(std::string("x"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{2}), Value(2.5), Value(std::string("y"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{3}), Value(3.5), Value(std::string("x"))}).ok());
  EXPECT_TRUE(t.AppendRow({Value(int64_t{4}), Value(), Value(std::string("z"))}).ok());
  Database db;
  db.AddTable(std::move(t));
  return db;
}

/// A table exercising hash-aggregate edge cases: NULL group keys and NULL
/// aggregate inputs.
Database NullGroupDb() {
  TableSchema schema{"g", {{"k", ColumnType::kString}, {"v", ColumnType::kDouble}}};
  Table t(schema);
  EXPECT_TRUE(t.AppendRow({Value(std::string("a")), Value(1.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(std::string("a")), Value()}).ok());
  EXPECT_TRUE(t.AppendRow({Value(), Value(3.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(), Value(4.0)}).ok());
  EXPECT_TRUE(t.AppendRow({Value(std::string("b")), Value()}).ok());
  Database db;
  db.AddTable(std::move(t));
  return db;
}

/// Queries with reference semantics every backend must reproduce. (NULL
/// ordering in `<`-style comparisons is deliberately avoided: the SQLite
/// backend follows SQL three-valued logic there, the in-process engines
/// order NULLs first — see docs/engine.md. TOP/LIMIT without a total
/// ORDER BY relies on SQLite scanning in rowid = insertion order, which
/// current SQLite does for these fresh single-table stores.)
const std::vector<std::string>& TinyBattery() {
  static const std::vector<std::string> kQueries = {
      "select a from t where b > 2.0",
      "select * from t",
      "select count(*) from t where s = 'x'",
      "select count(b), sum(b), avg(b), min(b), max(b) from t",
      "select s, count(*) from t group by s order by s",
      "select count(*) from t where a > 100",
      "select a from t order by a desc limit 2",
      "select top 2 a from t",
      "select a from t where a between 2 and 3",
      "select a from t where a in (1, 4)",
      "select a from t where s like 'x%'",
      "select distinct s from t",
      "select a from t where not (a = 1) and (s = 'x' or s = 'y')",
      "select a, b from t where a >= 2 and b >= 0.0 order by b desc",
      "select s, avg(b), max(a) from t group by s order by s",
      "select a * 2 as d from t where a <> 3 order by d",
  };
  return kQueries;
}

TEST(Parameterize, ExtractsWhereAndLimitLiterals) {
  Ast q = *ParseQuery("select top 5 a from t where a > 3 and s = 'x' limit 9");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq->params.size(), 4u);  // 3, 'x', 5 (top), 9 (limit)
  EXPECT_NE(pq->key.find("?1"), std::string::npos);
  EXPECT_EQ(pq->key.find("'x'"), std::string::npos) << pq->key;
  // Binding the extracted params back recovers the original query.
  auto bound = BindParams(pq->shape, pq->params);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(*Unparse(*bound), *Unparse(q));
}

TEST(Parameterize, RejectsAlreadyParameterizedShape) {
  Ast q = *ParseQuery("select top 3 a from t where a > 1");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  // Re-parameterizing a shape (TOP value "?1") must error, not throw.
  auto again = ParameterizeQuery(pq->shape);
  EXPECT_FALSE(again.ok());
}

TEST(SqlKeyedCache, CapFlushesWholesale) {
  SqlKeyedCache<const int> cache(2);
  cache.Insert("a", std::make_shared<const int>(1));
  cache.Insert("b", std::make_shared<const int>(2));
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert("c", std::make_shared<const int>(3));  // full -> flush, then insert
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
}

TEST(Parameterize, ProjectionLiteralsStayInline) {
  Ast q = *ParseQuery("select a + 1 from t where a > 2");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  // Only the WHERE literal is parameterized; the SELECT-list literal names
  // the output column and must stay part of the shape.
  EXPECT_EQ(pq->params.size(), 1u);
  EXPECT_NE(pq->key.find("a + 1"), std::string::npos) << pq->key;
}

TEST(Backend, AvailableKindsIncludeReferenceAndColumnar) {
  EXPECT_TRUE(BackendAvailable(BackendKind::kReference));
  EXPECT_TRUE(BackendAvailable(BackendKind::kColumnar));
  std::vector<BackendKind> kinds = AvailableBackends();
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], BackendKind::kReference);
}

TEST(Backend, TinyBatteryAgreesAcrossAllBackends) {
  Database db = TinyDb();
  Status s = VerifyBackendsAgree(db, TinyBattery(), AvailableBackends());
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(Backend, WorkloadsAgreeAcrossAllBackends) {
  auto workloads = LoadAllWorkloads(300);
  ASSERT_TRUE(workloads.ok()) << workloads.status().ToString();
  for (const WorkloadBundle& w : *workloads) {
    Status s = VerifyBackendsAgree(w.db, w.log, AvailableBackends());
    EXPECT_TRUE(s.ok()) << w.name << ": " << s.ToString();
  }
}

TEST(Backend, PlanCacheRebindsInsteadOfRecompiling) {
  Database db = TinyDb();
  for (BackendKind kind : AvailableBackends()) {
    auto backend = CreateBackend(kind, &db);
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    auto r1 = (*backend)->ExecuteSql("select a from t where a > 1");
    auto r2 = (*backend)->ExecuteSql("select a from t where a > 3");
    ASSERT_TRUE(r1.ok() && r2.ok()) << BackendKindName(kind);
    // Same shape, different literals: one compilation, one cache hit, and
    // genuinely different results from the rebound parameters.
    EXPECT_EQ(r1->num_rows(), 3u) << BackendKindName(kind);
    EXPECT_EQ(r2->num_rows(), 1u) << BackendKindName(kind);
    BackendStats stats = (*backend)->stats();
    EXPECT_EQ(stats.prepares, 1u) << BackendKindName(kind);
    EXPECT_EQ(stats.plan_cache_hits, 1u) << BackendKindName(kind);
    EXPECT_EQ(stats.executions, 2u) << BackendKindName(kind);
  }
}

TEST(Backend, DistinctShapesCompileSeparately) {
  Database db = TinyDb();
  auto backend = CreateBackend(BackendKind::kColumnar, &db);
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE((*backend)->ExecuteSql("select a from t where a > 1").ok());
  ASSERT_TRUE((*backend)->ExecuteSql("select b from t where a > 1").ok());
  EXPECT_EQ((*backend)->stats().prepares, 2u);
}

TEST(Backend, ErrorsMatchReferenceSemantics) {
  Database db = TinyDb();
  for (BackendKind kind : AvailableBackends()) {
    auto backend = CreateBackend(kind, &db);
    ASSERT_TRUE(backend.ok());
    EXPECT_FALSE((*backend)->ExecuteSql("select a from missing").ok())
        << BackendKindName(kind);
    EXPECT_FALSE((*backend)->ExecuteSql("select nope from t").ok())
        << BackendKindName(kind);
  }
  // Unknown functions are rejected by the in-process engines at compile
  // time (SQLite has its own function library, so it is not pinned here).
  for (BackendKind kind : {BackendKind::kReference, BackendKind::kColumnar}) {
    auto backend = CreateBackend(kind, &db);
    EXPECT_FALSE((*backend)->ExecuteSql("select frob(a) from t").ok())
        << BackendKindName(kind);
  }
}

TEST(Backend, SqliteGatedByBuildOption) {
  Database db = TinyDb();
  auto backend = CreateBackend(BackendKind::kSqlite, &db);
  if (BackendAvailable(BackendKind::kSqlite)) {
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    EXPECT_EQ((*backend)->name(), "sqlite");
  } else {
    EXPECT_FALSE(backend.ok());
  }
}

// ---------------------------------------------------------------------------
// Columnar hash-aggregate edge cases.

TEST(ColumnarAggregate, NullGroupKeysMatchReference) {
  Database db = NullGroupDb();
  const std::vector<std::string> queries = {
      "select k, count(*), count(v), sum(v), avg(v), min(v), max(v) from g group by k",
      "select k, count(*) from g group by k order by k",
  };
  Status s = VerifyBackendsAgree(db, queries,
                                 {BackendKind::kReference, BackendKind::kColumnar});
  EXPECT_TRUE(s.ok()) << s.ToString();

  // Pin the semantics, not just the agreement: the NULL key forms its own
  // group, and NULL aggregate inputs are skipped.
  auto backend = CreateBackend(BackendKind::kColumnar, &db);
  auto r = (*backend)->ExecuteSql(
      "select k, count(*), count(v), sum(v) from g group by k");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Table sorted = SortedByAllColumns(*r);
  ASSERT_EQ(sorted.num_rows(), 3u);
  EXPECT_TRUE(sorted.At(0, 0).is_null());          // NULL group first
  EXPECT_EQ(sorted.At(0, 1).AsInt(), 2);           // two NULL-key rows
  EXPECT_EQ(sorted.At(0, 2).AsInt(), 2);           // both values non-null
  EXPECT_DOUBLE_EQ(sorted.At(0, 3).AsDouble(), 7.0);
  EXPECT_EQ(sorted.At(1, 0).AsString(), "a");
  EXPECT_EQ(sorted.At(1, 2).AsInt(), 1);           // NULL v skipped by count(v)
  EXPECT_EQ(sorted.At(2, 0).AsString(), "b");
  EXPECT_TRUE(sorted.At(2, 3).is_null());          // sum over all-NULL group
}

TEST(ColumnarAggregate, EmptyInputEdgeCases) {
  Database db = NullGroupDb();
  auto backend = CreateBackend(BackendKind::kColumnar, &db);
  ASSERT_TRUE(backend.ok());

  // Grouped aggregate over zero rows: zero groups.
  auto grouped = (*backend)->ExecuteSql(
      "select k, count(*) from g where v > 100 group by k");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  EXPECT_EQ(grouped->num_rows(), 0u);

  // Ungrouped aggregates over zero rows: exactly one row, count 0 and NULL
  // for the value aggregates.
  auto scalar = (*backend)->ExecuteSql(
      "select count(*), sum(v), avg(v), min(v) from g where v > 100");
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  ASSERT_EQ(scalar->num_rows(), 1u);
  EXPECT_EQ(scalar->At(0, 0).AsInt(), 0);
  EXPECT_TRUE(scalar->At(0, 1).is_null());
  EXPECT_TRUE(scalar->At(0, 2).is_null());
  EXPECT_TRUE(scalar->At(0, 3).is_null());

  // Same two queries must also agree with the reference executor.
  Status s = VerifyBackendsAgree(
      db,
      {"select k, count(*) from g where v > 100 group by k",
       "select count(*), sum(v), avg(v), min(v) from g where v > 100"},
      {BackendKind::kReference, BackendKind::kColumnar});
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(Backend, StickyOrderByOverMissingColumnToleratedForTinyResults) {
  // A widget state can combine a projection variant with a sticky ORDER BY
  // over a column it no longer outputs. The original executor only
  // resolved ORDER BY when the result had >1 rows; both in-process
  // backends must preserve that (the 1-row aggregate below used to work
  // and must keep working; the multi-row variant errors on both).
  Database db = TinyDb();
  for (BackendKind kind : {BackendKind::kReference, BackendKind::kColumnar}) {
    auto backend = CreateBackend(kind, &db);
    ASSERT_TRUE(backend.ok());
    auto one_row = (*backend)->ExecuteSql("select count(*) from t order by b");
    EXPECT_TRUE(one_row.ok()) << BackendKindName(kind) << ": "
                              << one_row.status().ToString();
    auto multi_row = (*backend)->ExecuteSql("select a from t order by frobnicate");
    EXPECT_FALSE(multi_row.ok()) << BackendKindName(kind);
  }
}

TEST(ColumnarAggregate, ArithmeticOverAggregates) {
  Database db = TinyDb();
  Status s = VerifyBackendsAgree(
      db, {"select sum(b) / count(b) from t", "select s, max(a) - min(a) from t group by s"},
      {BackendKind::kReference, BackendKind::kColumnar});
  EXPECT_TRUE(s.ok()) << s.ToString();
}

// ---------------------------------------------------------------------------
// Property tests: ParameterizeQuery / BindParams round-trip on fuzzed ASTs.
//
// The property is P(B(P(q))) == P(q): parameterizing, binding the extracted
// literals back, and re-parameterizing must reproduce the identical shape key
// and the identical parameter values (exact type class and content) — for
// arbitrary predicate trees over literals including negatives, empty strings,
// embedded quotes, and exponent-form doubles. This pins the traversal-order
// agreement between ParameterizeExpr and BindExpr and the literal-spelling
// round-trip (LiteralText -> ParseNumericLiteral).

namespace property {

Ast RandomLiteral(Rng* rng) {
  switch (rng->UniformIndex(10)) {
    case 0:
      return Str("");  // empty string
    case 1:
      return Str("it's");  // embedded single quote (unparser re-escapes)
    case 2:
      return Str("a\"b \\ c%_");  // double quote, backslash, LIKE metachars
    case 3:
      return Str("123");  // digit-only string must STAY a string
    case 4:
      return Num(int64_t{-5});
    case 5:
      return Num("-2.75");
    case 6:
      return Num("0");
    case 7:
      return Num("1e-9");  // exponent form parses as double
    case 8:
      return Num(int64_t{9223372036854775807LL});  // int64 max survives
    default:
      return rng->Bernoulli(0.5)
                 ? Num(rng->UniformInt(-1000000, 1000000))
                 : Num(std::to_string(rng->UniformDouble(-1000.0, 1000.0)));
  }
}

Ast RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.5)) {
    static const char* kCmps[] = {"=", "<>", "<", "<=", ">", ">=", "like"};
    switch (rng->UniformIndex(4)) {
      case 0:
        return Ast(Symbol::kBiExpr, kCmps[rng->UniformIndex(7)],
                   {Col("a"), RandomLiteral(rng)});
      case 1:
        return Ast(Symbol::kBetween,
                   {Col("b"), RandomLiteral(rng), RandomLiteral(rng)});
      case 2: {
        std::vector<Ast> items;
        size_t n = 1 + rng->UniformIndex(3);
        for (size_t i = 0; i < n; ++i) items.push_back(RandomLiteral(rng));
        return Ast(Symbol::kIn, {Col("s"), Ast(Symbol::kList, std::move(items))});
      }
      default:
        // Literal-vs-literal comparisons also occur transiently under rule
        // rewrites; both sides parameterize.
        return Ast(Symbol::kBiExpr, ">", {RandomLiteral(rng), RandomLiteral(rng)});
    }
  }
  switch (rng->UniformIndex(3)) {
    case 0:
      return Ast(Symbol::kAnd, {RandomPredicate(rng, depth - 1),
                                RandomPredicate(rng, depth - 1)});
    case 1:
      return Ast(Symbol::kOr, {RandomPredicate(rng, depth - 1),
                               RandomPredicate(rng, depth - 1)});
    default:
      return Ast(Symbol::kNot, {RandomPredicate(rng, depth - 1)});
  }
}

Ast RandomQuery(Rng* rng) {
  std::vector<Ast> clauses;
  clauses.push_back(Ast(Symbol::kProject, {Col("a"), Col("b")}));
  if (rng->Bernoulli(0.3)) {
    clauses.push_back(
        Ast(Symbol::kTop, std::to_string(rng->UniformInt(0, 50))));
  }
  clauses.push_back(Ast(Symbol::kFrom, {Ast(Symbol::kTable, "t")}));
  clauses.push_back(Ast(Symbol::kWhere, {RandomPredicate(rng, 3)}));
  if (rng->Bernoulli(0.3)) {
    clauses.push_back(
        Ast(Symbol::kOrderBy, {Ast(Symbol::kOrderKey, "desc", {Col("a")})}));
  }
  if (rng->Bernoulli(0.3)) {
    clauses.push_back(
        Ast(Symbol::kLimit, std::to_string(rng->UniformInt(0, 50))));
  }
  return Ast(Symbol::kSelect, std::move(clauses));
}

bool ValuesIdentical(const Value& x, const Value& y) {
  if (x.is_null() || y.is_null()) return x.is_null() && y.is_null();
  if (x.is_int() != y.is_int() || x.is_double() != y.is_double() ||
      x.is_string() != y.is_string()) {
    return false;
  }
  if (x.is_int()) return x.AsInt() == y.AsInt();
  if (x.is_double()) return x.AsDouble() == y.AsDouble();
  return x.AsString() == y.AsString();
}

}  // namespace property

TEST(ParameterizeProperty, RoundTripOnFuzzedAsts) {
  Rng rng(0xF022);
  for (int iter = 0; iter < 500; ++iter) {
    Ast q = property::RandomQuery(&rng);
    auto pq = ParameterizeQuery(q);
    ASSERT_TRUE(pq.ok()) << iter << ": " << pq.status().ToString() << "\n"
                         << q.ToSExpr();
    auto bound = BindParams(pq->shape, pq->params);
    ASSERT_TRUE(bound.ok()) << iter << ": " << bound.status().ToString();
    auto pq2 = ParameterizeQuery(*bound);
    ASSERT_TRUE(pq2.ok()) << iter << ": " << pq2.status().ToString();
    EXPECT_EQ(pq2->key, pq->key) << iter;
    ASSERT_EQ(pq2->params.size(), pq->params.size()) << iter;
    for (size_t i = 0; i < pq->params.size(); ++i) {
      EXPECT_TRUE(property::ValuesIdentical(pq->params[i], pq2->params[i]))
          << iter << " param " << i << ": " << pq->params[i].ToString() << " vs "
          << pq2->params[i].ToString();
    }
    // The shape itself is a fixed point: parameterizing strips every
    // literal, so the bound query's shape is structurally the original's.
    EXPECT_EQ(pq2->shape, pq->shape) << iter;
  }
}

TEST(ParameterizeProperty, MalformedBindsRejectedCleanly) {
  Ast q = *ParseQuery("select top 3 a from t where a > 5 and s = 'x' limit 7");
  auto pq = ParameterizeQuery(q);
  ASSERT_TRUE(pq.ok());
  ASSERT_EQ(pq->params.size(), 4u);

  // NULL parameter: no literal spelling — must error, not crash.
  std::vector<Value> with_null = pq->params;
  with_null[0] = Value();
  EXPECT_FALSE(BindParams(pq->shape, with_null).ok());

  // Wrong arity in both directions.
  std::vector<Value> short_params(pq->params.begin(), pq->params.end() - 1);
  EXPECT_FALSE(BindParams(pq->shape, short_params).ok());
  EXPECT_FALSE(BindParams(pq->shape, {}).ok());

  // Non-integer TOP/LIMIT binding.
  std::vector<Value> bad_limit = pq->params;
  for (size_t i = 0; i < bad_limit.size(); ++i) {
    if (bad_limit[i].is_int() && bad_limit[i].AsInt() == 3) {
      bad_limit[i] = Value(std::string("three"));
    }
  }
  EXPECT_FALSE(BindParams(pq->shape, bad_limit).ok());

  // Executing a shape through a backend with NULL params must also error
  // cleanly (the prepared plan re-validates bindings).
  Database db = TinyDb();
  for (BackendKind kind : AvailableBackends()) {
    auto backend = CreateBackend(kind, &db);
    ASSERT_TRUE(backend.ok());
    auto plan = (*backend)->Prepare(*ParseQuery("select a from t where a > 1"));
    ASSERT_TRUE(plan.ok()) << BackendKindName(kind);
    EXPECT_FALSE((*plan)->Execute({}).ok()) << BackendKindName(kind);
  }
}

// ---------------------------------------------------------------------------
// Executor::ExecuteSql prepared-AST cache (the re-parse fix).

TEST(ExecutorSqlCache, ReusesParsedQueries) {
  Database db = TinyDb();
  Executor ex(&db);
  EXPECT_EQ(ex.sql_cache_hits(), 0u);
  ASSERT_TRUE(ex.ExecuteSql("select a from t where a > 1").ok());
  EXPECT_EQ(ex.sql_cache_hits(), 0u);
  EXPECT_EQ(ex.sql_cache_misses(), 1u);
  // The widget-transition pattern: the same SQL text executed repeatedly.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ex.ExecuteSql("select a from t where a > 1").ok());
  }
  EXPECT_EQ(ex.sql_cache_hits(), 5u);
  EXPECT_EQ(ex.sql_cache_misses(), 1u);
  ASSERT_TRUE(ex.ExecuteSql("select a from t where a > 2").ok());
  EXPECT_EQ(ex.sql_cache_misses(), 2u);
}

// ---------------------------------------------------------------------------
// Wiring: session and service.

GeneratorOptions FastOptions() {
  GeneratorOptions opt;
  opt.search.time_budget_ms = 0;
  opt.search.max_iterations = 10;
  opt.search.seed = 5;
  return opt;
}

TEST(BackendWiring, SessionExecutesThroughSelectedBackend) {
  auto w = LoadWorkload("flights", 300);
  ASSERT_TRUE(w.ok());
  auto iface = GenerateInterface(w->log, FastOptions());
  ASSERT_TRUE(iface.ok()) << iface.status().ToString();
  auto session = InterfaceSession::Create(*iface, FastOptions().constants);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  auto backend = CreateBackend(GeneratorOptions().backend, &w->db);
  ASSERT_TRUE(backend.ok());
  auto queries = ParseQueries(w->log);
  ASSERT_TRUE(queries.ok());
  size_t executed = 0;
  for (const Ast& q : *queries) {
    if (!session->LoadQuery(q).ok()) continue;  // inexpressible under tiny search
    auto via_backend = session->ExecuteCurrent(backend->get());
    ASSERT_TRUE(via_backend.ok()) << via_backend.status().ToString();
    auto via_executor = session->ExecuteCurrent(w->db);
    ASSERT_TRUE(via_executor.ok());
    Status eq = TablesEquivalent(*via_executor, *via_backend);
    EXPECT_TRUE(eq.ok()) << eq.ToString();
    ++executed;
  }
  ASSERT_GT(executed, 0u);
  EXPECT_EQ((*backend)->stats().executions, executed);
}

TEST(BackendWiring, ServiceCachesBackendsPerDatabaseAndKind) {
  auto w = LoadWorkload("sdss", 100);
  ASSERT_TRUE(w.ok());
  GenerationService service;
  auto b1 = service.BackendFor(&w->db, BackendKind::kColumnar);
  auto b2 = service.BackendFor(&w->db, BackendKind::kColumnar);
  ASSERT_TRUE(b1.ok() && b2.ok());
  EXPECT_EQ(b1->get(), b2->get());  // shared instance -> shared plan cache
  auto b3 = service.BackendFor(&w->db, BackendKind::kReference);
  ASSERT_TRUE(b3.ok());
  EXPECT_NE(b1->get(), b3->get());
  EXPECT_EQ(service.backends_created(), 2u);
}

TEST(BackendConcurrency, ParallelExecutionsOnSharedBackend) {
  Database db = TinyDb();
  for (BackendKind kind : AvailableBackends()) {
    auto backend = CreateBackend(kind, &db);
    ASSERT_TRUE(backend.ok());
    std::vector<std::thread> threads;
    std::atomic<size_t> failures{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&backend, &failures] {
        for (int i = 0; i < 25; ++i) {
          for (const std::string& sql : TinyBattery()) {
            if (!(*backend)->ExecuteSql(sql).ok()) {
              failures.fetch_add(1);
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0u) << BackendKindName(kind);
  }
}

}  // namespace
}  // namespace ifgen
