// Offline prior fitter (docs/learning.md): runs MCTS over the bundled
// workload logs, accumulates per-rule search outcomes
// (SearchStats::rule_uses / rule_reward_sum), fits ActionPriorModel rule
// weights from them (learn/prior_fit.h), and writes the result as the
// priors.json file the servers load from --experience-dir.
//
//   ./fit_priors --out /var/lib/ifgen/priors.json --iterations 400
//
// Flags: --out PATH (default priors.json), --rows N (rows per workload
// table; 0 = defaults), --iterations N (search iterations per run; default
// 400), --runs N (seeds swept per workload; default 3), --workload NAME
// (fit one workload instead of all).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/interface_generator.h"
#include "learn/prior_fit.h"
#include "rules/rule.h"
#include "workload/loader.h"

using namespace ifgen;  // NOLINT

namespace {

int64_t FlagInt(int argc, char** argv, const char* name, int64_t dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return dflt;
}

const char* FlagStr(int argc, char** argv, const char* name, const char* dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = FlagStr(argc, argv, "--out", "priors.json");
  const size_t rows = static_cast<size_t>(FlagInt(argc, argv, "--rows", 0));
  const size_t iterations =
      static_cast<size_t>(FlagInt(argc, argv, "--iterations", 400));
  const int runs = static_cast<int>(FlagInt(argc, argv, "--runs", 3));
  const std::string only = FlagStr(argc, argv, "--workload", "");

  std::vector<std::string> names;
  if (!only.empty()) {
    names.push_back(only);
  } else {
    names = WorkloadNames();
  }

  // Rule index -> name, for folding the per-run stats vectors. Indices are
  // stable for a fixed RuleSetOptions (the default here, matching what the
  // searches below run with).
  const RuleEngine engine;
  std::map<std::string, learn::RuleOutcome> by_name;

  for (const std::string& name : names) {
    auto bundle = LoadWorkload(name, rows);
    if (!bundle.ok()) {
      std::fprintf(stderr, "workload %s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return 1;
    }
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions opts;
      opts.search.time_budget_ms = 0;
      opts.search.max_iterations = iterations;
      opts.search.seed = 42 + static_cast<uint64_t>(run);
      auto iface = GenerateInterface(bundle->log, opts);
      if (!iface.ok()) {
        std::fprintf(stderr, "workload %s seed %d: %s\n", name.c_str(), run,
                     iface.status().ToString().c_str());
        return 1;
      }
      const SearchStats& stats = iface->stats;
      for (size_t i = 0; i < stats.rule_uses.size(); ++i) {
        if (stats.rule_uses[i] == 0 || i >= engine.num_rules()) continue;
        const std::string rule_name(engine.rule(i).name());
        learn::RuleOutcome& o = by_name[rule_name];
        o.name = rule_name;
        o.uses += stats.rule_uses[i];
        o.reward_sum += stats.rule_reward_sum[i];
      }
      std::printf("workload %-10s seed %llu: %zu iterations, cost %.3f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(opts.search.seed),
                  stats.iterations, iface->cost.total());
    }
  }

  std::vector<learn::RuleOutcome> outcomes;
  outcomes.reserve(by_name.size());
  for (auto& [rule_name, outcome] : by_name) outcomes.push_back(outcome);
  const auto weights = learn::FitPriorWeights(outcomes);
  if (weights.empty()) {
    std::fprintf(stderr,
                 "no rule cleared the min-uses bar; not writing %s "
                 "(increase --iterations or --runs)\n",
                 out.c_str());
    return 1;
  }
  for (const auto& [rule_name, weight] : weights) {
    std::printf("  %-10s -> %.3f\n", rule_name.c_str(), weight);
  }
  if (Status st = learn::SavePriorWeights(out, weights); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu fitted weight(s) to %s\n", weights.size(), out.c_str());
  return 0;
}
