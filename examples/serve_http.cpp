// The serving entry point: workloads + GenerationService + v1 API behind
// the embedded HTTP/SSE front-end. The end-to-end loop the paper motivates
// as a service: POST a query log, poll the job, open a session, drive
// widgets, stream row diffs — all over plain HTTP (see docs/api.md for the
// endpoint contract and a curl walkthrough, examples/web/client.html for a
// browser client).
//
//   ./serve_http --port 8080 --rows 2000 --client examples/web/client.html
//
// Flags: --port N (default 8080; 0 = ephemeral), --host A.B.C.D,
// --rows N (rows per workload table; 0 = defaults), --threads N (HTTP
// workers), --max-pending N (job-queue bound -> HTTP 429),
// --session-ttl-ms N, --sse-max-ms N (cap on one SSE stream's lifetime
// before the client reconnects; covers both session feeds and job
// /stream progress), --client PATH (static HTML served at /),
// --cors ORIGIN (enable cross-origin access for that origin, e.g. "*"
// when opening examples/web/client.html from file://; off by default),
// --log-level LEVEL (debug|info|warning|error|fatal; overrides the
// IFGEN_LOG_LEVEL env var), --trace (record spans into the global ring,
// exported at /v1/trace and per job at /v1/jobs/{id}/trace),
// --experience-dir DIR (or the IFGEN_EXPERIENCE_DIR env var: persist the
// experience store to DIR/http.exp and load fitted prior weights from
// DIR/priors.json — see docs/learning.md).
// SIGINT/SIGTERM shut down cleanly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/api_service.h"
#include "http/api_http.h"
#include "learn/experience.h"
#include "learn/prior_fit.h"
#include "obs/trace.h"
#include "util/logging.h"

using namespace ifgen;  // NOLINT

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int64_t FlagInt(int argc, char** argv, const char* name, int64_t dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return dflt;
}

const char* FlagStr(int argc, char** argv, const char* name, const char* dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  InitLogLevelFromEnv();
  if (const char* level = FlagStr(argc, argv, "--log-level", nullptr)) {
    LogLevel parsed;
    if (!ParseLogLevel(level, &parsed)) {
      std::fprintf(stderr,
                   "bad --log-level '%s' (want debug|info|warning|error|fatal)\n",
                   level);
      return 1;
    }
    SetLogLevel(parsed);
  }
  if (FlagBool(argc, argv, "--trace")) obs::SetTracingEnabled(true);

  api::ApiService::Options opts;
  opts.workload_rows = static_cast<size_t>(FlagInt(argc, argv, "--rows", 0));
  opts.service.max_pending_jobs =
      static_cast<size_t>(FlagInt(argc, argv, "--max-pending", 64));
  opts.session_ttl_ms = FlagInt(argc, argv, "--session-ttl-ms", 10 * 60 * 1000);

  // Persistent experience store (src/learn/): load at startup, save on a
  // cadence and at shutdown. Requests opt in per job via options.experience.
  std::string experience_dir = FlagStr(argc, argv, "--experience-dir", "");
  if (experience_dir.empty()) {
    if (const char* env = std::getenv("IFGEN_EXPERIENCE_DIR")) {
      experience_dir = env;
    }
  }
  std::shared_ptr<learn::ExperienceStore> experience;
  std::string experience_path;
  if (!experience_dir.empty()) {
    experience_path = experience_dir + "/http.exp";
    experience = std::make_shared<learn::ExperienceStore>();
    auto loaded = experience->LoadFrom(experience_path);
    if (loaded.ok() && *loaded > 0) {
      std::printf("loaded %zu experience record(s) from %s\n", *loaded,
                  experience_path.c_str());
    }
    opts.service.experience = experience;
    auto weights = learn::LoadPriorWeights(experience_dir + "/priors.json");
    if (weights.ok()) {
      std::printf("loaded %zu fitted prior weight(s)\n", weights->size());
      opts.learned_prior_weights = std::move(*weights);
    } else if (weights.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "ignoring unreadable prior weights: %s\n",
                   weights.status().ToString().c_str());
    }
  }

  std::printf("loading workloads...\n");
  auto svc = api::ApiService::Create(opts);
  if (!svc.ok()) {
    std::fprintf(stderr, "service init failed: %s\n", svc.status().ToString().c_str());
    return 1;
  }
  api::CatalogResponse catalog = *(*svc)->Catalog();
  for (const api::WorkloadInfo& w : catalog.workloads) {
    std::printf("  workload %-10s %lld queries, %zu table(s)\n", w.name.c_str(),
                static_cast<long long>(w.queries), w.tables.size());
  }

  http::ApiHttpFrontend frontend(svc->get());
  http::ApiHttpFrontend::Options fopts;
  fopts.http.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  fopts.http.port = static_cast<int>(FlagInt(argc, argv, "--port", 8080));
  fopts.http.num_threads = static_cast<size_t>(FlagInt(argc, argv, "--threads", 8));
  fopts.http.cors_allow_origin = FlagStr(argc, argv, "--cors", "");
  fopts.sse_max_duration_ms = FlagInt(argc, argv, "--sse-max-ms", 30000);
  fopts.client_html_path =
      FlagStr(argc, argv, "--client", "examples/web/client.html");
  if (Status st = frontend.Start(fopts); !st.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("listening on http://%s:%d  (/v1/healthz, /v1/catalog; docs/api.md)\n",
              fopts.http.host.c_str(), frontend.port());
  std::fflush(stdout);

  size_t ticks = 0;
  while (g_stop == 0) {
    // The server runs on its own threads; this thread only waits for a
    // shutdown signal (and persists experience every ~10s when configured).
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
    if (experience != nullptr && ++ticks % 100 == 0) {
      if (Status st = experience->SaveTo(experience_path); !st.ok()) {
        std::fprintf(stderr, "periodic experience save failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }
  std::printf("shutting down...\n");
  frontend.Stop();
  if (experience != nullptr) {
    if (Status st = experience->SaveTo(experience_path); !st.ok()) {
      std::fprintf(stderr, "final experience save failed: %s\n",
                   st.ToString().c_str());
    }
  }
  api::StatsResponse stats = *(*svc)->Stats();
  std::printf("served %lld job(s), %lld session(s), %lld interaction step(s)\n",
              static_cast<long long>(stats.jobs_submitted),
              static_cast<long long>(stats.sessions_opened),
              static_cast<long long>(stats.steps));
  return 0;
}
