// Flights dashboard: the second-domain workload (a flight-delay analysis
// session with GROUP BY aggregations). Generates an interface, drives it
// through the runtime, executes the current query against a synthetic
// flights table, and renders the result as an ASCII bar chart — the whole
// interactive-analysis loop the paper motivates, in one binary.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/interface_generator.h"
#include "core/session.h"
#include "interface/render.h"
#include "sql/parser.h"
#include "util/string_util.h"
#include "workload/flights.h"

using namespace ifgen;  // NOLINT

namespace {

void BarChart(const Table& t) {
  // Two-column (label, number) results render as bars.
  if (t.num_columns() < 2 || t.num_rows() == 0) {
    std::printf("%s\n", t.ToString(12).c_str());
    return;
  }
  double max_v = 1e-9;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.At(r, 1).is_numeric()) {
      max_v = std::max(max_v, std::abs(t.At(r, 1).AsDouble()));
    }
  }
  for (size_t r = 0; r < std::min<size_t>(t.num_rows(), 12); ++r) {
    if (!t.At(r, 1).is_numeric()) continue;
    double v = t.At(r, 1).AsDouble();
    int len = static_cast<int>(40.0 * std::abs(v) / max_v);
    std::printf("  %-8s %8.1f |%s\n", Ellipsize(t.At(r, 0).ToString(), 8).c_str(), v,
                std::string(static_cast<size_t>(len), '#').c_str());
  }
}

}  // namespace

int main() {
  const char* env = std::getenv("IFGEN_BUDGET_MS");
  int64_t budget = env != nullptr ? std::atoll(env) : 3000;

  std::printf("== Flights analysis log ==\n");
  for (const std::string& sql : FlightsLog()) std::printf("  %s\n", sql.c_str());

  GeneratorOptions options;
  options.screen = {90, 30};
  options.search.time_budget_ms = budget;
  options.search.seed = 21;
  auto iface = GenerateInterface(FlightsLog(), options);
  if (!iface.ok()) {
    std::printf("generation failed: %s\n", iface.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== Generated dashboard (cost %.2f, %zu widgets, coverage ~%.0f) ==\n",
              iface->cost.total(), iface->widgets.CountInteractive(),
              iface->coverage);
  std::printf("%s\n", RenderAscii(iface->widgets, options.screen).c_str());

  Database db = MakeFlightsDatabase(3000, 99);
  auto session = InterfaceSession::Create(*iface, options.constants);
  if (!session.ok()) {
    std::printf("session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  // Simulate the analyst stepping through three dashboard states.
  auto queries = *ParseQueries(FlightsLog());
  for (size_t i : {size_t{0}, size_t{3}, size_t{5}}) {
    auto report = session->LoadQuery(queries[i]);
    if (!report.ok()) {
      std::printf("q%zu: %s\n", i + 1, report.status().ToString().c_str());
      continue;
    }
    auto sql = session->CurrentSql();
    auto result = session->ExecuteCurrent(db);
    std::printf("== Dashboard state %zu (effort %.2f: %zu widget(s)) ==\n", i + 1,
                report->total(), report->widgets_changed);
    std::printf("query: %s\n", sql.ok() ? sql->c_str() : "?");
    if (result.ok()) {
      BarChart(*result);
    } else {
      std::printf("execution failed: %s\n", result.status().ToString().c_str());
    }
    std::printf("\n");
  }

  // Write the HTML rendering next to the binary for browser inspection.
  std::string html = RenderHtml(iface->widgets, "flights dashboard");
  FILE* f = std::fopen("flights_dashboard.html", "w");
  if (f != nullptr) {
    std::fwrite(html.data(), 1, html.size(), f);
    std::fclose(f);
    std::printf("wrote flights_dashboard.html\n");
  }
  return 0;
}
