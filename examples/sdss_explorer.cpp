// SDSS explorer: reproduces the paper's headline experiment (Figure 6).
// Generates interfaces from the Listing 1 query log under wide and narrow
// screens, for the full log and for queries 6-8, shows a deliberately poor
// (random-walk) interface for contrast, replays the log through the best
// interface, and executes the current query against a synthetic SDSS
// database to stand in for the visualization.
#include <cstdio>
#include <cstdlib>

#include "core/cooccurrence.h"
#include "core/interface_generator.h"
#include "core/session.h"
#include "interface/render.h"
#include "difftree/enumerate.h"
#include "sql/parser.h"
#include "sql/unparser.h"
#include "workload/sdss.h"

using namespace ifgen;  // NOLINT

namespace {

int64_t BudgetMs(int64_t fallback) {
  const char* env = std::getenv("IFGEN_BUDGET_MS");
  return env != nullptr ? std::atoll(env) : fallback;
}

void ShowInterface(const char* title, const GeneratedInterface& iface,
                   const Screen& screen) {
  std::printf("---- %s ----\n", title);
  std::printf("algorithm=%s  cost=%.2f (M=%.2f U=%.2f)  size=%dx%d  "
              "widgets=%zu  coverage~%.0f\n",
              iface.algorithm.c_str(), iface.cost.total(), iface.cost.m_total,
              iface.cost.u_total, iface.cost.layout_width, iface.cost.layout_height,
              iface.widgets.CountInteractive(), iface.coverage);
  std::printf("%s\n", RenderAscii(iface.widgets, screen).c_str());
}

}  // namespace

int main() {
  const std::vector<std::string> log = SdssListing1();
  std::printf("== SDSS query log (paper, Listing 1) ==\n");
  for (size_t i = 0; i < log.size(); ++i) {
    std::printf("%2zu  %s\n", i + 1, log[i].c_str());
  }
  std::printf("\n");

  const Screen wide{100, 40};
  const Screen narrow{34, 12};

  GeneratorOptions options;
  options.search.time_budget_ms = BudgetMs(4000);
  options.search.seed = 11;

  // Figure 6(a): all queries, wide screen.
  options.screen = wide;
  auto fig6a = GenerateInterface(log, options);
  if (!fig6a.ok()) {
    std::printf("6a failed: %s\n", fig6a.status().ToString().c_str());
    return 1;
  }
  ShowInterface("Fig 6(a): all queries, wide screen", *fig6a, wide);

  // Figure 6(b): all queries, narrow screen.
  options.screen = narrow;
  auto fig6b = GenerateInterface(log, options);
  if (!fig6b.ok()) {
    std::printf("6b failed: %s\n", fig6b.status().ToString().c_str());
    return 1;
  }
  ShowInterface("Fig 6(b): all queries, narrow screen", *fig6b, narrow);

  // Figure 6(c): queries 6-8 only.
  options.screen = wide;
  auto fig6c = GenerateInterface(SdssQueries6To8(), options);
  if (!fig6c.ok()) {
    std::printf("6c failed: %s\n", fig6c.status().ToString().c_str());
    return 1;
  }
  ShowInterface("Fig 6(c): queries 6-8", *fig6c, wide);

  // Figure 6(d): a low-reward interface (pure random walk, tiny budget).
  GeneratorOptions bad = options;
  bad.algorithm = Algorithm::kRandom;
  bad.search.time_budget_ms = std::max<int64_t>(200, BudgetMs(4000) / 20);
  bad.search.max_iterations = 2;
  auto fig6d = GenerateInterface(log, bad);
  if (fig6d.ok()) {
    ShowInterface("Fig 6(d): low-reward interface (random walk)", *fig6d, wide);
  }

  // Ongoing-work feature: co-occurrence statistics separate likely from
  // unlikely widget combinations among the queries the interface can express
  // beyond the log.
  {
    auto parsed = ParseQueries(log);
    if (parsed.ok()) {
      CooccurrenceModel model(fig6a->difftree, *parsed);
      auto coverage = EnumerateQueries(fig6a->difftree, 200, 1);
      auto parts = model.PartitionQueries(coverage, 0.5);
      std::printf("---- Coverage analysis (co-occurrence model) ----\n");
      std::printf("expressible (sampled): %zu   likely: %zu   unlikely: %zu\n",
                  coverage.size(), parts.likely.size(), parts.unlikely.size());
      for (size_t i = 0; i < parts.unlikely.size() && i < 3; ++i) {
        auto sql = Unparse(parts.unlikely[i]);
        std::printf("  e.g. unlikely: %s\n",
                    sql.ok() ? sql->c_str() : parts.unlikely[i].ToSExpr().c_str());
      }
      std::printf("\n");
    }
  }

  // Replay the full log through the Figure 6(a) interface and execute the
  // current query against synthetic SDSS data.
  auto queries = ParseQueries(log);
  auto session = InterfaceSession::Create(*fig6a, options.constants);
  if (queries.ok() && session.ok()) {
    std::printf("---- Replaying Listing 1 through the 6(a) interface ----\n");
    double total = 0.0;
    for (size_t i = 0; i < queries->size(); ++i) {
      auto report = session->LoadQuery((*queries)[i]);
      if (!report.ok()) {
        std::printf("  q%zu inexpressible: %s\n", i + 1,
                    report.status().ToString().c_str());
        continue;
      }
      total += report->total();
      std::printf("  q%-2zu: %zu widget(s), effort %.2f\n", i + 1,
                  report->widgets_changed, report->total());
    }
    std::printf("  total replay effort: %.2f\n\n", total);

    Database db = MakeSdssDatabase(300, 2020);
    auto result = session->ExecuteCurrent(db);
    auto sql = session->CurrentSql();
    if (result.ok() && sql.ok()) {
      std::printf("---- Current query & its result (the 'visualization') ----\n");
      std::printf("%s\n%s\n", sql->c_str(), result->ToString(8).c_str());
    }
  }
  return 0;
}
