// Quickstart: generate an interactive interface from the paper's three
// introductory queries (Figure 1) and inspect every artifact on the way:
// ASTs, the initial difftree, the searched difftree, the widget tree, and
// the rendered interface (Figures 1-4 of the paper, end to end).
#include <cstdio>

#include "core/interface_generator.h"
#include "core/session.h"
#include "difftree/builder.h"
#include "interface/render.h"
#include "sql/parser.h"
#include "sql/unparser.h"

using namespace ifgen;  // NOLINT

int main() {
  const std::vector<std::string> queries = {
      "SELECT Sales FROM sales WHERE cty = 'USA'",
      "SELECT Costs FROM sales WHERE cty = 'EUR'",
      "SELECT Costs FROM sales",
  };

  std::printf("== Input queries (paper, Figure 1) ==\n");
  for (const std::string& q : queries) std::printf("  %s\n", q.c_str());

  // 1. Parse into ASTs.
  auto asts = ParseQueries(queries);
  if (!asts.ok()) {
    std::printf("parse error: %s\n", asts.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== ASTs ==\n");
  for (const Ast& a : *asts) std::printf("  %s\n", a.ToSExpr().c_str());

  // 2. The initial difftree: ANY over the query ASTs.
  auto initial = BuildInitialTree(*asts);
  std::printf("\n== Initial difftree (the search start state) ==\n%s\n",
              initial->ToString().c_str());

  // 3. Run the MCTS generator.
  GeneratorOptions options;
  options.screen = {60, 24};
  options.search.time_budget_ms = 1500;
  options.search.seed = 7;
  auto iface = GenerateInterface(queries, options);
  if (!iface.ok()) {
    std::printf("generation failed: %s\n", iface.status().ToString().c_str());
    return 1;
  }

  std::printf("== Searched difftree (compare paper, Figure 4) ==\n%s\n",
              iface->difftree.ToString().c_str());
  std::printf("== Widget tree (compare paper, Figure 3) ==\n%s\n",
              iface->widgets.ToString().c_str());
  std::printf("== Cost ==\n  M (appropriateness) = %.2f\n  U (transitions) = %.2f\n"
              "  total = %.2f   size = %dx%d   coverage ~ %.0f queries\n\n",
              iface->cost.m_total, iface->cost.u_total, iface->cost.total(),
              iface->cost.layout_width, iface->cost.layout_height, iface->coverage);

  std::printf("== Rendered interface (compare paper, Figure 2) ==\n%s\n",
              RenderAscii(iface->widgets, options.screen).c_str());

  // 4. Drive the interface like a user: replay the log and report effort.
  auto session = InterfaceSession::Create(*iface, options.constants);
  if (session.ok()) {
    std::printf("== Replaying the log through the interface ==\n");
    for (size_t i = 0; i < asts->size(); ++i) {
      auto report = session->LoadQuery((*asts)[i]);
      if (!report.ok()) {
        std::printf("  q%zu: %s\n", i + 1, report.status().ToString().c_str());
        continue;
      }
      auto sql = session->CurrentSql();
      std::printf("  q%zu: %zu widget(s) changed, effort %.2f -> %s\n", i + 1,
                  report->widgets_changed, report->total(),
                  sql.ok() ? sql->c_str() : "?");
    }
  }
  return 0;
}
