// Rule playground: demonstrates each transformation rule of Figure 5 on a
// small difftree — before/after structure, language size, and which rules
// are applicable at every step of a factoring chain.
#include <cstdio>

#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "difftree/match.h"
#include "rules/rule.h"
#include "sql/parser.h"

using namespace ifgen;  // NOLINT

namespace {

void ShowApplication(RuleEngine& engine, const DiffTree& before,
                     const RuleApplication& app) {
  std::printf("---- %s ----\n", engine.Describe(before, app).c_str());
  auto after = engine.Apply(before, app);
  if (!after.ok()) {
    std::printf("(not applicable: %s)\n\n", after.status().ToString().c_str());
    return;
  }
  std::printf("before (%0.0f expressible):\n%s", CountExpressible(before),
              before.ToString().c_str());
  std::printf("after  (%0.0f expressible):\n%s\n", CountExpressible(*after),
              after->ToString().c_str());
}

void Demo(const char* title, const std::vector<std::string>& sqls,
          std::string_view rule, int param = -2) {
  std::printf("\n================ %s ================\n", title);
  RuleEngine engine;
  auto queries = *ParseQueries(sqls);
  DiffTree tree = *BuildInitialTree(queries);
  // Walk forward until the requested rule becomes applicable.
  for (int step = 0; step < 12; ++step) {
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (engine.RuleName(app) == rule && (param == -2 || app.param == param)) {
        ShowApplication(engine, tree, app);
        return;
      }
    }
    bool advanced = false;
    for (const auto& app : engine.EnumerateApplications(tree)) {
      if (!engine.IsForward(app)) continue;
      auto next = engine.Apply(tree, app);
      if (!next.ok()) continue;
      tree = std::move(next).MoveValueUnsafe();
      advanced = true;
      break;
    }
    if (!advanced) break;
  }
  std::printf("(rule %s never became applicable)\n", std::string(rule).c_str());
}

}  // namespace

int main() {
  std::printf("Transformation rules of Figure 5, one demo each.\n");

  Demo("Any2All: align shared roots into per-column choices",
       {"select a from t where x = 1", "select b from t where x = 2"}, "Any2All", 0);

  Demo("Lift: factor the root, keep whole bodies as alternatives",
       {"select a from t where x = 1", "select b from u"}, "Lift");

  Demo("Merge: drop duplicate ANY alternatives",
       {"select a from t", "select a from t", "select b from t"}, "Merge");

  Demo("Optional: ANY with an Empty alternative becomes OPT",
       {"select a from t where x = 1", "select a from t"}, "Optional", 0);

  Demo("Multi: variable-length predicate lists become an adder",
       {"select a from t where u between 0 and 1",
        "select a from t where u between 0 and 1 and u between 2 and 3"},
       "Multi");

  Demo("All2Any (inverse): distribute an ALL over one choice",
       {"select a from t", "select b from t"}, "All2Any");

  Demo("Noop: unwrap a singleton ANY",
       {"select a from t", "select a from t"}, "Noop", 0);

  return 0;
}
