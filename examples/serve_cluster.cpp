// The sharded serving entry point: N worker processes (each a full
// ApiService speaking the v1 RPC envelope over a local socket) behind one
// ClusterRouter + HTTP/SSE front-end. The HTTP surface is identical to
// serve_http — clients cannot tell a cluster from a single process (the
// differential test in tests/cluster_test.cc pins this bit-identical) —
// but jobs shard across processes and a dead worker only loses its own
// jobs while new submissions reroute. See docs/cluster.md.
//
//   ./serve_cluster --port 8080 --workers 3 --rows 2000
//
// Flags: --port N (HTTP port; default 8080, 0 = ephemeral), --host A.B.C.D,
// --workers N (worker processes; default 3), --rows N (rows per workload
// table in each worker; 0 = defaults), --threads N (HTTP workers),
// --worker-threads N (generation threads per worker), --max-pending N
// (per-worker job-queue bound -> HTTP 429), --session-ttl-ms N,
// --client PATH, --cors ORIGIN, --log-level LEVEL, --trace,
// --experience-dir DIR (or the IFGEN_EXPERIENCE_DIR env var: each worker
// persists its experience store to DIR/worker-<index>.exp and reloads it
// across restarts — see docs/learning.md).
//
// Each worker line below is machine-readable for scripts/cluster_smoke.py:
//   worker <index> pid <pid> port <port>
// SIGINT/SIGTERM drain the workers (finish running jobs, refuse new ones)
// before terminating them SIGTERM-first.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_router.h"
#include "cluster/process.h"
#include "http/api_http.h"
#include "obs/trace.h"
#include "util/logging.h"

using namespace ifgen;  // NOLINT

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int64_t FlagInt(int argc, char** argv, const char* name, int64_t dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return dflt;
}

const char* FlagStr(int argc, char** argv, const char* name, const char* dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return dflt;
}

bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // Workers re-exec this binary; the guard must run before anything else.
  if (cluster::IsWorkerInvocation(argc, argv)) {
    InitLogLevelFromEnv();
    return cluster::RunWorkerMain(argc, argv);
  }

  InitLogLevelFromEnv();
  if (const char* level = FlagStr(argc, argv, "--log-level", nullptr)) {
    LogLevel parsed;
    if (!ParseLogLevel(level, &parsed)) {
      std::fprintf(stderr,
                   "bad --log-level '%s' (want debug|info|warning|error|fatal)\n",
                   level);
      return 1;
    }
    SetLogLevel(parsed);
  }
  if (FlagBool(argc, argv, "--trace")) obs::SetTracingEnabled(true);

  const int num_workers =
      static_cast<int>(FlagInt(argc, argv, "--workers", 3));
  if (num_workers < 1 || num_workers > 64) {
    std::fprintf(stderr, "--workers must be in [1, 64]\n");
    return 1;
  }

  auto self = cluster::SelfExePath();
  if (!self.ok()) {
    std::fprintf(stderr, "cannot resolve own binary: %s\n",
                 self.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> worker_args = {
      "--rows", std::to_string(FlagInt(argc, argv, "--rows", 0)),
      "--threads", std::to_string(FlagInt(argc, argv, "--worker-threads", 2)),
      "--max-pending", std::to_string(FlagInt(argc, argv, "--max-pending", 64)),
      "--session-ttl-ms",
      std::to_string(FlagInt(argc, argv, "--session-ttl-ms", 10 * 60 * 1000))};
  if (FlagBool(argc, argv, "--trace")) worker_args.push_back("--trace");
  // Each worker gets its own store file under the shared directory, so
  // restarted workers warm-start from their own history (RunWorkerMain also
  // honors the IFGEN_EXPERIENCE_DIR env var, inherited through exec).
  std::string experience_dir = FlagStr(argc, argv, "--experience-dir", "");
  if (experience_dir.empty()) {
    if (const char* env = std::getenv("IFGEN_EXPERIENCE_DIR")) {
      experience_dir = env;
    }
  }

  std::printf("spawning %d worker(s)...\n", num_workers);
  std::fflush(stdout);
  std::vector<cluster::SpawnedWorker> spawned;
  cluster::ClusterRouter::Options ropts;
  for (int i = 0; i < num_workers; ++i) {
    std::vector<std::string> args = worker_args;
    if (!experience_dir.empty()) {
      args.push_back("--experience-dir");
      args.push_back(experience_dir);
      args.push_back("--worker-index");
      args.push_back(std::to_string(i));
    }
    auto w = cluster::SpawnWorkerProcess(*self, args);
    if (!w.ok()) {
      std::fprintf(stderr, "worker %d failed to start: %s\n", i,
                   w.status().ToString().c_str());
      for (const cluster::SpawnedWorker& alive : spawned) {
        cluster::TerminateWorker(alive.pid);
      }
      return 1;
    }
    std::printf("worker %d pid %d port %d\n", i, static_cast<int>(w->pid),
                w->port);
    std::fflush(stdout);
    spawned.push_back(*w);
    ropts.workers.push_back({"127.0.0.1", w->port});
  }

  cluster::ClusterRouter router;
  if (Status st = router.Start(std::move(ropts)); !st.ok()) {
    std::fprintf(stderr, "router start failed: %s\n", st.ToString().c_str());
    for (const cluster::SpawnedWorker& w : spawned) {
      cluster::TerminateWorker(w.pid);
    }
    return 1;
  }

  http::ApiHttpFrontend frontend(&router);
  http::ApiHttpFrontend::Options fopts;
  fopts.http.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  fopts.http.port = static_cast<int>(FlagInt(argc, argv, "--port", 8080));
  fopts.http.num_threads = static_cast<size_t>(FlagInt(argc, argv, "--threads", 8));
  fopts.http.cors_allow_origin = FlagStr(argc, argv, "--cors", "");
  fopts.client_html_path =
      FlagStr(argc, argv, "--client", "examples/web/client.html");
  if (Status st = frontend.Start(fopts); !st.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", st.ToString().c_str());
    router.Stop();
    for (const cluster::SpawnedWorker& w : spawned) {
      cluster::TerminateWorker(w.pid);
    }
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::printf("listening on http://%s:%d  (%d workers; /v1/cluster for health)\n",
              fopts.http.host.c_str(), frontend.port(), num_workers);
  std::fflush(stdout);

  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  // Graceful drain: stop taking HTTP traffic, tell workers to finish what
  // they have, then SIGTERM each (workers drain again on their own, so the
  // wait here is belt-and-braces for short jobs).
  std::printf("shutting down...\n");
  std::fflush(stdout);
  frontend.Stop();
  router.DrainWorkers();
  router.WaitDrained(10000);
  router.Stop();
  for (const cluster::SpawnedWorker& w : spawned) {
    if (Status st = cluster::TerminateWorker(w.pid); !st.ok()) {
      std::fprintf(stderr, "worker pid %d: %s\n", static_cast<int>(w.pid),
                   st.ToString().c_str());
    }
  }
  std::printf("all workers stopped\n");
  return 0;
}
