#!/usr/bin/env python3
"""Validates the machine-readable JSON rows emitted by the bench harnesses.

Usage:
    check_bench_json.py [--require FAMILY]... [FILE]...

Reads bench output (files or stdin), extracts the single-line JSON rows
(lines starting with '{'), and checks each against the per-family schema
documented in bench/README.md. `--require FAMILY` additionally demands at
least one row of that family (CI uses this to prove a harness actually
emitted rows). Exits non-zero on the first schema violation class found.
"""

import argparse
import json
import sys

NUM = (int, float)

# bench family -> {field: expected type(s)}; `None` group key means the
# family has sub-groups discriminated by a "group" field.
SCHEMAS = {
    "backend": {
        "workload": str,
        "backend": str,
        "rows_db": int,
        "rounds": int,
        "interactions": int,
        "skipped": int,
        "generate_ms": NUM,
        "setup_us": NUM,
        "bind_us": NUM,
        "exec_us": NUM,
        "exec_us_per_interaction": NUM,
        "end_to_end_us_per_interaction": NUM,
        "prepares": int,
        "plan_cache_hits": int,
        "executions": int,
        "rows_out": int,
    },
    ("ablation", "priors"): {
        "workload": str,
        "use_priors": bool,
        "progressive_widening": bool,
        "iterations": int,
        "best_cost": NUM,
        "states_expanded": int,
        "ms": NUM,
    },
    ("ablation", "obs_overhead"): {
        "iterations": int,
        "reps": int,
        "enabled_ms": NUM,
        "disabled_ms": NUM,
        "overhead_pct": NUM,
    },
    ("ablation", "delta"): {
        "workload": str,
        "delta": bool,
        "best_cost": NUM,
        "subtree_recomputes": int,
        "subtree_hits": int,
        "plan_recomputes": int,
        "plan_hits": int,
        "ms": NUM,
    },
    "interactive": {
        "workload": str,
        "backend": str,
        "transition": str,
        "rows_db": int,
        "steps": int,
        "incremental_steps": int,
        "inc_us_per_step": NUM,
        "full_us_per_step": NUM,
        "speedup": NUM,
    },
    "parallel": {
        "workload": str,
        "mode": str,
        "threads": int,
        "ms": NUM,
        "best_cost": NUM,
        "iterations": int,
        "evaluations": int,
        "tt_hits": int,
        "ms_to_best": NUM,
    },
    "anytime": {
        "workload": str,
        "searcher": str,
        "deadline_ms": int,
        # -1 when the run published no improvement before the deadline.
        "time_to_first_result_ms": int,
        "cost_at_deadline": NUM,
        "iterations": int,
        "stop_reason": str,
        "baseline_iterations": int,
        "baseline_cost": NUM,
    },
    "parallel_service": {
        "jobs": int,
        "cold_ms": NUM,
        "warm_ms": NUM,
        "cache_hits": int,
    },
    "http": {
        "workload": str,
        "endpoint": str,
        "requests": int,
        "errors": int,
        "us_per_request": NUM,
    },
    "experience": {
        "workload": str,
        "warm": bool,
        "iterations": int,
        "best_cost": NUM,
        "target_cost": NUM,
        "iterations_to_target": int,
        "seeded": int,
        "ms": NUM,
    },
    "cluster_cache": {
        "workload": str,
        "peering": bool,
        "workers": int,
        "jobs": int,
        "cold_ms": NUM,
        "repeat_ms": NUM,
        "repeat_cache_hits": int,
        "cache_probes": int,
        "cache_probe_hits": int,
        "tt_peer_ingested": int,
        "tt_peer_hits": int,
        "tt_published": int,
        "result_peer_hits": int,
    },
}


def schema_for(row):
    family = row.get("bench")
    if (family, row.get("group")) in SCHEMAS:
        return SCHEMAS[(family, row.get("group"))]
    return SCHEMAS.get(family)


def check_row(row, where, errors):
    family = row.get("bench")
    if not isinstance(family, str) or not family:
        errors.append(f"{where}: missing/invalid 'bench' discriminator: {row}")
        return None
    schema = schema_for(row)
    if schema is None:
        # Unknown families only need the discriminator; new harnesses add
        # their schema here when they stabilize.
        return family
    for field, expected in schema.items():
        if field not in row:
            errors.append(f"{where}: bench={family} missing field '{field}'")
        else:
            value = row[field]
            # bool is an int subclass in Python; don't let booleans satisfy
            # numeric fields or vice versa.
            if expected is not bool and isinstance(value, bool):
                errors.append(f"{where}: bench={family} field '{field}' is a bool")
            elif not isinstance(value, expected):
                errors.append(
                    f"{where}: bench={family} field '{field}'={value!r} "
                    f"is not {expected}")
    return family


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require", action="append", default=[],
                        help="fail unless at least one row of this family exists")
    parser.add_argument("files", nargs="*", help="bench output files (default stdin)")
    args = parser.parse_args()

    sources = [(f, open(f, encoding="utf-8", errors="replace")) for f in args.files] \
        or [("<stdin>", sys.stdin)]

    errors = []
    seen = {}
    for name, stream in sources:
        for lineno, line in enumerate(stream, 1):
            line = line.strip()
            if not line.startswith("{"):
                continue
            where = f"{name}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: invalid JSON row: {exc}")
                continue
            family = check_row(row, where, errors)
            if family:
                seen[family] = seen.get(family, 0) + 1
        if stream is not sys.stdin:
            stream.close()

    for family in args.require:
        if seen.get(family, 0) == 0:
            errors.append(f"required bench family '{family}' emitted no rows")

    for family, count in sorted(seen.items()):
        print(f"  {family}: {count} rows")
    if errors:
        print(f"\n{len(errors)} schema violation(s):", file=sys.stderr)
        for err in errors[:50]:
            print(f"  {err}", file=sys.stderr)
        return 1
    print("all bench JSON rows valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
