#!/usr/bin/env python3
"""Documentation checks run by the CI docs job (and locally).

1. Intra-repo markdown links: every relative link target in a tracked
   *.md file must exist (anchors are stripped; http(s)/mailto links are
   skipped).
2. Header doc-comment lint: every header under src/ must carry at least one
   Doxygen-style documentation comment (`\\brief` or a `///` line) — the
   repo's convention is that each public type/function documents its
   contract in the header.

Exit code 0 = clean, 1 = findings (printed one per line).
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — excluding images; inline code spans are stripped first.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_DIRS = {"build", "build-tsan", ".git", ".claude"}


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for f in files:
            if f.endswith(".md"):
                yield os.path.join(root, f)


def check_links():
    errors = []
    for md in markdown_files():
        text = open(md, encoding="utf-8").read()
        for lineno, line in enumerate(text.splitlines(), 1):
            line = CODE_SPAN_RE.sub("", line)
            for target in LINK_RE.findall(line):
                if re.match(r"^[a-z]+:", target):  # http:, https:, mailto:
                    continue
                path = target.split("#", 1)[0]
                if not path:  # pure in-page anchor
                    continue
                resolved = os.path.normpath(os.path.join(os.path.dirname(md), path))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(md, REPO)
                    errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def check_headers():
    errors = []
    src = os.path.join(REPO, "src")
    for root, _, files in os.walk(src):
        for f in sorted(files):
            if not f.endswith(".h"):
                continue
            path = os.path.join(root, f)
            text = open(path, encoding="utf-8").read()
            if "\\brief" not in text and "///" not in text:
                rel = os.path.relpath(path, REPO)
                errors.append(f"{rel}: no documentation comment "
                              f"(expected at least one \\brief or /// line)")
    return errors


def main():
    errors = check_links() + check_headers()
    for e in errors:
        print(e)
    if errors:
        print(f"\n{len(errors)} documentation finding(s)", file=sys.stderr)
        return 1
    print("docs clean: links resolve, headers documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
