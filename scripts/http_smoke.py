#!/usr/bin/env python3
"""End-to-end smoke of the HTTP serving front-end (CI http-smoke job).

Starts ./serve_http on an ephemeral-ish port, then drives the whole v1
flow with the Python stdlib only:

    healthz -> catalog -> POST /v1/generate (flights) -> poll job ->
    POST /v1/sessions -> widget events until a non-empty diff batch ->
    GET feed (long-poll) -> DELETE session -> SIGTERM -> clean exit.

Asserts a non-empty row-diff batch and a clean shutdown (exit code 0).

Usage: http_smoke.py [PATH_TO_SERVE_HTTP] (default ./build/serve_http)
"""

import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 18642
BASE = f"http://127.0.0.1:{PORT}"


def call(method, path, body=None, timeout=30):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(BASE + path, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def collect_choices(node, out):
    if "choice" in node and "widget" in node:
        out.append((node["choice"], len(node.get("options", [])), node["widget"]))
    for child in node.get("children", []):
        collect_choices(child, out)


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "./build/serve_http"
    server = subprocess.Popen(
        [binary, "--port", str(PORT), "--rows", "500"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        # Wait for the server to come up.
        for _ in range(100):
            try:
                if call("GET", "/v1/healthz", timeout=2)["status"] == "ok":
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.1)
        else:
            fail("server never answered /v1/healthz")
        print("healthz ok")

        catalog = call("GET", "/v1/catalog")
        names = [w["name"] for w in catalog["workloads"]]
        print(f"catalog: workloads={names} backends={catalog['backends']}")
        if "flights" not in names:
            fail("flights workload missing from catalog")

        accepted = call("POST", "/v1/generate", {
            "workload": "flights",
            "options": {"time_budget_ms": 0, "max_iterations": 20, "seed": 7,
                        "screen_width": 90, "screen_height": 32},
        })
        job_id = accepted["job_id"]
        print(f"submitted {job_id} ({accepted['state']})")

        job = call("GET", f"/v1/jobs/{job_id}?wait_ms=60000", timeout=90)
        if job["state"] != "done":
            fail(f"job state {job['state']}: {job.get('error')}")
        print(f"job done in {job['run_ms']} ms, "
              f"{job['result']['stats']['iterations']} iterations")

        session = call("POST", "/v1/sessions", {"job_id": job_id})
        sid = session["session_id"]
        print(f"session {sid}: {len(session['table']['rows'])} initial rows")

        choices = []
        collect_choices(session["widgets"], choices)
        if not choices:
            fail("no interactive widgets in the generated interface")

        # Drive events until one produces a non-empty row-diff batch.
        saw_changes = False
        for choice_id, option_count, kind in choices:
            if kind in ("Checkbox", "Toggle"):
                events = [{"kind": "set_opt", "choice_id": choice_id,
                           "present": False}]
            elif option_count > 1:
                events = [{"kind": "set_any", "choice_id": choice_id,
                           "option_index": i} for i in range(option_count)]
            else:
                continue
            for event in events:
                try:
                    step = call("POST", f"/v1/sessions/{sid}/events", event)
                except urllib.error.HTTPError:
                    continue  # hidden alternative; fine
                batch = call("GET", f"/v1/sessions/{sid}/feed?timeout_ms=2000")
                if batch["changes"]:
                    print(f"event {event['kind']}@{choice_id} -> "
                          f"{step['report']['transition']}, "
                          f"{len(batch['changes'])} row change(s), "
                          f"v{batch['from_version']}->v{batch['to_version']}")
                    saw_changes = True
                    break
            if saw_changes:
                break
        if not saw_changes:
            fail("no widget event produced a non-empty diff batch")

        stats = call("GET", "/v1/stats")
        print(f"stats: jobs={stats['jobs']} sessions={stats['sessions']}")
        call("DELETE", f"/v1/sessions/{sid}")
        print("session closed")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            rc = server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not shut down on SIGTERM")
        out = server.stdout.read()
        print("--- server log ---")
        print(out)
        if rc != 0:
            fail(f"server exited with {rc}")
    print("http smoke OK")


if __name__ == "__main__":
    main()
