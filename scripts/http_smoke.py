#!/usr/bin/env python3
"""End-to-end smoke of the HTTP serving front-end (CI http-smoke job).

Starts ./serve_http on an ephemeral-ish port, then drives the whole v1
flow with the Python stdlib only:

    healthz -> catalog -> POST /v1/generate (flights) -> poll job ->
    POST /v1/sessions -> widget events until a non-empty diff batch ->
    GET feed (long-poll) -> scrape /v1/metrics + /v1/jobs/{id}/trace ->
    DELETE session -> SIGTERM -> clean exit.

Asserts a non-empty row-diff batch, a well-formed Prometheus exposition
with nonzero core metrics, a non-empty per-job Chrome trace (the server
runs with --trace), and a clean shutdown (exit code 0).

Usage: http_smoke.py [PATH_TO_SERVE_HTTP] (default ./build/serve_http)
"""

import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 18642
BASE = f"http://127.0.0.1:{PORT}"


def call(method, path, body=None, timeout=30):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(BASE + path, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def call_raw(method, path, timeout=30):
    """Like call(), but returns the raw response body as text."""
    req = urllib.request.Request(BASE + path, method=method)
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read().decode()


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics_exposition(text):
    """Structural check of the Prometheus text format: every sample line is
    `name{labels} value` with a numeric value, and every series is preceded
    by # HELP/# TYPE headers for its family."""
    typed = set()
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"metrics line {lineno}: bad TYPE header: {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            fail(f"metrics line {lineno}: unknown comment: {line!r}")
        name_part, _, value_part = line.rpartition(" ")
        name = name_part.split("{", 1)[0]
        if not name_part or not name:
            fail(f"metrics line {lineno}: malformed sample: {line!r}")
        if value_part not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_part)
            except ValueError:
                fail(f"metrics line {lineno}: non-numeric value: {line!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                family = name[: -len(suffix)]
        if family not in typed:
            fail(f"metrics line {lineno}: sample without TYPE header: {line!r}")
        try:
            samples[family] = max(samples.get(family, 0.0), float(value_part))
        except ValueError:
            pass
    return samples


def validate_progress_frame(frame, where):
    """Checks a JobProgressResponse-shaped dict against the wire contract
    (docs/api.md): required scalar fields, and when a partial is present,
    the GenerateResponse shape it embeds."""
    for field, kind in (("job_id", str), ("state", str), ("version", int),
                        ("final", bool)):
        if field not in frame:
            fail(f"{where}: progress frame missing '{field}': {frame}")
        if not isinstance(frame[field], kind):
            fail(f"{where}: progress frame field '{field}' is not {kind}")
    if "partial" in frame:
        partial = frame["partial"]
        for field in ("job_id", "workload", "algorithm", "backend", "cost",
                      "difftree", "stats"):
            if field not in partial:
                fail(f"{where}: progress partial missing '{field}'")
        if "total" not in partial["cost"]:
            fail(f"{where}: progress partial cost has no 'total'")


def stream_job_frames(job_id, max_frames=200, timeout=60):
    """Drives GET /v1/jobs/{id}/stream with a raw streaming read (urllib
    does not buffer SSE usefully) and yields decoded `data:` frames until
    the final frame or the stream ends."""
    import http.client
    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=timeout)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/stream",
                     headers={"Accept": "text/event-stream"})
        resp = conn.getresponse()
        if resp.status != 200:
            fail(f"/stream answered HTTP {resp.status}")
        buf = b""
        frames = []
        while len(frames) < max_frames:
            chunk = resp.read1(4096)
            if not chunk:
                break
            buf += chunk
            while b"\n\n" in buf:
                raw, buf = buf.split(b"\n\n", 1)
                data_lines = [line[5:].strip() for line in raw.split(b"\n")
                              if line.startswith(b"data:")]
                if not data_lines:
                    continue  # comment/heartbeat
                frame = json.loads(b"\n".join(data_lines).decode())
                frames.append(frame)
                if frame.get("final"):
                    return frames
        return frames
    finally:
        conn.close()


def collect_choices(node, out):
    if "choice" in node and "widget" in node:
        out.append((node["choice"], len(node.get("options", [])), node["widget"]))
    for child in node.get("children", []):
        collect_choices(child, out)


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "./build/serve_http"
    server = subprocess.Popen(
        [binary, "--port", str(PORT), "--rows", "500", "--trace",
         "--log-level", "info"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        # Wait for the server to come up.
        for _ in range(100):
            try:
                if call("GET", "/v1/healthz", timeout=2)["status"] == "ok":
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.1)
        else:
            fail("server never answered /v1/healthz")
        print("healthz ok")

        catalog = call("GET", "/v1/catalog")
        names = [w["name"] for w in catalog["workloads"]]
        print(f"catalog: workloads={names} backends={catalog['backends']}")
        if "flights" not in names:
            fail("flights workload missing from catalog")

        accepted = call("POST", "/v1/generate", {
            "workload": "flights",
            "options": {"time_budget_ms": 0, "max_iterations": 20, "seed": 7,
                        "screen_width": 90, "screen_height": 32},
        })
        job_id = accepted["job_id"]
        print(f"submitted {job_id} ({accepted['state']})")

        job = call("GET", f"/v1/jobs/{job_id}?wait_ms=60000", timeout=90)
        if job["state"] != "done":
            fail(f"job state {job['state']}: {job.get('error')}")
        print(f"job done in {job['run_ms']} ms, "
              f"{job['result']['stats']['iterations']} iterations")

        # Streaming flow: a second job with a larger budget, watched live
        # over GET /v1/jobs/{id}/stream while it runs.
        accepted2 = call("POST", "/v1/generate", {
            "workload": "flights",
            "options": {"time_budget_ms": 0, "max_iterations": 60, "seed": 11},
        })
        stream_job = accepted2["job_id"]
        frames = stream_job_frames(stream_job)
        if not frames:
            fail("/stream yielded no frames")
        versions = []
        improving = 0
        last_cost = None
        for i, frame in enumerate(frames):
            validate_progress_frame(frame, f"frame[{i}]")
            if versions and frame["version"] < versions[-1]:
                fail(f"/stream versions went backwards: {versions} "
                     f"then {frame['version']}")
            versions.append(frame["version"])
            if not frame.get("final") and "partial" in frame:
                cost = frame["partial"]["cost"]["total"]
                if last_cost is not None and cost >= last_cost:
                    fail(f"/stream partial cost did not improve: "
                         f"{last_cost} -> {cost}")
                last_cost = cost
                improving += 1
        final = frames[-1]
        if not final.get("final"):
            fail("/stream ended without a final frame")
        if final["state"] != "done" or "partial" not in final:
            fail(f"final stream frame malformed: {final}")
        if improving < 1:
            fail("stream delivered no mid-run improvement frame")
        print(f"stream {stream_job}: {len(frames)} frame(s), "
              f"{improving} improving partial(s), final v{final['version']}")

        # The long-poll progress endpoint agrees with the stream's end state.
        progress = call("GET", f"/v1/jobs/{stream_job}/progress?version=0")
        validate_progress_frame(progress, "progress")
        if not progress["final"] or progress["version"] < final["version"]:
            fail(f"/progress disagrees with the finished stream: {progress}")
        print(f"progress: v{progress['version']} final={progress['final']}")

        session = call("POST", "/v1/sessions", {"job_id": job_id})
        sid = session["session_id"]
        print(f"session {sid}: {len(session['table']['rows'])} initial rows")

        choices = []
        collect_choices(session["widgets"], choices)
        if not choices:
            fail("no interactive widgets in the generated interface")

        # Drive events until one produces a non-empty row-diff batch.
        saw_changes = False
        for choice_id, option_count, kind in choices:
            if kind in ("Checkbox", "Toggle"):
                events = [{"kind": "set_opt", "choice_id": choice_id,
                           "present": False}]
            elif option_count > 1:
                events = [{"kind": "set_any", "choice_id": choice_id,
                           "option_index": i} for i in range(option_count)]
            else:
                continue
            for event in events:
                try:
                    step = call("POST", f"/v1/sessions/{sid}/events", event)
                except urllib.error.HTTPError:
                    continue  # hidden alternative; fine
                batch = call("GET", f"/v1/sessions/{sid}/feed?timeout_ms=2000")
                if batch["changes"]:
                    print(f"event {event['kind']}@{choice_id} -> "
                          f"{step['report']['transition']}, "
                          f"{len(batch['changes'])} row change(s), "
                          f"v{batch['from_version']}->v{batch['to_version']}")
                    saw_changes = True
                    break
            if saw_changes:
                break
        if not saw_changes:
            fail("no widget event produced a non-empty diff batch")

        # Errors carry the retry contract on the wire: an unknown job is a
        # structured 404 with retryable explicitly false.
        try:
            call("GET", "/v1/jobs/j-99999")
            fail("unknown job id did not answer 404")
        except urllib.error.HTTPError as e:
            if e.code != 404:
                fail(f"unknown job answered HTTP {e.code}, want 404")
            body = json.loads(e.read().decode())
            if body.get("code") != "NotFound" or body.get("retryable") is not False:
                fail(f"unknown-job error body malformed: {body}")
        print("error body: 404 NotFound, retryable=False")

        stats = call("GET", "/v1/stats")
        for key in ("jobs", "sessions", "runtime", "backends", "cluster"):
            if key not in stats:
                fail(f"/v1/stats missing nested '{key}' component")
        if stats["jobs"]["submitted"] < 2 or stats["sessions"]["opened"] < 1:
            fail(f"stats counters implausible: {stats}")
        if stats["cluster"]["workers"]:
            fail("single-process /v1/stats must report no cluster workers")
        print(f"stats: jobs={stats['jobs']} sessions={stats['sessions']}")

        cluster = call("GET", "/v1/cluster")
        if cluster["mode"] != "single" or cluster["workers"]:
            fail(f"/v1/cluster must report single-process mode: {cluster}")
        print(f"cluster: mode={cluster['mode']}")

        # One scrape must cover search, cost, engine, runtime, and http.
        metrics = call_raw("GET", "/v1/metrics")
        samples = check_metrics_exposition(metrics)
        for name in ("ifgen_jobs_submitted_total",
                     "ifgen_search_iterations_total",
                     "ifgen_eval_evaluations_total",
                     "ifgen_backend_prepares_total",
                     "ifgen_runtime_steps_total",
                     "ifgen_http_responses_total",
                     "ifgen_http_request_duration_us"):
            if samples.get(name, 0.0) <= 0.0:
                fail(f"/v1/metrics: expected nonzero samples for {name}")
        print(f"metrics: {len(samples)} families, core metrics nonzero")

        trace = json.loads(call_raw("GET", f"/v1/jobs/{job_id}/trace"))
        if not trace.get("traceEvents"):
            fail("per-job trace has no traceEvents")
        span_names = {e["name"] for e in trace["traceEvents"]}
        if "service.job" not in span_names:
            fail(f"per-job trace missing the service.job span: {span_names}")
        print(f"job trace: {len(trace['traceEvents'])} span(s), "
              f"{len(span_names)} distinct names")

        global_trace = json.loads(call_raw("GET", "/v1/trace"))
        if not global_trace.get("traceEvents"):
            fail("global trace ring is empty despite --trace")

        call("DELETE", f"/v1/sessions/{sid}")
        print("session closed")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            rc = server.wait(timeout=15)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("server did not shut down on SIGTERM")
        out = server.stdout.read()
        print("--- server log ---")
        print(out)
        if rc != 0:
            fail(f"server exited with {rc}")
    print("http smoke OK")


if __name__ == "__main__":
    main()
