#!/usr/bin/env python3
"""End-to-end smoke of the sharded cluster front-end (CI cluster-smoke job).

Starts ./serve_cluster with 3 worker processes, then drives the failure
model the cluster exists for, with the Python stdlib only:

    healthz -> /v1/cluster (3 healthy workers) -> POST /v1/generate ->
    poll job -> session + widget event -> SIGKILL one worker ->
    /v1/cluster converges to 2 healthy -> new jobs still succeed
    (rerouted) -> aggregated /v1/stats -> SIGTERM -> clean exit.

Asserts the worker lines on stdout are machine-readable (`worker <i>
pid <p> port <q>`), that recovery after the kill is observable through
/v1/cluster, and that shutdown is SIGTERM-clean (exit code 0).

Usage: cluster_smoke.py [PATH_TO_SERVE_CLUSTER] (default ./build/serve_cluster)
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 18643
BASE = f"http://127.0.0.1:{PORT}"
WORKERS = 3


def call(method, path, body=None, timeout=30):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(BASE + path, data=data, method=method)
    if data:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def submit_and_finish(seed, timeout=90):
    accepted = call("POST", "/v1/generate", {
        "workload": "flights",
        "options": {"time_budget_ms": 0, "max_iterations": 15, "seed": seed,
                    "screen_width": 90, "screen_height": 32},
    })
    job = call("GET", f"/v1/jobs/{accepted['job_id']}?wait_ms=60000",
               timeout=timeout)
    if job["state"] != "done":
        fail(f"job {accepted['job_id']} state {job['state']}: {job.get('error')}")
    return job


def main():
    binary = sys.argv[1] if len(sys.argv) > 1 else "./build/serve_cluster"
    server = subprocess.Popen(
        [binary, "--port", str(PORT), "--workers", str(WORKERS),
         "--rows", "400", "--log-level", "info"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    log_lines = []
    try:
        # Parse the machine-readable worker lines printed before "listening".
        workers = {}
        deadline = time.time() + 120
        while len(workers) < WORKERS and time.time() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            log_lines.append(line)
            m = re.match(r"worker (\d+) pid (\d+) port (\d+)", line)
            if m:
                workers[int(m.group(1))] = {"pid": int(m.group(2)),
                                            "port": int(m.group(3))}
        if len(workers) != WORKERS:
            fail(f"expected {WORKERS} worker lines, parsed {workers}")
        print(f"workers: {workers}")

        for _ in range(150):
            try:
                if call("GET", "/v1/healthz", timeout=2)["status"] == "ok":
                    break
            except (urllib.error.URLError, ConnectionError, OSError):
                time.sleep(0.1)
        else:
            fail("cluster front-end never answered /v1/healthz")
        print("healthz ok")

        cluster = call("GET", "/v1/cluster")
        if cluster["mode"] != "cluster":
            fail(f"/v1/cluster mode {cluster['mode']}, want 'cluster'")
        if len(cluster["workers"]) != WORKERS:
            fail(f"/v1/cluster reports {len(cluster['workers'])} workers")
        if not all(w["healthy"] for w in cluster["workers"]):
            fail(f"not all workers healthy at startup: {cluster}")
        print(f"cluster: {WORKERS} healthy workers")

        job = submit_and_finish(seed=7)
        job_id = job["job_id"]
        print(f"job {job_id} done, "
              f"{job['result']['stats']['iterations']} iterations")

        session = call("POST", "/v1/sessions", {"job_id": job_id})
        sid = session["session_id"]
        # First visible widget choice; any event proves the session routes.
        def first_choice(node):
            if "choice" in node and "widget" in node:
                return node
            for child in node.get("children", []):
                found = first_choice(child)
                if found:
                    return found
            return None
        choice = first_choice(session["widgets"])
        if choice is None:
            fail("generated interface has no widget choices")
        if choice["widget"] in ("Checkbox", "Toggle"):
            event = {"kind": "set_opt", "choice_id": choice["choice"],
                     "present": False}
        else:
            event = {"kind": "set_any", "choice_id": choice["choice"],
                     "option_index": 0}
        step = call("POST", f"/v1/sessions/{sid}/events", event)
        print(f"session {sid}: event -> {step['report']['transition']}")

        # Cache peering: a same-schema storm (same workload + seed,
        # different budgets -> one shared transposition store) with
        # cache_peering on; the router's gossip rounds must publish TT
        # batches to the workers (observable via /v1/stats).
        for budget in (25, 18, 31):
            accepted = call("POST", "/v1/generate", {
                "workload": "flights",
                "options": {"time_budget_ms": 0, "max_iterations": budget,
                            "seed": 7, "screen_width": 90,
                            "screen_height": 32, "cache_peering": True},
            })
            peer_job = call(
                "GET", f"/v1/jobs/{accepted['job_id']}?wait_ms=60000")
            if peer_job["state"] != "done":
                fail(f"peering job state {peer_job['state']}")
        deadline = time.time() + 30
        published = 0
        while time.time() < deadline:
            stats = call("GET", "/v1/stats")
            published = sum(w.get("tt_published", 0)
                            for w in stats["cluster"]["workers"])
            if published > 0:
                break
            time.sleep(0.5)
        if published == 0:
            fail("router never published TT gossip batches to the workers")
        print(f"cache peering: router published {published} TT entries")

        # Kill one worker process outright; the router must notice and the
        # cluster keeps serving from the survivors.
        victim = workers[0]
        os.kill(victim["pid"], signal.SIGKILL)
        print(f"killed worker 0 (pid {victim['pid']})")
        for _ in range(100):
            cluster = call("GET", "/v1/cluster")
            healthy = sum(1 for w in cluster["workers"] if w["healthy"])
            if healthy == WORKERS - 1:
                break
            time.sleep(0.2)
        else:
            fail(f"/v1/cluster never converged to {WORKERS - 1} healthy: "
                 f"{cluster}")
        print(f"cluster converged: {WORKERS - 1} healthy workers")

        # State owned by the dead worker answers a retryable 503; state on
        # survivors keeps answering 200.
        try:
            job = call("GET", f"/v1/jobs/{job_id}")
            print(f"job {job_id} survived on a healthy worker")
        except urllib.error.HTTPError as e:
            if e.code != 503:
                fail(f"dead-worker job answered HTTP {e.code}, want 503")
            body = json.loads(e.read().decode())
            if body.get("retryable") is not True:
                fail(f"dead-worker error body not retryable: {body}")
            print(f"job {job_id} was on the dead worker: 503 retryable=True")

        for seed in (21, 22, 23, 24):
            submit_and_finish(seed=seed)
        print("4 post-kill jobs rerouted and finished")

        stats = call("GET", "/v1/stats")
        if "cluster" not in stats or len(stats["cluster"]["workers"]) != WORKERS:
            fail(f"/v1/stats cluster section malformed: {stats.get('cluster')}")
        if stats["jobs"]["submitted"] < 5:
            fail(f"aggregated stats lost jobs: {stats['jobs']}")
        print(f"stats: jobs={stats['jobs']} "
              f"workers={[w['healthy'] for w in stats['cluster']['workers']]}")

        try:
            call("DELETE", f"/v1/sessions/{sid}")
            print("session closed")
        except urllib.error.HTTPError as e:
            # The session may have lived on the killed worker; then the
            # close is a retryable 503, which is the documented contract.
            if e.code != 503:
                fail(f"session close answered HTTP {e.code}")
            print("session was on the dead worker (503, retryable)")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            rc = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            fail("cluster did not shut down on SIGTERM")
        out = "".join(log_lines) + (server.stdout.read() or "")
        print("--- server log ---")
        print(out)
        if rc != 0:
            fail(f"server exited with {rc}")
        if "all workers stopped" not in out:
            fail("shutdown did not terminate all workers cleanly")
    print("cluster smoke OK")


if __name__ == "__main__":
    main()
