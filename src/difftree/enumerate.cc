#include "difftree/enumerate.h"

#include <algorithm>

#include "util/logging.h"

namespace ifgen {

namespace {

constexpr double kCountCap = 1e18;

/// Expands a node to a list of alternative AST-node sequences (capped).
void ExpandNode(const DiffTree& n, size_t limit, size_t max_multi,
                std::vector<std::vector<Ast>>* out);

/// Cross-product of child expansions, capped at `limit` results.
void ExpandChildren(const std::vector<DiffTree>& children, size_t limit,
                    size_t max_multi, std::vector<std::vector<Ast>>* out) {
  out->clear();
  out->push_back({});
  for (const DiffTree& c : children) {
    std::vector<std::vector<Ast>> child_seqs;
    ExpandNode(c, limit, max_multi, &child_seqs);
    std::vector<std::vector<Ast>> next;
    for (const std::vector<Ast>& prefix : *out) {
      for (const std::vector<Ast>& suffix : child_seqs) {
        if (next.size() >= limit) break;
        std::vector<Ast> seq = prefix;
        seq.insert(seq.end(), suffix.begin(), suffix.end());
        next.push_back(std::move(seq));
      }
      if (next.size() >= limit) break;
    }
    *out = std::move(next);
    if (out->empty()) return;
  }
}

void ExpandNode(const DiffTree& n, size_t limit, size_t max_multi,
                std::vector<std::vector<Ast>>* out) {
  out->clear();
  switch (n.kind) {
    case DKind::kAll: {
      if (n.sym == Symbol::kEmpty) {
        out->push_back({});
        return;
      }
      std::vector<std::vector<Ast>> kid_seqs;
      ExpandChildren(n.children, limit, max_multi, &kid_seqs);
      for (std::vector<Ast>& seq : kid_seqs) {
        if (out->size() >= limit) break;
        if (n.sym == Symbol::kSeq) {
          out->push_back(std::move(seq));
        } else {
          out->push_back({Ast(n.sym, n.value, std::move(seq))});
        }
      }
      return;
    }
    case DKind::kAny: {
      for (const DiffTree& alt : n.children) {
        std::vector<std::vector<Ast>> alt_seqs;
        ExpandNode(alt, limit - std::min(limit, out->size()), max_multi, &alt_seqs);
        for (std::vector<Ast>& seq : alt_seqs) {
          if (out->size() >= limit) return;
          out->push_back(std::move(seq));
        }
      }
      return;
    }
    case DKind::kOpt: {
      out->push_back({});
      std::vector<std::vector<Ast>> child_seqs;
      ExpandNode(n.children[0], limit, max_multi, &child_seqs);
      for (std::vector<Ast>& seq : child_seqs) {
        if (out->size() >= limit) return;
        out->push_back(std::move(seq));
      }
      return;
    }
    case DKind::kMulti: {
      std::vector<std::vector<Ast>> child_seqs;
      ExpandNode(n.children[0], limit, max_multi, &child_seqs);
      // k = 0 .. max_multi repetitions, cross products within each k.
      std::vector<std::vector<Ast>> current = {{}};  // k = 0
      out->push_back({});
      for (size_t k = 1; k <= max_multi; ++k) {
        std::vector<std::vector<Ast>> next;
        for (const std::vector<Ast>& prefix : current) {
          for (const std::vector<Ast>& rep : child_seqs) {
            if (next.size() >= limit) break;
            std::vector<Ast> seq = prefix;
            seq.insert(seq.end(), rep.begin(), rep.end());
            next.push_back(std::move(seq));
          }
        }
        for (std::vector<Ast>& seq : next) {
          if (out->size() >= limit) return;
          out->push_back(seq);
        }
        current = std::move(next);
        if (current.empty()) return;
      }
      return;
    }
  }
}

double CountNode(const DiffTree& n, size_t max_multi) {
  switch (n.kind) {
    case DKind::kAll: {
      if (n.sym == Symbol::kEmpty) return 1.0;
      double prod = 1.0;
      for (const DiffTree& c : n.children) {
        prod = std::min(kCountCap, prod * CountNode(c, max_multi));
      }
      return prod;
    }
    case DKind::kAny: {
      double sum = 0.0;
      for (const DiffTree& c : n.children) {
        sum = std::min(kCountCap, sum + CountNode(c, max_multi));
      }
      return sum;
    }
    case DKind::kOpt:
      return std::min(kCountCap, 1.0 + CountNode(n.children[0], max_multi));
    case DKind::kMulti: {
      double base = CountNode(n.children[0], max_multi);
      double total = 1.0;  // k = 0
      double power = 1.0;
      for (size_t k = 1; k <= max_multi; ++k) {
        power = std::min(kCountCap, power * base);
        total = std::min(kCountCap, total + power);
      }
      return total;
    }
  }
  return 1.0;
}

}  // namespace

std::vector<Ast> EnumerateQueries(const DiffTree& root, size_t limit,
                                  size_t max_multi) {
  std::vector<std::vector<Ast>> seqs;
  ExpandNode(root, limit, max_multi, &seqs);
  std::vector<Ast> out;
  for (std::vector<Ast>& seq : seqs) {
    if (seq.size() == 1) {
      out.push_back(std::move(seq[0]));
    }
  }
  return out;
}

double CountExpressible(const DiffTree& root, size_t max_multi) {
  return CountNode(root, max_multi);
}

}  // namespace ifgen
