#include "difftree/difftree.h"

#include <algorithm>

#include "sql/unparser.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ifgen {

std::string_view DKindName(DKind k) {
  switch (k) {
    case DKind::kAll:
      return "ALL";
    case DKind::kAny:
      return "ANY";
    case DKind::kOpt:
      return "OPT";
    case DKind::kMulti:
      return "MULTI";
  }
  return "?";
}

DiffTree DiffTree::Opt(DiffTree child) {
  DiffTree t;
  t.kind = DKind::kOpt;
  t.children.push_back(std::move(child));
  return t;
}

DiffTree DiffTree::Multi(DiffTree child) {
  DiffTree t;
  t.kind = DKind::kMulti;
  t.children.push_back(std::move(child));
  return t;
}

DiffTree DiffTree::Seq(std::vector<DiffTree> kids) {
  DiffTree t(Symbol::kSeq, "");
  t.children = std::move(kids);
  return t;
}

DiffTree DiffTree::FromAst(const Ast& ast) {
  DiffTree t(ast.sym, ast.value);
  t.children.reserve(ast.children.size());
  for (const Ast& c : ast.children) {
    t.children.push_back(FromAst(c));
  }
  return t;
}

bool DiffTree::operator==(const DiffTree& other) const {
  if (kind != other.kind || sym != other.sym || value != other.value ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!(children[i] == other.children[i])) return false;
  }
  return true;
}

uint64_t DiffTree::Hash() const {
  uint64_t h = HashCombine(0x1f3d5b79a2c4e6f8ULL, static_cast<uint64_t>(kind));
  h = HashCombine(h, static_cast<uint64_t>(sym));
  h = HashCombine(h, HashBytes(value));
  for (const DiffTree& c : children) {
    h = HashCombine(h, c.Hash());
  }
  return h;
}

uint64_t DiffTree::CanonicalHash() const {
  uint64_t h = HashCombine(0x2e4a6c8d1b3f5e7aULL, static_cast<uint64_t>(kind));
  h = HashCombine(h, static_cast<uint64_t>(sym));
  h = HashCombine(h, HashBytes(value));
  if (kind == DKind::kAny) {
    std::vector<uint64_t> hs;
    hs.reserve(children.size());
    for (const DiffTree& c : children) hs.push_back(c.CanonicalHash());
    std::sort(hs.begin(), hs.end());
    for (uint64_t ch : hs) h = HashCombine(h, ch);
  } else {
    for (const DiffTree& c : children) h = HashCombine(h, c.CanonicalHash());
  }
  return h;
}

size_t DiffTree::NodeCount() const {
  size_t n = 1;
  for (const DiffTree& c : children) n += c.NodeCount();
  return n;
}

size_t DiffTree::ChoiceCount() const {
  size_t n = IsChoice() ? 1 : 0;
  for (const DiffTree& c : children) n += c.ChoiceCount();
  return n;
}

size_t DiffTree::Depth() const {
  size_t d = 0;
  for (const DiffTree& c : children) d = std::max(d, c.Depth());
  return d + 1;
}

Result<std::vector<Ast>> DiffTree::ToAstSequence() const {
  if (IsChoice()) {
    return Status::Invalid("ToAstSequence on a choice node (" +
                           std::string(DKindName(kind)) + ")");
  }
  if (sym == Symbol::kEmpty) return std::vector<Ast>{};
  std::vector<Ast> expanded;
  for (const DiffTree& c : children) {
    IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> seq, c.ToAstSequence());
    for (Ast& a : seq) expanded.push_back(std::move(a));
  }
  if (sym == Symbol::kSeq) return expanded;
  return std::vector<Ast>{Ast(sym, value, std::move(expanded))};
}

Result<Ast> DiffTree::ToAst() const {
  IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> seq, ToAstSequence());
  if (seq.size() != 1) {
    return Status::Invalid(StrFormat("subtree expands to %zu nodes, expected 1",
                                     seq.size()));
  }
  return std::move(seq[0]);
}

namespace {

void DumpNode(const DiffTree& n, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (n.kind == DKind::kAll) {
    *out += SymbolName(n.sym);
    if (!n.value.empty()) {
      *out += ":";
      *out += n.value;
    }
  } else {
    *out += DKindName(n.kind);
  }
  *out += "\n";
  for (const DiffTree& c : n.children) {
    DumpNode(c, indent + 1, out);
  }
}

void SExprNode(const DiffTree& n, std::string* out) {
  *out += "(";
  if (n.kind == DKind::kAll) {
    *out += SymbolName(n.sym);
    if (!n.value.empty()) {
      *out += ":";
      *out += n.value;
    }
  } else {
    *out += DKindName(n.kind);
  }
  for (const DiffTree& c : n.children) {
    *out += " ";
    SExprNode(c, out);
  }
  *out += ")";
}

}  // namespace

std::string DiffTree::ToString() const {
  std::string out;
  DumpNode(*this, 0, &out);
  return out;
}

std::string DiffTree::ToSExpr() const {
  std::string out;
  SExprNode(*this, &out);
  return out;
}

const DiffTree* NodeAt(const DiffTree& root, const TreePath& path) {
  const DiffTree* n = &root;
  for (int idx : path) {
    if (idx < 0 || static_cast<size_t>(idx) >= n->children.size()) return nullptr;
    n = &n->children[static_cast<size_t>(idx)];
  }
  return n;
}

DiffTree* MutableNodeAt(DiffTree* root, const TreePath& path) {
  DiffTree* n = root;
  for (int idx : path) {
    if (idx < 0 || static_cast<size_t>(idx) >= n->children.size()) return nullptr;
    n = &n->children[static_cast<size_t>(idx)];
  }
  return n;
}

namespace {
void CollectChoices(const DiffTree& n, std::vector<const DiffTree*>* out) {
  if (n.IsChoice()) out->push_back(&n);
  for (const DiffTree& c : n.children) CollectChoices(c, out);
}
void CollectPaths(const DiffTree& n, TreePath* cur, std::vector<TreePath>* out) {
  out->push_back(*cur);
  for (size_t i = 0; i < n.children.size(); ++i) {
    cur->push_back(static_cast<int>(i));
    CollectPaths(n.children[i], cur, out);
    cur->pop_back();
  }
}
}  // namespace

std::vector<const DiffTree*> ListChoiceNodes(const DiffTree& root) {
  std::vector<const DiffTree*> out;
  CollectChoices(root, &out);
  return out;
}

void ListPaths(const DiffTree& root, std::vector<TreePath>* out) {
  TreePath cur;
  CollectPaths(root, &cur, out);
}

namespace {
void LabelNode(const DiffTree& n, std::string* out) {
  if (out->size() > 64) return;  // labels are truncated anyway
  switch (n.kind) {
    case DKind::kAny:
      *out += "▾";  // small down triangle: a choice
      return;
    case DKind::kOpt:
      *out += "[?]";
      return;
    case DKind::kMulti:
      *out += "[*]";
      return;
    case DKind::kAll:
      break;
  }
  if (n.sym == Symbol::kEmpty) {
    *out += "(none)";
    return;
  }
  if (n.sym == Symbol::kSeq) {
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += " ";
      LabelNode(n.children[i], out);
    }
    return;
  }
  // Choice-free AST subtrees render as SQL fragments.
  if (n.ChoiceCount() == 0) {
    auto ast = n.ToAst();
    if (ast.ok()) {
      *out += UnparseFragment(*ast);
      return;
    }
  }
  *out += SymbolName(n.sym);
  if (!n.value.empty()) {
    *out += ":" + n.value;
  }
  if (!n.children.empty()) {
    *out += "(";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += " ";
      LabelNode(n.children[i], out);
    }
    *out += ")";
  }
}
}  // namespace

std::string DiffTreeLabel(const DiffTree& node, size_t max_len) {
  std::string out;
  LabelNode(node, &out);
  return Ellipsize(out, max_len);
}

}  // namespace ifgen
