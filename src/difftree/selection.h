#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "difftree/match.h"

namespace ifgen {

/// \brief Stable identifiers for the choice nodes of a fixed difftree.
///
/// Choice ids are the pre-order indices over choice nodes; they stay valid
/// as long as the tree instance is not mutated. The cost model, the widget
/// assigner, and the interface runtime all address widgets by choice id.
class ChoiceIndex {
 public:
  explicit ChoiceIndex(const DiffTree& root);

  size_t size() const { return nodes_.size(); }
  const DiffTree* node(size_t id) const { return nodes_[id]; }
  /// Returns -1 when the node is not a choice node of the indexed tree.
  int IdOf(const DiffTree* node) const;

  /// Ids of choice nodes that lie inside a MULTI subtree (excluded from
  /// per-widget selection tracking: the adder widget owns them).
  bool InsideMulti(size_t id) const { return inside_multi_[id]; }

 private:
  std::vector<const DiffTree*> nodes_;
  std::vector<bool> inside_multi_;
  std::unordered_map<const DiffTree*, int> id_of_;
};

/// \brief The selection a query induces on each *active* widget.
///
/// Maps choice id -> encoded selection. Choice nodes in unchosen ANY
/// branches are absent (the corresponding widgets keep their prior state —
/// "sticky" semantics, matching how a real interface behaves). Choice nodes
/// inside MULTI subtrees are folded into the MULTI's own encoding.
using SelectionMap = std::unordered_map<int, std::string>;

/// Extracts the selection map from a derivation.
SelectionMap ExtractSelections(const ChoiceIndex& index, const Derivation& deriv);

/// Number of selections that differ between consecutive queries under sticky
/// semantics: a widget counts as changed when `next` assigns it a value
/// different from its current sticky value in `state`; `state` is updated.
size_t CountChangedAndAdvance(const SelectionMap& next,
                              SelectionMap* state,
                              std::vector<int>* changed_ids = nullptr);

}  // namespace ifgen
