#pragma once

#include <vector>

#include "difftree/difftree.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Builds the initial search state: the input query ASTs connected
/// with an ANY root (paper, "Search Space"). Duplicate queries are kept —
/// removing them is the Merge rule's job, i.e. a search move.
Result<DiffTree> BuildInitialTree(const std::vector<Ast>& queries);

/// \brief Parses SQL strings and builds the initial tree.
Result<DiffTree> BuildInitialTreeFromSql(const std::vector<std::string>& sqls);

}  // namespace ifgen
