#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Difftree node kinds (paper, "The Interface Generation Problem").
///
/// ANY chooses one of its children; OPT has a single optional child; MULTI
/// has a single child chosen zero or more times; ALL requires all children.
/// ANY/OPT/MULTI are *choice nodes*. An AST is the special case of a
/// difftree consisting solely of ALL nodes.
enum class DKind : uint8_t { kAll = 0, kAny, kOpt, kMulti };

std::string_view DKindName(DKind k);

/// \brief A difftree: jointly encodes the variation among a set of query
/// ASTs and the hierarchical layout of the interface that expresses them.
///
/// Semantics: every node denotes a set of *sequences* of AST nodes.
///  - ALL(sym,value,[c...]) denotes the singleton sequences [Ast(sym,value,
///    concat(expansions of c...))]. Two symbols are special: kSeq denotes the
///    concatenation of its children's expansions without emitting a node
///    (transparent group), and kEmpty denotes the empty sequence.
///  - ANY denotes the union of its children's sequence sets.
///  - OPT denotes its child's set plus the empty sequence.
///  - MULTI denotes the Kleene closure (0+ concatenated repetitions).
///
/// Value-semantic like Ast; search states are independent copies.
struct DiffTree {
  DKind kind = DKind::kAll;
  Symbol sym = Symbol::kEmpty;  ///< meaningful only when kind == kAll
  std::string value;            ///< meaningful only when kind == kAll
  std::vector<DiffTree> children;

  DiffTree() = default;
  DiffTree(DKind k, std::vector<DiffTree> kids) : kind(k), children(std::move(kids)) {}
  DiffTree(Symbol s, std::string v) : sym(s), value(std::move(v)) {}
  DiffTree(Symbol s, std::string v, std::vector<DiffTree> kids)
      : sym(s), value(std::move(v)), children(std::move(kids)) {}

  /// Factory helpers.
  static DiffTree Any(std::vector<DiffTree> alts) {
    return DiffTree(DKind::kAny, std::move(alts));
  }
  static DiffTree Opt(DiffTree child);
  static DiffTree Multi(DiffTree child);
  static DiffTree Seq(std::vector<DiffTree> kids);
  static DiffTree Empty() { return DiffTree(Symbol::kEmpty, ""); }

  /// Wraps an AST as an all-ALL difftree.
  static DiffTree FromAst(const Ast& ast);

  bool IsChoice() const { return kind != DKind::kAll; }
  bool IsSeq() const { return kind == DKind::kAll && sym == Symbol::kSeq; }
  bool IsEmptyLeaf() const { return kind == DKind::kAll && sym == Symbol::kEmpty; }

  bool operator==(const DiffTree& other) const;
  bool operator!=(const DiffTree& other) const { return !(*this == other); }

  /// Structural hash; children order-sensitive (used for equality buckets).
  uint64_t Hash() const;

  /// Canonical hash used by the MCTS transposition table: invariant under
  /// reordering of ANY alternatives (their order never affects semantics).
  uint64_t CanonicalHash() const;

  size_t NodeCount() const;
  size_t ChoiceCount() const;
  size_t Depth() const;

  /// Converts a choice-free difftree back to a single AST (splicing Seq and
  /// dropping Empty). Errors if the subtree contains choice nodes or does
  /// not expand to exactly one node.
  Result<Ast> ToAst() const;

  /// Expands the subtree to its node sequence; requires choice-free.
  Result<std::vector<Ast>> ToAstSequence() const;

  /// Indented multi-line structure dump, e.g.
  ///   ANY
  ///     ALL Select
  ///       ALL Project ...
  std::string ToString() const;

  /// One-line s-expression, e.g. `(ANY (Select ...) (Select ...))`.
  std::string ToSExpr() const;
};

/// \brief A path from the root: the sequence of child indices.
using TreePath = std::vector<int>;

/// Node lookup by path; returns nullptr when the path is invalid.
const DiffTree* NodeAt(const DiffTree& root, const TreePath& path);
DiffTree* MutableNodeAt(DiffTree* root, const TreePath& path);

/// Lists all choice nodes in pre-order (their index is the "choice id" used
/// by bindings, the cost model and the interface runtime).
std::vector<const DiffTree*> ListChoiceNodes(const DiffTree& root);

/// Pre-order paths of all nodes (choice and non-choice).
void ListPaths(const DiffTree& root, std::vector<TreePath>* out);

/// Short human-readable label for a difftree node's content, with choice
/// nodes rendered as placeholders; used for widget labels.
std::string DiffTreeLabel(const DiffTree& node, size_t max_len = 24);

}  // namespace ifgen
