#pragma once

#include "difftree/difftree.h"

namespace ifgen {

/// \brief Rewrites a difftree into normal form without changing its
/// expressible-query set. Applied after every transformation-rule step so
/// that structurally equivalent states collide in the transposition table.
///
/// Normal-form invariants:
///  - No kSeq node has a kSeq child (nested Seqs are spliced).
///  - No kSeq node has exactly one child (collapsed), or zero (-> kEmpty).
///  - ALL nodes contain no kEmpty children and have kSeq children spliced.
///  - OPT(kEmpty) -> kEmpty; OPT(OPT(x)) -> OPT(x); OPT(MULTI(x)) -> MULTI(x).
///  - MULTI(kEmpty) -> kEmpty; MULTI(MULTI(x)) -> MULTI(x);
///    MULTI(OPT(x)) -> MULTI(x).
///  - ANY alternatives that are single-child Seqs are unwrapped.
///
/// ANY children are deliberately *not* deduplicated, flattened, or sorted:
/// duplicate removal is the Merge rule (a search move, paper Fig. 5), and
/// nested ANYs are meaningful hierarchical layouts.
void Normalize(DiffTree* tree);

/// Returns a normalized copy.
DiffTree Normalized(DiffTree tree);

/// Validity check used by tests and debug builds: every ANY/OPT/MULTI has
/// the right arity, only kAll nodes carry symbols, and kSeq appears only
/// where a sequence is admissible (under choice nodes).
bool IsWellFormed(const DiffTree& tree, std::string* why = nullptr);

}  // namespace ifgen
