#include "difftree/normalize.h"

#include <utility>

#include "util/string_util.h"

namespace ifgen {

namespace {

void NormalizeRec(DiffTree* n) {
  for (DiffTree& c : n->children) NormalizeRec(&c);

  switch (n->kind) {
    case DKind::kAll: {
      // Splice Seq children; drop Empty children (they expand to nothing).
      std::vector<DiffTree> kids;
      kids.reserve(n->children.size());
      for (DiffTree& c : n->children) {
        if (c.IsSeq()) {
          for (DiffTree& gc : c.children) kids.push_back(std::move(gc));
        } else if (c.IsEmptyLeaf()) {
          // dropped
        } else {
          kids.push_back(std::move(c));
        }
      }
      n->children = std::move(kids);
      if (n->IsSeq()) {
        if (n->children.empty()) {
          *n = DiffTree::Empty();
        } else if (n->children.size() == 1) {
          DiffTree only = std::move(n->children[0]);
          *n = std::move(only);
        }
      }
      break;
    }
    case DKind::kOpt: {
      DiffTree& c = n->children[0];
      if (c.IsEmptyLeaf()) {
        *n = DiffTree::Empty();
      } else if (c.kind == DKind::kOpt) {
        DiffTree inner = std::move(c);
        *n = std::move(inner);
      } else if (c.kind == DKind::kMulti) {
        DiffTree inner = std::move(c);
        *n = std::move(inner);
      }
      break;
    }
    case DKind::kMulti: {
      DiffTree& c = n->children[0];
      if (c.IsEmptyLeaf()) {
        *n = DiffTree::Empty();
      } else if (c.kind == DKind::kMulti || c.kind == DKind::kOpt) {
        DiffTree grand = std::move(c.children[0]);
        n->children[0] = std::move(grand);
      }
      break;
    }
    case DKind::kAny: {
      // Unwrap single-child Seq alternatives (Seq of one == the one).
      // (Already handled by the kAll case via recursion.)
      break;
    }
  }
}

bool CheckNode(const DiffTree& n, bool seq_ok, std::string* why) {
  auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  switch (n.kind) {
    case DKind::kAll:
      if (n.sym == Symbol::kSeq && !seq_ok) {
        return fail("Seq in a position requiring a single node");
      }
      if (n.sym == Symbol::kEmpty && !n.children.empty()) {
        return fail("Empty leaf with children");
      }
      break;
    case DKind::kAny:
      if (n.children.empty()) return fail("ANY with no alternatives");
      break;
    case DKind::kOpt:
    case DKind::kMulti:
      if (n.children.size() != 1) {
        return fail(std::string(DKindName(n.kind)) + " must have exactly 1 child");
      }
      break;
  }
  for (const DiffTree& c : n.children) {
    // Children of choice nodes and of Seq/ALL nodes may denote sequences.
    bool child_seq_ok = n.kind != DKind::kAll || n.sym == Symbol::kSeq ||
                        n.sym != Symbol::kEmpty;
    if (!CheckNode(c, child_seq_ok, why)) return false;
  }
  return true;
}

}  // namespace

void Normalize(DiffTree* tree) { NormalizeRec(tree); }

DiffTree Normalized(DiffTree tree) {
  Normalize(&tree);
  return tree;
}

bool IsWellFormed(const DiffTree& tree, std::string* why) {
  return CheckNode(tree, /*seq_ok=*/true, why);
}

}  // namespace ifgen
