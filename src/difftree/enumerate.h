#pragma once

#include <vector>

#include "difftree/difftree.h"
#include "sql/ast.h"

namespace ifgen {

/// \brief Enumerates queries expressible by the difftree, up to `limit`
/// results; MULTI nodes are expanded to at most `max_multi` repetitions.
/// Used by tests (language-preservation properties) and by the examples to
/// show "similar queries not in the log" the interface can express.
std::vector<Ast> EnumerateQueries(const DiffTree& root, size_t limit,
                                  size_t max_multi = 2);

/// \brief Estimated size of the expressible-query language with MULTI capped
/// at `max_multi` repetitions; saturates at 1e18 to avoid overflow. This is
/// the "coverage" statistic reported by the benches.
double CountExpressible(const DiffTree& root, size_t max_multi = 2);

}  // namespace ifgen
