#pragma once

#include <optional>
#include <vector>

#include "difftree/difftree.h"
#include "sql/ast.h"

namespace ifgen {

/// \brief A derivation explains *how* a difftree expresses a concrete AST:
/// which alternative each ANY picked, whether each OPT is present, and how
/// many copies each MULTI produced.
///
/// The derivation mirrors the difftree: `node` points into the difftree the
/// query was matched against (so derivations are invalidated by tree edits).
struct Derivation {
  const DiffTree* node = nullptr;
  /// kAny: index of the chosen alternative. kOpt: 1 if present else 0.
  /// kMulti: repetition count. kAll: unused (-1).
  int choice = -1;
  /// kAll: one per difftree child. kAny: single entry (the chosen
  /// alternative's derivation). kOpt: one entry if present. kMulti: one
  /// entry per repetition.
  std::vector<Derivation> children;

  /// Canonical encoding of every choice made in this derivation subtree;
  /// two derivations encode equal iff they make identical choices.
  std::string Encode() const;
};

/// \brief Limits for the backtracking matcher.
struct MatchOptions {
  /// Backtracking step budget; exceeded => treated as no-match (logged).
  size_t max_steps = 2'000'000;
  /// Maximum repetitions a MULTI may consume.
  size_t max_multi = 24;
};

/// \brief Matches `query` against the difftree. Returns the first-found
/// derivation (deterministic: alternatives are tried in order, OPT prefers
/// absent-last, MULTI prefers fewer copies) or nullopt when inexpressible.
std::optional<Derivation> MatchQuery(const DiffTree& root, const Ast& query,
                                     const MatchOptions& opts = {});

/// \brief Enumerates up to `limit` distinct derivations of `query` (used by
/// the cost model to pick the parse minimizing widget changes).
std::vector<Derivation> EnumerateDerivations(const DiffTree& root, const Ast& query,
                                             size_t limit,
                                             const MatchOptions& opts = {});

/// \brief True when every query is expressible by the difftree. This is the
/// core invariant the transformation rules must preserve.
bool ExpressesAll(const DiffTree& root, const std::vector<Ast>& queries,
                  const MatchOptions& opts = {});

/// \brief Re-expands a derivation into the AST-node sequence it denotes (the
/// inverse of matching). A full-query derivation expands to one AST.
Result<std::vector<Ast>> ExpandDerivation(const Derivation& deriv);

/// Convenience: expands a derivation expected to denote exactly one AST.
Result<Ast> MaterializeDerivation(const Derivation& deriv);

/// \brief A canonical default derivation of `node`: every ANY picks its
/// first alternative, every OPT is present, every MULTI produces one copy.
/// Used by the interactive runtime when the user switches into an
/// alternative whose nested widgets have no prior values.
Derivation DefaultDerivation(const DiffTree& node);

}  // namespace ifgen
