#include "difftree/builder.h"

#include "difftree/normalize.h"
#include "sql/parser.h"

namespace ifgen {

Result<DiffTree> BuildInitialTree(const std::vector<Ast>& queries) {
  if (queries.empty()) {
    return Status::Invalid("cannot build a difftree from zero queries");
  }
  if (queries.size() == 1) {
    // A single query still gets an ANY root so that the state space is
    // uniform (the Noop rule can unwrap it).
    return Normalized(DiffTree::Any({DiffTree::FromAst(queries[0])}));
  }
  std::vector<DiffTree> alts;
  alts.reserve(queries.size());
  for (const Ast& q : queries) {
    alts.push_back(DiffTree::FromAst(q));
  }
  return Normalized(DiffTree::Any(std::move(alts)));
}

Result<DiffTree> BuildInitialTreeFromSql(const std::vector<std::string>& sqls) {
  IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> queries, ParseQueries(sqls));
  return BuildInitialTree(queries);
}

}  // namespace ifgen
