#include "difftree/selection.h"

#include "util/logging.h"

namespace ifgen {

namespace {
void CollectChoicesRec(const DiffTree& n, bool inside_multi,
                       std::vector<const DiffTree*>* nodes,
                       std::vector<bool>* inside) {
  bool here_multi = inside_multi;
  if (n.IsChoice()) {
    nodes->push_back(&n);
    inside->push_back(inside_multi);
    if (n.kind == DKind::kMulti) here_multi = true;
  }
  for (const DiffTree& c : n.children) {
    CollectChoicesRec(c, here_multi, nodes, inside);
  }
}
}  // namespace

ChoiceIndex::ChoiceIndex(const DiffTree& root) {
  CollectChoicesRec(root, /*inside_multi=*/false, &nodes_, &inside_multi_);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    id_of_[nodes_[i]] = static_cast<int>(i);
  }
}

int ChoiceIndex::IdOf(const DiffTree* node) const {
  auto it = id_of_.find(node);
  return it == id_of_.end() ? -1 : it->second;
}

namespace {

void ExtractRec(const ChoiceIndex& index, const Derivation& d, bool inside_multi,
                SelectionMap* out) {
  const DiffTree* n = d.node;
  IFGEN_DCHECK(n != nullptr);
  if (n->IsChoice() && !inside_multi) {
    int id = index.IdOf(n);
    if (id >= 0) {
      switch (n->kind) {
        case DKind::kAny:
          (*out)[id] = "a" + std::to_string(d.choice);
          break;
        case DKind::kOpt:
          (*out)[id] = d.choice != 0 ? "p1" : "p0";
          break;
        case DKind::kMulti:
          // The adder widget's value is the full sub-derivation (count plus
          // every nested choice in every copy).
          (*out)[id] = d.Encode();
          break;
        case DKind::kAll:
          break;
      }
    }
  }
  bool next_inside = inside_multi || n->kind == DKind::kMulti;
  for (const Derivation& c : d.children) {
    ExtractRec(index, c, next_inside, out);
  }
}

}  // namespace

SelectionMap ExtractSelections(const ChoiceIndex& index, const Derivation& deriv) {
  SelectionMap out;
  ExtractRec(index, deriv, /*inside_multi=*/false, &out);
  return out;
}

size_t CountChangedAndAdvance(const SelectionMap& next, SelectionMap* state,
                              std::vector<int>* changed_ids) {
  size_t changed = 0;
  for (const auto& [id, sel] : next) {
    auto it = state->find(id);
    if (it == state->end() || it->second != sel) {
      ++changed;
      if (changed_ids != nullptr) changed_ids->push_back(id);
      (*state)[id] = sel;
    }
  }
  return changed;
}

}  // namespace ifgen
