#include "difftree/match.h"

#include <functional>

#include "util/logging.h"
#include "util/string_util.h"

namespace ifgen {

std::string Derivation::Encode() const {
  std::string out;
  switch (node->kind) {
    case DKind::kAll:
      break;
    case DKind::kAny:
      out += "a" + std::to_string(choice);
      break;
    case DKind::kOpt:
      out += choice != 0 ? "p1" : "p0";
      break;
    case DKind::kMulti:
      out += "m" + std::to_string(choice);
      break;
  }
  if (!children.empty()) {
    out += "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += " ";
      out += children[i].Encode();
    }
    out += ")";
  }
  return out;
}

namespace {

/// A view of the AST node list currently being consumed.
using AstList = std::vector<const Ast*>;

/// Continuation-passing backtracking matcher. `Cont` receives the index of
/// the next unconsumed AST node at the *same* list level; returning true
/// commits the branch, returning false requests further backtracking.
using Cont = std::function<bool(size_t)>;

class Matcher {
 public:
  explicit Matcher(const MatchOptions& opts) : opts_(opts) {}

  bool exhausted() const { return exhausted_; }

  /// Tries every way `node` can consume a prefix of asts[j...); `deriv` holds
  /// the derivation of the branch active when `cont` committed.
  bool MatchOne(const DiffTree& node, const AstList& asts, size_t j, Derivation* deriv,
                const Cont& cont) {
    if (++steps_ > opts_.max_steps) {
      exhausted_ = true;
      return false;
    }
    deriv->node = &node;
    deriv->choice = -1;
    deriv->children.clear();
    switch (node.kind) {
      case DKind::kAll: {
        if (node.sym == Symbol::kEmpty) {
          return cont(j);
        }
        if (node.sym == Symbol::kSeq) {
          deriv->children.resize(node.children.size());
          return MatchList(node.children, asts, 0, j, &deriv->children, cont);
        }
        if (j >= asts.size()) return false;
        const Ast& a = *asts[j];
        if (a.sym != node.sym || a.value != node.value) return false;
        // The node's children must expand to exactly a.children; different
        // inner parses are explored via the continuation so enumeration of
        // derivations is complete.
        AstList sub;
        sub.reserve(a.children.size());
        for (const Ast& c : a.children) sub.push_back(&c);
        deriv->children.resize(node.children.size());
        return MatchList(node.children, sub, 0, 0, &deriv->children, [&](size_t used) {
          if (used != sub.size()) return false;
          return cont(j + 1);
        });
      }
      case DKind::kAny: {
        for (size_t alt = 0; alt < node.children.size(); ++alt) {
          deriv->choice = static_cast<int>(alt);
          deriv->children.assign(1, Derivation{});
          if (MatchOne(node.children[alt], asts, j, &deriv->children[0], cont)) {
            return true;
          }
          if (exhausted_) return false;
        }
        return false;
      }
      case DKind::kOpt: {
        // Prefer present (consumes input) over absent; backtracking covers
        // the other order.
        deriv->choice = 1;
        deriv->children.assign(1, Derivation{});
        if (MatchOne(node.children[0], asts, j, &deriv->children[0], cont)) return true;
        if (exhausted_) return false;
        deriv->choice = 0;
        deriv->children.clear();
        return cont(j);
      }
      case DKind::kMulti: {
        deriv->choice = 0;
        deriv->children.clear();
        // MatchMulti resizes deriv->children while recursion holds pointers
        // to earlier elements; reserving up front pins them in place.
        deriv->children.reserve(opts_.max_multi + 1);
        return MatchMulti(node, asts, j, 0, deriv, cont);
      }
    }
    return false;
  }

  /// Matches a child list (sequence semantics) against asts[j...).
  bool MatchList(const std::vector<DiffTree>& items, const AstList& asts, size_t i,
                 size_t j, std::vector<Derivation>* derivs, const Cont& cont) {
    if (i == items.size()) return cont(j);
    return MatchOne(items[i], asts, j, &(*derivs)[i], [&](size_t j2) {
      return MatchList(items, asts, i + 1, j2, derivs, cont);
    });
  }

 private:
  bool MatchMulti(const DiffTree& node, const AstList& asts, size_t j, size_t count,
                  Derivation* deriv, const Cont& cont) {
    // Prefer fewer copies: try stopping first.
    deriv->choice = static_cast<int>(count);
    deriv->children.resize(count);
    if (cont(j)) return true;
    if (exhausted_ || count >= opts_.max_multi) return false;
    deriv->children.resize(count + 1);
    bool ok = MatchOne(node.children[0], asts, j, &deriv->children[count],
                       [&](size_t j2) {
                         if (j2 == j) return false;  // forbid empty repetitions
                         return MatchMulti(node, asts, j2, count + 1, deriv, cont);
                       });
    if (!ok) {
      deriv->choice = static_cast<int>(count);
      deriv->children.resize(count);
    }
    return ok;
  }

  const MatchOptions& opts_;
  size_t steps_ = 0;
  bool exhausted_ = false;
};

}  // namespace

std::optional<Derivation> MatchQuery(const DiffTree& root, const Ast& query,
                                     const MatchOptions& opts) {
  AstList asts = {&query};
  Matcher m(opts);
  Derivation deriv;
  bool ok = m.MatchOne(root, asts, 0, &deriv, [&](size_t j) { return j == 1; });
  if (m.exhausted()) {
    IFGEN_LOG(Warning) << "matcher step budget exhausted; treating as no-match";
    return std::nullopt;
  }
  if (!ok) return std::nullopt;
  return deriv;
}

std::vector<Derivation> EnumerateDerivations(const DiffTree& root, const Ast& query,
                                             size_t limit, const MatchOptions& opts) {
  std::vector<Derivation> out;
  if (limit == 0) return out;
  AstList asts = {&query};
  Matcher m(opts);
  Derivation deriv;
  // The continuation reports failure after collecting each complete parse so
  // the matcher keeps backtracking into the next one, until `limit`.
  m.MatchOne(root, asts, 0, &deriv, [&](size_t j) {
    if (j != 1) return false;
    out.push_back(deriv);
    return out.size() >= limit;  // true stops the search
  });
  return out;
}

bool ExpressesAll(const DiffTree& root, const std::vector<Ast>& queries,
                  const MatchOptions& opts) {
  for (const Ast& q : queries) {
    if (!MatchQuery(root, q, opts).has_value()) return false;
  }
  return true;
}

Result<std::vector<Ast>> ExpandDerivation(const Derivation& d) {
  if (d.node == nullptr) return Status::Invalid("empty derivation");
  const DiffTree& n = *d.node;
  switch (n.kind) {
    case DKind::kAll: {
      if (n.sym == Symbol::kEmpty) return std::vector<Ast>{};
      std::vector<Ast> expanded;
      for (const Derivation& c : d.children) {
        IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> seq, ExpandDerivation(c));
        for (Ast& a : seq) expanded.push_back(std::move(a));
      }
      if (n.sym == Symbol::kSeq) return expanded;
      return std::vector<Ast>{Ast(n.sym, n.value, std::move(expanded))};
    }
    case DKind::kAny: {
      if (d.children.empty()) return Status::Invalid("ANY derivation without child");
      return ExpandDerivation(d.children[0]);
    }
    case DKind::kOpt: {
      if (d.choice == 0 || d.children.empty()) return std::vector<Ast>{};
      return ExpandDerivation(d.children[0]);
    }
    case DKind::kMulti: {
      std::vector<Ast> expanded;
      for (const Derivation& c : d.children) {
        IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> seq, ExpandDerivation(c));
        for (Ast& a : seq) expanded.push_back(std::move(a));
      }
      return expanded;
    }
  }
  return Status::Internal("bad derivation node kind");
}

Result<Ast> MaterializeDerivation(const Derivation& d) {
  IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> seq, ExpandDerivation(d));
  if (seq.size() != 1) {
    return Status::Invalid(
        StrFormat("derivation expands to %zu nodes, expected 1", seq.size()));
  }
  return std::move(seq[0]);
}

Derivation DefaultDerivation(const DiffTree& node) {
  Derivation d;
  d.node = &node;
  switch (node.kind) {
    case DKind::kAll:
      d.choice = -1;
      for (const DiffTree& c : node.children) {
        d.children.push_back(DefaultDerivation(c));
      }
      break;
    case DKind::kAny:
      d.choice = 0;
      d.children.push_back(DefaultDerivation(node.children[0]));
      break;
    case DKind::kOpt:
      d.choice = 1;
      d.children.push_back(DefaultDerivation(node.children[0]));
      break;
    case DKind::kMulti:
      d.choice = 1;
      d.children.push_back(DefaultDerivation(node.children[0]));
      break;
  }
  return d;
}

}  // namespace ifgen
