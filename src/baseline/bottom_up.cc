#include "baseline/bottom_up.h"

#include <algorithm>

#include "difftree/normalize.h"
#include "interface/assignment.h"
#include "rules/align.h"
#include "util/logging.h"
#include "widgets/appropriateness.h"

namespace ifgen {

namespace {

/// Recursively merges a set of (all-ALL) difftrees into one difftree,
/// factoring greedily at every level — the bottom-up "group differences by
/// AST location" strategy.
DiffTree MergeNodes(const std::vector<const DiffTree*>& nodes) {
  IFGEN_CHECK(!nodes.empty());
  // Distinct nodes only.
  std::vector<const DiffTree*> distinct;
  for (const DiffTree* n : nodes) {
    bool seen = false;
    for (const DiffTree* d : distinct) {
      if (*d == *n) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.push_back(n);
  }
  if (distinct.size() == 1) return *distinct[0];

  // Same root (symbol + value): align children by symbol and merge columns
  // recursively.
  const DiffTree* first = distinct[0];
  bool same_root = first->kind == DKind::kAll && first->sym != Symbol::kSeq &&
                   first->sym != Symbol::kEmpty;
  for (const DiffTree* n : distinct) {
    same_root &= n->kind == DKind::kAll && n->sym == first->sym &&
                 n->value == first->value;
  }
  if (!same_root) {
    std::vector<DiffTree> alts;
    for (const DiffTree* n : distinct) alts.push_back(*n);
    return DiffTree::Any(std::move(alts));
  }

  std::vector<const std::vector<DiffTree>*> alt_children;
  for (const DiffTree* n : distinct) alt_children.push_back(&n->children);
  std::vector<AlignedColumn> columns = AlignBySymbol(alt_children);
  DiffTree result(first->sym, first->value);
  for (const AlignedColumn& col : columns) {
    std::vector<const DiffTree*> entries;
    bool missing = false;
    for (size_t a = 0; a < col.entry.size(); ++a) {
      if (col.entry[a].has_value()) {
        entries.push_back(&(*alt_children[a])[*col.entry[a]]);
      } else {
        missing = true;
      }
    }
    DiffTree merged = MergeNodes(entries);
    if (missing) {
      if (merged.kind == DKind::kAny) {
        merged.children.push_back(DiffTree::Empty());
      } else {
        merged = DiffTree::Any({std::move(merged), DiffTree::Empty()});
      }
    }
    result.children.push_back(std::move(merged));
  }
  return result;
}

}  // namespace

Result<DiffTree> BottomUpMerge(const std::vector<Ast>& queries) {
  if (queries.empty()) return Status::Invalid("no queries");
  std::vector<DiffTree> trees;
  trees.reserve(queries.size());
  for (const Ast& q : queries) trees.push_back(DiffTree::FromAst(q));
  std::vector<const DiffTree*> ptrs;
  ptrs.reserve(trees.size());
  for (const DiffTree& t : trees) ptrs.push_back(&t);
  return Normalized(MergeNodes(ptrs));
}

Result<BottomUpResult> RunBottomUpBaseline(const std::vector<Ast>& queries,
                                           const CostConstants& constants,
                                           Screen screen) {
  IFGEN_ASSIGN_OR_RETURN(DiffTree tree, BottomUpMerge(queries));
  WidgetAssigner assigner(tree, constants);
  if (!assigner.viable()) {
    return Status::Invalid("bottom-up difftree has an unmappable choice node");
  }
  // Min-M pick per choice widget; everything else takes the first option
  // (vertical layouts, separate widgets — the baseline knows no layout).
  Assignment a = assigner.MinAppropriatenessAssignment();
  IFGEN_ASSIGN_OR_RETURN(WidgetTree wt, assigner.Build(a));
  // Score with the full model for comparability; note the baseline itself
  // never looked at U(.) or the screen.
  CostModel model(constants, screen);
  BottomUpResult out;
  out.cost = model.Evaluate(tree, &wt, queries);
  out.difftree = std::move(tree);
  out.widgets = std::move(wt);
  return out;
}

}  // namespace ifgen
