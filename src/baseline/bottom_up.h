#pragma once

#include <vector>

#include "cost/cost_model.h"
#include "difftree/difftree.h"
#include "interface/widget_tree.h"
#include "sql/ast.h"
#include "util/status.h"
#include "widgets/constants.h"

namespace ifgen {

/// \brief Reimplementation of the bottom-up baseline of Zhang, Sellam & Wu,
/// "Mining Precision Interfaces from Query Logs" (SIGMOD 2017), as the paper
/// characterizes it:
///
///  - enumerates subtree differences between the query ASTs and groups
///    differences at the same AST location, without considering whether the
///    subtrees *should* be grouped or what the other widgets are;
///  - selects each widget purely by appropriateness M(.) — no transition
///    cost U(.), since query order is ignored;
///  - returns a flat set of widgets with a naive vertical layout — no
///    layout search and no screen-size awareness.
///
/// Operationally this is one-shot maximal factoring (recursive symbol-LCS
/// merging of all ASTs) followed by independent min-M widget picks. The
/// result is scored with this library's cost model so it is directly
/// comparable to the search-based generators.
struct BottomUpResult {
  DiffTree difftree;
  WidgetTree widgets;
  CostBreakdown cost;
};

Result<BottomUpResult> RunBottomUpBaseline(const std::vector<Ast>& queries,
                                           const CostConstants& constants,
                                           Screen screen);

/// The merged difftree alone (exposed for tests).
Result<DiffTree> BottomUpMerge(const std::vector<Ast>& queries);

}  // namespace ifgen
