#include "cost/delta.h"

#include <limits>

#include "obs/metrics.h"
#include "widgets/appropriateness.h"

namespace ifgen {

namespace {
obs::Counter& SubtreeHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_delta_subtree_hits_total", "DeltaCostCache choice-term cache hits");
  return *c;
}
obs::Counter& SubtreeRecomputesMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_delta_subtree_recomputes_total",
      "DeltaCostCache choice-term recomputations");
  return *c;
}
obs::Counter& PlanHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_delta_plan_hits_total", "DeltaCostCache transition-plan cache hits");
  return *c;
}
obs::Counter& PlanRecomputesMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_delta_plan_recomputes_total",
      "DeltaCostCache transition-plan recomputations");
  return *c;
}
}  // namespace

ChoiceWidgetTerms ComputeChoiceWidgetTerms(const DiffTree& choice_node,
                                           const CostConstants& constants,
                                           const SizeModel& size_model) {
  ChoiceWidgetTerms t;
  t.domain = ExtractDomain(choice_node);
  for (WidgetKind k : ValidWidgetKinds(t.domain)) {
    // The adder composes its size from its children (layout-style), so it
    // has no leaf template to check.
    if (k == WidgetKind::kAdder || size_model.PickTemplate(k, t.domain).ok()) {
      t.options.push_back(k);
    }
  }
  // First minimum wins, matching the historical greedy-assignment loop.
  double best_m = std::numeric_limits<double>::infinity();
  for (size_t o = 0; o < t.options.size(); ++o) {
    double m = AppropriatenessCost(constants, t.options[o], t.domain);
    if (m < best_m) {
      best_m = m;
      t.min_m_pick = static_cast<int>(o);
    }
  }
  return t;
}

std::shared_ptr<const ChoiceWidgetTerms> DeltaCostCache::GetChoiceTerms(
    const DiffTree& choice_node, const CostConstants& constants,
    const SizeModel& size_model) {
  if (!enabled_) {
    subtree_recomputes_.fetch_add(1, std::memory_order_relaxed);
    SubtreeRecomputesMetric().Inc();
    return std::make_shared<const ChoiceWidgetTerms>(
        ComputeChoiceWidgetTerms(choice_node, constants, size_model));
  }
  // Order-sensitive hash: the cached labels are read by index against the
  // node's actual children at widget-build time (see delta.h).
  uint64_t key = choice_node.Hash();
  if (auto cached = terms_.Lookup(key)) {
    subtree_hits_.fetch_add(1, std::memory_order_relaxed);
    SubtreeHitsMetric().Inc();
    return *cached;
  }
  subtree_recomputes_.fetch_add(1, std::memory_order_relaxed);
  SubtreeRecomputesMetric().Inc();
  auto t = std::make_shared<const ChoiceWidgetTerms>(
      ComputeChoiceWidgetTerms(choice_node, constants, size_model));
  terms_.Insert(key, t);
  return t;
}

std::shared_ptr<const TransitionPlan> DeltaCostCache::LookupPlan(
    uint64_t tree_hash) const {
  if (enabled_) {
    if (auto cached = plans_.Lookup(tree_hash)) {
      plan_hits_.fetch_add(1, std::memory_order_relaxed);
      PlanHitsMetric().Inc();
      return *cached;
    }
  }
  plan_recomputes_.fetch_add(1, std::memory_order_relaxed);
  PlanRecomputesMetric().Inc();
  return nullptr;
}

void DeltaCostCache::StorePlan(uint64_t tree_hash,
                               std::shared_ptr<const TransitionPlan> plan) {
  if (!enabled_) return;
  plans_.Insert(tree_hash, std::move(plan));
}

}  // namespace ifgen
