#include "cost/cost_model.h"

#include <algorithm>
#include <set>

#include "cost/transition.h"
#include "difftree/selection.h"
#include "interface/layout.h"
#include "widgets/appropriateness.h"

namespace ifgen {

namespace {

double MSumRec(const CostConstants& c, const WidgetNode& n) {
  WidgetDomain d = n.domain;
  if (IsLayoutWidget(n.kind)) {
    d.cardinality = n.children.size();
  }
  double sum = AppropriatenessCost(c, n.kind, d);
  for (const WidgetNode& k : n.children) sum += MSumRec(c, k);
  return sum;
}

struct NavAccum {
  const CostConstants* c;
  const std::set<std::vector<int>>* terminals;
  size_t total = 0;
  double cost = 0.0;
};

/// Returns the number of terminals in the subtree rooted at `n` (whose path
/// is `*path`), adding the cost of every edge inside the minimal connecting
/// subtree: edge (n -> child) is included iff the child subtree holds some
/// but not all terminals.
size_t NavRec(const WidgetNode& n, std::vector<int>* path, NavAccum* acc) {
  size_t here = acc->terminals->count(*path) != 0 ? 1 : 0;
  for (size_t i = 0; i < n.children.size(); ++i) {
    path->push_back(static_cast<int>(i));
    size_t below = NavRec(n.children[i], path, acc);
    path->pop_back();
    if (below > 0 && below < acc->total) {
      bool tab_edge =
          n.kind == WidgetKind::kTabs || n.kind == WidgetKind::kTabLayout;
      acc->cost += tab_edge ? acc->c->nav_tab_switch : acc->c->nav_edge;
    }
    here += below;
  }
  return here;
}

}  // namespace

double SteinerNavigationCost(const WidgetNode& root,
                             const std::vector<std::vector<int>>& paths,
                             const CostConstants& constants) {
  if (paths.size() <= 1) return 0.0;
  std::set<std::vector<int>> terminals(paths.begin(), paths.end());
  if (terminals.size() <= 1) return 0.0;
  NavAccum acc;
  acc.c = &constants;
  acc.terminals = &terminals;
  acc.total = terminals.size();
  std::vector<int> path;
  NavRec(root, &path, &acc);
  return acc.cost;
}

double CostModel::AppropriatenessSum(const WidgetNode& root) const {
  return MSumRec(constants_, root);
}

TransitionPlan PlanTransitions(const DiffTree& tree, const std::vector<Ast>& queries,
                               size_t parse_limit) {
  TransitionPlan plan;
  ChoiceIndex index(tree);
  SelectionMap state;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<Derivation> derivs = EnumerateDerivations(tree, queries[qi], parse_limit);
    if (derivs.empty()) {
      plan.valid = false;
      plan.invalid_reason = "query " + std::to_string(qi) + " inexpressible";
      return plan;
    }
    // Min-change parse under sticky semantics ("minimum set of widgets").
    size_t best_changed = static_cast<size_t>(-1);
    SelectionMap best_next;
    std::vector<int> best_ids;
    for (const Derivation& d : derivs) {
      SelectionMap sels = ExtractSelections(index, d);
      SelectionMap trial = state;
      std::vector<int> ids;
      size_t changed = CountChangedAndAdvance(sels, &trial, &ids);
      if (changed < best_changed) {
        best_changed = changed;
        best_next = std::move(trial);
        best_ids = std::move(ids);
        if (best_changed == 0) break;
      }
    }
    plan.changed_ids.push_back(qi == 0 ? std::vector<int>{} : std::move(best_ids));
    state = std::move(best_next);
  }
  plan.valid = true;
  return plan;
}

CostBreakdown CostModel::EvaluateWithPlan(const TransitionPlan& plan,
                                          WidgetTree* wt) const {
  CostBreakdown out;
  if (!plan.valid) {
    out.valid = false;
    out.invalid_reason = plan.invalid_reason;
    return out;
  }
  LayoutResult layout = ComputeLayout(&wt->root, screen_);
  out.layout_width = layout.width;
  out.layout_height = layout.height;
  if (!layout.fits) {
    out.valid = false;
    out.invalid_reason = "layout exceeds screen";
    return out;
  }
  wt->RebuildIndex();
  out.m_total = AppropriatenessSum(wt->root);

  for (size_t qi = 1; qi < plan.changed_ids.size(); ++qi) {
    double interaction = 0.0;
    std::vector<std::vector<int>> widget_paths;
    std::set<std::vector<int>> seen_widgets;
    for (int id : plan.changed_ids[qi]) {
      auto it = wt->path_by_choice.find(id);
      if (it == wt->path_by_choice.end()) continue;  // owned by an adder
      if (!seen_widgets.insert(it->second).second) continue;  // range slider pair
      const WidgetNode* w = wt->NodeAtPath(it->second);
      if (w == nullptr) continue;
      interaction += InteractionCost(constants_, w->kind, w->domain);
      widget_paths.push_back(it->second);
    }
    double nav = SteinerNavigationCost(wt->root, widget_paths, constants_);
    out.per_transition.push_back(interaction + nav);
    out.u_total += interaction + nav;
  }
  out.valid = true;
  return out;
}

CostBreakdown CostModel::Evaluate(const DiffTree& tree, WidgetTree* wt,
                                  const std::vector<Ast>& queries) const {
  TransitionPlan plan = PlanTransitions(tree, queries, parse_limit_);
  return EvaluateWithPlan(plan, wt);
}

}  // namespace ifgen
