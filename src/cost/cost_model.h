#pragma once

#include <limits>
#include <string>
#include <vector>

#include "difftree/difftree.h"
#include "interface/widget_tree.h"
#include "sql/ast.h"
#include "util/status.h"
#include "widgets/constants.h"

namespace ifgen {

/// \brief Decomposed interface cost C(W,Q) = sum U(qi, qi+1, W) + sum M(w)
/// (paper, "Cost Function").
struct CostBreakdown {
  bool valid = false;
  std::string invalid_reason;
  double m_total = 0.0;  ///< widget appropriateness sum
  double u_total = 0.0;  ///< transition effort sum over consecutive queries
  /// Per-transition U terms (size = max(0, |Q| - 1)).
  std::vector<double> per_transition;
  int layout_width = 0;
  int layout_height = 0;

  double total() const {
    return valid ? m_total + u_total : std::numeric_limits<double>::infinity();
  }
};

/// \brief The assignment-independent half of U(.): which choice-node widgets
/// must change at each step of the log. Computing it requires derivation
/// enumeration (expensive) but no widget tree, so evaluators compute it once
/// per difftree state and re-use it across all sampled widget assignments.
struct TransitionPlan {
  bool valid = false;
  std::string invalid_reason;
  /// changed_ids[i] = choice ids whose selection changes to reach query i
  /// (changed_ids[0] is the free initial configuration, left empty).
  std::vector<std::vector<int>> changed_ids;
};

/// Computes the plan (min-change parse per query under sticky semantics).
TransitionPlan PlanTransitions(const DiffTree& tree, const std::vector<Ast>& queries,
                               size_t parse_limit);

/// \brief Evaluates widget trees against a query log.
///
/// U(qi, qi+1) is computed with sticky widget semantics: each widget keeps
/// its last value, and a transition pays (a) the interaction cost of every
/// widget whose value must change and (b) a navigation cost over the minimum
/// spanning (Steiner) subtree of the widget tree connecting those widgets —
/// entering a tab panel costs more than crossing a plain layout edge.
///
/// "Minimum set of widgets that need to be changed" is approximated by
/// enumerating up to `parse_limit` derivations per query and greedily
/// picking the derivation that changes fewest widgets given the current
/// state.
class CostModel {
 public:
  CostModel(const CostConstants& constants, Screen screen, size_t parse_limit = 8)
      : constants_(constants), screen_(screen), parse_limit_(parse_limit) {}

  /// Lays out `wt` (mutating positions/sizes), then scores it. An
  /// out-of-screen layout or an inexpressible query yields valid == false.
  CostBreakdown Evaluate(const DiffTree& tree, WidgetTree* wt,
                         const std::vector<Ast>& queries) const;

  /// Same, re-using a precomputed transition plan (fast path for sampling
  /// many widget assignments of one difftree state).
  CostBreakdown EvaluateWithPlan(const TransitionPlan& plan, WidgetTree* wt) const;

  /// The M(.) component only (no queries involved).
  double AppropriatenessSum(const WidgetNode& root) const;

  const Screen& screen() const { return screen_; }
  const CostConstants& constants() const { return constants_; }

 private:
  const CostConstants& constants_;
  Screen screen_;
  size_t parse_limit_;
};

/// \brief Navigation cost of reaching the set of changed widgets: the sum of
/// edge costs over the minimal subtree of `root` connecting `paths`
/// (exposed for unit tests).
double SteinerNavigationCost(const WidgetNode& root,
                             const std::vector<std::vector<int>>& paths,
                             const CostConstants& constants);

}  // namespace ifgen
