#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "cost/cost_model.h"
#include "runtime/tt.h"
#include "widgets/domain.h"
#include "widgets/size_model.h"

namespace ifgen {

/// \brief The subtree-local widget terms of one choice node: everything the
/// evaluator derives from the choice node's subtree alone, independent of
/// the rest of the difftree. A pure function of the subtree, so entries are
/// shared across every state containing an identical subtree — after a rule
/// application, only subtrees along the rewritten path miss the cache.
struct ChoiceWidgetTerms {
  WidgetDomain domain;              ///< ExtractDomain(choice node)
  std::vector<WidgetKind> options;  ///< valid widget kinds (size-checked)
  int min_m_pick = 0;               ///< options index minimizing M(.)
  bool viable() const { return !options.empty(); }
};

/// Computes the terms from scratch (the "full re-evaluation" the cache
/// memoizes; also the implementation the ablation flag falls back to).
ChoiceWidgetTerms ComputeChoiceWidgetTerms(const DiffTree& choice_node,
                                           const CostConstants& constants,
                                           const SizeModel& size_model);

/// \brief Delta-cost evaluation caches (see docs/cost-model.md).
///
/// Instead of re-deriving every per-subtree cost contribution for each
/// candidate state, the evaluator memoizes two term classes on the sharded
/// machinery of runtime/tt.h:
///
///  - **Choice widget terms**, keyed by the choice subtree's order-sensitive
///    `DiffTree::Hash()`. One rule application rewrites one site, so every
///    choice subtree off the rewritten path hits the cache and only the
///    touched subtrees are recomputed. The order-sensitive hash (not the
///    canonical one) matters: canonical hashing aliases ANY-alternative
///    orderings, and while every *cost* term is permutation-invariant, the
///    cached `WidgetDomain::labels` are read by index against the node's
///    actual children when widgets are built — an aliased entry would wire
///    labels to the wrong alternatives in the rendered interface.
///  - **Transition plans**, keyed by the full tree's order-sensitive
///    `DiffTree::Hash()` — plans encode choice ids, which are pre-order
///    positions and therefore order-sensitive. This shares the expensive
///    derivation enumeration between SampleCost and FindBest visits to the
///    same state.
///
/// When `enabled` is false (the ablation flag), every call recomputes and
/// nothing is stored; the counters keep counting, so benches can report
/// full-recompute counts for both modes. Cached and recomputed values are
/// the same pure functions, so costs are bit-identical either way (tested).
///
/// Thread-safe: sharded striped locks, atomic counters, first writer wins.
class DeltaCostCache {
 public:
  explicit DeltaCostCache(bool enabled = true, size_t shards = 16)
      : enabled_(enabled), terms_(shards), plans_(shards) {}

  bool enabled() const { return enabled_; }

  /// The choice node's widget terms, from cache when possible. Entries are
  /// shared immutable objects, so a hit copies one pointer under the shard
  /// lock — never the label strings.
  std::shared_ptr<const ChoiceWidgetTerms> GetChoiceTerms(
      const DiffTree& choice_node, const CostConstants& constants,
      const SizeModel& size_model);

  /// Fetches a memoized transition plan; null = caller must compute (and
  /// should StorePlan the result).
  std::shared_ptr<const TransitionPlan> LookupPlan(uint64_t tree_hash) const;
  void StorePlan(uint64_t tree_hash, std::shared_ptr<const TransitionPlan> plan);

  /// Choice-subtree term computations actually performed ("full
  /// recomputes") vs. answered from the cache.
  size_t subtree_recomputes() const {
    return subtree_recomputes_.load(std::memory_order_relaxed);
  }
  size_t subtree_hits() const {
    return subtree_hits_.load(std::memory_order_relaxed);
  }
  /// Transition-plan computations vs. cache answers.
  size_t plan_recomputes() const {
    return plan_recomputes_.load(std::memory_order_relaxed);
  }
  size_t plan_hits() const { return plan_hits_.load(std::memory_order_relaxed); }

 private:
  bool enabled_;
  ShardedMap<std::shared_ptr<const ChoiceWidgetTerms>> terms_;
  ShardedMap<std::shared_ptr<const TransitionPlan>> plans_;
  std::atomic<size_t> subtree_recomputes_{0};
  mutable std::atomic<size_t> subtree_hits_{0};
  mutable std::atomic<size_t> plan_recomputes_{0};  ///< bumped on const miss
  mutable std::atomic<size_t> plan_hits_{0};
};

}  // namespace ifgen
