#pragma once

#include <vector>

#include "difftree/match.h"
#include "difftree/selection.h"
#include "interface/widget_tree.h"
#include "util/status.h"
#include "widgets/constants.h"

namespace ifgen {

/// \brief Outcome of moving the interface from its current sticky state to a
/// state expressing `query` — the per-step building block of U(.) and of the
/// interactive runtime.
struct StepOutcome {
  size_t widgets_changed = 0;
  double interaction_cost = 0.0;
  double navigation_cost = 0.0;
  std::vector<int> changed_choice_ids;
  SelectionMap next_state;
  Derivation derivation;  ///< the chosen (min-change) parse of `query`
};

/// \brief Computes the min-change transition: enumerates up to `parse_limit`
/// derivations of `query`, picks the one changing fewest widgets relative to
/// `state`, and prices the change (interaction + Steiner navigation over the
/// widget tree). Fails when `query` is inexpressible.
Result<StepOutcome> ComputeTransition(const DiffTree& tree, const ChoiceIndex& index,
                                      const WidgetTree& wt, const CostConstants& c,
                                      size_t parse_limit, const SelectionMap& state,
                                      const Ast& query);

}  // namespace ifgen
