#include "cost/transition.h"

#include <set>

#include "cost/cost_model.h"
#include "widgets/appropriateness.h"

namespace ifgen {

Result<StepOutcome> ComputeTransition(const DiffTree& tree, const ChoiceIndex& index,
                                      const WidgetTree& wt, const CostConstants& c,
                                      size_t parse_limit, const SelectionMap& state,
                                      const Ast& query) {
  std::vector<Derivation> derivs = EnumerateDerivations(tree, query, parse_limit);
  if (derivs.empty()) {
    return Status::NotFound("query is not expressible by this interface");
  }
  StepOutcome best;
  bool have_best = false;
  for (Derivation& d : derivs) {
    SelectionMap sels = ExtractSelections(index, d);
    SelectionMap trial = state;
    std::vector<int> changed_ids;
    size_t changed = CountChangedAndAdvance(sels, &trial, &changed_ids);
    if (!have_best || changed < best.widgets_changed) {
      best.widgets_changed = changed;
      best.changed_choice_ids = std::move(changed_ids);
      best.next_state = std::move(trial);
      best.derivation = std::move(d);
      have_best = true;
      if (best.widgets_changed == 0) break;
    }
  }
  // Price the change against the widget tree.
  std::vector<std::vector<int>> widget_paths;
  std::set<std::vector<int>> seen_widgets;
  for (int id : best.changed_choice_ids) {
    auto it = wt.path_by_choice.find(id);
    if (it == wt.path_by_choice.end()) continue;  // owned by an enclosing adder
    if (!seen_widgets.insert(it->second).second) continue;  // range slider pairs
    const WidgetNode* w = wt.NodeAtPath(it->second);
    if (w == nullptr) continue;
    best.interaction_cost += InteractionCost(c, w->kind, w->domain);
    widget_paths.push_back(it->second);
  }
  best.navigation_cost = SteinerNavigationCost(wt.root, widget_paths, c);
  return best;
}

}  // namespace ifgen
