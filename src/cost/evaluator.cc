#include "cost/evaluator.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/logging.h"

namespace ifgen {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Registry handles resolved once; the hot path is a sharded relaxed add.
obs::Counter& EvaluationsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_eval_evaluations_total", "Widget-assignment cost evaluations");
  return *c;
}
obs::Counter& EvalCacheHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_eval_cache_hits_total", "Sampled-cost cache hits in StateEvaluator");
  return *c;
}
}

StateEvaluator::StateEvaluator(const EvalOptions& opts, const std::vector<Ast>& queries)
    : opts_(opts), queries_(queries),
      model_(opts_.constants, opts_.screen, opts_.parse_limit),
      // A caller-shared cross-search cache only when delta evaluation is on
      // (a shared cache is always created enabled, so the ablation flag must
      // win); private otherwise.
      delta_(opts.shared_delta != nullptr && opts.delta_eval
                 ? opts.shared_delta
                 : std::make_shared<DeltaCostCache>(opts.delta_eval)) {}

std::shared_ptr<const TransitionPlan> StateEvaluator::PlanFor(const DiffTree& tree) {
  // Order-sensitive hash: plans encode pre-order choice ids, so two trees
  // that differ only in ANY-alternative order have different plans.
  uint64_t key = tree.Hash();
  if (auto cached = delta_->LookupPlan(key)) return cached;
  auto plan = std::make_shared<const TransitionPlan>(
      PlanTransitions(tree, queries_, opts_.parse_limit));
  delta_->StorePlan(key, plan);
  return plan;
}

double StateEvaluator::EvaluateAssignment(const WidgetAssigner& assigner,
                                          const Assignment& a,
                                          const TransitionPlan& plan,
                                          ScoredWidgetTree* best) {
  auto built = assigner.Build(a);
  if (!built.ok()) return kInf;
  WidgetTree wt = std::move(built).MoveValueUnsafe();
  CostBreakdown cost = model_.EvaluateWithPlan(plan, &wt);
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  EvaluationsMetric().Inc();
  double total = cost.total();
  if (best != nullptr && total < best->cost.total()) {
    best->assignment = a;
    best->tree = std::move(wt);
    best->cost = std::move(cost);
  }
  return total;
}

double StateEvaluator::SampleCost(const DiffTree& tree, Rng* rng) {
  obs::TraceSpan span("eval.sample_cost", "cost");
  uint64_t key = 0;
  if (opts_.cache_enabled || opts_.state_keyed_sampling) {
    key = tree.CanonicalHash();
  }
  if (opts_.cache_enabled) {
    if (auto cached = cost_cache_.Lookup(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      EvalCacheHitsMetric().Inc();
      return *cached;
    }
  }
  // State-keyed mode draws from a per-state generator so the caller's
  // stream is never consumed: a pre-seeded cache entry (transposition
  // peering) then changes how much work happens, never which values the
  // surrounding search observes.
  Rng state_rng(HashCombine(opts_.sampling_seed, key));
  Rng* draw_rng = opts_.state_keyed_sampling ? &state_rng : rng;
  WidgetAssigner assigner(tree, opts_.constants, delta_.get());
  double best = kInf;
  if (assigner.viable()) {
    auto plan = PlanFor(tree);
    size_t random_draws = opts_.k_assignments;
    if (opts_.greedy_seed && random_draws > 0) {
      best = std::min(best, EvaluateAssignment(
                                assigner, assigner.MinAppropriatenessAssignment(),
                                *plan, nullptr));
      --random_draws;
    }
    for (size_t i = 0; i < random_draws; ++i) {
      Assignment a = assigner.RandomAssignment(draw_rng);
      best = std::min(best, EvaluateAssignment(assigner, a, *plan, nullptr));
    }
  }
  if (opts_.cache_enabled) {
    // First writer wins: concurrent misses on the same state each compute a
    // valid sample; overwriting would let the cached value drift mid-search.
    cost_cache_.Insert(key, best);
  }
  return best;
}

Result<ScoredWidgetTree> StateEvaluator::FindBest(const DiffTree& tree, Rng* rng) {
  obs::TraceSpan span("eval.find_best", "cost");
  WidgetAssigner assigner(tree, opts_.constants, delta_.get());
  if (!assigner.viable()) {
    return Status::Invalid("state has a choice node with no valid widget");
  }
  ScoredWidgetTree best;
  best.cost.valid = false;  // total() == inf until something valid lands
  auto plan = PlanFor(tree);

  if (assigner.CombinationCount() <= opts_.enumeration_cap) {
    Assignment a = assigner.FirstAssignment();
    do {
      EvaluateAssignment(assigner, a, *plan, &best);
    } while (assigner.NextAssignment(&a));
  } else {
    // Sample (greedy seed first), then coordinate-descent on the best.
    EvaluateAssignment(assigner, assigner.MinAppropriatenessAssignment(), *plan,
                       &best);
    for (size_t i = 0; i < opts_.sample_fallback; ++i) {
      Assignment a = assigner.RandomAssignment(rng);
      EvaluateAssignment(assigner, a, *plan, &best);
    }
    if (best.cost.valid) {
      bool improved = true;
      int passes = 0;
      while (improved && passes < 4) {
        improved = false;
        ++passes;
        Assignment current = best.assignment;
        for (size_t d = 0; d < assigner.decisions().size(); ++d) {
          size_t n_opts = assigner.decisions()[d].options.size();
          for (size_t o = 0; o < n_opts; ++o) {
            if (static_cast<int>(o) == current.picks[d]) continue;
            Assignment trial = current;
            trial.picks[d] = static_cast<int>(o);
            double before = best.cost.total();
            EvaluateAssignment(assigner, trial, *plan, &best);
            if (best.cost.total() < before) {
              current = best.assignment;
              improved = true;
            }
          }
        }
      }
    }
  }
  if (!best.cost.valid) {
    return Status::NotFound("no valid widget tree fits the screen");
  }
  return best;
}

}  // namespace ifgen
