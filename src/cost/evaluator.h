#pragma once

#include <atomic>

#include "cost/cost_model.h"
#include "cost/delta.h"
#include "interface/assignment.h"
#include "runtime/tt.h"
#include "util/rng.h"

namespace ifgen {

/// \brief Knobs for difftree-state evaluation.
struct EvalOptions {
  Screen screen;
  CostConstants constants;
  /// Random widget assignments sampled per state during search (paper:
  /// "we randomly assign widgets to the difftree k times").
  size_t k_assignments = 8;
  /// Derivations per query considered by the min-change U computation.
  size_t parse_limit = 8;
  /// Exhaustive widget-tree enumeration cap for the final state; above it
  /// we fall back to sampling + coordinate-descent refinement.
  double enumeration_cap = 20000;
  size_t sample_fallback = 800;
  /// Memoize sampled state costs by canonical difftree hash.
  bool cache_enabled = true;
  /// Delta-cost evaluation: memoize per-subtree cost contributions (choice
  /// widget terms, transition plans) so evaluating a state recomputes only
  /// the subtrees touched by the rule application that produced it. The
  /// ablation flag — setting this false forces full re-evaluation — yields
  /// bit-identical costs (tested); only the recompute counters change.
  /// See cost/delta.h and docs/cost-model.md.
  bool delta_eval = true;
  /// Mix the greedy min-M assignment into each state's k samples. The paper
  /// uses k purely random assignments; the greedy seed makes the sampled
  /// reward a far better estimate of a state's potential (ablation:
  /// bench_ablation sweeps this off).
  bool greedy_seed = true;
  /// State-keyed sampling: draw each state's k random assignments from a
  /// local Rng seeded by (sampling_seed, canonical state hash) instead of
  /// the caller's stream. A state's sampled cost becomes a pure function of
  /// (state, options, sampling_seed) — independent of visit order and of
  /// which caches already hold it — which is what lets transposition
  /// peering pre-seed cost caches without perturbing the caller's RNG
  /// stream. Enabled by GeneratorOptions::cache_peering.
  bool state_keyed_sampling = false;
  uint64_t sampling_seed = 0;
  /// Cross-search delta-cost cache to use instead of an evaluator-local one.
  /// Sound to share between evaluators whose cost identity matches (same
  /// constants/screen/parse_limit/queries): the cached subtree terms and
  /// transition plans are pure functions of their keys (cost/delta.h), so a
  /// pre-warmed cache changes recompute counts, never costs. Runtime wiring
  /// — never part of any cache key. Null = private cache (the default).
  std::shared_ptr<DeltaCostCache> shared_delta;
};

/// \brief A widget tree with its evaluated cost.
struct ScoredWidgetTree {
  Assignment assignment;
  WidgetTree tree;
  CostBreakdown cost;
};

/// \brief Evaluates difftree states: the bridge between the search space
/// (difftrees) and the objective (cost of the best widget tree).
///
/// Thread-safe: the memoization cache is guarded by a mutex (held only for
/// lookup/insert, never across an evaluation) and the counters are atomic,
/// so one evaluator can be shared by every thread of a parallel search —
/// which is exactly what makes the shared-evaluation transposition design
/// work. Two threads that miss on the same state concurrently both compute
/// it (first insert wins); costs for one canonical state are interchangeable
/// samples, so this is benign.
class StateEvaluator {
 public:
  StateEvaluator(const EvalOptions& opts, const std::vector<Ast>& queries);

  /// Reward backbone for MCTS: the best cost among k random assignments
  /// (+infinity when none is valid). Results are memoized per state.
  double SampleCost(const DiffTree& tree, Rng* rng);

  /// Thorough search over the widget-tree space of one state: exhaustive
  /// when the combination count is under the cap, otherwise sampled with
  /// coordinate-descent refinement.
  Result<ScoredWidgetTree> FindBest(const DiffTree& tree, Rng* rng);

  const std::vector<Ast>& queries() const { return queries_; }
  const EvalOptions& options() const { return opts_; }
  size_t evaluations() const { return evaluations_.load(std::memory_order_relaxed); }
  size_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }

  /// Delta-cost instrumentation (see DeltaCostCache): subtree-term and
  /// transition-plan computations performed vs. answered from the caches.
  /// With `delta_eval` off, every call counts as a recompute, so the same
  /// counters quantify both sides of the ablation.
  size_t subtree_recomputes() const { return delta_->subtree_recomputes(); }
  size_t subtree_cache_hits() const { return delta_->subtree_hits(); }
  size_t plan_recomputes() const { return delta_->plan_recomputes(); }
  size_t plan_cache_hits() const { return delta_->plan_hits(); }

 private:
  double EvaluateAssignment(const WidgetAssigner& assigner, const Assignment& a,
                            const TransitionPlan& plan, ScoredWidgetTree* best);

  /// The state's transition plan, memoized by order-sensitive tree hash
  /// when delta evaluation is on (shared immutable object — cache hits
  /// copy a pointer, not the per-query change lists).
  std::shared_ptr<const TransitionPlan> PlanFor(const DiffTree& tree);

  EvalOptions opts_;
  std::vector<Ast> queries_;
  CostModel model_;
  /// Sampled-cost memo by canonical state hash (sharded: many search
  /// threads hit this on every rollout step).
  ShardedMap<double> cost_cache_;
  /// The caller-shared cache (EvalOptions::shared_delta) when provided, an
  /// evaluator-private one otherwise; never null.
  std::shared_ptr<DeltaCostCache> delta_;
  std::atomic<size_t> evaluations_{0};
  std::atomic<size_t> cache_hits_{0};
};

}  // namespace ifgen
