#pragma once

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "cost/cost_model.h"
#include "interface/assignment.h"
#include "util/rng.h"

namespace ifgen {

/// \brief Knobs for difftree-state evaluation.
struct EvalOptions {
  Screen screen;
  CostConstants constants;
  /// Random widget assignments sampled per state during search (paper:
  /// "we randomly assign widgets to the difftree k times").
  size_t k_assignments = 8;
  /// Derivations per query considered by the min-change U computation.
  size_t parse_limit = 8;
  /// Exhaustive widget-tree enumeration cap for the final state; above it
  /// we fall back to sampling + coordinate-descent refinement.
  double enumeration_cap = 20000;
  size_t sample_fallback = 800;
  /// Memoize sampled state costs by canonical difftree hash.
  bool cache_enabled = true;
  /// Mix the greedy min-M assignment into each state's k samples. The paper
  /// uses k purely random assignments; the greedy seed makes the sampled
  /// reward a far better estimate of a state's potential (ablation:
  /// bench_ablation sweeps this off).
  bool greedy_seed = true;
};

/// \brief A widget tree with its evaluated cost.
struct ScoredWidgetTree {
  Assignment assignment;
  WidgetTree tree;
  CostBreakdown cost;
};

/// \brief Evaluates difftree states: the bridge between the search space
/// (difftrees) and the objective (cost of the best widget tree).
///
/// Thread-safe: the memoization cache is guarded by a mutex (held only for
/// lookup/insert, never across an evaluation) and the counters are atomic,
/// so one evaluator can be shared by every thread of a parallel search —
/// which is exactly what makes the shared-evaluation transposition design
/// work. Two threads that miss on the same state concurrently both compute
/// it (first insert wins); costs for one canonical state are interchangeable
/// samples, so this is benign.
class StateEvaluator {
 public:
  StateEvaluator(const EvalOptions& opts, const std::vector<Ast>& queries);

  /// Reward backbone for MCTS: the best cost among k random assignments
  /// (+infinity when none is valid). Results are memoized per state.
  double SampleCost(const DiffTree& tree, Rng* rng);

  /// Thorough search over the widget-tree space of one state: exhaustive
  /// when the combination count is under the cap, otherwise sampled with
  /// coordinate-descent refinement.
  Result<ScoredWidgetTree> FindBest(const DiffTree& tree, Rng* rng);

  const std::vector<Ast>& queries() const { return queries_; }
  const EvalOptions& options() const { return opts_; }
  size_t evaluations() const { return evaluations_.load(std::memory_order_relaxed); }
  size_t cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }

 private:
  double EvaluateAssignment(const WidgetAssigner& assigner, const Assignment& a,
                            const TransitionPlan& plan, ScoredWidgetTree* best);

  EvalOptions opts_;
  std::vector<Ast> queries_;
  CostModel model_;
  mutable std::mutex cache_mu_;
  std::unordered_map<uint64_t, double> cache_;
  std::atomic<size_t> evaluations_{0};
  std::atomic<size_t> cache_hits_{0};
};

}  // namespace ifgen
