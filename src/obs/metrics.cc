#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/logging.h"

namespace ifgen {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

uint64_t DoubleToBits(double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

double BitsToDouble(uint64_t b) {
  double d;
  std::memcpy(&d, &b, sizeof(d));
  return d;
}

}  // namespace

bool MetricsEnabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::SlotIndex() {
  // One slot per thread, assigned round-robin on first use: threads never
  // share a slot until more than kShards threads exist, and the choice is
  // branch-free after the first call.
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void Gauge::Set(double v) {
  if (!MetricsEnabled()) return;
  bits_.store(DoubleToBits(v), std::memory_order_relaxed);
}

void Gauge::Add(double d) {
  if (!MetricsEnabled()) return;
  uint64_t old_bits = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(old_bits, DoubleToBits(BitsToDouble(old_bits) + d),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const { return BitsToDouble(bits_.load(std::memory_order_relaxed)); }

Histogram::Histogram(const HistogramOptions& opts) {
  IFGEN_CHECK(opts.num_buckets > 0);
  IFGEN_CHECK(opts.first_bound > 0.0);
  IFGEN_CHECK(opts.growth > 1.0);
  bounds_.reserve(opts.num_buckets);
  double b = opts.first_bound;
  for (size_t i = 0; i < opts.num_buckets; ++i) {
    bounds_.push_back(b);
    b *= opts.growth;
  }
  buckets_.reset(new std::atomic<uint64_t>[bounds_.size() + 1]());
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  // Index of the first bound >= value; values above every bound land in the
  // trailing +Inf bucket.
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old_bits, DoubleToBits(BitsToDouble(old_bits) + value),
      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i < s.counts.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum = BitsToDouble(sum_bits_.load(std::memory_order_relaxed));
  return s;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double prev_cum = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      // The +Inf bucket has no finite upper edge; clamp to the largest bound.
      if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac =
          std::max(0.0, target - prev_cum) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, frac);
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked on purpose: instrumentation may run during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

CounterFamily* MetricsRegistry::GetCounterFamily(std::string_view name,
                                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.counter.reset(new CounterFamily(std::string(name), std::string(help), {}));
    it = families_.emplace(std::string(name), std::move(e)).first;
  }
  IFGEN_CHECK(it->second.kind == Kind::kCounter)
      << "metric " << std::string(name) << " already registered with another type";
  return it->second.counter.get();
}

GaugeFamily* MetricsRegistry::GetGaugeFamily(std::string_view name,
                                             std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.gauge.reset(new GaugeFamily(std::string(name), std::string(help), {}));
    it = families_.emplace(std::string(name), std::move(e)).first;
  }
  IFGEN_CHECK(it->second.kind == Kind::kGauge)
      << "metric " << std::string(name) << " already registered with another type";
  return it->second.gauge.get();
}

HistogramFamily* MetricsRegistry::GetHistogramFamily(std::string_view name,
                                                     std::string_view help,
                                                     const HistogramOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.histogram.reset(new HistogramFamily(std::string(name), std::string(help), opts));
    it = families_.emplace(std::string(name), std::move(e)).first;
  }
  IFGEN_CHECK(it->second.kind == Kind::kHistogram)
      << "metric " << std::string(name) << " already registered with another type";
  return it->second.histogram.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name, std::string_view help,
                                     const LabelSet& labels) {
  return GetCounterFamily(name, help)->WithLabels(labels);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const LabelSet& labels) {
  return GetGaugeFamily(name, help)->WithLabels(labels);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, std::string_view help,
                                         const HistogramOptions& opts,
                                         const LabelSet& labels) {
  return GetHistogramFamily(name, help, opts)->WithLabels(labels);
}

uint64_t MetricsRegistry::CounterValue(std::string_view name,
                                       const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  const CounterFamily& fam = *it->second.counter;
  std::lock_guard<std::mutex> cell_lock(fam.mu_);
  auto cell = fam.cells_.find(labels);
  return cell == fam.cells_.end() ? 0 : cell->second->Value();
}

uint64_t MetricsRegistry::CounterTotal(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  const CounterFamily& fam = *it->second.counter;
  std::lock_guard<std::mutex> cell_lock(fam.mu_);
  uint64_t total = 0;
  for (const auto& cell : fam.cells_) total += cell.second->Value();
  return total;
}

double MetricsRegistry::GaugeValue(std::string_view name, const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kGauge) return 0.0;
  const GaugeFamily& fam = *it->second.gauge;
  std::lock_guard<std::mutex> cell_lock(fam.mu_);
  auto cell = fam.cells_.find(labels);
  return cell == fam.cells_.end() ? 0.0 : cell->second->Value();
}

Histogram::Snapshot MetricsRegistry::HistogramSnapshot(std::string_view name,
                                                       const LabelSet& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram) return {};
  const HistogramFamily& fam = *it->second.histogram;
  std::lock_guard<std::mutex> cell_lock(fam.mu_);
  auto cell = fam.cells_.find(labels);
  return cell == fam.cells_.end() ? Histogram::Snapshot{} : cell->second->GetSnapshot();
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Renders `{k1="v1",k2="v2"}`; `extra` (the histogram `le` label) goes last.
std::string RenderLabels(const LabelSet& labels, const Label* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ",";
    first = false;
    out += l.first + "=\"" + EscapeLabelValue(l.second) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first + "=\"" + EscapeLabelValue(extra->second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string FormatMetricValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  return buf;
}

std::string MetricsRegistry::PrometheusText() const {
  std::ostringstream out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : families_) {
    switch (entry.kind) {
      case Kind::kCounter: {
        const CounterFamily& fam = *entry.counter;
        std::lock_guard<std::mutex> cell_lock(fam.mu_);
        out << "# HELP " << name << " " << EscapeHelp(fam.help()) << "\n";
        out << "# TYPE " << name << " counter\n";
        for (const auto& [labels, cell] : fam.cells_) {
          out << name << RenderLabels(labels) << " " << cell->Value() << "\n";
        }
        break;
      }
      case Kind::kGauge: {
        const GaugeFamily& fam = *entry.gauge;
        std::lock_guard<std::mutex> cell_lock(fam.mu_);
        out << "# HELP " << name << " " << EscapeHelp(fam.help()) << "\n";
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, cell] : fam.cells_) {
          out << name << RenderLabels(labels) << " " << FormatMetricValue(cell->Value())
              << "\n";
        }
        break;
      }
      case Kind::kHistogram: {
        const HistogramFamily& fam = *entry.histogram;
        std::lock_guard<std::mutex> cell_lock(fam.mu_);
        out << "# HELP " << name << " " << EscapeHelp(fam.help()) << "\n";
        out << "# TYPE " << name << " histogram\n";
        for (const auto& [labels, cell] : fam.cells_) {
          const Histogram::Snapshot snap = cell->GetSnapshot();
          uint64_t cum = 0;
          for (size_t i = 0; i < snap.bounds.size(); ++i) {
            cum += snap.counts[i];
            Label le{"le", FormatMetricValue(snap.bounds[i])};
            out << name << "_bucket" << RenderLabels(labels, &le) << " " << cum << "\n";
          }
          Label le_inf{"le", "+Inf"};
          out << name << "_bucket" << RenderLabels(labels, &le_inf) << " " << snap.count
              << "\n";
          out << name << "_sum" << RenderLabels(labels) << " "
              << FormatMetricValue(snap.sum) << "\n";
          out << name << "_count" << RenderLabels(labels) << " " << snap.count << "\n";
        }
        break;
      }
    }
  }
  return out.str();
}

}  // namespace obs
}  // namespace ifgen
