#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

/// \file
/// \brief Process-wide metrics registry: labeled counter/gauge/histogram
/// families with sharded-atomic hot paths and a Prometheus text exposition.
///
/// Design notes:
///  - Handle acquisition (`GetCounter` / `WithLabels`) is the cold path and
///    takes a mutex; instrumentation sites cache the returned pointer (it is
///    stable for the registry's lifetime) so the hot path is lock-free.
///  - `Counter::Inc` spreads contention across cache-line-padded atomic
///    slots indexed by a per-thread hash — the same striping idea as
///    `ShardedMap` in runtime/tt.h, applied to a single value.
///  - Histograms use log-spaced (exponential) bucket bounds, so one family
///    covers microseconds through seconds; quantiles (p50/p95/p99) are
///    estimated by linear interpolation inside the owning bucket.
///  - `SetMetricsEnabled(false)` turns every mutation into a single relaxed
///    atomic load + branch, which is what the bench overhead guard measures.

namespace ifgen {
namespace obs {

/// Process-wide switch. When false, Counter/Gauge/Histogram mutations are
/// dropped (one relaxed load + branch). Reads still work.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// One `key="value"` metric label. Families keep cells keyed by the ordered
/// label list, so call sites must pass labels in a consistent order.
using Label = std::pair<std::string, std::string>;
using LabelSet = std::vector<Label>;

/// \brief Monotonic counter with cache-line-padded sharded slots.
///
/// `Inc`/`Add` touch one slot chosen by a per-thread hash; `Value` sums all
/// slots. Readers may observe a value mid-update across shards, which is fine
/// for monotonic counters (the read is always <= some linearization point).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    slots_[SlotIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Add(uint64_t n) { Inc(n); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  static size_t SlotIndex();
  std::array<Slot, kShards> slots_;
};

/// \brief Point-in-time value (doubles; Set/Add/Sub).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v);
  void Add(double d);
  void Sub(double d) { Add(-d); }
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit-cast double
};

/// Bucket layout for a log-spaced histogram: upper bounds are
/// `first_bound * growth^i` for i in [0, num_buckets), plus an implicit
/// +Inf overflow bucket.
struct HistogramOptions {
  double first_bound = 1.0;
  double growth = 2.0;
  size_t num_buckets = 24;
};

/// \brief Log-bucketed histogram with lock-free observation.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& opts);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Consistent-enough copy of the histogram state for quantile math and
  /// exposition (counts are read with relaxed loads).
  struct Snapshot {
    std::vector<double> bounds;    ///< upper bounds, excluding +Inf
    std::vector<uint64_t> counts;  ///< per-bucket counts; last is the +Inf bucket
    uint64_t count = 0;            ///< total observations
    double sum = 0.0;              ///< sum of observed values

    /// Quantile estimate (q in [0,1]) by linear interpolation within the
    /// bucket holding the target rank. Returns 0 when empty; observations in
    /// the +Inf bucket clamp to the largest finite bound.
    double Quantile(double q) const;
  };
  Snapshot GetSnapshot() const;

  double QuantileP50() const { return GetSnapshot().Quantile(0.50); }
  double QuantileP95() const { return GetSnapshot().Quantile(0.95); }
  double QuantileP99() const { return GetSnapshot().Quantile(0.99); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_bits_{0};                 // bit-cast double sum
};

class MetricsRegistry;

/// \brief A named metric plus its per-label-set cells.
///
/// `WithLabels` returns a stable pointer; the no-label cell is `Default()`.
template <typename T>
class MetricFamily {
 public:
  MetricFamily(std::string name, std::string help, HistogramOptions opts)
      : name_(std::move(name)), help_(std::move(help)), opts_(opts) {}

  T* WithLabels(const LabelSet& labels);
  T* Default() { return WithLabels({}); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  T* MakeCell();

  std::string name_;
  std::string help_;
  HistogramOptions opts_;
  mutable std::mutex mu_;
  // Ordered so exposition output is deterministic.
  std::map<LabelSet, std::unique_ptr<T>> cells_;
};

using CounterFamily = MetricFamily<Counter>;
using GaugeFamily = MetricFamily<Gauge>;
using HistogramFamily = MetricFamily<Histogram>;

/// \brief Owns metric families; renders Prometheus text exposition 0.0.4.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global registry (leaked singleton: safe to touch from any
  /// static-destruction-order context).
  static MetricsRegistry& Default();

  /// Get-or-create. `help` is recorded on first creation; a name can only be
  /// registered as one metric type (a mismatch aborts — it is a coding bug).
  CounterFamily* GetCounterFamily(std::string_view name, std::string_view help);
  GaugeFamily* GetGaugeFamily(std::string_view name, std::string_view help);
  HistogramFamily* GetHistogramFamily(std::string_view name, std::string_view help,
                                      const HistogramOptions& opts = {});

  /// Convenience: family + cell in one call.
  Counter* GetCounter(std::string_view name, std::string_view help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          const HistogramOptions& opts = {}, const LabelSet& labels = {});

  /// Point reads for tests and snapshot-style aggregation. Missing metrics
  /// read as zero.
  uint64_t CounterValue(std::string_view name, const LabelSet& labels = {}) const;
  uint64_t CounterTotal(std::string_view name) const;  ///< summed across label sets
  double GaugeValue(std::string_view name, const LabelSet& labels = {}) const;
  Histogram::Snapshot HistogramSnapshot(std::string_view name,
                                        const LabelSet& labels = {}) const;

  /// Prometheus text exposition format 0.0.4: families sorted by name, cells
  /// by label set, `# HELP`/`# TYPE` headers, escaped label values,
  /// histogram `_bucket{le=...}`/`_sum`/`_count` series.
  std::string PrometheusText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<CounterFamily> counter;
    std::unique_ptr<GaugeFamily> gauge;
    std::unique_ptr<HistogramFamily> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> families_;
};

/// Escapes a Prometheus label value (`\` -> `\\`, `"` -> `\"`, newline -> `\n`).
std::string EscapeLabelValue(std::string_view value);

/// Formats a sample value: integral doubles print without a decimal point.
std::string FormatMetricValue(double value);

template <typename T>
T* MetricFamily<T>::MakeCell() {
  if constexpr (std::is_same_v<T, Histogram>) {
    return new Histogram(opts_);
  } else {
    return new T();
  }
}

template <typename T>
T* MetricFamily<T>::WithLabels(const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(labels);
  if (it == cells_.end()) {
    it = cells_.emplace(labels, std::unique_ptr<T>(MakeCell())).first;
  }
  return it->second.get();
}

}  // namespace obs
}  // namespace ifgen
