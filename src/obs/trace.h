#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// \file
/// \brief Lightweight scoped-span tracing with bounded memory.
///
/// A `TraceSpan` measures one scope and, on destruction, records a
/// `TraceEvent` into (a) the process-global ring-buffer recorder and (b) an
/// optional thread-local sink installed with `ScopedTraceSink` — which is how
/// per-job traces are captured without tagging every span with a job id.
///
/// When tracing is disabled (the default), constructing a span costs one
/// relaxed atomic load and performs zero allocations. Recorders are fixed-
/// capacity rings: old events are overwritten, memory never grows.
///
/// Traces export as Chrome trace-event JSON (`ToChromeTraceJson`), loadable
/// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

namespace ifgen {
namespace obs {

/// Process-wide tracing switch (off by default).
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// One completed span. `name` and `cat` must be string literals (or otherwise
/// outlive the recorder) — spans never copy them.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  int64_t ts_us = 0;   ///< start, microseconds since the process trace epoch
  int64_t dur_us = 0;  ///< duration in microseconds
  uint32_t tid = 0;    ///< small per-thread id (stable within the process)
};

/// Microseconds since the process-wide trace epoch (steady clock).
int64_t TraceNowUs();

/// Small dense id for the calling thread (used as Chrome trace `tid`).
uint32_t TraceThreadId();

/// \brief Fixed-capacity ring buffer of trace events.
///
/// Thread-safe; `Record` takes a short mutex (spans are rare relative to the
/// work they measure, and only when tracing is enabled).
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = kDefaultCapacity);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(const TraceEvent& event);

  /// Events in insertion order (oldest surviving first).
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Number of events overwritten by ring wraparound since the last Clear.
  uint64_t dropped() const;
  void Clear();

  /// Chrome trace-event JSON: `{"traceEvents":[...]}` with complete ("X")
  /// events. Valid input for Perfetto / chrome://tracing.
  std::string ToChromeTraceJson() const;

  /// Process-global recorder fed by every span while tracing is enabled.
  static TraceRecorder& Global();

  static constexpr size_t kDefaultCapacity = 16384;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;        ///< ring write index
  uint64_t recorded_ = 0;  ///< total Record calls since Clear
};

/// Installs `sink` as the calling thread's extra span destination for the
/// scope's lifetime (stacked: the previous sink is restored on destruction).
/// Used by the job runner to capture a per-job trace.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceRecorder* sink);
  ~ScopedTraceSink();
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceRecorder* prev_;
};

/// Records a completed span into the thread-local sink (if any) and the
/// global recorder. Exposed for events measured without a TraceSpan scope.
void RecordSpan(const char* name, const char* cat, int64_t ts_us, int64_t dur_us);

/// \brief RAII span: measures from construction to destruction.
///
/// `name`/`cat` must be string literals. Disabled tracing short-circuits the
/// constructor after one relaxed atomic load — no clock read, no allocation.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (!TracingEnabled()) return;
    name_ = name;
    cat_ = cat;
    start_us_ = TraceNowUs();
  }
  ~TraceSpan() {
    if (name_ == nullptr) return;
    const int64_t end = TraceNowUs();
    RecordSpan(name_, cat_, start_us_, end - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = span is disarmed (tracing was off)
  const char* cat_ = nullptr;
  int64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace ifgen
