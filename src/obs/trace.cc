#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace ifgen {
namespace obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

thread_local TraceRecorder* t_sink = nullptr;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// JSON-escapes a span name/category. Names are expected to be plain literals;
// this keeps the export valid even if one slips through with specials.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

bool TracingEnabled() { return g_tracing_enabled.load(std::memory_order_relaxed); }
void SetTracingEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // pin the epoch before the first span
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

int64_t TraceNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, e.cat);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose: spans may fire during static destruction.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

ScopedTraceSink::ScopedTraceSink(TraceRecorder* sink) : prev_(t_sink) {
  t_sink = sink;
}

ScopedTraceSink::~ScopedTraceSink() { t_sink = prev_; }

void RecordSpan(const char* name, const char* cat, int64_t ts_us, int64_t dur_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = TraceThreadId();
  if (t_sink != nullptr) t_sink->Record(e);
  TraceRecorder::Global().Record(e);
}

}  // namespace obs
}  // namespace ifgen
