#include "cluster/frame.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "http/net.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ifgen {
namespace cluster {

namespace {

/// recv() up to `len` bytes under a total deadline shared across calls.
/// Returns Unavailable on EOF, timeout, or a socket error — all transient
/// from the router's point of view.
Status RecvExact(int fd, char* buf, size_t len, int64_t timeout_ms,
                 const Stopwatch& watch) {
  size_t got = 0;
  while (got < len) {
    if (timeout_ms > 0) {
      const int64_t remaining = timeout_ms - watch.ElapsedMillis();
      if (remaining <= 0) return Status::Unavailable("frame read timed out");
      pollfd p{};
      p.fd = fd;
      p.events = POLLIN;
      const int rc = ::poll(&p, 1, static_cast<int>(remaining));
      if (rc == 0) return Status::Unavailable("frame read timed out");
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(StrFormat("poll failed: %s",
                                             std::strerror(errno)));
      }
    }
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n == 0) return Status::Unavailable("peer closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(StrFormat("recv failed: %s",
                                           std::strerror(errno)));
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::Invalid(StrFormat("frame of %zu bytes exceeds the %zu cap",
                                     payload.size(), kMaxFrameBytes));
  }
  char prefix[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  prefix[0] = static_cast<char>((len >> 24) & 0xff);
  prefix[1] = static_cast<char>((len >> 16) & 0xff);
  prefix[2] = static_cast<char>((len >> 8) & 0xff);
  prefix[3] = static_cast<char>(len & 0xff);
  // Two sends, one small: the prefix write coalesces into the payload
  // segment under Nagle; correctness does not depend on it.
  if (!http::internal::SendAll(fd, std::string_view(prefix, 4)) ||
      !http::internal::SendAll(fd, payload)) {
    return Status::Unavailable("frame send failed (peer gone?)");
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd, int64_t timeout_ms,
                              size_t max_frame_bytes) {
  Stopwatch watch;
  char prefix[4];
  IFGEN_RETURN_NOT_OK(RecvExact(fd, prefix, 4, timeout_ms, watch));
  const uint32_t len = (static_cast<uint32_t>(static_cast<uint8_t>(prefix[0])) << 24) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(prefix[1])) << 16) |
                       (static_cast<uint32_t>(static_cast<uint8_t>(prefix[2])) << 8) |
                       static_cast<uint32_t>(static_cast<uint8_t>(prefix[3]));
  if (len > max_frame_bytes) {
    return Status::Invalid(StrFormat("frame of %u bytes exceeds the %zu cap",
                                     len, max_frame_bytes));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    IFGEN_RETURN_NOT_OK(RecvExact(fd, payload.data(), len, timeout_ms, watch));
  }
  return payload;
}

Result<int> ConnectTcp(const std::string& host, int port, int64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad host '" + host + "' (dotted IPv4 only)");
  }
  // Bound the connect itself: non-blocking connect + poll for writability.
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(StrFormat("connect(%s:%d) failed: %s",
                                         host.c_str(), port,
                                         std::strerror(err)));
  }
  // RPC frames are small request/response pairs; waiting out Nagle adds
  // 40ms+ per call on loopback.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Result<int> ListenTcp(const std::string& host, int port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad host '" + host + "' (dotted IPv4 only)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("bind(%s:%d) failed: %s", host.c_str(),
                                      port, std::strerror(err)));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(StrFormat("listen failed: %s", std::strerror(err)));
  }
  return fd;
}

Result<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Status::Internal("getsockname failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

}  // namespace cluster
}  // namespace ifgen
