#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/rpc.h"
#include "util/status.h"

namespace ifgen {
namespace cluster {

/// \brief The cluster-routed ServiceFrontend: fans the v1 API out to worker
/// processes over the RPC envelope, interchangeable with the in-process
/// ApiService (the multi-process differential test pins the two
/// bit-identical).
///
/// Routing:
///  - generate.submit is placed by consistent hash of the canonical request
///    JSON (workload + sqls + options) on a virtual-node ring, so identical
///    requests land on the same worker's result cache and same-schema jobs
///    co-locate; unhealthy ring nodes are skipped (reroute), and a worker
///    that dies between placement and send falls through to the next node.
///  - sessions follow their job: OpenSession routes to the worker that ran
///    the job, and all later session calls follow the session map.
///  - the router keeps its own "j-<n>"/"s-<n>" id space and rewrites
///    worker-local ids in every response, so cluster ids are dense and
///    identical to what a single in-process frontend would have issued.
///
/// Failure model: per-worker bounded in-flight admission answers
/// ResourceExhausted (HTTP 429); a dead/unreachable worker answers
/// Unavailable (HTTP 503) — both retryable on the wire
/// (ErrorBody.retryable). A background health loop pings workers, marks
/// failures unhealthy, and reconnects with exponential backoff; calls
/// naming a job/session owned by a dead worker keep failing retryably
/// until the worker returns (its state lives in that process), while new
/// jobs immediately reroute around it.
class ClusterRouter : public api::ServiceFrontend {
 public:
  struct WorkerAddress {
    std::string host = "127.0.0.1";
    int port = 0;
  };

  struct Options {
    std::vector<WorkerAddress> workers;
    int64_t connect_timeout_ms = 2000;
    /// Base RPC deadline; long-poll calls extend it by their wait_ms.
    int64_t rpc_timeout_ms = 20000;
    int64_t health_interval_ms = 500;
    int64_t reconnect_backoff_ms = 100;      ///< initial, doubles per failure
    int64_t reconnect_backoff_max_ms = 2000;
    /// RPCs in flight per worker beyond this answer ResourceExhausted.
    size_t max_inflight_per_worker = 64;
    /// Idle pooled connections kept per worker; extras are closed.
    size_t max_pooled_connections = 8;
    /// Virtual nodes per worker on the consistent-hash ring.
    size_t virtual_nodes = 16;
    /// Terminal job routes beyond this evict oldest-first (workers evict
    /// their own job history independently).
    size_t max_job_routes = 4096;
    /// Cache peering (default ON in cluster mode; the single-process
    /// frontend has no peers): generate.submit probes siblings for a
    /// completed identical job (`cache.probe`) and routes to the holder on
    /// a hit, and the health loop gossips workers' hot transposition
    /// entries (`cache.export` -> `cache.publish`). Routing/transport only
    /// — request payloads are never mutated, so per-request ablation stays
    /// with ApiOptions::cache_peering.
    bool cache_peering = true;
    /// Entries per store a gossip round pulls from each worker.
    size_t tt_gossip_max_entries = 256;
  };

  ClusterRouter() = default;
  ~ClusterRouter() override;
  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Builds the ring and starts the health loop. Does not require workers
  /// to be up yet — the health loop connects as they appear.
  Status Start(Options opts);
  void Stop();
  /// Sends worker.drain to every reachable worker (graceful SIGTERM path);
  /// unreachable workers are skipped, not errors.
  void DrainWorkers();
  /// Blocks until every reachable worker reports zero pending jobs or the
  /// deadline passes. Returns true when drained.
  bool WaitDrained(int64_t timeout_ms);

  // ---- ServiceFrontend --------------------------------------------------
  Result<api::GenerateAccepted> SubmitGenerate(
      const api::GenerateRequest& req) override;
  Result<api::JobStatusResponse> GetJob(const std::string& job_id,
                                        int64_t wait_ms = 0) override;
  Result<api::JobStatusResponse> CancelJob(const std::string& job_id) override;
  Result<api::JobProgressResponse> GetJobProgress(
      const std::string& job_id, int64_t last_seen_version,
      int64_t wait_ms = 0) override;
  Result<std::string> JobTrace(const std::string& job_id) override;
  Result<api::SessionOpenResponse> OpenSession(
      const api::SessionOpenRequest& req) override;
  Result<api::StepResponse> ApplyEvent(
      const std::string& session_id,
      const api::WidgetEventRequest& event) override;
  Result<api::ChangeBatchDto> PollSession(const std::string& session_id,
                                          int64_t wait_ms = 0) override;
  Status CloseSession(const std::string& session_id) override;
  Result<api::TableDto> SessionTable(const std::string& session_id) override;
  Result<api::CatalogResponse> Catalog() override;
  Result<api::StatsResponse> Stats() override;
  Result<api::ClusterResponse> Cluster() override;

  /// Which worker index a cluster job id routes to (tests kill exactly the
  /// owning process); NotFound for unknown ids.
  Result<size_t> WorkerIndexForJob(const std::string& job_id);

 private:
  using Clock = std::chrono::steady_clock;

  struct WorkerState {
    size_t index = 0;
    WorkerAddress addr;
    std::mutex mu;
    std::vector<int> idle;  ///< pooled connections, LIFO
    size_t inflight = 0;
    bool healthy = true;
    bool draining = false;
    int64_t backoff_ms = 0;
    Clock::time_point next_probe{};
    api::WorkerPingResponse last_ping;  ///< most recent successful ping
    int64_t rpcs = 0;
    int64_t failures = 0;
    int64_t reconnects = 0;
    /// Last epoch any reply from this address carried (0 = never heard).
    /// A change means the process restarted and its dense id space reset.
    int64_t epoch = 0;
    /// Submits routed here because a cache.probe found the result cached
    /// on this worker while placement pointed elsewhere.
    int64_t result_peer_hits = 0;
    /// Transposition entries this router has published to this worker.
    int64_t tt_published = 0;
  };

  struct Route {
    size_t worker = 0;
    std::string remote_id;
    /// Worker epoch when the route was created; replies carrying a
    /// different epoch mean the id's owner died (NotFound, never another
    /// incarnation's aliased id).
    int64_t epoch = 0;
  };

  /// One request/reply over a pooled (or fresh) connection to `w`.
  /// `extra_wait_ms` extends the read deadline for long-poll methods.
  /// `probe` bypasses the unhealthy fast-fail and, on success, restores the
  /// worker to healthy. `reply_epoch` (optional out) receives the epoch the
  /// reply carried; the worker's recorded epoch is updated either way.
  Result<JsonValue> Rpc(WorkerState* w, const char* method, JsonValue payload,
                        int64_t extra_wait_ms = 0, bool probe = false,
                        int64_t* reply_epoch = nullptr);
  void MarkUnhealthyLocked(WorkerState* w);
  void HealthLoop();
  /// One gossip round: pull every healthy worker's locally discovered hot
  /// transposition entries, push each worker everyone else's.
  void GossipTt();
  /// Probes workers for a completed identical job. Returns the index of a
  /// NON-placement worker whose result cache has it (routing there turns
  /// the submit into that worker's local cache hit), or SIZE_MAX when the
  /// placement worker has it / nobody does / probing failed.
  size_t ProbeForCachedResult(const JsonValue& req_json, WorkerState* placement);
  /// Ring walk: the first healthy worker at/after `key`, skipping `skip`
  /// (SIZE_MAX = none). Null when no worker is healthy.
  WorkerState* PickWorker(uint64_t key, size_t skip);
  Result<Route> FindJob(const std::string& job_id);
  Result<Route> FindSession(const std::string& session_id);
  /// Epoch guards: NotFound + route erasure when `reply_epoch` shows the
  /// answer came from a different worker incarnation than the route's.
  Status CheckJobEpoch(const std::string& job_id, const Route& route,
                       int64_t reply_epoch);
  Status CheckSessionEpoch(const std::string& session_id, const Route& route,
                           int64_t reply_epoch);
  api::WorkerStatsDto WorkerRow(WorkerState* w);

  Options opts_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<std::pair<uint64_t, size_t>> ring_;  ///< sorted (hash, worker)

  std::mutex mu_;  ///< guards the id maps and counters below
  std::map<std::string, Route> jobs_;
  std::vector<std::string> job_order_;  ///< insertion order, for eviction
  std::map<std::string, Route> sessions_;
  uint64_t next_job_ = 1;
  uint64_t next_session_ = 1;

  std::atomic<int64_t> next_request_{1};
  std::atomic<bool> stopping_{false};
  std::mutex health_mu_;
  std::condition_variable health_cv_;
  std::thread health_thread_;
};

}  // namespace cluster
}  // namespace ifgen
