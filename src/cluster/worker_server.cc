#include "cluster/worker_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "cluster/frame.h"
#include "util/json.h"
#include "util/logging.h"

namespace ifgen {
namespace cluster {

using api::RpcEnvelope;
using api::RpcReply;

WorkerServer::~WorkerServer() { Stop(); }

Status WorkerServer::Start(Options opts) {
  opts_ = std::move(opts);
  IFGEN_ASSIGN_OR_RETURN(service_, api::ApiService::Create(opts_.service));
  IFGEN_ASSIGN_OR_RETURN(listen_fd_, ListenTcp(opts_.host, opts_.port));
  IFGEN_ASSIGN_OR_RETURN(port_, LocalPort(listen_fd_));
  // Incarnation epoch: pid ⊕ steady-clock ns, masked positive, re-rolled
  // away from 0 ("unknown"). Two starts of one worker — even on the same
  // port — answer with different epochs, which is what lets routers detect
  // that a recorded job/session route's dense id now means something else.
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  epoch_ = static_cast<int64_t>(
      ((static_cast<uint64_t>(::getpid()) << 32) ^ ns) & 0x7fffffffffffffffULL);
  if (epoch_ == 0) epoch_ = 1;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  IFGEN_LOG_C(Info, "cluster") << "worker listening on " << opts_.host << ":"
                               << port_;
  return Status::OK();
}

void WorkerServer::Drain() { draining_.store(true, std::memory_order_relaxed); }

int64_t WorkerServer::jobs_pending() const {
  if (service_ == nullptr) return 0;
  return static_cast<int64_t>(
      service_->generation_service().counters_snapshot().jobs_pending);
}

void WorkerServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_relaxed);
  // shutdown() (not just close) unblocks the thread parked in accept()/recv.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
  }
}

void WorkerServer::ReapFinishedLocked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkerServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void WorkerServer::ServeConnection(Connection* conn) {
  // Sequential request/reply frames until the peer hangs up or Stop().
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto frame = ReadFrame(conn->fd, opts_.idle_read_timeout_ms);
    if (!frame.ok()) break;
    RpcReply reply;
    auto parsed = ParseJson(*frame);
    if (!parsed.ok()) {
      reply = RpcReply::Failure(0, parsed.status());
    } else {
      auto env = RpcEnvelope::FromJson(*parsed);
      if (!env.ok()) {
        reply = RpcReply::Failure(0, env.status());
      } else if (env->api_version != api::kRpcApiVersion) {
        reply = RpcReply::Failure(
            env->request_id,
            Status::Invalid("unsupported api_version '" + env->api_version +
                            "' (this worker speaks " +
                            std::string(api::kRpcApiVersion) + ")"));
      } else {
        auto payload = Call(*env);
        reply = payload.ok()
                    ? RpcReply::Success(env->request_id, std::move(*payload))
                    : RpcReply::Failure(env->request_id, payload.status());
      }
    }
    // Every reply — success or failure — carries this incarnation's epoch.
    reply.epoch = epoch_;
    if (!WriteFrame(conn->fd, WriteJson(reply.ToJson())).ok()) break;
  }
  conn->done.store(true, std::memory_order_release);
}

Result<JsonValue> WorkerServer::Call(const RpcEnvelope& env) {
  using namespace api;  // NOLINT(build/namespaces)
  const std::string& m = env.method;
  if (m == kMethodSubmitGenerate) {
    if (draining()) {
      return Status::Unavailable("worker is draining; resubmit elsewhere");
    }
    IFGEN_ASSIGN_OR_RETURN(GenerateRequest req,
                           GenerateRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(GenerateAccepted acc, service_->SubmitGenerate(req));
    return acc.ToJson();
  }
  if (m == kMethodGetJob) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(JobStatusResponse resp,
                           service_->GetJob(q.id, q.wait_ms));
    return resp.ToJson();
  }
  if (m == kMethodCancelJob) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(JobStatusResponse resp, service_->CancelJob(q.id));
    return resp.ToJson();
  }
  if (m == kMethodJobProgress) {
    IFGEN_ASSIGN_OR_RETURN(ProgressRequest q,
                           ProgressRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(
        JobProgressResponse resp,
        service_->GetJobProgress(q.job_id, q.last_seen_version, q.wait_ms));
    return resp.ToJson();
  }
  if (m == kMethodJobTrace) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(std::string trace, service_->JobTrace(q.id));
    TextReply t;
    t.text = std::move(trace);
    return t.ToJson();
  }
  if (m == kMethodOpenSession) {
    IFGEN_ASSIGN_OR_RETURN(SessionOpenRequest req,
                           SessionOpenRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(SessionOpenResponse resp,
                           service_->OpenSession(req));
    return resp.ToJson();
  }
  if (m == kMethodSessionEvent) {
    IFGEN_ASSIGN_OR_RETURN(SessionEventRequest req,
                           SessionEventRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(StepResponse resp,
                           service_->ApplyEvent(req.session_id, req.event));
    return resp.ToJson();
  }
  if (m == kMethodPollSession) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(ChangeBatchDto batch,
                           service_->PollSession(q.id, q.wait_ms));
    return batch.ToJson();
  }
  if (m == kMethodCloseSession) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_RETURN_NOT_OK(service_->CloseSession(q.id));
    return TextReply().ToJson();
  }
  if (m == kMethodSessionTable) {
    IFGEN_ASSIGN_OR_RETURN(IdRequest q, IdRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(TableDto table, service_->SessionTable(q.id));
    return table.ToJson();
  }
  if (m == kMethodCatalog) {
    IFGEN_ASSIGN_OR_RETURN(CatalogResponse resp, service_->Catalog());
    return resp.ToJson();
  }
  if (m == kMethodStats) {
    IFGEN_ASSIGN_OR_RETURN(StatsResponse resp, service_->Stats());
    return resp.ToJson();
  }
  if (m == kMethodPing) {
    const GenerationService::CountersSnapshot svc =
        service_->generation_service().counters_snapshot();
    WorkerPingResponse p;
    p.jobs_submitted = static_cast<int64_t>(svc.jobs_submitted);
    p.jobs_executed = static_cast<int64_t>(svc.jobs_executed);
    p.jobs_pending = static_cast<int64_t>(svc.jobs_pending);
    p.sessions_active = static_cast<int64_t>(service_->sessions_active());
    p.draining = draining();
    p.cache_probes = static_cast<int64_t>(svc.cache_probes);
    p.cache_probe_hits = static_cast<int64_t>(svc.cache_probe_hits);
    p.tt_peer_ingested = static_cast<int64_t>(svc.tt_peer_ingested);
    p.tt_peer_hits = static_cast<int64_t>(svc.tt_peer_hits);
    return p.ToJson();
  }
  if (m == kMethodCacheProbe) {
    // A draining worker rejects generate.submit, so a probe hit would only
    // lure the router into a 503 — report a miss instead.
    if (draining()) {
      CacheProbeResponse miss;
      return miss.ToJson();
    }
    IFGEN_ASSIGN_OR_RETURN(GenerateRequest req,
                           GenerateRequest::FromJson(env.payload));
    IFGEN_ASSIGN_OR_RETURN(bool hit, service_->ProbeCache(req));
    CacheProbeResponse resp;
    resp.hit = hit;
    return resp.ToJson();
  }
  if (m == kMethodCacheExport) {
    IFGEN_ASSIGN_OR_RETURN(TtExportRequest q,
                           TtExportRequest::FromJson(env.payload));
    const size_t cap =
        q.max_entries <= 0 ? 0 : static_cast<size_t>(q.max_entries);
    TtSyncDto sync;
    for (auto& batch :
         service_->generation_service().TtExportLocal(cap)) {
      TtBatchDto dto;
      dto.store_key = batch.store_key;
      dto.entries = std::move(batch.entries);
      sync.batches.push_back(std::move(dto));
    }
    return sync.ToJson();
  }
  if (m == kMethodCachePublish) {
    IFGEN_ASSIGN_OR_RETURN(TtSyncDto sync, TtSyncDto::FromJson(env.payload));
    int64_t ingested = 0;
    for (const TtBatchDto& batch : sync.batches) {
      ingested += static_cast<int64_t>(service_->generation_service().TtIngest(
          batch.store_key, batch.entries, /*local_origin=*/false));
    }
    TtSyncAck ack;
    ack.ingested = ingested;
    return ack.ToJson();
  }
  if (m == kMethodDrain) {
    Drain();
    return TextReply().ToJson();
  }
  return Status::Unimplemented("unknown RPC method '" + m + "'");
}

}  // namespace cluster
}  // namespace ifgen
