#include "cluster/process.h"

#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "cluster/worker_server.h"
#include "learn/experience.h"
#include "learn/prior_fit.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ifgen {
namespace cluster {

namespace {

constexpr const char kWorkerFlag[] = "--ifgen-worker";

volatile sig_atomic_t g_worker_stop = 0;

void OnWorkerSignal(int) { g_worker_stop = 1; }

/// `--name value` lookup over the worker argv tail; missing = fallback.
std::string FlagValue(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string v = FlagValue(argc, argv, name, "");
  if (v.empty()) return fallback;
  return std::strtoll(v.c_str(), nullptr, 10);
}

bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace

bool IsWorkerInvocation(int argc, char** argv) {
  return argc > 1 && std::strcmp(argv[1], kWorkerFlag) == 0;
}

int RunWorkerMain(int argc, char** argv) {
  struct sigaction sa{};
  sa.sa_handler = OnWorkerSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  WorkerServer::Options opts;
  opts.host = FlagValue(argc, argv, "--host", "127.0.0.1");
  opts.port = static_cast<int>(FlagInt(argc, argv, "--port", 0));
  opts.service.workload_rows =
      static_cast<size_t>(FlagInt(argc, argv, "--rows", 0));
  opts.service.service.num_threads =
      static_cast<size_t>(FlagInt(argc, argv, "--threads", 2));
  opts.service.service.max_pending_jobs =
      static_cast<size_t>(FlagInt(argc, argv, "--max-pending", 64));
  const int64_t ttl = FlagInt(argc, argv, "--session-ttl-ms", -1);
  if (ttl >= 0) opts.service.session_ttl_ms = ttl;
  if (HasFlag(argc, argv, "--trace")) obs::SetTracingEnabled(true);

  // Persistent experience: each worker owns one store file under the shared
  // directory (per-worker names, so siblings never race on one file) and
  // reloads it across restarts — the warm-start-across-exec path.
  std::string experience_dir = FlagValue(argc, argv, "--experience-dir", "");
  if (experience_dir.empty()) {
    const char* env = std::getenv("IFGEN_EXPERIENCE_DIR");
    if (env != nullptr) experience_dir = env;
  }
  const int64_t worker_index = FlagInt(argc, argv, "--worker-index", 0);
  std::shared_ptr<learn::ExperienceStore> experience;
  std::string experience_path;
  if (!experience_dir.empty()) {
    experience_path = experience_dir + "/worker-" +
                      std::to_string(worker_index) + ".exp";
    experience = std::make_shared<learn::ExperienceStore>();
    auto loaded = experience->LoadFrom(experience_path);
    if (loaded.ok() && *loaded > 0) {
      IFGEN_LOG_C(Info, "cluster")
          << "worker " << worker_index << " loaded " << *loaded
          << " experience records from " << experience_path;
    }
    opts.service.service.experience = experience;
    // Fitted prior weights ride alongside the store; missing/malformed ->
    // keep the hand-set defaults.
    auto weights = learn::LoadPriorWeights(experience_dir + "/priors.json");
    if (weights.ok()) {
      opts.service.learned_prior_weights = std::move(*weights);
    } else if (weights.status().code() != StatusCode::kNotFound) {
      IFGEN_LOG_C(Warning, "cluster")
          << "ignoring unreadable prior weights: " << weights.status().ToString();
    }
  }

  WorkerServer server;
  Status st = server.Start(std::move(opts));
  if (!st.ok()) {
    IFGEN_LOG_C(Error, "cluster") << "worker failed to start: " << st.ToString();
    return 1;
  }

  // Report the bound port to the parent over the handed-down pipe.
  const int port_fd = static_cast<int>(FlagInt(argc, argv, "--port-fd", -1));
  if (port_fd >= 0) {
    const std::string line = std::to_string(server.port()) + "\n";
    ssize_t n = ::write(port_fd, line.data(), line.size());
    (void)n;
    ::close(port_fd);
  }

  // Periodic experience persistence (~10s cadence on the 50ms tick), so a
  // crash loses at most one window of records; SaveTo is atomic
  // (tmp + rename), so readers never observe a torn file.
  size_t ticks = 0;
  while (g_worker_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (experience != nullptr && ++ticks % 200 == 0) {
      Status saved = experience->SaveTo(experience_path);
      if (!saved.ok()) {
        IFGEN_LOG_C(Warning, "cluster")
            << "periodic experience save failed: " << saved.ToString();
      }
    }
  }

  // Graceful drain: refuse new submissions, let running jobs finish
  // (bounded — a stuck job cannot wedge shutdown forever).
  server.Drain();
  Stopwatch watch;
  while (server.jobs_pending() > 0 && watch.ElapsedMillis() < 30000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Save after the drain so the final jobs' records land on disk — the
  // restart-warm-start contract the cluster test exercises.
  if (experience != nullptr) {
    Status saved = experience->SaveTo(experience_path);
    if (!saved.ok()) {
      IFGEN_LOG_C(Warning, "cluster")
          << "final experience save failed: " << saved.ToString();
    }
  }
  server.Stop();
  return 0;
}

Result<std::string> SelfExePath() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) {
    return Status::Internal(StrFormat("readlink(/proc/self/exe) failed: %s",
                                      std::strerror(errno)));
  }
  buf[n] = '\0';
  return std::string(buf);
}

Result<SpawnedWorker> SpawnWorkerProcess(
    const std::string& self_exe, const std::vector<std::string>& worker_args,
    int64_t startup_timeout_ms) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal("pipe() failed");
  }
  std::vector<std::string> args;
  args.push_back(self_exe);
  args.push_back(kWorkerFlag);
  args.push_back("--port-fd");
  args.push_back(std::to_string(pipe_fds[1]));
  args.insert(args.end(), worker_args.begin(), worker_args.end());

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::Internal("fork() failed");
  }
  if (pid == 0) {
    // Child: only async-signal-safe work between fork and exec.
    ::close(pipe_fds[0]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(self_exe.c_str(), argv.data());
    _exit(127);
  }

  // Parent: wait for "PORT\n" on the pipe; a child that dies first closes
  // the write end and we see EOF.
  ::close(pipe_fds[1]);
  std::string line;
  Stopwatch watch;
  bool got_line = false;
  while (!got_line) {
    const int64_t remaining = startup_timeout_ms - watch.ElapsedMillis();
    if (remaining <= 0) break;
    pollfd p{};
    p.fd = pipe_fds[0];
    p.events = POLLIN;
    const int rc = ::poll(&p, 1, static_cast<int>(remaining));
    if (rc <= 0) {
      if (rc < 0 && errno == EINTR) continue;
      break;
    }
    char c;
    const ssize_t n = ::read(pipe_fds[0], &c, 1);
    if (n <= 0) break;  // EOF: child died before reporting
    if (c == '\n') {
      got_line = true;
    } else {
      line.push_back(c);
    }
  }
  ::close(pipe_fds[0]);
  const int port = got_line ? std::atoi(line.c_str()) : 0;
  if (!got_line || port <= 0) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return Status::Internal("worker did not report a port within " +
                            std::to_string(startup_timeout_ms) + "ms");
  }
  SpawnedWorker w;
  w.pid = pid;
  w.port = port;
  return w;
}

Status TerminateWorker(pid_t pid, int64_t grace_ms) {
  if (pid <= 0) return Status::Invalid("bad pid");
  ::kill(pid, SIGTERM);
  Stopwatch watch;
  while (watch.ElapsedMillis() < grace_ms) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return Status::OK();
    if (r < 0) return Status::OK();  // already reaped elsewhere
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return Status::Internal("worker " + std::to_string(pid) +
                          " needed SIGKILL after " + std::to_string(grace_ms) +
                          "ms grace");
}

}  // namespace cluster
}  // namespace ifgen
