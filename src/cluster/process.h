#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace ifgen {
namespace cluster {

/// \brief Worker process lifecycle: a cluster parent re-executes its own
/// binary with `--ifgen-worker` to get workers (fork immediately followed
/// by exec — safe in multithreaded parents and under TSan, unlike a bare
/// fork), hands each child a pipe fd on which the child reports the
/// ephemeral port it bound, and tears workers down SIGTERM-first.
///
/// Any binary that wants to double as a worker (serve_cluster, the cluster
/// test) calls IsWorkerInvocation/RunWorkerMain at the very top of main().

/// True when this process was launched as a worker (`argv[1] ==
/// "--ifgen-worker"`); main() should immediately return RunWorkerMain.
bool IsWorkerInvocation(int argc, char** argv);

/// The worker process entry point: parses the worker flags, serves RPC
/// until SIGTERM, then drains (waits for pending jobs, bounded) and exits.
/// Flags: --port-fd N (required: where to report the bound port),
/// --host H, --port P, --rows N, --max-pending N, --threads N,
/// --session-ttl-ms N.
int RunWorkerMain(int argc, char** argv);

/// /proc/self/exe — the binary to re-execute as a worker.
Result<std::string> SelfExePath();

struct SpawnedWorker {
  pid_t pid = -1;
  int port = 0;
};

/// fork+execs `self_exe --ifgen-worker --port-fd <pipe> <worker_args...>`
/// and waits (bounded) for the child to report its RPC port. On timeout or
/// early child death the child is killed and reaped.
Result<SpawnedWorker> SpawnWorkerProcess(const std::string& self_exe,
                                         const std::vector<std::string>& worker_args,
                                         int64_t startup_timeout_ms = 30000);

/// SIGTERM, wait up to `grace_ms` for a clean exit, then SIGKILL. Always
/// reaps the child.
Status TerminateWorker(pid_t pid, int64_t grace_ms = 10000);

}  // namespace cluster
}  // namespace ifgen
