#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api_service.h"
#include "api/rpc.h"
#include "util/status.h"

namespace ifgen {
namespace cluster {

/// \brief One cluster worker: an in-process ApiService (jobs + sessions)
/// exposed over the v1 RPC envelope on a TCP listener — length-prefixed
/// JSON frames (cluster/frame.h), one request/reply pair at a time per
/// connection, one thread per connection (connections are few: the router
/// pools a handful per worker).
///
/// Lifecycle: Start() binds (port 0 = ephemeral, read back via port()),
/// Drain() flips the worker to reject new generate.submit with retryable
/// Unavailable while in-flight jobs and open sessions keep serving (the
/// SIGTERM path of a worker process: drain, wait for pending jobs to hit
/// zero, exit), Stop() shuts every socket down and joins.
class WorkerServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral
    api::ApiService::Options service;
    /// Per-connection idle read bound; a router that holds a pooled
    /// connection silently for longer gets disconnected (it reconnects on
    /// next use). <= 0 blocks forever.
    int64_t idle_read_timeout_ms = 0;
  };

  WorkerServer() = default;
  ~WorkerServer();
  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Loads workloads, binds, and starts the accept loop.
  Status Start(Options opts);
  /// Stops accepting, rejects new submissions (retryable Unavailable);
  /// running jobs and sessions continue.
  void Drain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// The number of queued + running jobs (the drain wait condition).
  int64_t jobs_pending() const;
  void Stop();

  int port() const { return port_; }
  api::ApiService& service() { return *service_; }
  /// This incarnation's epoch (nonzero, rolled at Start): stamped on every
  /// RpcReply so routers can tell a restarted process — with a fresh dense
  /// id space — from the one that owned their recorded job/session routes.
  int64_t epoch() const { return epoch_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Decodes the payload, calls the ApiService method, encodes the reply
  /// payload. Transport-independent: errors become RpcReply failures.
  Result<JsonValue> Call(const api::RpcEnvelope& env);
  void ReapFinishedLocked();

  Options opts_;
  std::unique_ptr<api::ApiService> service_;
  int listen_fd_ = -1;
  int port_ = 0;
  int64_t epoch_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace cluster
}  // namespace ifgen
