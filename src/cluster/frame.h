#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ifgen {
namespace cluster {

/// \brief The cluster's wire framing: every RPC request/reply travels as a
/// 4-byte big-endian length prefix followed by that many bytes of compact
/// JSON (an api::RpcEnvelope or api::RpcReply document). Length-prefixed
/// frames keep the parser trivial and make oversized/garbage input a
/// structured error before any JSON is touched.
///
/// Failure model: everything transport-level — connect refused, peer gone
/// (EOF/EPIPE), deadline exceeded — returns StatusCode::kUnavailable, the
/// retryable code, because a router that re-sends to a healthy worker is
/// expected to succeed. Only protocol violations (oversized frame) are
/// non-retryable InvalidArgument.

/// Frames above this are rejected by both sides (a full GenerateResponse
/// with widgets for the bundled workloads is well under 1 MiB).
inline constexpr size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Sends one `[len][payload]` frame; blocks until written or the socket's
/// send timeout trips.
Status WriteFrame(int fd, std::string_view payload);

/// Receives one frame. `timeout_ms` bounds the whole read (prefix + body)
/// with poll(), not per-recv; <= 0 blocks indefinitely.
Result<std::string> ReadFrame(int fd, int64_t timeout_ms,
                              size_t max_frame_bytes = kMaxFrameBytes);

/// Connects to `host:port` (dotted IPv4) within `timeout_ms`; the returned
/// fd has no recv/send timeouts armed (callers own deadline policy).
Result<int> ConnectTcp(const std::string& host, int port, int64_t timeout_ms);

/// Binds + listens on `host:port` (0 = ephemeral); returns the listener fd.
Result<int> ListenTcp(const std::string& host, int port, int backlog = 64);

/// The port a bound listener landed on (resolves port 0).
Result<int> LocalPort(int fd);

}  // namespace cluster
}  // namespace ifgen
