#include "cluster/cluster_router.h"

#include <unistd.h>

#include <algorithm>

#include "cluster/frame.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ifgen {
namespace cluster {

using api::RpcEnvelope;
using api::RpcReply;

namespace {

obs::CounterFamily& RpcsFamily() {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_cluster_rpcs_total", "Cluster RPCs sent, by worker and method");
  return *f;
}
obs::CounterFamily& RpcFailuresFamily() {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_cluster_rpc_failures_total",
      "Cluster RPC transport failures (mark the worker unhealthy), by worker");
  return *f;
}
obs::HistogramFamily& RpcDurationFamily() {
  static obs::HistogramFamily* f = [] {
    obs::HistogramOptions opts;
    opts.first_bound = 64.0;
    opts.growth = 2.0;
    opts.num_buckets = 20;
    return obs::MetricsRegistry::Default().GetHistogramFamily(
        "ifgen_cluster_rpc_duration_us",
        "Cluster RPC round-trip latency by worker (microseconds)", opts);
  }();
  return *f;
}
obs::GaugeFamily& WorkerHealthyFamily() {
  static obs::GaugeFamily* f = obs::MetricsRegistry::Default().GetGaugeFamily(
      "ifgen_cluster_worker_healthy",
      "1 when the router believes the worker is reachable, else 0");
  return *f;
}

std::string AddressOf(const ClusterRouter::WorkerAddress& a) {
  return a.host + ":" + std::to_string(a.port);
}

}  // namespace

ClusterRouter::~ClusterRouter() { Stop(); }

Status ClusterRouter::Start(Options opts) {
  if (opts.workers.empty()) {
    return Status::Invalid("ClusterRouter needs at least one worker address");
  }
  opts_ = std::move(opts);
  for (size_t i = 0; i < opts_.workers.size(); ++i) {
    auto w = std::make_unique<WorkerState>();
    w->index = i;
    w->addr = opts_.workers[i];
    w->backoff_ms = opts_.reconnect_backoff_ms;
    workers_.push_back(std::move(w));
    WorkerHealthyFamily().WithLabels({{"worker", std::to_string(i)}})->Set(1.0);
  }
  // The ring: virtual_nodes hash points per worker, keyed by worker index
  // (stable across restarts with the same worker list).
  for (size_t i = 0; i < workers_.size(); ++i) {
    for (size_t v = 0; v < opts_.virtual_nodes; ++v) {
      const std::string key =
          "worker-" + std::to_string(i) + "-vnode-" + std::to_string(v);
      ring_.emplace_back(HashBytes(key), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  stopping_.store(false, std::memory_order_relaxed);
  health_thread_ = std::thread([this] { HealthLoop(); });
  return Status::OK();
}

void ClusterRouter::Stop() {
  if (workers_.empty()) return;
  stopping_.store(true, std::memory_order_relaxed);
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    for (int fd : w->idle) ::close(fd);
    w->idle.clear();
  }
}

void ClusterRouter::MarkUnhealthyLocked(WorkerState* w) {
  if (w->healthy) {
    IFGEN_LOG_C(Warning, "cluster")
        << "worker " << w->index << " (" << AddressOf(w->addr)
        << ") marked unhealthy";
    WorkerHealthyFamily()
        .WithLabels({{"worker", std::to_string(w->index)}})
        ->Set(0.0);
  }
  w->healthy = false;
  ++w->failures;
  for (int fd : w->idle) ::close(fd);
  w->idle.clear();
  if (w->backoff_ms <= 0) w->backoff_ms = opts_.reconnect_backoff_ms;
  w->next_probe = Clock::now() + std::chrono::milliseconds(w->backoff_ms);
  w->backoff_ms = std::min(w->backoff_ms * 2, opts_.reconnect_backoff_max_ms);
}

Result<JsonValue> ClusterRouter::Rpc(WorkerState* w, const char* method,
                                     JsonValue payload, int64_t extra_wait_ms,
                                     bool probe, int64_t* reply_epoch) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    if (!probe && !w->healthy) {
      return Status::Unavailable("worker " + AddressOf(w->addr) +
                                 " is unreachable; retry shortly");
    }
    if (!probe && w->inflight >= opts_.max_inflight_per_worker) {
      return Status::ResourceExhausted(
          "worker " + AddressOf(w->addr) + " has " +
          std::to_string(w->inflight) + " RPCs in flight; retry later");
    }
    if (!w->idle.empty()) {
      fd = w->idle.back();
      w->idle.pop_back();
    }
    ++w->inflight;
    ++w->rpcs;
  }
  RpcsFamily()
      .WithLabels({{"worker", std::to_string(w->index)}, {"method", method}})
      ->Inc();
  Stopwatch watch;
  auto fail = [&](Status s) -> Status {
    if (fd >= 0) ::close(fd);
    RpcFailuresFamily()
        .WithLabels({{"worker", std::to_string(w->index)}})
        ->Inc();
    std::lock_guard<std::mutex> lock(w->mu);
    --w->inflight;
    MarkUnhealthyLocked(w);
    return s;
  };
  if (fd < 0) {
    auto conn = ConnectTcp(w->addr.host, w->addr.port, opts_.connect_timeout_ms);
    if (!conn.ok()) return fail(conn.status());
    fd = *conn;
  }
  RpcEnvelope env;
  env.method = method;
  env.request_id = next_request_.fetch_add(1, std::memory_order_relaxed);
  env.payload = std::move(payload);
  IFGEN_RETURN_NOT_OK(([&]() -> Status {
    Status s = WriteFrame(fd, WriteJson(env.ToJson()));
    return s.ok() ? s : fail(std::move(s));
  })());
  auto frame = ReadFrame(fd, opts_.rpc_timeout_ms + extra_wait_ms);
  if (!frame.ok()) return fail(frame.status());
  auto parsed = ParseJson(*frame);
  if (!parsed.ok()) return fail(parsed.status());
  auto reply = RpcReply::FromJson(*parsed);
  if (!reply.ok()) return fail(reply.status());
  if (reply->request_id != env.request_id) {
    // A desynchronized stream (e.g. a stale frame left by a peer that timed
    // out mid-exchange) is a transport fault, not an application answer:
    // drop the connection and report retryable, exactly like a read failure.
    return fail(Status::Unavailable("RPC reply pairing broken: sent id " +
                                    std::to_string(env.request_id) + ", got " +
                                    std::to_string(reply->request_id)));
  }
  if (reply_epoch != nullptr) *reply_epoch = reply->epoch;
  RpcDurationFamily()
      .WithLabels({{"worker", std::to_string(w->index)}})
      ->Observe(static_cast<double>(watch.ElapsedMicros()));
  {
    std::lock_guard<std::mutex> lock(w->mu);
    --w->inflight;
    if (reply->epoch != 0) w->epoch = reply->epoch;
    if (!w->healthy) {
      w->healthy = true;
      ++w->reconnects;
      w->backoff_ms = opts_.reconnect_backoff_ms;
      IFGEN_LOG_C(Info, "cluster")
          << "worker " << w->index << " (" << AddressOf(w->addr)
          << ") recovered";
      WorkerHealthyFamily()
          .WithLabels({{"worker", std::to_string(w->index)}})
          ->Set(1.0);
    }
    if (w->idle.size() < opts_.max_pooled_connections) {
      w->idle.push_back(fd);
    } else {
      ::close(fd);
    }
  }
  // Application-level failure: the worker is fine, the call is not.
  if (!reply->ok) return reply->error.ToStatus();
  return std::move(reply->payload);
}

void ClusterRouter::HealthLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(health_mu_);
      health_cv_.wait_for(
          lock, std::chrono::milliseconds(opts_.health_interval_ms),
          [this] { return stopping_.load(std::memory_order_relaxed); });
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    for (auto& w : workers_) {
      bool healthy;
      Clock::time_point next_probe;
      {
        std::lock_guard<std::mutex> lock(w->mu);
        healthy = w->healthy;
        next_probe = w->next_probe;
      }
      // Unhealthy workers are probed on their backoff schedule, healthy
      // ones every interval (the ping doubles as the stats refresh).
      if (!healthy && Clock::now() < next_probe) continue;
      auto ping =
          Rpc(w.get(), api::kMethodPing, JsonValue::Object(), 0, /*probe=*/true);
      if (!ping.ok()) continue;
      auto parsed = api::WorkerPingResponse::FromJson(*ping);
      if (parsed.ok()) {
        std::lock_guard<std::mutex> lock(w->mu);
        w->last_ping = *parsed;
        w->draining = parsed->draining;
      }
    }
    if (opts_.cache_peering) GossipTt();
  }
}

void ClusterRouter::GossipTt() {
  // Pull phase: each healthy worker's locally discovered hot transposition
  // entries (workers never re-export what they ingested from peers, so a
  // batch seen here is first-hand and gossip cannot echo).
  struct Pulled {
    size_t source;
    api::TtSyncDto sync;
  };
  std::vector<Pulled> pulled;
  api::TtExportRequest exp;
  exp.max_entries = static_cast<int64_t>(opts_.tt_gossip_max_entries);
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (!w->healthy) continue;
    }
    auto r = Rpc(w.get(), api::kMethodCacheExport, exp.ToJson());
    if (!r.ok()) continue;
    auto sync = api::TtSyncDto::FromJson(*r);
    if (!sync.ok() || sync->batches.empty()) continue;
    pulled.push_back(Pulled{w->index, std::move(*sync)});
  }
  if (pulled.empty()) return;
  // Push phase: every worker receives everyone ELSE's batches. Workers
  // merge first-writer-wins per canonical hash, so re-publishing the same
  // entry on later rounds is an idempotent no-op.
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (!w->healthy) continue;
    }
    api::TtSyncDto out;
    int64_t entries = 0;
    for (const Pulled& p : pulled) {
      if (p.source == w->index) continue;
      for (const api::TtBatchDto& b : p.sync.batches) {
        entries += static_cast<int64_t>(b.entries.size());
        out.batches.push_back(b);
      }
    }
    if (out.batches.empty()) continue;
    auto r = Rpc(w.get(), api::kMethodCachePublish, out.ToJson());
    if (!r.ok()) continue;
    std::lock_guard<std::mutex> lock(w->mu);
    w->tt_published += entries;
  }
}

ClusterRouter::WorkerState* ClusterRouter::PickWorker(uint64_t key,
                                                      size_t skip) {
  if (ring_.empty()) return nullptr;
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(key, size_t{0}));
  for (size_t n = 0; n < ring_.size(); ++n, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    WorkerState* w = workers_[it->second].get();
    if (w->index == skip) continue;
    std::lock_guard<std::mutex> lock(w->mu);
    if (w->healthy) return w;
  }
  return nullptr;
}

Result<ClusterRouter::Route> ClusterRouter::FindJob(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status::NotFound("unknown job id '" + job_id + "'");
  }
  return it->second;
}

Result<ClusterRouter::Route> ClusterRouter::FindSession(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session id '" + session_id + "'");
  }
  return it->second;
}

// Epoch guards: a worker restart resets its dense "job-N"/"sess-N" id space,
// so a route recorded against the old incarnation could silently name a NEW
// job/session that happens to reuse the number. The reply's epoch exposes
// that: when it differs from the epoch the route was created under, the
// payload belongs to a stranger — discard it, forget the route, and answer
// NotFound (never another job's result). A zero on either side means "epoch
// unknown" (pre-epoch worker or never-heard route) and skips the check.

Status ClusterRouter::CheckJobEpoch(const std::string& job_id,
                                    const Route& route, int64_t reply_epoch) {
  if (route.epoch == 0 || reply_epoch == 0 || route.epoch == reply_epoch) {
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(job_id);
    auto it = std::find(job_order_.begin(), job_order_.end(), job_id);
    if (it != job_order_.end()) job_order_.erase(it);
  }
  return Status::NotFound("job '" + job_id +
                          "' was owned by a worker that restarted; its state "
                          "is gone — resubmit");
}

Status ClusterRouter::CheckSessionEpoch(const std::string& session_id,
                                        const Route& route,
                                        int64_t reply_epoch) {
  if (route.epoch == 0 || reply_epoch == 0 || route.epoch == reply_epoch) {
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.erase(session_id);
  }
  return Status::NotFound("session '" + session_id +
                          "' was owned by a worker that restarted; its state "
                          "is gone — reopen");
}

size_t ClusterRouter::ProbeForCachedResult(const JsonValue& req_json,
                                           WorkerState* placement) {
  // Placement first: when the co-located worker already holds the result,
  // the normal submit path is the hit and no redirect is needed.
  auto own = Rpc(placement, api::kMethodCacheProbe, req_json);
  if (own.ok()) {
    auto resp = api::CacheProbeResponse::FromJson(*own);
    if (resp.ok() && resp->hit) return SIZE_MAX;
  }
  for (auto& w : workers_) {
    if (w->index == placement->index) continue;
    {
      std::lock_guard<std::mutex> lock(w->mu);
      if (!w->healthy) continue;
    }
    auto r = Rpc(w.get(), api::kMethodCacheProbe, req_json);
    if (!r.ok()) continue;  // a probe never fails the submit
    auto resp = api::CacheProbeResponse::FromJson(*r);
    if (resp.ok() && resp->hit) return w->index;
  }
  return SIZE_MAX;
}

Result<api::GenerateAccepted> ClusterRouter::SubmitGenerate(
    const api::GenerateRequest& req) {
  // Consistent hash of the canonical request JSON: identical requests land
  // on the same worker's result cache, same-schema jobs co-locate.
  const JsonValue req_json = req.ToJson();
  const uint64_t key = HashBytes(WriteJson(req_json));
  Status last = Status::Unavailable("no healthy workers");
  // Cache peering: when a sibling (not the placement worker) already holds
  // the completed identical job, route there once — the submit becomes that
  // worker's local result-cache hit, bit-identical to the co-located path.
  // Probe failures or a vanished cache entry fall through to normal ring
  // placement; peer_hint is consumed on the first attempt only.
  size_t peer_hint = SIZE_MAX;
  if (opts_.cache_peering) {
    WorkerState* placement = PickWorker(key, /*skip=*/SIZE_MAX);
    if (placement != nullptr) {
      peer_hint = ProbeForCachedResult(req_json, placement);
    }
  }
  for (size_t attempt = 0; attempt < workers_.size(); ++attempt) {
    WorkerState* w = nullptr;
    bool via_peer = false;
    if (peer_hint != SIZE_MAX) {
      w = workers_[peer_hint].get();
      via_peer = true;
      peer_hint = SIZE_MAX;
    } else {
      w = PickWorker(key, /*skip=*/SIZE_MAX);
    }
    if (w == nullptr) break;
    int64_t reply_epoch = 0;
    auto r = Rpc(w, api::kMethodSubmitGenerate, req_json, /*extra_wait_ms=*/0,
                 /*probe=*/false, &reply_epoch);
    if (!r.ok()) {
      // Transport loss reroutes (the worker is now unhealthy and the next
      // pick walks past it); application errors — including 429
      // backpressure and draining — are authoritative for this request.
      if (r.status().code() == StatusCode::kUnavailable) {
        last = r.status();
        continue;
      }
      return r.status();
    }
    IFGEN_ASSIGN_OR_RETURN(api::GenerateAccepted acc,
                           api::GenerateAccepted::FromJson(*r));
    if (via_peer) {
      std::lock_guard<std::mutex> lock(w->mu);
      ++w->result_peer_hits;
    }
    std::string cluster_id;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cluster_id = "j-" + std::to_string(next_job_++);
      jobs_[cluster_id] = Route{w->index, acc.job_id, reply_epoch};
      job_order_.push_back(cluster_id);
      if (job_order_.size() > opts_.max_job_routes) {
        jobs_.erase(job_order_.front());
        job_order_.erase(job_order_.begin());
      }
    }
    acc.job_id = std::move(cluster_id);
    return acc;
  }
  return last;
}

Result<api::JobStatusResponse> ClusterRouter::GetJob(const std::string& job_id,
                                                     int64_t wait_ms) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(job_id));
  api::IdRequest q;
  q.id = route.remote_id;
  q.wait_ms = wait_ms;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(JsonValue payload,
                         Rpc(workers_[route.worker].get(), api::kMethodGetJob,
                             q.ToJson(), /*extra_wait_ms=*/wait_ms,
                             /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckJobEpoch(job_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::JobStatusResponse resp,
                         api::JobStatusResponse::FromJson(payload));
  resp.job_id = job_id;
  if (resp.result.value.has_value()) resp.result.value->job_id = job_id;
  return resp;
}

Result<api::JobStatusResponse> ClusterRouter::CancelJob(
    const std::string& job_id) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(job_id));
  api::IdRequest q;
  q.id = route.remote_id;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodCancelJob, q.ToJson(),
          /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckJobEpoch(job_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::JobStatusResponse resp,
                         api::JobStatusResponse::FromJson(payload));
  resp.job_id = job_id;
  if (resp.result.value.has_value()) resp.result.value->job_id = job_id;
  return resp;
}

Result<api::JobProgressResponse> ClusterRouter::GetJobProgress(
    const std::string& job_id, int64_t last_seen_version, int64_t wait_ms) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(job_id));
  api::ProgressRequest q;
  q.job_id = route.remote_id;
  q.last_seen_version = last_seen_version;
  q.wait_ms = wait_ms;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodJobProgress, q.ToJson(),
          /*extra_wait_ms=*/wait_ms, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckJobEpoch(job_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::JobProgressResponse resp,
                         api::JobProgressResponse::FromJson(payload));
  resp.job_id = job_id;
  if (resp.result.value.has_value()) resp.result.value->job_id = job_id;
  return resp;
}

Result<std::string> ClusterRouter::JobTrace(const std::string& job_id) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(job_id));
  api::IdRequest q;
  q.id = route.remote_id;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodJobTrace, q.ToJson(),
          /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckJobEpoch(job_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::TextReply t, api::TextReply::FromJson(payload));
  return t.text;
}

Result<api::SessionOpenResponse> ClusterRouter::OpenSession(
    const api::SessionOpenRequest& req) {
  // Sessions follow their job: the interface result, its backends, and the
  // runtime all live in the worker that ran the search.
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(req.job_id));
  api::SessionOpenRequest remote = req;
  remote.job_id = route.remote_id;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodOpenSession,
          remote.ToJson(), /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckJobEpoch(req.job_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::SessionOpenResponse resp,
                         api::SessionOpenResponse::FromJson(payload));
  std::string cluster_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cluster_id = "s-" + std::to_string(next_session_++);
    sessions_[cluster_id] = Route{route.worker, resp.session_id, reply_epoch};
  }
  resp.session_id = std::move(cluster_id);
  return resp;
}

Result<api::StepResponse> ClusterRouter::ApplyEvent(
    const std::string& session_id, const api::WidgetEventRequest& event) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindSession(session_id));
  api::SessionEventRequest q;
  q.session_id = route.remote_id;
  q.event = event;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodSessionEvent, q.ToJson(),
          /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckSessionEpoch(session_id, route, reply_epoch));
  IFGEN_ASSIGN_OR_RETURN(api::StepResponse resp,
                         api::StepResponse::FromJson(payload));
  resp.session_id = session_id;
  return resp;
}

Result<api::ChangeBatchDto> ClusterRouter::PollSession(
    const std::string& session_id, int64_t wait_ms) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindSession(session_id));
  api::IdRequest q;
  q.id = route.remote_id;
  q.wait_ms = wait_ms;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodPollSession, q.ToJson(),
          /*extra_wait_ms=*/wait_ms, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckSessionEpoch(session_id, route, reply_epoch));
  return api::ChangeBatchDto::FromJson(payload);
}

Status ClusterRouter::CloseSession(const std::string& session_id) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindSession(session_id));
  api::IdRequest q;
  q.id = route.remote_id;
  int64_t reply_epoch = 0;
  auto r = Rpc(workers_[route.worker].get(), api::kMethodCloseSession,
               q.ToJson(), /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch);
  if (!r.ok()) return r.status();
  IFGEN_RETURN_NOT_OK(CheckSessionEpoch(session_id, route, reply_epoch));
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
  return Status::OK();
}

Result<api::TableDto> ClusterRouter::SessionTable(
    const std::string& session_id) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindSession(session_id));
  api::IdRequest q;
  q.id = route.remote_id;
  int64_t reply_epoch = 0;
  IFGEN_ASSIGN_OR_RETURN(
      JsonValue payload,
      Rpc(workers_[route.worker].get(), api::kMethodSessionTable, q.ToJson(),
          /*extra_wait_ms=*/0, /*probe=*/false, &reply_epoch));
  IFGEN_RETURN_NOT_OK(CheckSessionEpoch(session_id, route, reply_epoch));
  return api::TableDto::FromJson(payload);
}

Result<api::CatalogResponse> ClusterRouter::Catalog() {
  // Workers load the same registered workloads; any healthy one answers.
  WorkerState* w = PickWorker(0, /*skip=*/SIZE_MAX);
  if (w == nullptr) return Status::Unavailable("no healthy workers");
  IFGEN_ASSIGN_OR_RETURN(JsonValue payload,
                         Rpc(w, api::kMethodCatalog, JsonValue::Object()));
  return api::CatalogResponse::FromJson(payload);
}

api::WorkerStatsDto ClusterRouter::WorkerRow(WorkerState* w) {
  api::WorkerStatsDto row;
  std::lock_guard<std::mutex> lock(w->mu);
  row.worker = static_cast<int64_t>(w->index);
  row.address = AddressOf(w->addr);
  row.healthy = w->healthy;
  row.draining = w->draining;
  row.jobs_submitted = w->last_ping.jobs_submitted;
  row.jobs_executed = w->last_ping.jobs_executed;
  row.jobs_pending = w->last_ping.jobs_pending;
  row.sessions_active = w->last_ping.sessions_active;
  row.rpcs = w->rpcs;
  row.rpc_failures = w->failures;
  row.reconnects = w->reconnects;
  row.cache_probes = w->last_ping.cache_probes;
  row.cache_probe_hits = w->last_ping.cache_probe_hits;
  row.tt_peer_ingested = w->last_ping.tt_peer_ingested;
  row.tt_peer_hits = w->last_ping.tt_peer_hits;
  row.result_peer_hits = w->result_peer_hits;
  row.tt_published = w->tt_published;
  return row;
}

Result<api::StatsResponse> ClusterRouter::Stats() {
  api::StatsResponse agg;
  // (workload, backend) -> row index in agg.backends, for the merge.
  std::map<std::pair<std::string, std::string>, size_t> backend_rows;
  for (auto& w : workers_) {
    api::WorkerStatsDto row = WorkerRow(w.get());
    if (row.healthy) {
      auto r = Rpc(w.get(), api::kMethodStats, JsonValue::Object());
      if (r.ok()) {
        auto stats = api::StatsResponse::FromJson(*r);
        if (stats.ok()) {
          agg.jobs_submitted += stats->jobs_submitted;
          agg.jobs_executed += stats->jobs_executed;
          agg.jobs_pending += stats->jobs_pending;
          agg.job_cache_hits += stats->job_cache_hits;
          agg.sessions_opened += stats->sessions_opened;
          agg.sessions_active += stats->sessions_active;
          agg.sessions_expired += stats->sessions_expired;
          agg.steps += stats->steps;
          agg.noops += stats->noops;
          agg.result_cache_hits += stats->result_cache_hits;
          agg.delta_execs += stats->delta_execs;
          agg.retruncates += stats->retruncates;
          agg.full_execs += stats->full_execs;
          agg.fallbacks += stats->fallbacks;
          for (const api::BackendStatsDto& b : stats->backends) {
            auto key = std::make_pair(b.workload, b.backend);
            auto it = backend_rows.find(key);
            if (it == backend_rows.end()) {
              backend_rows.emplace(key, agg.backends.size());
              agg.backends.push_back(b);
            } else {
              api::BackendStatsDto& row_b = agg.backends[it->second];
              row_b.prepares += b.prepares;
              row_b.plan_cache_hits += b.plan_cache_hits;
              row_b.executions += b.executions;
            }
          }
          // Fresher than the health loop's last ping.
          row.jobs_submitted = stats->jobs_submitted;
          row.jobs_executed = stats->jobs_executed;
          row.jobs_pending = stats->jobs_pending;
          row.sessions_active = stats->sessions_active;
        }
      }
    }
    agg.cluster_workers.push_back(std::move(row));
  }
  return agg;
}

Result<api::ClusterResponse> ClusterRouter::Cluster() {
  api::ClusterResponse resp;
  resp.mode = "cluster";
  for (auto& w : workers_) resp.workers.push_back(WorkerRow(w.get()));
  return resp;
}

Result<size_t> ClusterRouter::WorkerIndexForJob(const std::string& job_id) {
  IFGEN_ASSIGN_OR_RETURN(Route route, FindJob(job_id));
  return route.worker;
}

void ClusterRouter::DrainWorkers() {
  for (auto& w : workers_) {
    auto r = Rpc(w.get(), api::kMethodDrain, JsonValue::Object());
    if (!r.ok()) {
      IFGEN_LOG_C(Warning, "cluster")
          << "drain of worker " << w->index << " failed: "
          << r.status().ToString();
    }
  }
}

bool ClusterRouter::WaitDrained(int64_t timeout_ms) {
  Stopwatch watch;
  while (timeout_ms <= 0 || watch.ElapsedMillis() < timeout_ms) {
    bool drained = true;
    for (auto& w : workers_) {
      {
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->healthy) continue;  // a dead worker has nothing to finish
      }
      auto ping = Rpc(w.get(), api::kMethodPing, JsonValue::Object());
      if (!ping.ok()) continue;
      auto parsed = api::WorkerPingResponse::FromJson(*ping);
      if (parsed.ok() && parsed->jobs_pending > 0) {
        drained = false;
        break;
      }
    }
    if (drained) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

}  // namespace cluster
}  // namespace ifgen
