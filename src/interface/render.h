#pragma once

#include <string>

#include "difftree/selection.h"
#include "interface/widget_tree.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief Renders a laid-out widget tree as ASCII art (the stand-in for the
/// paper's browser dashboard — Figure 6 screenshots).
///
/// `selections` (optional) highlights current widget values; pass an empty
/// map to render defaults (first option selected, toggles on).
std::string RenderAscii(const WidgetTree& tree, const Screen& screen,
                        const SelectionMap& selections = {});

/// \brief Emits a standalone static HTML page with real form controls, so a
/// generated interface can be opened in a browser.
std::string RenderHtml(const WidgetTree& tree, const std::string& title);

}  // namespace ifgen
