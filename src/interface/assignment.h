#pragma once

#include <unordered_map>
#include <vector>

#include "difftree/difftree.h"
#include "difftree/selection.h"
#include "interface/widget_tree.h"
#include "util/rng.h"
#include "util/status.h"
#include "widgets/constants.h"
#include "widgets/size_model.h"

namespace ifgen {

class DeltaCostCache;

/// \brief The kinds of decisions that turn a difftree into a widget tree.
enum class DecisionType : uint8_t {
  kChoiceWidget,      ///< which interaction widget expresses a choice node
  kContainerLayout,   ///< vertical/horizontal/tabs for a multi-widget group
  kBetweenComposite,  ///< range slider vs. two separate numeric widgets
};

/// \brief One decision point with its valid options.
struct DecisionPoint {
  DecisionType type = DecisionType::kChoiceWidget;
  const DiffTree* node = nullptr;
  /// kChoiceWidget / kContainerLayout: candidate widget kinds.
  /// kBetweenComposite: {0 = separate widgets, 1 = range slider} — encoded
  /// as a two-entry dummy kind list for uniform odometer handling.
  std::vector<WidgetKind> options;
  /// kChoiceWidget only: the choice node's widget domain, computed once at
  /// Collect time (possibly from the delta-cost cache) and reused by every
  /// Build of this assigner instead of re-extracting per assignment.
  WidgetDomain domain;
  /// kChoiceWidget only: options index minimizing M(.) — the greedy pick.
  int min_m_pick = 0;
};

/// \brief A concrete pick per decision point.
struct Assignment {
  std::vector<int> picks;
};

/// \brief Maps a difftree to widget trees ("Creating Widget Trees", paper).
///
/// The mapping is factored into an explicit decision vector so that the
/// search can (a) sample k random widget trees per state during rollouts and
/// (b) exhaustively enumerate widget trees for the final state.
class WidgetAssigner {
 public:
  /// `delta` (optional) memoizes per-choice-subtree widget terms across
  /// states (see cost/delta.h); null computes everything from scratch.
  WidgetAssigner(const DiffTree& tree, const CostConstants& constants,
                 DeltaCostCache* delta = nullptr);

  const std::vector<DecisionPoint>& decisions() const { return decisions_; }
  const ChoiceIndex& choice_index() const { return index_; }

  /// False when some choice node has no valid widget at all (e.g. an ANY of
  /// 40 structurally rich alternatives): every assignment is invalid.
  bool viable() const { return viable_; }

  /// Total number of assignments (product of option counts; saturating).
  double CombinationCount() const;

  Assignment FirstAssignment() const;
  /// Odometer increment; returns false after the last assignment wraps.
  bool NextAssignment(Assignment* a) const;
  Assignment RandomAssignment(Rng* rng) const;

  /// Materializes the widget tree for an assignment (sizes included; layout
  /// positions are the layout solver's job). Fails when the assignment is
  /// structurally invalid.
  Result<WidgetTree> Build(const Assignment& a) const;

 private:
  void Collect(const DiffTree& node);

  /// Recursive widget construction; returns the widgets `node` contributes.
  Status BuildNode(const DiffTree& node, const Assignment& a,
                   const std::string& context, std::vector<WidgetNode>* out) const;
  /// Wraps a widget list in the node's container decision (or passes through).
  Status BuildGroup(const DiffTree& node, const Assignment& a,
                    const std::string& context, const std::string& group_label,
                    std::vector<WidgetNode>* widgets, WidgetNode* group) const;

  int DecisionIndexOf(const DiffTree* node, DecisionType type) const;

 public:
  /// The greedy assignment: per choice widget the minimum-M(.) option, first
  /// option (vertical / separate widgets) everywhere else. This is both the
  /// Zhang'17 baseline's policy and the seed sample the evaluator mixes into
  /// each state's k random assignments.
  Assignment MinAppropriatenessAssignment() const;

 private:

  const DiffTree& tree_;
  const CostConstants& constants_;
  DeltaCostCache* delta_ = nullptr;
  SizeModel size_model_;
  ChoiceIndex index_;
  std::vector<DecisionPoint> decisions_;
  std::unordered_map<const DiffTree*, std::vector<int>> decision_of_node_;
  bool viable_ = true;
};

}  // namespace ifgen
