#pragma once

#include "interface/widget_tree.h"
#include "util/status.h"
#include "widgets/constants.h"

namespace ifgen {

/// \brief Result of laying out a widget tree against a screen.
struct LayoutResult {
  bool fits = false;
  int width = 0;
  int height = 0;
};

/// \brief Computes bounding boxes bottom-up and positions top-down
/// (paper, Figure 2's blue boxes), then checks the screen constraint.
///
/// Composition:
///  - Vertical:   w = max child w,      h = sum child h
///  - Horizontal: w = sum child w + gaps, h = max child h
///  - Tabs/TabLayout: w = max(tab bar, widest panel), h = 1 + tallest panel
///  - Adder: child template + one row for the "+" control
///
/// A widget tree that exceeds the screen is invalid — the cost model maps
/// that to infinite cost.
LayoutResult ComputeLayout(WidgetNode* root, const Screen& screen);

}  // namespace ifgen
