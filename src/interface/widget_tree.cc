#include "interface/widget_tree.h"

#include "util/string_util.h"

namespace ifgen {

namespace {

void IndexRec(const WidgetNode& n, std::vector<int>* path,
              std::map<int, std::vector<int>>* out) {
  if (n.choice_id >= 0) {
    (*out)[n.choice_id] = *path;
  }
  if (n.choice_id2 >= 0) {
    (*out)[n.choice_id2] = *path;
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    path->push_back(static_cast<int>(i));
    IndexRec(n.children[i], path, out);
    path->pop_back();
  }
}

size_t CountRec(const WidgetNode& n, bool interactive_only) {
  size_t c = interactive_only ? (n.IsInteractive() ? 1 : 0) : 1;
  for (const WidgetNode& k : n.children) c += CountRec(k, interactive_only);
  return c;
}

void DumpRec(const WidgetNode& n, int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  *out += WidgetKindName(n.kind);
  if (!n.label.empty()) *out += " '" + n.label + "'";
  if (n.choice_id >= 0) *out += StrFormat(" #%d", n.choice_id);
  if (n.choice_id2 >= 0) *out += StrFormat("/#%d", n.choice_id2);
  if (!n.domain.labels.empty() && !IsLayoutWidget(n.kind)) {
    *out += " {";
    for (size_t i = 0; i < n.domain.labels.size() && i < 6; ++i) {
      if (i > 0) *out += ", ";
      *out += n.domain.labels[i];
    }
    if (n.domain.labels.size() > 6) *out += ", ...";
    *out += "}";
  }
  *out += StrFormat(" [%dx%d]", n.width, n.height);
  *out += "\n";
  for (const WidgetNode& k : n.children) DumpRec(k, indent + 1, out);
}

}  // namespace

void WidgetTree::RebuildIndex() {
  path_by_choice.clear();
  std::vector<int> path;
  IndexRec(root, &path, &path_by_choice);
}

const WidgetNode* WidgetTree::NodeAtPath(const std::vector<int>& path) const {
  const WidgetNode* n = &root;
  for (int idx : path) {
    if (idx < 0 || static_cast<size_t>(idx) >= n->children.size()) return nullptr;
    n = &n->children[static_cast<size_t>(idx)];
  }
  return n;
}

const WidgetNode* WidgetTree::WidgetFor(int choice_id) const {
  auto it = path_by_choice.find(choice_id);
  if (it == path_by_choice.end()) return nullptr;
  return NodeAtPath(it->second);
}

size_t WidgetTree::CountWidgets() const { return CountRec(root, false); }
size_t WidgetTree::CountInteractive() const { return CountRec(root, true); }

std::string WidgetTree::ToString() const {
  std::string out;
  DumpRec(root, 0, &out);
  return out;
}

}  // namespace ifgen
