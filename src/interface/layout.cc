#include "interface/layout.h"

#include <algorithm>

namespace ifgen {

namespace {

constexpr int kHGap = 1;

void SizeRec(WidgetNode* n) {
  for (WidgetNode& c : n->children) SizeRec(&c);
  switch (n->kind) {
    case WidgetKind::kVertical: {
      int w = 0;
      int h = 0;
      for (const WidgetNode& c : n->children) {
        w = std::max(w, c.width);
        h += c.height;
      }
      n->width = w;
      n->height = h;
      break;
    }
    case WidgetKind::kHorizontal: {
      int w = 0;
      int h = 0;
      for (const WidgetNode& c : n->children) {
        w += c.width + (w > 0 ? kHGap : 0);
        h = std::max(h, c.height);
      }
      n->width = w;
      n->height = h;
      break;
    }
    case WidgetKind::kTabs:
    case WidgetKind::kTabLayout: {
      // Width/height set by the size model hold the tab bar; panels stack
      // behind it.
      int bar_w = n->width;
      int panel_w = 0;
      int panel_h = 0;
      for (const WidgetNode& c : n->children) {
        panel_w = std::max(panel_w, c.width);
        panel_h = std::max(panel_h, c.height);
      }
      if (n->kind == WidgetKind::kTabLayout) {
        // Tab layout over arbitrary children: bar width from labels.
        int lw = 0;
        for (const WidgetNode& c : n->children) {
          lw += static_cast<int>(std::min<size_t>(c.label.size(), 10)) + 3;
        }
        bar_w = std::max(10, std::min(lw, 72));
      }
      n->width = std::max(bar_w, panel_w);
      n->height = 1 + panel_h;
      break;
    }
    case WidgetKind::kAdder: {
      int w = 0;
      int h = 0;
      for (const WidgetNode& c : n->children) {
        w = std::max(w, c.width);
        h += c.height;
      }
      n->width = w + 2;
      n->height = h + 1;  // the "+ add" row
      break;
    }
    default:
      // Interaction widgets already carry their template size.
      break;
  }
  // Minimal footprint so labels/placeholders remain renderable.
  n->width = std::max(n->width, 1);
  n->height = std::max(n->height, 1);
}

void PositionRec(WidgetNode* n, int x, int y) {
  n->x = x;
  n->y = y;
  switch (n->kind) {
    case WidgetKind::kVertical: {
      int cy = y;
      for (WidgetNode& c : n->children) {
        PositionRec(&c, x, cy);
        cy += c.height;
      }
      break;
    }
    case WidgetKind::kHorizontal: {
      int cx = x;
      for (WidgetNode& c : n->children) {
        PositionRec(&c, cx, y);
        cx += c.width + kHGap;
      }
      break;
    }
    case WidgetKind::kTabs:
    case WidgetKind::kTabLayout: {
      for (WidgetNode& c : n->children) {
        PositionRec(&c, x, y + 1);  // panels share the area under the bar
      }
      break;
    }
    case WidgetKind::kAdder: {
      int cy = y;
      for (WidgetNode& c : n->children) {
        PositionRec(&c, x + 2, cy);
        cy += c.height;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

LayoutResult ComputeLayout(WidgetNode* root, const Screen& screen) {
  SizeRec(root);
  PositionRec(root, 0, 0);
  LayoutResult r;
  r.width = root->width;
  r.height = root->height;
  r.fits = r.width <= screen.width && r.height <= screen.height;
  return r;
}

}  // namespace ifgen
