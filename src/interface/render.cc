#include "interface/render.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace ifgen {

namespace {

/// Character canvas with bounds-checked writes.
class Canvas {
 public:
  Canvas(int width, int height)
      : width_(width), height_(height),
        rows_(static_cast<size_t>(std::max(1, height)),
              std::string(static_cast<size_t>(std::max(1, width)), ' ')) {}

  void Put(int x, int y, std::string_view text) {
    if (y < 0 || y >= height_) return;
    auto& row = rows_[static_cast<size_t>(y)];
    for (size_t i = 0; i < text.size(); ++i) {
      int cx = x + static_cast<int>(i);
      if (cx < 0 || cx >= width_) break;
      row[static_cast<size_t>(cx)] = text[i];
    }
  }

  std::string ToString() const {
    // Trim trailing blank rows for compact output.
    size_t last = rows_.size();
    while (last > 0 && rows_[last - 1].find_first_not_of(' ') == std::string::npos) {
      --last;
    }
    std::string out;
    for (size_t i = 0; i < last; ++i) {
      std::string row = rows_[i];
      size_t end = row.find_last_not_of(' ');
      out += end == std::string::npos ? "" : row.substr(0, end + 1);
      out += "\n";
    }
    return out;
  }

 private:
  int width_;
  int height_;
  std::vector<std::string> rows_;
};

int SelectedOption(const WidgetNode& n, const SelectionMap& sel) {
  auto it = sel.find(n.choice_id);
  if (it == sel.end() || it->second.empty() || it->second[0] != 'a') return 0;
  return std::atoi(it->second.c_str() + 1);
}

bool ToggleOn(const WidgetNode& n, const SelectionMap& sel) {
  auto it = sel.find(n.choice_id);
  if (it == sel.end()) return true;
  return it->second == "p1";
}

void DrawRec(const WidgetNode& n, const SelectionMap& sel, Canvas* canvas) {
  switch (n.kind) {
    case WidgetKind::kLabel:
      canvas->Put(n.x, n.y, Ellipsize(n.label.empty() && !n.domain.labels.empty()
                                          ? n.domain.labels[0]
                                          : n.label,
                                      static_cast<size_t>(n.width)));
      return;
    case WidgetKind::kTextbox: {
      std::string inner(static_cast<size_t>(std::max(0, n.width - 2)), '_');
      canvas->Put(n.x, n.y, "[" + inner + "]");
      return;
    }
    case WidgetKind::kDropdown: {
      int opt = SelectedOption(n, sel);
      std::string text = n.domain.labels.empty()
                             ? ""
                             : n.domain.labels[static_cast<size_t>(std::clamp(
                                   opt, 0,
                                   static_cast<int>(n.domain.labels.size()) - 1))];
      std::string body = Ellipsize(text, static_cast<size_t>(std::max(0, n.width - 4)));
      canvas->Put(n.x, n.y,
                  "[" + PadRight(body, static_cast<size_t>(std::max(0, n.width - 4))) +
                      " v]");
      return;
    }
    case WidgetKind::kSlider: {
      int opt = SelectedOption(n, sel);
      std::string text = n.domain.labels.empty() ? "" : n.domain.labels[
          static_cast<size_t>(std::clamp(opt, 0,
                                         static_cast<int>(n.domain.labels.size()) - 1))];
      int bar = std::max(4, n.width - static_cast<int>(text.size()) - 2);
      std::string s(static_cast<size_t>(bar), '-');
      s[s.size() / 2] = 'o';
      canvas->Put(n.x, n.y, s + " " + text);
      return;
    }
    case WidgetKind::kRangeSlider: {
      int bar = std::max(6, n.width - static_cast<int>(n.label.size()) - 2);
      std::string s(static_cast<size_t>(bar), '-');
      s[s.size() / 4] = 'o';
      s[(3 * s.size()) / 4] = 'o';
      for (size_t i = s.size() / 4 + 1; i < (3 * s.size()) / 4; ++i) s[i] = '=';
      canvas->Put(n.x, n.y, Ellipsize(n.label, 10) + " " + s);
      return;
    }
    case WidgetKind::kToggle:
    case WidgetKind::kCheckbox: {
      bool on = ToggleOn(n, sel);
      std::string mark = n.kind == WidgetKind::kToggle ? (on ? "(#)" : "( )")
                                                       : (on ? "[x]" : "[ ]");
      canvas->Put(n.x, n.y,
                  mark + " " + Ellipsize(n.label, static_cast<size_t>(
                                                      std::max(0, n.width - 4))));
      return;
    }
    case WidgetKind::kRadio: {
      int opt = SelectedOption(n, sel);
      for (size_t i = 0; i < n.domain.labels.size(); ++i) {
        std::string mark = static_cast<int>(i) == opt ? "(o) " : "( ) ";
        canvas->Put(n.x, n.y + static_cast<int>(i),
                    mark + Ellipsize(n.domain.labels[i],
                                     static_cast<size_t>(std::max(0, n.width - 4))));
      }
      return;
    }
    case WidgetKind::kButtons: {
      int opt = SelectedOption(n, sel);
      int cx = n.x;
      for (size_t i = 0; i < n.domain.labels.size(); ++i) {
        std::string text = Ellipsize(n.domain.labels[i], 12);
        std::string box = (static_cast<int>(i) == opt ? "<" : "[") + text +
                          (static_cast<int>(i) == opt ? ">" : "]");
        canvas->Put(cx, n.y, box);
        cx += static_cast<int>(box.size()) + 1;
      }
      return;
    }
    case WidgetKind::kTabs:
    case WidgetKind::kTabLayout: {
      int active = n.kind == WidgetKind::kTabs ? SelectedOption(n, sel) : 0;
      int cx = n.x;
      for (size_t i = 0; i < n.children.size(); ++i) {
        std::string lbl = n.kind == WidgetKind::kTabs && i < n.domain.labels.size()
                              ? n.domain.labels[i]
                              : n.children[i].label;
        std::string tab = (static_cast<int>(i) == active ? "/" : "|") +
                          Ellipsize(lbl, 10) +
                          (static_cast<int>(i) == active ? "\\" : "|");
        canvas->Put(cx, n.y, tab);
        cx += static_cast<int>(tab.size()) + 1;
      }
      if (!n.children.empty()) {
        size_t idx = static_cast<size_t>(
            std::clamp(active, 0, static_cast<int>(n.children.size()) - 1));
        DrawRec(n.children[idx], sel, canvas);
      }
      return;
    }
    case WidgetKind::kAdder: {
      for (const WidgetNode& c : n.children) DrawRec(c, sel, canvas);
      canvas->Put(n.x, n.y + n.height - 1, "[+ add]");
      return;
    }
    case WidgetKind::kVertical:
    case WidgetKind::kHorizontal: {
      for (const WidgetNode& c : n.children) DrawRec(c, sel, canvas);
      return;
    }
  }
}

void HtmlRec(const WidgetNode& n, std::string* out) {
  auto esc = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      switch (c) {
        case '<':
          e += "&lt;";
          break;
        case '>':
          e += "&gt;";
          break;
        case '&':
          e += "&amp;";
          break;
        default:
          e += c;
      }
    }
    return e;
  };
  switch (n.kind) {
    case WidgetKind::kLabel:
      *out += "<span class=lbl>" + esc(n.label) + "</span>\n";
      return;
    case WidgetKind::kTextbox:
      *out += "<label>" + esc(n.label) + " <input type=text></label>\n";
      return;
    case WidgetKind::kDropdown: {
      *out += "<label>" + esc(n.label) + " <select>";
      for (const std::string& o : n.domain.labels) {
        *out += "<option>" + esc(o) + "</option>";
      }
      *out += "</select></label>\n";
      return;
    }
    case WidgetKind::kSlider:
      *out += "<label>" + esc(n.label) + " <input type=range min=" +
              StrFormat("%g", n.domain.num_lo) + " max=" +
              StrFormat("%g", n.domain.num_hi) + "></label>\n";
      return;
    case WidgetKind::kRangeSlider:
      *out += "<label>" + esc(n.label) + " <input type=range min=" +
              StrFormat("%g", n.domain.num_lo) + " max=" +
              StrFormat("%g", n.domain.num_hi) +
              "> .. <input type=range min=" + StrFormat("%g", n.domain.num_lo) +
              " max=" + StrFormat("%g", n.domain.num_hi) + "></label>\n";
      return;
    case WidgetKind::kToggle:
    case WidgetKind::kCheckbox:
      *out += "<label><input type=checkbox checked> " + esc(n.label) + "</label>\n";
      return;
    case WidgetKind::kRadio: {
      *out += "<fieldset class=radio><legend>" + esc(n.label) + "</legend>";
      for (const std::string& o : n.domain.labels) {
        *out += "<label><input type=radio name=r" + std::to_string(n.choice_id) +
                "> " + esc(o) + "</label>";
      }
      *out += "</fieldset>\n";
      return;
    }
    case WidgetKind::kButtons: {
      *out += "<div class=btns>";
      for (const std::string& o : n.domain.labels) {
        *out += "<button>" + esc(o) + "</button>";
      }
      *out += "</div>\n";
      return;
    }
    case WidgetKind::kTabs:
    case WidgetKind::kTabLayout: {
      *out += "<div class=tabs>";
      for (size_t i = 0; i < n.children.size(); ++i) {
        std::string lbl = n.kind == WidgetKind::kTabs && i < n.domain.labels.size()
                              ? n.domain.labels[i]
                              : n.children[i].label;
        *out += "<details" + std::string(i == 0 ? " open" : "") + "><summary>" +
                esc(lbl) + "</summary>";
        HtmlRec(n.children[i], out);
        *out += "</details>";
      }
      *out += "</div>\n";
      return;
    }
    case WidgetKind::kAdder: {
      *out += "<div class=adder>";
      for (const WidgetNode& c : n.children) HtmlRec(c, out);
      *out += "<button>+ add</button></div>\n";
      return;
    }
    case WidgetKind::kVertical: {
      *out += "<div class=v>";
      for (const WidgetNode& c : n.children) HtmlRec(c, out);
      *out += "</div>\n";
      return;
    }
    case WidgetKind::kHorizontal: {
      *out += "<div class=h>";
      for (const WidgetNode& c : n.children) HtmlRec(c, out);
      *out += "</div>\n";
      return;
    }
  }
}

}  // namespace

std::string RenderAscii(const WidgetTree& tree, const Screen& screen,
                        const SelectionMap& selections) {
  Canvas canvas(std::max(screen.width, tree.root.width),
                std::max(screen.height, tree.root.height));
  DrawRec(tree.root, selections, &canvas);
  return canvas.ToString();
}

std::string RenderHtml(const WidgetTree& tree, const std::string& title) {
  std::string out =
      "<!doctype html><html><head><meta charset=utf-8><title>" + title +
      "</title><style>\n"
      "body{font-family:sans-serif;margin:16px}\n"
      ".v{display:flex;flex-direction:column;gap:6px;border:1px solid #9bc;"
      "padding:6px;border-radius:4px}\n"
      ".h{display:flex;flex-direction:row;gap:10px;border:1px solid #9bc;"
      "padding:6px;border-radius:4px;align-items:center}\n"
      ".btns button{margin-right:4px}\n"
      "fieldset.radio{border:1px solid #ccc}\n"
      ".adder{border:1px dashed #888;padding:6px}\n"
      "</style></head><body>\n<h3>" +
      title + "</h3>\n";
  HtmlRec(tree.root, &out);
  out += "</body></html>\n";
  return out;
}

}  // namespace ifgen
