#pragma once

#include <map>
#include <string>
#include <vector>

#include "widgets/domain.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief A node of the rendered interface's widget tree (paper, Figure 3).
///
/// Layout nodes organize children; interaction nodes control one choice node
/// of the difftree (identified by `choice_id`, the pre-order choice index —
/// see ChoiceIndex). A range slider covers two choice nodes (lo/hi of a
/// BETWEEN); `choice_id2` holds the second. Tabs are both: they select an
/// ANY alternative and host one child group per alternative.
struct WidgetNode {
  WidgetKind kind = WidgetKind::kVertical;
  SizeClass size_class = SizeClass::kSmall;
  int choice_id = -1;
  int choice_id2 = -1;
  std::string label;
  WidgetDomain domain;
  std::vector<WidgetNode> children;

  // Filled by the layout solver.
  int width = 0;
  int height = 0;
  int x = 0;
  int y = 0;

  bool IsInteractive() const {
    return !IsLayoutWidget(kind) && kind != WidgetKind::kLabel;
  }
};

/// \brief A complete widget tree plus lookup structures.
struct WidgetTree {
  WidgetNode root;
  /// Path (child indices) of the widget controlling each choice id.
  std::map<int, std::vector<int>> path_by_choice;

  /// Recomputes path_by_choice from the current tree shape.
  void RebuildIndex();

  const WidgetNode* NodeAtPath(const std::vector<int>& path) const;
  const WidgetNode* WidgetFor(int choice_id) const;

  size_t CountWidgets() const;
  size_t CountInteractive() const;

  /// One-line-per-widget structural dump (kind, label, size).
  std::string ToString() const;
};

}  // namespace ifgen
