#include "interface/assignment.h"

#include <algorithm>
#include <limits>

#include "cost/delta.h"
#include "util/logging.h"
#include "widgets/appropriateness.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

/// Clause context labels shown next to widgets.
std::string ContextFor(const DiffTree& node, const std::string& inherited) {
  if (node.kind != DKind::kAll) return inherited;
  switch (node.sym) {
    case Symbol::kProject:
      return "select";
    case Symbol::kTop:
      return "top";
    case Symbol::kFrom:
      return "from";
    case Symbol::kWhere:
      return "where";
    case Symbol::kGroupBy:
      return "group by";
    case Symbol::kOrderBy:
      return "order by";
    case Symbol::kLimit:
      return "limit";
    default:
      return inherited;
  }
}

bool ProducesWidgets(const DiffTree& n) { return n.ChoiceCount() > 0; }

}  // namespace

WidgetAssigner::WidgetAssigner(const DiffTree& tree, const CostConstants& constants,
                               DeltaCostCache* delta)
    : tree_(tree),
      constants_(constants),
      delta_(delta),
      size_model_(constants_),
      index_(tree) {
  Collect(tree_);
}

void WidgetAssigner::Collect(const DiffTree& node) {
  switch (node.kind) {
    case DKind::kAll: {
      BetweenPattern bp;
      if (MatchBetweenPattern(node, &bp)) {
        DecisionPoint d;
        d.type = DecisionType::kBetweenComposite;
        d.node = &node;
        // Two pseudo-options: 0 = separate widgets, 1 = range slider.
        d.options = {WidgetKind::kVertical, WidgetKind::kRangeSlider};
        decision_of_node_[&node].push_back(static_cast<int>(decisions_.size()));
        decisions_.push_back(std::move(d));
      }
      size_t widget_kids = 0;
      for (const DiffTree& c : node.children) widget_kids += ProducesWidgets(c) ? 1 : 0;
      if (widget_kids >= 2) {
        DecisionPoint d;
        d.type = DecisionType::kContainerLayout;
        d.node = &node;
        d.options = {WidgetKind::kVertical, WidgetKind::kHorizontal,
                     WidgetKind::kTabLayout};
        decision_of_node_[&node].push_back(static_cast<int>(decisions_.size()));
        decisions_.push_back(std::move(d));
      }
      break;
    }
    case DKind::kAny:
    case DKind::kOpt:
    case DKind::kMulti: {
      // The subtree-local terms (domain, valid options, greedy min-M pick)
      // come from the delta-cost cache when one is attached: after a rule
      // application, only choice subtrees touched by the rewrite miss.
      DecisionPoint d;
      d.type = DecisionType::kChoiceWidget;
      d.node = &node;
      if (delta_ != nullptr) {
        std::shared_ptr<const ChoiceWidgetTerms> terms =
            delta_->GetChoiceTerms(node, constants_, size_model_);
        d.options = terms->options;
        d.domain = terms->domain;
        d.min_m_pick = terms->min_m_pick;
      } else {
        ChoiceWidgetTerms terms =
            ComputeChoiceWidgetTerms(node, constants_, size_model_);
        d.options = std::move(terms.options);
        d.domain = std::move(terms.domain);
        d.min_m_pick = terms.min_m_pick;
      }
      if (d.options.empty()) viable_ = false;
      decision_of_node_[&node].push_back(static_cast<int>(decisions_.size()));
      decisions_.push_back(std::move(d));
      if (node.kind == DKind::kOpt && ProducesWidgets(node.children[0])) {
        DecisionPoint g;
        g.type = DecisionType::kContainerLayout;
        g.node = &node;
        g.options = {WidgetKind::kHorizontal, WidgetKind::kVertical};
        decision_of_node_[&node].push_back(static_cast<int>(decisions_.size()));
        decisions_.push_back(std::move(g));
      }
      break;
    }
  }
  for (const DiffTree& c : node.children) Collect(c);
}

int WidgetAssigner::DecisionIndexOf(const DiffTree* node, DecisionType type) const {
  auto it = decision_of_node_.find(node);
  if (it == decision_of_node_.end()) return -1;
  for (int idx : it->second) {
    if (decisions_[static_cast<size_t>(idx)].type == type) return idx;
  }
  return -1;
}

double WidgetAssigner::CombinationCount() const {
  double total = 1.0;
  for (const DecisionPoint& d : decisions_) {
    total = std::min(1e18, total * std::max<size_t>(1, d.options.size()));
  }
  return total;
}

Assignment WidgetAssigner::FirstAssignment() const {
  Assignment a;
  a.picks.assign(decisions_.size(), 0);
  return a;
}

bool WidgetAssigner::NextAssignment(Assignment* a) const {
  for (size_t i = 0; i < decisions_.size(); ++i) {
    size_t n = std::max<size_t>(1, decisions_[i].options.size());
    if (static_cast<size_t>(++a->picks[i]) < n) return true;
    a->picks[i] = 0;
  }
  return false;
}

Assignment WidgetAssigner::MinAppropriatenessAssignment() const {
  // The per-choice greedy pick was computed once at Collect time (and is
  // shared across states through the delta-cost cache).
  Assignment a = FirstAssignment();
  for (size_t i = 0; i < decisions_.size(); ++i) {
    if (decisions_[i].type != DecisionType::kChoiceWidget) continue;
    a.picks[i] = decisions_[i].min_m_pick;
  }
  return a;
}

Assignment WidgetAssigner::RandomAssignment(Rng* rng) const {
  Assignment a;
  a.picks.reserve(decisions_.size());
  for (const DecisionPoint& d : decisions_) {
    a.picks.push_back(d.options.empty()
                          ? 0
                          : static_cast<int>(rng->UniformIndex(d.options.size())));
  }
  return a;
}

Status WidgetAssigner::BuildNode(const DiffTree& node, const Assignment& a,
                                 const std::string& context,
                                 std::vector<WidgetNode>* out) const {
  const std::string ctx = ContextFor(node, context);
  switch (node.kind) {
    case DKind::kAll: {
      if (node.sym == Symbol::kEmpty) return Status::OK();
      // BETWEEN composite: one range slider may cover both endpoints.
      int bidx = DecisionIndexOf(&node, DecisionType::kBetweenComposite);
      if (bidx >= 0 &&
          decisions_[static_cast<size_t>(bidx)]
                  .options[static_cast<size_t>(a.picks[static_cast<size_t>(bidx)])] ==
              WidgetKind::kRangeSlider) {
        BetweenPattern bp;
        if (!MatchBetweenPattern(node, &bp)) {
          return Status::Internal("between pattern vanished");
        }
        WidgetDomain lo_d = ExtractDomain(*bp.lo_any);
        WidgetDomain hi_d = ExtractDomain(*bp.hi_any);
        WidgetNode w;
        w.kind = WidgetKind::kRangeSlider;
        w.choice_id = index_.IdOf(bp.lo_any);
        w.choice_id2 = index_.IdOf(bp.hi_any);
        w.label = bp.label;
        w.domain = lo_d;
        w.domain.num_hi = std::max(lo_d.num_hi, hi_d.num_hi);
        w.domain.num_lo = std::min(lo_d.num_lo, hi_d.num_lo);
        IFGEN_ASSIGN_OR_RETURN(SizeClass sc,
                               size_model_.PickTemplate(w.kind, w.domain));
        w.size_class = sc;
        WidgetSize sz = size_model_.SizeOf(w.kind, sc, w.domain);
        w.width = sz.width + static_cast<int>(std::min<size_t>(w.label.size(), 10));
        w.height = sz.height;
        out->push_back(std::move(w));
        return Status::OK();
      }
      std::vector<WidgetNode> widgets;
      for (const DiffTree& c : node.children) {
        IFGEN_RETURN_NOT_OK(BuildNode(c, a, ctx, &widgets));
      }
      if (widgets.empty()) return Status::OK();
      WidgetNode group;
      IFGEN_RETURN_NOT_OK(BuildGroup(node, a, ctx, ctx, &widgets, &group));
      out->push_back(std::move(group));
      return Status::OK();
    }
    case DKind::kAny: {
      int didx = DecisionIndexOf(&node, DecisionType::kChoiceWidget);
      if (didx < 0) return Status::Internal("missing choice decision");
      const DecisionPoint& d = decisions_[static_cast<size_t>(didx)];
      if (d.options.empty()) {
        return Status::Invalid("choice node has no valid widget");
      }
      WidgetKind kind = d.options[static_cast<size_t>(a.picks[static_cast<size_t>(didx)])];
      const WidgetDomain& domain = d.domain;
      WidgetNode w;
      w.kind = kind;
      w.choice_id = index_.IdOf(&node);
      w.label = ctx;
      w.domain = domain;
      IFGEN_ASSIGN_OR_RETURN(SizeClass sc, size_model_.PickTemplate(kind, domain));
      w.size_class = sc;
      WidgetSize sz = size_model_.SizeOf(kind, sc, domain);
      w.width = sz.width;
      w.height = sz.height;
      if (kind == WidgetKind::kTabs) {
        // One child group per alternative.
        for (size_t alt = 0; alt < node.children.size(); ++alt) {
          std::vector<WidgetNode> alt_widgets;
          IFGEN_RETURN_NOT_OK(BuildNode(node.children[alt], a, ctx, &alt_widgets));
          WidgetNode panel;
          if (alt_widgets.size() == 1) {
            panel = std::move(alt_widgets[0]);
          } else {
            panel.kind = WidgetKind::kVertical;
            panel.children = std::move(alt_widgets);
          }
          panel.label = domain.labels[alt];
          w.children.push_back(std::move(panel));
        }
      }
      out->push_back(std::move(w));
      return Status::OK();
    }
    case DKind::kOpt: {
      int didx = DecisionIndexOf(&node, DecisionType::kChoiceWidget);
      if (didx < 0) return Status::Internal("missing OPT decision");
      const DecisionPoint& d = decisions_[static_cast<size_t>(didx)];
      if (d.options.empty()) return Status::Invalid("OPT has no valid widget");
      const WidgetDomain& domain = d.domain;
      WidgetNode toggle;
      toggle.kind = d.options[static_cast<size_t>(a.picks[static_cast<size_t>(didx)])];
      toggle.choice_id = index_.IdOf(&node);
      // Prefer the child's clause name ("where", "top") as the toggle label.
      std::string child_ctx = ContextFor(node.children[0], ctx);
      toggle.label = !child_ctx.empty() ? child_ctx
                     : !ctx.empty()     ? ctx
                                        : Ellipsize(domain.labels[0], 16);
      toggle.domain = domain;
      IFGEN_ASSIGN_OR_RETURN(SizeClass sc,
                             size_model_.PickTemplate(toggle.kind, domain));
      toggle.size_class = sc;
      WidgetSize sz = size_model_.SizeOf(toggle.kind, sc, domain);
      toggle.width = sz.width;
      toggle.height = sz.height;

      std::vector<WidgetNode> inner;
      IFGEN_RETURN_NOT_OK(BuildNode(node.children[0], a, ctx, &inner));
      if (inner.empty()) {
        out->push_back(std::move(toggle));
        return Status::OK();
      }
      // Toggle + dependent widgets form a group (paper Fig. 3b: the toggle
      // and the StrExpr dropdown are organized together).
      std::vector<WidgetNode> group_widgets;
      group_widgets.push_back(std::move(toggle));
      for (WidgetNode& wn : inner) group_widgets.push_back(std::move(wn));
      WidgetNode group;
      int gidx = DecisionIndexOf(&node, DecisionType::kContainerLayout);
      WidgetKind layout = WidgetKind::kHorizontal;
      if (gidx >= 0) {
        const DecisionPoint& g = decisions_[static_cast<size_t>(gidx)];
        layout = g.options[static_cast<size_t>(a.picks[static_cast<size_t>(gidx)])];
      }
      group.kind = layout;
      group.label = ctx;
      group.children = std::move(group_widgets);
      out->push_back(std::move(group));
      return Status::OK();
    }
    case DKind::kMulti: {
      int didx = DecisionIndexOf(&node, DecisionType::kChoiceWidget);
      if (didx < 0) return Status::Internal("missing MULTI decision");
      const WidgetDomain& domain = decisions_[static_cast<size_t>(didx)].domain;
      WidgetNode adder;
      adder.kind = WidgetKind::kAdder;
      adder.choice_id = index_.IdOf(&node);
      adder.label = ctx;
      adder.domain = domain;
      std::vector<WidgetNode> inner;
      IFGEN_RETURN_NOT_OK(BuildNode(node.children[0], a, ctx, &inner));
      if (inner.size() == 1) {
        adder.children.push_back(std::move(inner[0]));
      } else if (inner.size() > 1) {
        WidgetNode group;
        group.kind = WidgetKind::kHorizontal;
        group.children = std::move(inner);
        adder.children.push_back(std::move(group));
      }
      out->push_back(std::move(adder));
      return Status::OK();
    }
  }
  return Status::OK();
}

Status WidgetAssigner::BuildGroup(const DiffTree& node, const Assignment& a,
                                  const std::string& /*context*/,
                                  const std::string& group_label,
                                  std::vector<WidgetNode>* widgets,
                                  WidgetNode* group) const {
  if (widgets->size() == 1) {
    *group = std::move((*widgets)[0]);
    return Status::OK();
  }
  WidgetKind layout = WidgetKind::kVertical;
  int gidx = DecisionIndexOf(&node, DecisionType::kContainerLayout);
  if (gidx >= 0) {
    const DecisionPoint& g = decisions_[static_cast<size_t>(gidx)];
    layout = g.options[static_cast<size_t>(a.picks[static_cast<size_t>(gidx)])];
  }
  group->kind = layout;
  group->label = group_label;
  group->children = std::move(*widgets);
  return Status::OK();
}

Result<WidgetTree> WidgetAssigner::Build(const Assignment& a) const {
  if (a.picks.size() != decisions_.size()) {
    return Status::Invalid("assignment size mismatch");
  }
  if (!viable_) {
    return Status::Invalid("difftree has a choice node with no valid widget");
  }
  std::vector<WidgetNode> widgets;
  IFGEN_RETURN_NOT_OK(BuildNode(tree_, a, "", &widgets));
  WidgetTree wt;
  if (widgets.empty()) {
    // A choice-free difftree renders as a single static label.
    WidgetNode label;
    label.kind = WidgetKind::kLabel;
    label.label = "query";
    label.width = 8;
    label.height = 1;
    wt.root = std::move(label);
  } else if (widgets.size() == 1) {
    wt.root = std::move(widgets[0]);
  } else {
    WidgetNode group;
    group.kind = WidgetKind::kVertical;
    group.children = std::move(widgets);
    wt.root = std::move(group);
  }
  wt.RebuildIndex();
  return wt;
}

}  // namespace ifgen
