#pragma once

#include <string_view>

namespace ifgen {
namespace http {
namespace internal {

/// \brief Sends all of `data` on a connected socket, retrying on EINTR and
/// suppressing SIGPIPE (MSG_NOSIGNAL) so a dead peer surfaces as a false
/// return. Shared by the server and the client — one send loop, one set of
/// bugs.
bool SendAll(int fd, std::string_view data);

}  // namespace internal
}  // namespace http
}  // namespace ifgen
