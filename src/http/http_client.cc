#include "http/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "http/net.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ifgen {
namespace http {

namespace {

using internal::SendAll;

/// Re-arms the socket receive timeout to whatever remains of a total
/// deadline. SO_RCVTIMEO alone bounds each recv(), not the call: a peer
/// trickling one byte (or one heartbeat frame) per timeout window resets
/// the clock forever. Returns false when the total budget is spent.
bool ArmRecvDeadline(int fd, int64_t timeout_ms, const Stopwatch& watch) {
  if (timeout_ms <= 0) return true;  // no deadline: block indefinitely
  const int64_t remaining = timeout_ms - watch.ElapsedMillis();
  if (remaining <= 0) return false;
  timeval tv{};
  tv.tv_sec = remaining / 1000;
  // Round up so a sub-millisecond remainder doesn't arm a zero (= infinite)
  // timeout.
  tv.tv_usec = static_cast<suseconds_t>((remaining % 1000) * 1000 + 999);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return true;
}

Result<int> ConnectTo(const std::string& host, int port, int64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::Invalid("bad host '" + host + "' (dotted IPv4 only)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("connect(%s:%d) failed: %s", host.c_str(),
                                      port, std::strerror(errno)));
  }
  return fd;
}

std::string BuildRequest(const std::string& method, const std::string& target,
                         const std::string& body) {
  std::string req = method + " " + target + " HTTP/1.1\r\n";
  req += "Host: localhost\r\n";
  req += "Connection: close\r\n";
  if (!body.empty()) {
    req += "Content-Type: application/json\r\n";
    req += StrFormat("Content-Length: %zu\r\n", body.size());
  }
  req += "\r\n";
  req += body;
  return req;
}

/// Parses the status line + headers out of `head`.
Status ParseHead(std::string_view head, ClientResponse* out) {
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) return Status::Internal("malformed status line");
  out->status = std::atoi(std::string(status_line.substr(sp + 1, 3)).c_str());
  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    out->headers[ToLower(Trim(line.substr(0, colon)))] = Trim(line.substr(colon + 1));
  }
  return Status::OK();
}

}  // namespace

Result<ClientResponse> Fetch(const std::string& host, int port,
                             const std::string& method, const std::string& target,
                             const std::string& body, int64_t timeout_ms) {
  IFGEN_ASSIGN_OR_RETURN(int fd, ConnectTo(host, port, timeout_ms));
  if (!SendAll(fd, BuildRequest(method, target, body))) {
    ::close(fd);
    return Status::Internal("send failed");
  }
  // Connection: close framing — read to EOF.
  std::string raw;
  char chunk[8192];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      ::close(fd);
      return Status::ResourceExhausted("read timeout after " +
                                       std::to_string(timeout_ms) + "ms");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("truncated HTTP response");
  }
  ClientResponse resp;
  IFGEN_RETURN_NOT_OK(ParseHead(std::string_view(raw.data(), header_end), &resp));
  resp.body = raw.substr(header_end + 4);
  return resp;
}

Result<ClientResponse> Get(const std::string& host, int port,
                           const std::string& target) {
  return Fetch(host, port, "GET", target);
}

Result<ClientResponse> Post(const std::string& host, int port,
                            const std::string& target, const std::string& body) {
  return Fetch(host, port, "POST", target, body);
}

Result<ClientResponse> Delete(const std::string& host, int port,
                              const std::string& target) {
  return Fetch(host, port, "DELETE", target);
}

// ---------------------------------------------------------------------------
// SSE.

SseClient::~SseClient() { Close(); }

void SseClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

Status SseClient::Connect(const std::string& host, int port,
                          const std::string& target, int64_t timeout_ms) {
  Close();
  IFGEN_ASSIGN_OR_RETURN(fd_, ConnectTo(host, port, timeout_ms));
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n";
  req += "Accept: text/event-stream\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd_, req)) {
    Close();
    return Status::Internal("send failed");
  }
  // Consume the response head, bounded by the *total* timeout (not per-read,
  // so a server dribbling header bytes cannot stall Connect indefinitely).
  Stopwatch watch;
  while (true) {
    size_t end = buf_.find("\r\n\r\n");
    if (end != std::string::npos) {
      ClientResponse head;
      IFGEN_RETURN_NOT_OK(ParseHead(std::string_view(buf_.data(), end), &head));
      if (head.status != 200) {
        Close();
        return Status::Internal("SSE endpoint answered HTTP " +
                                std::to_string(head.status));
      }
      buf_.erase(0, end + 4);
      return Status::OK();
    }
    if (!ArmRecvDeadline(fd_, timeout_ms, watch)) {
      Close();
      return Status::ResourceExhausted("SSE connect timeout after " +
                                       std::to_string(timeout_ms) + "ms");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      Close();
      return Status::Internal("SSE connect: no response head");
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> SseClient::NextEvent(int64_t timeout_ms) {
  if (fd_ < 0) return Status::Invalid("SseClient not connected");
  // Total deadline across however many recv() calls this event takes: a
  // stalled (or byte-trickling) stream must not block the caller past
  // timeout_ms.
  Stopwatch watch;
  while (true) {
    // A complete frame ends with a blank line.
    size_t frame_end = buf_.find("\n\n");
    if (frame_end != std::string::npos) {
      std::string frame = buf_.substr(0, frame_end);
      buf_.erase(0, frame_end + 2);
      std::string data;
      for (const std::string& line : Split(frame, '\n')) {
        if (line.rfind("data:", 0) == 0) {
          if (!data.empty()) data += "\n";
          data += Trim(line.substr(5));
        }
      }
      if (data.empty()) continue;  // comment/heartbeat frame
      return data;
    }
    if (!ArmRecvDeadline(fd_, timeout_ms, watch)) {
      return Status::ResourceExhausted("SSE read timeout after " +
                                       std::to_string(timeout_ms) + "ms");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      return Status::ResourceExhausted("SSE read timeout after " +
                                       std::to_string(timeout_ms) + "ms");
    }
    if (n == 0) return Status::NotFound("SSE stream ended");
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace http
}  // namespace ifgen
