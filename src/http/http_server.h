#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace ifgen {
namespace http {

/// \brief A minimal, dependency-free embedded HTTP/1.1 server — the first
/// transport of the v1 API (mounted by ApiHttpFrontend in api_http.h).
///
/// Scope is deliberately small: one request per connection (every response
/// carries `Connection: close`, which keeps framing trivial for curl,
/// python stdlib, and EventSource clients alike), a bounded worker pool, a
/// body-size cap, and receive timeouts. Responses either carry a body or a
/// `stream` callback that writes after the headers (the SSE path).

/// \brief One parsed request. Header names are lowercased; the path and
/// query values are percent-decoded.
struct HttpRequest {
  std::string method;  ///< uppercased ("GET", "POST", ...)
  std::string path;    ///< decoded, query stripped ("/v1/jobs/j-1")
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Query parameter lookup with default.
  std::string QueryParam(const std::string& key, const std::string& dflt = "") const;
  int64_t QueryInt(const std::string& key, int64_t dflt) const;
};

/// \brief Post-header byte sink handed to streaming responses. Write
/// returns false once the client disconnected or the server is stopping —
/// the streamer's loop must exit then.
class HttpStream {
 public:
  HttpStream(int fd, const std::atomic<bool>* stopping)
      : fd_(fd), stopping_(stopping) {}
  bool Write(std::string_view data);
  bool alive() const { return ok_ && !stopping_->load(); }

 private:
  int fd_;
  const std::atomic<bool>* stopping_;
  bool ok_ = true;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> headers;  ///< extras
  std::string body;
  /// When set, `body` is ignored: headers go out without Content-Length and
  /// the callback writes the (e.g. text/event-stream) payload incrementally.
  std::function<void(HttpStream*)> stream;
};

class HttpServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; the bound port is port() after Start
    size_t num_threads = 4;
    size_t max_body_bytes = 8u << 20;
    /// Per-socket receive timeout (slowloris guard).
    int64_t recv_timeout_ms = 10000;
    /// Per-socket send timeout (stalled-reader guard): bounds any single
    /// send() so a client that stops reading cannot pin a worker forever —
    /// without it a full socket buffer blocks SendAll indefinitely (an SSE
    /// consumer that sleeps mid-stream would leak the worker and hang
    /// Stop()). A timed-out send marks the connection dead.
    int64_t send_timeout_ms = 10000;
    /// Kernel listen(2) backlog for not-yet-accepted connections.
    int listen_backlog = 64;
    /// Accepted connections waiting for a worker beyond this are answered
    /// `503 Service Unavailable` (retryable) and closed. Bounds the fd/
    /// memory a stalled worker pool can accumulate; previously the queue
    /// was unbounded.
    size_t max_queued_connections = 256;
    /// Concurrent connections per client IP (queued + in handling) beyond
    /// this are answered `429 Too Many Requests` (retryable) and closed.
    /// 0 disables the cap (the default: loopback test/dev traffic shares
    /// one IP).
    size_t max_connections_per_client = 0;
    /// Value for `Access-Control-Allow-Origin`, e.g. "*" or an origin URL.
    /// Empty (the default) emits no CORS headers at all: browsers then
    /// refuse cross-origin reads, so a random web page cannot drive a
    /// localhost-bound server. Enabling it also answers OPTIONS preflights.
    std::string cors_allow_origin;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the accept loop + workers. The handler runs
  /// on worker threads, possibly concurrently with itself; exceptions it
  /// throws become 500 responses (nothing crosses the transport boundary).
  Status Start(Options opts, Handler handler);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  bool stopping() const { return stopping_.load(); }

  /// Stops accepting, drains workers, closes queued connections. Idempotent;
  /// also invoked by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  Options opts_;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  struct PendingConn {
    int fd = -1;
    uint32_t client_ip = 0;  ///< host order; keys the per-client count
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingConn> pending_;  ///< accepted fds awaiting a worker
  /// Connections per client IP, queued or in handling (only tracked while
  /// max_connections_per_client is set).
  std::map<uint32_t, size_t> client_conns_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

/// Percent-decodes a URL component ("%2F" -> "/", "+" -> " ").
std::string UrlDecode(std::string_view s);

}  // namespace http
}  // namespace ifgen
