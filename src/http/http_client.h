#pragma once

#include <map>
#include <string>

#include "util/status.h"

namespace ifgen {
namespace http {

/// \brief A minimal blocking HTTP/1.1 client for the in-repo surfaces that
/// drive the embedded server: tests/http_test.cc, bench/bench_http.cc, and
/// anything else that wants to talk to ApiHttpFrontend without shelling out
/// to curl. One request per connection, mirroring the server's
/// `Connection: close` framing.

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased names
  std::string body;
};

/// Performs one request. `body` is sent with Content-Type: application/json
/// when non-empty. `timeout_ms` bounds connect and each read.
Result<ClientResponse> Fetch(const std::string& host, int port,
                             const std::string& method, const std::string& target,
                             const std::string& body = "",
                             int64_t timeout_ms = 10000);

Result<ClientResponse> Get(const std::string& host, int port,
                           const std::string& target);
Result<ClientResponse> Post(const std::string& host, int port,
                            const std::string& target, const std::string& body);
Result<ClientResponse> Delete(const std::string& host, int port,
                              const std::string& target);

/// \brief Incremental reader over a `text/event-stream` response: connects,
/// sends the GET, consumes the response headers, then yields one SSE `data:`
/// payload per NextEvent call (comment/heartbeat lines are skipped).
class SseClient {
 public:
  SseClient() = default;
  ~SseClient();
  SseClient(const SseClient&) = delete;
  SseClient& operator=(const SseClient&) = delete;

  /// `timeout_ms` bounds the connect plus the whole response-head read (a
  /// total deadline, not per-recv); <= 0 waits indefinitely.
  Status Connect(const std::string& host, int port, const std::string& target,
                 int64_t timeout_ms = 10000);

  /// Next event's data payload; NotFound when the stream ended cleanly,
  /// ResourceExhausted on timeout. `timeout_ms` is a total deadline for the
  /// call — a stream trickling partial bytes still times out; <= 0 waits
  /// indefinitely.
  Result<std::string> NextEvent(int64_t timeout_ms = 10000);

  void Close();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace http
}  // namespace ifgen
