#include "http/api_http.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace ifgen {
namespace http {

namespace {

using api::ErrorBody;

obs::Gauge& HttpInFlightMetric() {
  static obs::Gauge* g = obs::MetricsRegistry::Default().GetGauge(
      "ifgen_http_requests_in_flight", "HTTP requests currently being handled");
  return *g;
}
obs::HistogramFamily& HttpDurationFamily() {
  // 64us..~8.6s in x2 steps; streaming responses are measured to handler
  // return (the stream body runs on after the handler hands back a functor).
  static obs::HistogramFamily* f = [] {
    obs::HistogramOptions opts;
    opts.first_bound = 64.0;
    opts.growth = 2.0;
    opts.num_buckets = 18;
    return obs::MetricsRegistry::Default().GetHistogramFamily(
        "ifgen_http_request_duration_us",
        "HTTP request handling latency by normalized route (microseconds)", opts);
  }();
  return *f;
}
obs::CounterFamily& HttpResponsesFamily() {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_http_responses_total",
      "HTTP responses by normalized route, method, and status code");
  return *f;
}
obs::Counter& FeedWakeupsMetric() {
  // One increment per feed-loop iteration (SSE and long-poll). An idle
  // stream should wake ~1000/feed_wait_slice_ms times per second, not
  // hundreds — the busy-poll regression guard in tests/http_test.cc.
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_http_feed_wakeups_total",
      "Session feed poll-loop iterations (SSE + long-poll)");
  return *c;
}

/// Collapses a request path onto its route pattern so ids don't explode the
/// label space: /v1/jobs/j-17 -> "/v1/jobs/{id}".
std::string RouteLabel(const std::vector<std::string>& seg) {
  if (seg.empty()) return "/";
  if (seg[0] != "v1") return "other";
  if (seg.size() == 2) return "/v1/" + seg[1];
  if (seg.size() >= 3 && (seg[1] == "jobs" || seg[1] == "sessions")) {
    std::string label = "/v1/" + seg[1] + "/{id}";
    if (seg.size() == 4) label += "/" + seg[3];
    if (seg.size() <= 4) return label;
  }
  return "other";
}

HttpResponse JsonResponse(int status, const JsonValue& v) {
  HttpResponse resp;
  resp.status = status;
  resp.body = WriteJson(v);
  return resp;
}

HttpResponse ErrorResponse(const Status& s) {
  return JsonResponse(ApiHttpFrontend::HttpStatusFor(s.code()),
                      ErrorBody::FromStatus(s).ToJson());
}

/// Decodes a request body through ParseJson + the DTO codec; any failure
/// becomes a structured 400/ParseError body.
template <typename T>
Result<T> DecodeBody(const HttpRequest& req) {
  IFGEN_ASSIGN_OR_RETURN(JsonValue v, ParseJson(req.body));
  return T::FromJson(v);
}

/// Splits "/v1/sessions/s-1/events" into segments.
std::vector<std::string> PathSegments(const std::string& path) {
  std::vector<std::string> out;
  for (const std::string& seg : Split(path, '/')) {
    if (!seg.empty()) out.push_back(seg);
  }
  return out;
}

bool WantsSse(const HttpRequest& req) {
  if (req.QueryParam("sse") == "1") return true;
  auto it = req.headers.find("accept");
  return it != req.headers.end() &&
         it->second.find("text/event-stream") != std::string::npos;
}

}  // namespace

int ApiHttpFrontend::HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kUnimplemented:
      return 501;
    case StatusCode::kCancelled:
      return 409;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

Status ApiHttpFrontend::Start(Options opts) {
  opts_ = std::move(opts);
  return server_.Start(opts_.http,
                       [this](const HttpRequest& req) { return Route(req); });
}

HttpResponse ApiHttpFrontend::Feed(const HttpRequest& req,
                                   const std::string& session_id) {
  if (WantsSse(req)) {
    HttpResponse resp;
    resp.content_type = "text/event-stream";
    resp.stream = [this, session_id](HttpStream* stream) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(opts_.sse_max_duration_ms);
      if (!stream->Write(": connected\n\n")) return;
      while (stream->alive() && std::chrono::steady_clock::now() < deadline) {
        // Blocks on the session's version condvar for up to one slice (no
        // busy-polling): an idle stream wakes ~2x/s to check the socket and
        // deadline, a step wakes it immediately.
        FeedWakeupsMetric().Inc();
        auto batch =
            service_->PollSession(session_id, opts_.feed_wait_slice_ms);
        if (!batch.ok()) {
          // Session gone (closed/expired): surface the error as a terminal
          // event so EventSource clients can stop reconnecting.
          stream->Write("event: error\ndata: " +
                        WriteJson(ErrorBody::FromStatus(batch.status()).ToJson()) +
                        "\n\n");
          return;
        }
        if (batch->to_version > batch->from_version) {
          if (!stream->Write("data: " + WriteJson(batch->ToJson()) + "\n\n")) {
            return;
          }
        }
      }
    };
    return resp;
  }

  // Long poll: return immediately with whatever is pending when
  // timeout_ms is absent/0, otherwise wait — in condvar slices, so a dead
  // server Stop() is noticed within one slice — for the first new version.
  const int64_t timeout_ms =
      std::min<int64_t>(std::max<int64_t>(0, req.QueryInt("timeout_ms", 0)),
                        opts_.max_poll_ms);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    const int64_t left = std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadline - std::chrono::steady_clock::now())
                             .count();
    FeedWakeupsMetric().Inc();
    auto batch = service_->PollSession(
        session_id,
        std::max<int64_t>(0, std::min(left, opts_.feed_wait_slice_ms)));
    if (!batch.ok()) return ErrorResponse(batch.status());
    if (batch->to_version > batch->from_version ||
        std::chrono::steady_clock::now() >= deadline || server_.stopping()) {
      return JsonResponse(200, batch->ToJson());
    }
  }
}

HttpResponse ApiHttpFrontend::JobStream(const HttpRequest& req,
                                        const std::string& job_id) {
  // Resume support: EventSource reconnects carry the last seen version in
  // ?version= so a dropped stream replays nothing the client already has.
  const int64_t start_version = std::max<int64_t>(0, req.QueryInt("version", 0));
  HttpResponse resp;
  resp.content_type = "text/event-stream";
  resp.stream = [this, job_id, start_version](HttpStream* stream) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(opts_.sse_max_duration_ms);
    if (!stream->Write(": connected\n\n")) return;
    int64_t last_seen = start_version;
    while (stream->alive() && std::chrono::steady_clock::now() < deadline) {
      // The wait blocks on the job's progress condvar (no busy-poll); kept
      // short so a dead client socket is noticed within a wait interval.
      auto progress = service_->GetJobProgress(job_id, last_seen,
                                               opts_.sse_progress_wait_ms);
      if (!progress.ok()) {
        // Unknown/evicted job: terminal event so EventSource clients can
        // stop reconnecting.
        stream->Write(
            "event: error\ndata: " +
            WriteJson(ErrorBody::FromStatus(progress.status()).ToJson()) +
            "\n\n");
        return;
      }
      if (progress->version > last_seen || progress->final_frame) {
        last_seen = progress->version;
        if (!stream->Write("data: " + WriteJson(progress->ToJson()) + "\n\n")) {
          return;
        }
        if (progress->final_frame) return;
      }
    }
  };
  return resp;
}

HttpResponse ApiHttpFrontend::Route(const HttpRequest& req) {
  obs::TraceSpan span("http.request", "http");
  // RAII so the gauge also drops when a handler throws (the server maps the
  // exception to a 500 response).
  struct InFlightGuard {
    InFlightGuard() { HttpInFlightMetric().Add(1.0); }
    ~InFlightGuard() { HttpInFlightMetric().Sub(1.0); }
  } in_flight;
  Stopwatch watch;
  HttpResponse resp = RouteInner(req);
  if (obs::MetricsEnabled()) {
    const std::string route = RouteLabel(PathSegments(req.path));
    HttpDurationFamily()
        .WithLabels({{"route", route}})
        ->Observe(static_cast<double>(watch.ElapsedMicros()));
    HttpResponsesFamily()
        .WithLabels({{"code", std::to_string(resp.status)},
                     {"method", req.method},
                     {"route", route}})
        ->Inc();
  }
  return resp;
}

HttpResponse ApiHttpFrontend::RouteInner(const HttpRequest& req) {
  const std::vector<std::string> seg = PathSegments(req.path);

  // GET / — the static client, when configured.
  if (seg.empty()) {
    if (req.method != "GET") {
      ErrorBody e{"InvalidArgument", "method not allowed on /"};
      return JsonResponse(405, e.ToJson());
    }
    HttpResponse resp;
    if (!opts_.client_html_path.empty()) {
      if (FILE* f = std::fopen(opts_.client_html_path.c_str(), "rb")) {
        char chunk[8192];
        size_t n = 0;
        while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
          resp.body.append(chunk, n);
        }
        std::fclose(f);
        resp.content_type = "text/html; charset=utf-8";
        return resp;
      }
      IFGEN_LOG_C(Warning, "http")
          << "cannot open client_html_path '" << opts_.client_html_path
          << "': " << std::strerror(errno) << "; serving built-in page";
    }
    resp.content_type = "text/html; charset=utf-8";
    resp.body =
        "<!doctype html><title>ifgen</title><p>ifgen API server. "
        "See <code>/v1/healthz</code>, <code>/v1/catalog</code>; API docs in "
        "docs/api.md.</p>";
    return resp;
  }

  if (seg[0] != "v1") {
    return ErrorResponse(Status::NotFound("unknown path '" + req.path +
                                          "' (API lives under /v1)"));
  }

  // /v1/... dispatch. Every arm returns a DTO or an ErrorBody; Status codes
  // map via HttpStatusFor.
  if (seg.size() == 2 && seg[1] == "healthz" && req.method == "GET") {
    JsonValue v = JsonValue::Object();
    v.Set("status", JsonValue::Str("ok"));
    return JsonResponse(200, v);
  }
  if (seg.size() == 2 && seg[1] == "catalog" && req.method == "GET") {
    auto catalog = service_->Catalog();
    if (!catalog.ok()) return ErrorResponse(catalog.status());
    return JsonResponse(200, catalog->ToJson());
  }
  if (seg.size() == 2 && seg[1] == "stats" && req.method == "GET") {
    auto stats = service_->Stats();
    if (!stats.ok()) return ErrorResponse(stats.status());
    return JsonResponse(200, stats->ToJson());
  }
  if (seg.size() == 2 && seg[1] == "cluster" && req.method == "GET") {
    auto cluster = service_->Cluster();
    if (!cluster.ok()) return ErrorResponse(cluster.status());
    return JsonResponse(200, cluster->ToJson());
  }
  if (seg.size() == 2 && seg[1] == "metrics" && req.method == "GET") {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::MetricsRegistry::Default().PrometheusText();
    return resp;
  }
  if (seg.size() == 2 && seg[1] == "trace" && req.method == "GET") {
    // The process-global span ring (most recent ~16k spans while tracing is
    // enabled) as Chrome trace-event JSON.
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = obs::TraceRecorder::Global().ToChromeTraceJson();
    return resp;
  }

  if (seg.size() == 2 && seg[1] == "generate" && req.method == "POST") {
    auto parsed = DecodeBody<api::GenerateRequest>(req);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    auto accepted = service_->SubmitGenerate(*parsed);
    if (!accepted.ok()) return ErrorResponse(accepted.status());
    return JsonResponse(202, accepted->ToJson());
  }

  if (seg.size() >= 3 && seg[1] == "jobs") {
    const std::string& job_id = seg[2];
    if (seg.size() == 3 && req.method == "GET") {
      // Clamp like the feed path: an unbounded client-supplied wait would
      // pin an HTTP worker (and overflow chrono at extreme values).
      const int64_t wait_ms =
          std::min<int64_t>(std::max<int64_t>(0, req.QueryInt("wait_ms", 0)),
                            opts_.max_poll_ms);
      auto status = service_->GetJob(job_id, wait_ms);
      if (!status.ok()) return ErrorResponse(status.status());
      return JsonResponse(200, status->ToJson());
    }
    if (seg.size() == 4 && seg[3] == "cancel" && req.method == "POST") {
      auto status = service_->CancelJob(job_id);
      if (!status.ok()) return ErrorResponse(status.status());
      return JsonResponse(200, status->ToJson());
    }
    if (seg.size() == 4 && seg[3] == "progress" && req.method == "GET") {
      // Versioned best-so-far snapshot; ?version= is the last seen version
      // and ?wait_ms= long-polls until it is exceeded (clamped like GetJob).
      const int64_t wait_ms =
          std::min<int64_t>(std::max<int64_t>(0, req.QueryInt("wait_ms", 0)),
                            opts_.max_poll_ms);
      const int64_t version = std::max<int64_t>(0, req.QueryInt("version", 0));
      auto progress = service_->GetJobProgress(job_id, version, wait_ms);
      if (!progress.ok()) return ErrorResponse(progress.status());
      return JsonResponse(200, progress->ToJson());
    }
    if (seg.size() == 4 && seg[3] == "stream" && req.method == "GET") {
      return JobStream(req, job_id);
    }
    if (seg.size() == 4 && seg[3] == "trace" && req.method == "GET") {
      auto trace = service_->JobTrace(job_id);
      if (!trace.ok()) return ErrorResponse(trace.status());
      HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = std::move(*trace);
      return resp;
    }
  }

  if (seg.size() >= 2 && seg[1] == "sessions") {
    if (seg.size() == 2 && req.method == "POST") {
      auto parsed = DecodeBody<api::SessionOpenRequest>(req);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      auto opened = service_->OpenSession(*parsed);
      if (!opened.ok()) return ErrorResponse(opened.status());
      return JsonResponse(200, opened->ToJson());
    }
    if (seg.size() >= 3) {
      const std::string& session_id = seg[2];
      if (seg.size() == 3 && req.method == "DELETE") {
        Status st = service_->CloseSession(session_id);
        if (!st.ok()) return ErrorResponse(st);
        JsonValue v = JsonValue::Object();
        v.Set("closed", JsonValue::Bool(true));
        return JsonResponse(200, v);
      }
      if (seg.size() == 4 && seg[3] == "events" && req.method == "POST") {
        auto parsed = DecodeBody<api::WidgetEventRequest>(req);
        if (!parsed.ok()) return ErrorResponse(parsed.status());
        auto step = service_->ApplyEvent(session_id, *parsed);
        if (!step.ok()) return ErrorResponse(step.status());
        return JsonResponse(200, step->ToJson());
      }
      if (seg.size() == 4 && seg[3] == "feed" && req.method == "GET") {
        return Feed(req, session_id);
      }
      if (seg.size() == 4 && seg[3] == "table" && req.method == "GET") {
        auto table = service_->SessionTable(session_id);
        if (!table.ok()) return ErrorResponse(table.status());
        return JsonResponse(200, table->ToJson());
      }
    }
  }

  return ErrorResponse(Status::NotFound("no route for " + req.method + " " +
                                        req.path));
}

}  // namespace http
}  // namespace ifgen
