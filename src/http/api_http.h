#pragma once

#include <memory>
#include <string>

#include "api/frontend.h"
#include "http/http_server.h"

namespace ifgen {
namespace http {

/// \brief Mounts a v1 ServiceFrontend on the embedded HTTP server — the thin
/// transport adapter: routing, JSON (de)serialization via the DTO codec,
/// Status -> HTTP status mapping, and the change-feed's long-poll/SSE
/// surface. No business logic lives here. The frontend is either the
/// in-process ApiService or a ClusterRouter fanning out to worker
/// processes; the adapter cannot tell the difference.
///
/// Endpoints (see docs/api.md for the full contract):
///   GET    /v1/healthz
///   GET    /v1/catalog
///   GET    /v1/stats
///   GET    /v1/cluster                     -> ClusterResponse (topology + health)
///   GET    /v1/metrics                    -> Prometheus text exposition
///   GET    /v1/trace                      -> global span ring, Chrome trace JSON
///   POST   /v1/generate                   -> 202 GenerateAccepted (429 when full)
///   GET    /v1/jobs/{id}?wait_ms=N        -> JobStatusResponse
///   POST   /v1/jobs/{id}/cancel           -> JobStatusResponse
///   GET    /v1/jobs/{id}/progress         -> JobProgressResponse; ?version=
///          is the last seen version, ?wait_ms=N long-polls past it
///   GET    /v1/jobs/{id}/stream           -> SSE JobProgressResponse frames
///          (one per best-so-far improvement; final frame embeds the result)
///   GET    /v1/jobs/{id}/trace            -> per-job spans, Chrome trace JSON
///   POST   /v1/sessions                   -> SessionOpenResponse
///   POST   /v1/sessions/{id}/events       -> StepResponse
///   GET    /v1/sessions/{id}/feed         -> long-poll ChangeBatch, or SSE
///          (?sse=1 or Accept: text/event-stream) streaming one batch per event
///   GET    /v1/sessions/{id}/table        -> TableDto (feed resync)
///   DELETE /v1/sessions/{id}
///   GET    /                              -> static client page (when configured)
class ApiHttpFrontend {
 public:
  struct Options {
    /// SSE and long-poll feed requests each pin one worker for up to their
    /// deadline, so the pool must be sized to the expected number of
    /// concurrent streaming clients plus regular traffic — hence a larger
    /// default than HttpServer's.
    static HttpServer::Options DefaultHttpOptions() {
      HttpServer::Options o;
      o.num_threads = 16;
      return o;
    }

    HttpServer::Options http = DefaultHttpOptions();
    /// Long-poll cap: ?timeout_ms is clamped to this.
    int64_t max_poll_ms = 30000;
    /// Per-iteration blocking wait of a feed loop (SSE and long-poll): the
    /// poll parks on the session's version condvar for up to one slice, so
    /// an idle stream wakes a couple of times per second — to notice a dead
    /// client socket and the stream deadline — instead of busy-polling.
    int64_t feed_wait_slice_ms = 500;
    /// SSE streams end (client reconnects) after this long.
    int64_t sse_max_duration_ms = 30000;
    /// Per-iteration condvar wait of a job /stream SSE loop: long enough to
    /// avoid busy-polling, short enough to notice a dead client socket.
    int64_t sse_progress_wait_ms = 500;
    /// Optional path to a static HTML client served at "/".
    std::string client_html_path;
  };

  /// `service` is not owned and must outlive the frontend.
  explicit ApiHttpFrontend(api::ServiceFrontend* service) : service_(service) {}
  ~ApiHttpFrontend() { Stop(); }

  Status Start(Options opts);
  int port() const { return server_.port(); }
  void Stop() { server_.Stop(); }

  /// Status -> HTTP status code (the transport half of the error model).
  static int HttpStatusFor(StatusCode code);

 private:
  /// Instrumentation wrapper: in-flight gauge, per-route latency histogram,
  /// and status-code counters around RouteInner (the actual dispatch).
  HttpResponse Route(const HttpRequest& req);
  HttpResponse RouteInner(const HttpRequest& req);
  HttpResponse Feed(const HttpRequest& req, const std::string& session_id);
  /// SSE stream of a job's JobProgressResponse frames (GET /v1/jobs/{id}/stream).
  HttpResponse JobStream(const HttpRequest& req, const std::string& job_id);

  api::ServiceFrontend* service_;
  Options opts_;
  HttpServer server_;
};

}  // namespace http
}  // namespace ifgen
