#include "http/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "http/net.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ifgen {
namespace http {

namespace internal {

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace internal

namespace {

using internal::SendAll;

/// Terminal early-error send for requests rejected before their bytes were
/// fully read (oversized headers/bodies): a plain close() with unread input
/// makes the kernel send RST, which discards the response before the client
/// reads it. Half-close the write side instead and drain (bounded by the
/// socket's recv timeout and a byte cap) until the client finishes sending,
/// so the status line actually arrives.
void SendErrorAndDrain(int fd, std::string_view response) {
  SendAll(fd, response);
  ::shutdown(fd, SHUT_WR);
  char sink[4096];
  size_t drained = 0;
  while (drained < (64u << 20)) {
    ssize_t n = ::recv(fd, sink, sizeof sink, 0);
    if (n <= 0) break;  // EOF, reset, or SO_RCVTIMEO expiry
    drained += static_cast<size_t>(n);
  }
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < s.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string HttpRequest::QueryParam(const std::string& key,
                                    const std::string& dflt) const {
  auto it = query.find(key);
  return it != query.end() ? it->second : dflt;
}

int64_t HttpRequest::QueryInt(const std::string& key, int64_t dflt) const {
  auto it = query.find(key);
  if (it == query.end()) return dflt;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') return dflt;
  return v;
}

bool HttpStream::Write(std::string_view data) {
  if (!alive()) return false;
  ok_ = SendAll(fd_, data);
  return ok_;
}

Status HttpServer::Start(Options opts, Handler handler) {
  if (started_) return Status::Invalid("HttpServer already started");
  opts_ = std::move(opts);
  handler_ = std::move(handler);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Invalid("bad listen host '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind(%s:%d) failed: %s", opts_.host.c_str(),
                                      opts_.port, std::strerror(errno)));
  }
  if (::listen(listen_fd_, std::max(1, opts_.listen_backlog)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  started_ = true;
  stopping_.store(false);
  IFGEN_LOG_C(Info, "http") << "listening on " << opts_.host << ":" << port_;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const size_t n = std::max<size_t>(1, opts_.num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  // Closing the listen socket fails the blocking accept() and ends the loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  for (const PendingConn& c : pending_) ::close(c.fd);
  pending_.clear();
  client_conns_.clear();
  listen_fd_ = -1;
  started_ = false;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;  // transient
      // Persistent failure (EMFILE/ENFILE under fd exhaustion): back off
      // instead of spinning the accept thread at 100% CPU.
      IFGEN_LOG_C(Warning, "http")
          << "accept() failed: " << std::strerror(errno) << "; backing off";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    timeval tv{};
    tv.tv_sec = opts_.recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((opts_.recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    timeval stv{};
    stv.tv_sec = opts_.send_timeout_ms / 1000;
    stv.tv_usec = static_cast<suseconds_t>((opts_.send_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &stv, sizeof stv);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    // Admission: a full accept queue answers 503, a client over its
    // connection cap answers 429 — both retryable per the API error
    // contract, both closed without touching the worker pool.
    const uint32_t client_ip = ntohl(peer.sin_addr.s_addr);
    bool queue_full = false;
    bool client_capped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() >= opts_.max_queued_connections) {
        queue_full = true;
      } else if (opts_.max_connections_per_client > 0 &&
                 client_conns_[client_ip] >= opts_.max_connections_per_client) {
        client_capped = true;
      } else {
        if (opts_.max_connections_per_client > 0) ++client_conns_[client_ip];
        pending_.push_back(PendingConn{fd, client_ip});
      }
    }
    if (queue_full || client_capped) {
      const std::string body =
          queue_full ? "{\"code\":\"Unavailable\",\"message\":\"server accept "
                       "queue is full\",\"retryable\":true}"
                     : "{\"code\":\"ResourceExhausted\",\"message\":\"too many "
                       "connections from this client\",\"retryable\":true}";
      const int status = queue_full ? 503 : 429;
      IFGEN_LOG_C(Warning, "http")
          << "rejecting connection (" << status << "): "
          << (queue_full ? "accept queue full at " : "client over per-IP cap of ")
          << (queue_full ? opts_.max_queued_connections
                         : opts_.max_connections_per_client);
      SendAll(fd, StrFormat("HTTP/1.1 %d %s\r\n", status, ReasonPhrase(status)) +
                      "Content-Type: application/json\r\nRetry-After: 1\r\n"
                      "Connection: close\r\n" +
                      StrFormat("Content-Length: %zu\r\n\r\n", body.size()) +
                      body);
      ::close(fd);
      continue;
    }
    cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_.load() || !pending_.empty(); });
      if (stopping_.load()) return;
      conn = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(conn.fd);
    ::close(conn.fd);
    if (opts_.max_connections_per_client > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = client_conns_.find(conn.client_ip);
      if (it != client_conns_.end() && --it->second == 0) client_conns_.erase(it);
    }
  }
}

void HttpServer::HandleConnection(int fd) {
  // Read until the end of the header block. The terminator search resumes
  // just before the previous buffer end (it may straddle a recv boundary)
  // instead of rescanning from 0 — a byte-trickling client would otherwise
  // buy O(n^2) scanning work per connection.
  std::string buf;
  size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;  // timeout/disconnect before a full request
    const size_t scan_from = buf.size() < 3 ? 0 : buf.size() - 3;
    buf.append(chunk, static_cast<size_t>(n));
    header_end = buf.find("\r\n\r\n", scan_from);
    if (buf.size() > opts_.max_body_bytes + 16384) {
      // Tell the client why instead of silently dropping the connection.
      IFGEN_LOG_C(Warning, "http")
          << "rejecting request: header block exceeds "
          << (opts_.max_body_bytes + 16384) << " bytes (431)";
      SendErrorAndDrain(fd,
                        "HTTP/1.1 431 Request Header Fields Too Large\r\n"
                        "Connection: close\r\n\r\n");
      return;
    }
  }

  HttpRequest req;
  {
    std::string_view head(buf.data(), header_end);
    size_t line_end = head.find("\r\n");
    std::string_view request_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    size_t sp1 = request_line.find(' ');
    size_t sp2 = request_line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 <= sp1) {
      IFGEN_LOG_C(Warning, "http") << "rejecting malformed request line (400)";
      SendAll(fd, "HTTP/1.1 400 Bad Request\r\nConnection: close\r\n\r\n");
      return;
    }
    req.method = ToUpper(request_line.substr(0, sp1));
    std::string target(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    size_t qpos = target.find('?');
    req.path = UrlDecode(qpos == std::string::npos ? target : target.substr(0, qpos));
    if (qpos != std::string::npos) {
      for (const std::string& kv : Split(target.substr(qpos + 1), '&')) {
        size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          req.query[UrlDecode(kv)] = "";
        } else {
          req.query[UrlDecode(kv.substr(0, eq))] = UrlDecode(kv.substr(eq + 1));
        }
      }
    }
    // Headers.
    size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string_view::npos) eol = head.size();
      std::string_view line = head.substr(pos, eol - pos);
      pos = eol + 2;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) continue;
      std::string key = ToLower(Trim(line.substr(0, colon)));
      req.headers[key] = Trim(line.substr(colon + 1));
    }
  }

  // Body (Content-Length framing only; this server does not accept chunked
  // uploads).
  size_t content_length = 0;
  if (auto it = req.headers.find("content-length"); it != req.headers.end()) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0' || v < 0) {
      IFGEN_LOG_C(Warning, "http")
          << "rejecting unparsable Content-Length '" << it->second << "' (400)";
      SendAll(fd, "HTTP/1.1 400 Bad Request\r\nConnection: close\r\n\r\n");
      return;
    }
    content_length = static_cast<size_t>(v);
  }
  if (content_length > opts_.max_body_bytes) {
    IFGEN_LOG_C(Warning, "http")
        << "rejecting " << content_length << "-byte body for " << req.method
        << " " << req.path << " (413, limit " << opts_.max_body_bytes << ")";
    // The announced body is mostly still in flight — drain it or the close
    // RSTs the 413 away before the client reads it.
    SendErrorAndDrain(fd,
                      "HTTP/1.1 413 Payload Too Large\r\nConnection: close\r\n\r\n");
    return;
  }
  req.body = buf.substr(header_end + 4);
  while (req.body.size() < content_length) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return;
    req.body.append(chunk, static_cast<size_t>(n));
  }
  req.body.resize(content_length);

  // CORS preflight (only when cross-origin access is configured; otherwise
  // OPTIONS falls through to the handler like any other method).
  if (!opts_.cors_allow_origin.empty() && req.method == "OPTIONS") {
    SendAll(fd,
            "HTTP/1.1 204 No Content\r\n"
            "Access-Control-Allow-Origin: " + opts_.cors_allow_origin + "\r\n"
            "Access-Control-Allow-Methods: GET, POST, DELETE, OPTIONS\r\n"
            "Access-Control-Allow-Headers: Content-Type\r\n"
            "Access-Control-Max-Age: 600\r\n"
            "Connection: close\r\n\r\n");
    return;
  }

  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    IFGEN_LOG_C(Error, "http") << "handler threw for " << req.method << " "
                               << req.path << ": " << e.what();
    resp.status = 500;
    resp.body = std::string("{\"code\":\"Internal\",\"message\":\"unhandled "
                            "exception in handler\"}");
    resp.stream = nullptr;
  } catch (...) {
    IFGEN_LOG_C(Error, "http") << "handler threw a non-std exception for "
                               << req.method << " " << req.path;
    resp.status = 500;
    resp.body = "{\"code\":\"Internal\",\"message\":\"unhandled exception\"}";
    resp.stream = nullptr;
  }

  std::string head = StrFormat("HTTP/1.1 %d %s\r\n", resp.status,
                               ReasonPhrase(resp.status));
  head += "Content-Type: " + resp.content_type + "\r\n";
  head += "Connection: close\r\n";
  if (!opts_.cors_allow_origin.empty()) {
    head += "Access-Control-Allow-Origin: " + opts_.cors_allow_origin + "\r\n";
  }
  for (const auto& [k, v] : resp.headers) head += k + ": " + v + "\r\n";
  if (resp.stream) {
    head += "Cache-Control: no-store\r\n\r\n";
    if (!SendAll(fd, head)) return;
    HttpStream stream(fd, &stopping_);
    resp.stream(&stream);
  } else {
    head += StrFormat("Content-Length: %zu\r\n\r\n", resp.body.size());
    if (!SendAll(fd, head)) return;
    SendAll(fd, resp.body);
  }
}

}  // namespace http
}  // namespace ifgen
