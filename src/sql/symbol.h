#pragma once

#include <cstdint>
#include <string_view>

namespace ifgen {

/// \brief Grammar symbols for the SQL-subset AST.
///
/// Each AST node is labeled with the grammar rule it was produced by
/// (paper, Figure 1: Select, Project, From, Where, BiExpr, ColExpr, ...).
/// Two symbols are internal to the difftree representation and never appear
/// in a parsed AST: kSeq (a transparent sequence grouper) and kEmpty (the
/// empty sequence, "no node").
enum class Symbol : uint8_t {
  // Query clauses.
  kSelect = 0,  ///< Root of a query; children: Project, From, [Where], ...
  kProject,     ///< SELECT list; value "distinct" when DISTINCT; children: items.
  kTop,         ///< TOP n; value = n.
  kFrom,        ///< children: Table references.
  kTable,       ///< value = table name.
  kWhere,       ///< children: single predicate expression.
  kGroupBy,     ///< children: grouping ColExprs.
  kOrderBy,     ///< children: OrderKeys.
  kOrderKey,    ///< value = "asc" | "desc"; children: sorted expression.
  kLimit,       ///< LIMIT n; value = n.

  // Expressions.
  kAnd,       ///< n-ary conjunction (chains are flattened).
  kOr,        ///< n-ary disjunction (chains are flattened).
  kNot,       ///< unary negation.
  kBiExpr,    ///< binary op; value in {=, <>, <, <=, >, >=, like, +, -, *, /}.
  kBetween,   ///< children: [expr, lo, hi].
  kIn,        ///< children: [expr, List].
  kList,      ///< parenthesized literal list.
  kFuncExpr,  ///< value = function name; children: args.
  kAlias,     ///< value = alias name; children: [expr].
  kColExpr,   ///< value = column name.
  kNumExpr,   ///< value = numeric literal text.
  kStrExpr,   ///< value = string literal (unquoted content).
  kStar,      ///< "*".

  // Difftree internals (never produced by the parser).
  kSeq,    ///< Transparent sequence of nodes (splices into the parent).
  kEmpty,  ///< The empty sequence (epsilon).

  // Execution-backend internals (never produced by the parser and never
  // present in a difftree).
  kParam,  ///< Parameter placeholder; value = 1-based parameter index.
};

/// Human-readable symbol name ("Select", "ColExpr", ...).
std::string_view SymbolName(Symbol s);

/// True for symbols whose AST nodes carry a meaningful `value` string.
bool SymbolHasValue(Symbol s);

/// True for leaf literal symbols (ColExpr/NumExpr/StrExpr/Star/Table).
bool IsLiteralSymbol(Symbol s);

}  // namespace ifgen
