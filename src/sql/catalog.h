#pragma once

#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Column data types understood by the mini engine.
enum class ColumnType : uint8_t { kInt64, kDouble, kString };

std::string_view ColumnTypeName(ColumnType t);

/// \brief A column definition.
struct ColumnDef {
  std::string name;
  ColumnType type;
};

/// \brief A table schema.
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;

  /// Index of a column by (case-insensitive) name, or -1.
  int FindColumn(std::string_view col_name) const;
};

/// \brief A set of table schemas; validates queries against them.
class Catalog {
 public:
  void AddTable(TableSchema schema);

  /// Schema lookup by (case-insensitive) name.
  Result<TableSchema> GetTable(std::string_view name) const;
  bool HasTable(std::string_view name) const;
  const std::vector<TableSchema>& tables() const { return tables_; }

  /// Checks that every table exists and every column reference resolves in
  /// the query's (single) FROM table. Aggregate-position rules are left to
  /// the executor.
  Status ValidateQuery(const Ast& query) const;

 private:
  std::vector<TableSchema> tables_;
};

}  // namespace ifgen
