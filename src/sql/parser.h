#pragma once

#include <string_view>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Parses one SQL query of the supported subset into an AST.
///
/// Supported grammar (keywords case-insensitive):
///
///   query   := SELECT [TOP num] [DISTINCT] items FROM table
///              [WHERE expr] [GROUP BY cols] [ORDER BY keys] [LIMIT num] [;]
///   items   := item (',' item)*            item := expr [AS ident]
///   expr    := or; or := and (OR and)*; and := not (AND not)*
///   not     := [NOT] cmp
///   cmp     := add [ (=|<>|<|<=|>|>=|LIKE) add
///                  | BETWEEN add AND add
///                  | [NOT] IN '(' literal (',' literal)* ')' ]
///   add     := mul (('+'|'-') mul)*        mul := prim (('*'|'/') prim)*
///   prim    := number | string | '*' | ident['(' args ')'] | '(' expr ')'
///
/// AND/OR chains are flattened into n-ary kAnd/kOr nodes so that repeated
/// conjuncts are adjacent siblings (a precondition for the Multi rule).
Result<Ast> ParseQuery(std::string_view sql);

/// \brief Parses a list of queries; fails on the first malformed query,
/// identifying it by index.
Result<std::vector<Ast>> ParseQueries(const std::vector<std::string>& sqls);

}  // namespace ifgen
