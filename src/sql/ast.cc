#include "sql/ast.h"

#include <algorithm>

#include "util/hash.h"

namespace ifgen {

bool Ast::operator==(const Ast& other) const {
  if (sym != other.sym || value != other.value ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!(children[i] == other.children[i])) return false;
  }
  return true;
}

uint64_t Ast::Hash() const {
  uint64_t h = HashCombine(0x5851f42d4c957f2dULL, static_cast<uint64_t>(sym));
  h = HashCombine(h, HashBytes(value));
  for (const Ast& c : children) {
    h = HashCombine(h, c.Hash());
  }
  return h;
}

size_t Ast::NodeCount() const {
  size_t n = 1;
  for (const Ast& c : children) n += c.NodeCount();
  return n;
}

size_t Ast::Depth() const {
  size_t d = 0;
  for (const Ast& c : children) d = std::max(d, c.Depth());
  return d + 1;
}

std::string Ast::ToSExpr() const {
  std::string out = "(";
  out += SymbolName(sym);
  if (!value.empty()) {
    out += ":";
    out += value;
  }
  for (const Ast& c : children) {
    out += " ";
    out += c.ToSExpr();
  }
  out += ")";
  return out;
}

Ast Col(std::string name) { return Ast(Symbol::kColExpr, std::move(name)); }
Ast Num(std::string text) { return Ast(Symbol::kNumExpr, std::move(text)); }
Ast Num(int64_t v) { return Ast(Symbol::kNumExpr, std::to_string(v)); }
Ast Str(std::string text) { return Ast(Symbol::kStrExpr, std::move(text)); }

}  // namespace ifgen
