#include "sql/catalog.h"

#include "util/string_util.h"

namespace ifgen {

std::string_view ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

int TableSchema::FindColumn(std::string_view col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col_name)) return static_cast<int>(i);
  }
  return -1;
}

void Catalog::AddTable(TableSchema schema) { tables_.push_back(std::move(schema)); }

bool Catalog::HasTable(std::string_view name) const {
  for (const TableSchema& t : tables_) {
    if (EqualsIgnoreCase(t.name, name)) return true;
  }
  return false;
}

Result<TableSchema> Catalog::GetTable(std::string_view name) const {
  for (const TableSchema& t : tables_) {
    if (EqualsIgnoreCase(t.name, name)) return t;
  }
  return Status::NotFound("no such table: " + std::string(name));
}

namespace {

Status CheckColumns(const Ast& node, const TableSchema& schema) {
  if (node.sym == Symbol::kColExpr) {
    if (schema.FindColumn(node.value) < 0) {
      return Status::Invalid("unknown column '" + node.value + "' in table '" +
                             schema.name + "'");
    }
  }
  for (const Ast& c : node.children) {
    IFGEN_RETURN_NOT_OK(CheckColumns(c, schema));
  }
  return Status::OK();
}

}  // namespace

Status Catalog::ValidateQuery(const Ast& query) const {
  if (query.sym != Symbol::kSelect) {
    return Status::Invalid("expected Select root");
  }
  const Ast* from = nullptr;
  for (const Ast& c : query.children) {
    if (c.sym == Symbol::kFrom) from = &c;
  }
  if (from == nullptr || from->children.empty()) {
    return Status::Invalid("query has no FROM clause");
  }
  if (from->children.size() > 1) {
    return Status::Unimplemented("multi-table FROM not supported by the executor");
  }
  IFGEN_ASSIGN_OR_RETURN(TableSchema schema, GetTable(from->children[0].value));
  for (const Ast& c : query.children) {
    if (c.sym != Symbol::kFrom) {
      IFGEN_RETURN_NOT_OK(CheckColumns(c, schema));
    }
  }
  return Status::OK();
}

}  // namespace ifgen
