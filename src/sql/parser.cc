#include "sql/parser.h"

#include <utility>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

/// Recursive-descent parser over a token vector.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Ast> Query() {
    IFGEN_ASSIGN_OR_RETURN(Ast q, Select());
    if (Peek().IsSymbol(";")) Advance();
    if (!Peek().Is(TokenKind::kEnd)) {
      return Err("trailing input after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(std::string_view what) const {
    return Status::ParseError(StrFormat("%s near '%s' (offset %zu)",
                                        std::string(what).c_str(), Peek().text.c_str(),
                                        Peek().offset));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) return Err(StrFormat("expected %s", std::string(kw).c_str()));
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) return Err(StrFormat("expected '%s'", std::string(s).c_str()));
    return Status::OK();
  }

  bool PeekIsReserved() const {
    static constexpr std::string_view kReserved[] = {
        "select", "from",  "where", "group", "order", "by",    "limit",
        "top",    "and",   "or",    "not",   "between", "in",  "like",
        "as",     "asc",   "desc",  "distinct"};
    if (!Peek().Is(TokenKind::kIdent)) return false;
    for (std::string_view kw : kReserved) {
      if (Peek().IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<Ast> Select() {
    IFGEN_RETURN_NOT_OK(ExpectKeyword("select"));
    std::vector<Ast> clauses;

    Ast project(Symbol::kProject);
    // TOP n
    std::optional<Ast> top;
    if (AcceptKeyword("top")) {
      if (!Peek().Is(TokenKind::kNumber)) return Err("expected number after TOP");
      top = Ast(Symbol::kTop, Advance().text);
    }
    if (AcceptKeyword("distinct")) project.value = "distinct";

    // Select list.
    do {
      IFGEN_ASSIGN_OR_RETURN(Ast item, SelectItem());
      project.children.push_back(std::move(item));
    } while (AcceptSymbol(","));
    clauses.push_back(std::move(project));
    if (top) clauses.push_back(std::move(*top));

    // FROM
    IFGEN_RETURN_NOT_OK(ExpectKeyword("from"));
    Ast from(Symbol::kFrom);
    do {
      if (!Peek().Is(TokenKind::kIdent) || PeekIsReserved()) {
        return Err("expected table name");
      }
      from.children.emplace_back(Symbol::kTable, Advance().text);
    } while (AcceptSymbol(","));
    clauses.push_back(std::move(from));

    // WHERE
    if (AcceptKeyword("where")) {
      IFGEN_ASSIGN_OR_RETURN(Ast pred, Expr());
      clauses.emplace_back(Symbol::kWhere, std::vector<Ast>{std::move(pred)});
    }

    // GROUP BY
    if (AcceptKeyword("group")) {
      IFGEN_RETURN_NOT_OK(ExpectKeyword("by"));
      Ast group(Symbol::kGroupBy);
      do {
        IFGEN_ASSIGN_OR_RETURN(Ast e, Expr());
        group.children.push_back(std::move(e));
      } while (AcceptSymbol(","));
      clauses.push_back(std::move(group));
    }

    // ORDER BY
    if (AcceptKeyword("order")) {
      IFGEN_RETURN_NOT_OK(ExpectKeyword("by"));
      Ast order(Symbol::kOrderBy);
      do {
        IFGEN_ASSIGN_OR_RETURN(Ast e, Expr());
        std::string dir = "asc";
        if (AcceptKeyword("desc")) {
          dir = "desc";
        } else {
          AcceptKeyword("asc");
        }
        order.children.emplace_back(Symbol::kOrderKey, dir,
                                    std::vector<Ast>{std::move(e)});
      } while (AcceptSymbol(","));
      clauses.push_back(std::move(order));
    }

    // LIMIT
    if (AcceptKeyword("limit")) {
      if (!Peek().Is(TokenKind::kNumber)) return Err("expected number after LIMIT");
      clauses.emplace_back(Symbol::kLimit, Advance().text);
    }

    return Ast(Symbol::kSelect, std::move(clauses));
  }

  Result<Ast> SelectItem() {
    IFGEN_ASSIGN_OR_RETURN(Ast e, Expr());
    if (AcceptKeyword("as")) {
      if (!Peek().Is(TokenKind::kIdent) || PeekIsReserved()) {
        return Err("expected alias name after AS");
      }
      return Ast(Symbol::kAlias, Advance().text, std::vector<Ast>{std::move(e)});
    }
    return e;
  }

  Result<Ast> Expr() { return OrExpr(); }

  Result<Ast> OrExpr() {
    IFGEN_ASSIGN_OR_RETURN(Ast first, AndExpr());
    if (!Peek().IsKeyword("or")) return first;
    Ast node(Symbol::kOr);
    node.children.push_back(std::move(first));
    while (AcceptKeyword("or")) {
      IFGEN_ASSIGN_OR_RETURN(Ast next, AndExpr());
      // Flatten nested n-ary ORs produced by parenthesized chains.
      node.children.push_back(std::move(next));
    }
    return node;
  }

  Result<Ast> AndExpr() {
    IFGEN_ASSIGN_OR_RETURN(Ast first, NotExpr());
    if (!Peek().IsKeyword("and")) return first;
    Ast node(Symbol::kAnd);
    node.children.push_back(std::move(first));
    while (AcceptKeyword("and")) {
      IFGEN_ASSIGN_OR_RETURN(Ast next, NotExpr());
      node.children.push_back(std::move(next));
    }
    return node;
  }

  Result<Ast> NotExpr() {
    if (AcceptKeyword("not")) {
      IFGEN_ASSIGN_OR_RETURN(Ast inner, NotExpr());
      return Ast(Symbol::kNot, std::vector<Ast>{std::move(inner)});
    }
    return CmpExpr();
  }

  Result<Ast> CmpExpr() {
    IFGEN_ASSIGN_OR_RETURN(Ast lhs, AddExpr());
    // BETWEEN lo AND hi
    if (AcceptKeyword("between")) {
      IFGEN_ASSIGN_OR_RETURN(Ast lo, AddExpr());
      IFGEN_RETURN_NOT_OK(ExpectKeyword("and"));
      IFGEN_ASSIGN_OR_RETURN(Ast hi, AddExpr());
      return Ast(Symbol::kBetween,
                 std::vector<Ast>{std::move(lhs), std::move(lo), std::move(hi)});
    }
    // [NOT] IN (list)
    bool negated = false;
    if (Peek().IsKeyword("not") && Peek(1).IsKeyword("in")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("in")) {
      IFGEN_RETURN_NOT_OK(ExpectSymbol("("));
      Ast list(Symbol::kList);
      do {
        IFGEN_ASSIGN_OR_RETURN(Ast e, AddExpr());
        list.children.push_back(std::move(e));
      } while (AcceptSymbol(","));
      IFGEN_RETURN_NOT_OK(ExpectSymbol(")"));
      Ast in(Symbol::kIn, std::vector<Ast>{std::move(lhs), std::move(list)});
      if (negated) return Ast(Symbol::kNot, std::vector<Ast>{std::move(in)});
      return in;
    }
    // LIKE
    if (AcceptKeyword("like")) {
      IFGEN_ASSIGN_OR_RETURN(Ast rhs, AddExpr());
      return Ast(Symbol::kBiExpr, "like",
                 std::vector<Ast>{std::move(lhs), std::move(rhs)});
    }
    // Comparison operators.
    static constexpr std::string_view kCmpOps[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (std::string_view op : kCmpOps) {
      if (Peek().IsSymbol(op)) {
        Advance();
        IFGEN_ASSIGN_OR_RETURN(Ast rhs, AddExpr());
        return Ast(Symbol::kBiExpr, std::string(op),
                   std::vector<Ast>{std::move(lhs), std::move(rhs)});
      }
    }
    return lhs;
  }

  Result<Ast> AddExpr() {
    IFGEN_ASSIGN_OR_RETURN(Ast lhs, MulExpr());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      IFGEN_ASSIGN_OR_RETURN(Ast rhs, MulExpr());
      lhs = Ast(Symbol::kBiExpr, op, std::vector<Ast>{std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<Ast> MulExpr() {
    IFGEN_ASSIGN_OR_RETURN(Ast lhs, Primary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      // `*` directly after '(' or ',' in a select list is handled in Primary;
      // here it is always multiplication.
      std::string op = Advance().text;
      IFGEN_ASSIGN_OR_RETURN(Ast rhs, Primary());
      lhs = Ast(Symbol::kBiExpr, op, std::vector<Ast>{std::move(lhs), std::move(rhs)});
    }
    return lhs;
  }

  Result<Ast> Primary() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kNumber)) {
      return Ast(Symbol::kNumExpr, Advance().text);
    }
    if (t.Is(TokenKind::kString)) {
      return Ast(Symbol::kStrExpr, Advance().text);
    }
    if (t.IsSymbol("*")) {
      Advance();
      return Ast(Symbol::kStar);
    }
    if (t.IsSymbol("(")) {
      Advance();
      IFGEN_ASSIGN_OR_RETURN(Ast inner, Expr());
      IFGEN_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    if (t.Is(TokenKind::kIdent) && !PeekIsReserved()) {
      std::string name = Advance().text;
      if (AcceptSymbol("(")) {
        Ast fn(Symbol::kFuncExpr, ToLower(name));
        if (!AcceptSymbol(")")) {
          do {
            IFGEN_ASSIGN_OR_RETURN(Ast arg, Expr());
            fn.children.push_back(std::move(arg));
          } while (AcceptSymbol(","));
          IFGEN_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        return fn;
      }
      return Ast(Symbol::kColExpr, name);
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Ast> ParseQuery(std::string_view sql) {
  IFGEN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Query();
}

Result<std::vector<Ast>> ParseQueries(const std::vector<std::string>& sqls) {
  std::vector<Ast> out;
  out.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto parsed = ParseQuery(sqls[i]);
    if (!parsed.ok()) {
      return Status::ParseError(StrFormat("query %zu: %s", i,
                                          parsed.status().message().c_str()));
    }
    out.push_back(std::move(parsed).MoveValueUnsafe());
  }
  return out;
}

}  // namespace ifgen
