#include "sql/symbol.h"

namespace ifgen {

std::string_view SymbolName(Symbol s) {
  switch (s) {
    case Symbol::kSelect:
      return "Select";
    case Symbol::kProject:
      return "Project";
    case Symbol::kTop:
      return "Top";
    case Symbol::kFrom:
      return "From";
    case Symbol::kTable:
      return "Table";
    case Symbol::kWhere:
      return "Where";
    case Symbol::kGroupBy:
      return "GroupBy";
    case Symbol::kOrderBy:
      return "OrderBy";
    case Symbol::kOrderKey:
      return "OrderKey";
    case Symbol::kLimit:
      return "Limit";
    case Symbol::kAnd:
      return "And";
    case Symbol::kOr:
      return "Or";
    case Symbol::kNot:
      return "Not";
    case Symbol::kBiExpr:
      return "BiExpr";
    case Symbol::kBetween:
      return "Between";
    case Symbol::kIn:
      return "In";
    case Symbol::kList:
      return "List";
    case Symbol::kFuncExpr:
      return "FuncExpr";
    case Symbol::kAlias:
      return "Alias";
    case Symbol::kColExpr:
      return "ColExpr";
    case Symbol::kNumExpr:
      return "NumExpr";
    case Symbol::kStrExpr:
      return "StrExpr";
    case Symbol::kStar:
      return "Star";
    case Symbol::kSeq:
      return "Seq";
    case Symbol::kEmpty:
      return "Empty";
    case Symbol::kParam:
      return "Param";
  }
  return "?";
}

bool SymbolHasValue(Symbol s) {
  switch (s) {
    case Symbol::kTop:
    case Symbol::kLimit:
    case Symbol::kTable:
    case Symbol::kOrderKey:
    case Symbol::kBiExpr:
    case Symbol::kFuncExpr:
    case Symbol::kAlias:
    case Symbol::kColExpr:
    case Symbol::kNumExpr:
    case Symbol::kStrExpr:
    case Symbol::kProject:
    case Symbol::kParam:
      return true;
    default:
      return false;
  }
}

bool IsLiteralSymbol(Symbol s) {
  switch (s) {
    case Symbol::kColExpr:
    case Symbol::kNumExpr:
    case Symbol::kStrExpr:
    case Symbol::kStar:
    case Symbol::kTable:
      return true;
    default:
      return false;
  }
}

}  // namespace ifgen
