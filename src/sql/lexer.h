#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ifgen {

/// \brief Lexical token categories for the SQL subset.
enum class TokenKind : uint8_t {
  kIdent,    ///< bare identifier (also keywords; the parser resolves them)
  kNumber,   ///< integer or decimal literal
  kString,   ///< single-quoted string (text() is the unquoted content)
  kSymbol,   ///< punctuation / operator: ( ) , * = <> <= >= < > + - / .
  kEnd,      ///< end of input sentinel
};

/// \brief A single token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;

  bool Is(TokenKind k) const { return kind == k; }
  /// Case-insensitive identifier/keyword comparison.
  bool IsKeyword(std::string_view kw) const;
  bool IsSymbol(std::string_view s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
};

/// \brief Tokenizes `sql` into a token vector terminated by a kEnd token.
///
/// Errors on unterminated strings and bytes outside the supported alphabet.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace ifgen
