#include "sql/unparser.h"

#include "util/string_util.h"

namespace ifgen {

namespace {

void RenderExpr(const Ast& e, int parent_prec, std::string* out);

/// Rule rewrites can produce transiently non-grammatical fragments (e.g. a
/// BiExpr whose rhs column became optional and vanished); rendering must
/// stay total for widget labels, so missing children render as "?".
const Ast& ChildOr(const Ast& e, size_t i) {
  static const Ast kMissing(Symbol::kColExpr, "?");
  return i < e.children.size() ? e.children[i] : kMissing;
}

/// Precedence levels: OR=1, AND=2, NOT=3, cmp=4, add=5, mul=6, primary=7.
int Precedence(const Ast& e) {
  switch (e.sym) {
    case Symbol::kOr:
      return 1;
    case Symbol::kAnd:
      return 2;
    case Symbol::kNot:
      return 3;
    case Symbol::kBetween:
    case Symbol::kIn:
      return 4;
    case Symbol::kBiExpr: {
      if (e.value == "+" || e.value == "-") return 5;
      if (e.value == "*" || e.value == "/") return 6;
      return 4;
    }
    default:
      return 7;
  }
}

void RenderChildList(const Ast& parent, int prec, std::string_view sep,
                     std::string* out) {
  for (size_t i = 0; i < parent.children.size(); ++i) {
    if (i > 0) *out += sep;
    RenderExpr(parent.children[i], prec, out);
  }
}

void RenderExpr(const Ast& e, int parent_prec, std::string* out) {
  const int prec = Precedence(e);
  const bool needs_parens = prec < parent_prec;
  if (needs_parens) *out += "(";
  switch (e.sym) {
    case Symbol::kOr:
      RenderChildList(e, prec + 1, " or ", out);
      break;
    case Symbol::kAnd:
      RenderChildList(e, prec + 1, " and ", out);
      break;
    case Symbol::kNot:
      *out += "not ";
      RenderExpr(ChildOr(e, 0), prec, out);
      break;
    case Symbol::kBiExpr: {
      RenderExpr(ChildOr(e, 0), prec, out);
      *out += " " + e.value + " ";
      RenderExpr(ChildOr(e, 1), prec + 1, out);
      break;
    }
    case Symbol::kBetween:
      RenderExpr(ChildOr(e, 0), prec + 1, out);
      *out += " between ";
      RenderExpr(ChildOr(e, 1), prec + 1, out);
      *out += " and ";
      RenderExpr(ChildOr(e, 2), prec + 1, out);
      break;
    case Symbol::kIn:
      RenderExpr(ChildOr(e, 0), prec + 1, out);
      *out += " in (";
      RenderChildList(ChildOr(e, 1), 0, ", ", out);
      *out += ")";
      break;
    case Symbol::kFuncExpr:
      *out += e.value + "(";
      RenderChildList(e, 0, ", ", out);
      *out += ")";
      break;
    case Symbol::kAlias:
      RenderExpr(ChildOr(e, 0), 7, out);
      *out += " as " + e.value;
      break;
    case Symbol::kColExpr:
      *out += e.value;
      break;
    case Symbol::kNumExpr:
      *out += e.value;
      break;
    case Symbol::kStrExpr: {
      *out += "'";
      for (char ch : e.value) {
        if (ch == '\'') *out += "''";  // re-escape embedded quotes
        else *out += ch;
      }
      *out += "'";
      break;
    }
    case Symbol::kStar:
      *out += "*";
      break;
    case Symbol::kParam:
      // Execution-backend placeholder; value is the 1-based parameter index
      // (matches SQLite's ?NNN syntax).
      *out += "?" + e.value;
      break;
    case Symbol::kList:
      *out += "(";
      RenderChildList(e, 0, ", ", out);
      *out += ")";
      break;
    default:
      *out += std::string(SymbolName(e.sym));
      break;
  }
  if (needs_parens) *out += ")";
}

}  // namespace

Result<std::string> Unparse(const Ast& ast) {
  if (ast.sym != Symbol::kSelect) {
    return Status::Invalid("Unparse expects a Select root, got " +
                           std::string(SymbolName(ast.sym)));
  }
  const Ast* project = nullptr;
  const Ast* top = nullptr;
  const Ast* from = nullptr;
  const Ast* where = nullptr;
  const Ast* group = nullptr;
  const Ast* order = nullptr;
  const Ast* limit = nullptr;
  for (const Ast& c : ast.children) {
    switch (c.sym) {
      case Symbol::kProject:
        project = &c;
        break;
      case Symbol::kTop:
        top = &c;
        break;
      case Symbol::kFrom:
        from = &c;
        break;
      case Symbol::kWhere:
        where = &c;
        break;
      case Symbol::kGroupBy:
        group = &c;
        break;
      case Symbol::kOrderBy:
        order = &c;
        break;
      case Symbol::kLimit:
        limit = &c;
        break;
      default:
        return Status::Invalid("unexpected clause under Select: " +
                               std::string(SymbolName(c.sym)));
    }
  }
  if (project == nullptr || from == nullptr) {
    return Status::Invalid("query lacks Project or From clause");
  }
  std::string out = "select ";
  if (top != nullptr) out += "top " + top->value + " ";
  if (project->value == "distinct") out += "distinct ";
  for (size_t i = 0; i < project->children.size(); ++i) {
    if (i > 0) out += ", ";
    RenderExpr(project->children[i], 0, &out);
  }
  out += " from ";
  for (size_t i = 0; i < from->children.size(); ++i) {
    if (i > 0) out += ", ";
    out += from->children[i].value;
  }
  if (where != nullptr && !where->children.empty()) {
    out += " where ";
    RenderExpr(where->children[0], 0, &out);
  }
  if (group != nullptr) {
    out += " group by ";
    for (size_t i = 0; i < group->children.size(); ++i) {
      if (i > 0) out += ", ";
      RenderExpr(group->children[i], 0, &out);
    }
  }
  if (order != nullptr) {
    out += " order by ";
    for (size_t i = 0; i < order->children.size(); ++i) {
      if (i > 0) out += ", ";
      RenderExpr(ChildOr(order->children[i], 0), 0, &out);
      if (order->children[i].value == "desc") out += " desc";
    }
  }
  if (limit != nullptr) out += " limit " + limit->value;
  return out;
}

std::string UnparseFragment(const Ast& ast) {
  switch (ast.sym) {
    case Symbol::kSelect: {
      auto r = Unparse(ast);
      return r.ok() ? *r : ast.ToSExpr();
    }
    case Symbol::kWhere: {
      std::string out = "where ";
      if (!ast.children.empty()) RenderExpr(ast.children[0], 0, &out);
      return out;
    }
    case Symbol::kTop:
      return "top " + ast.value;
    case Symbol::kLimit:
      return "limit " + ast.value;
    case Symbol::kTable:
      return ast.value;
    case Symbol::kFrom: {
      std::vector<std::string> names;
      for (const Ast& c : ast.children) names.push_back(c.value);
      return "from " + Join(names, ", ");
    }
    case Symbol::kProject: {
      std::string out;
      for (size_t i = 0; i < ast.children.size(); ++i) {
        if (i > 0) out += ", ";
        RenderExpr(ast.children[i], 0, &out);
      }
      return out;
    }
    case Symbol::kGroupBy: {
      std::string out = "group by ";
      for (size_t i = 0; i < ast.children.size(); ++i) {
        if (i > 0) out += ", ";
        RenderExpr(ast.children[i], 0, &out);
      }
      return out;
    }
    case Symbol::kOrderBy: {
      std::string out = "order by ";
      for (size_t i = 0; i < ast.children.size(); ++i) {
        if (i > 0) out += ", ";
        RenderExpr(ChildOr(ast.children[i], 0), 0, &out);
        if (ast.children[i].value == "desc") out += " desc";
      }
      return out;
    }
    case Symbol::kOrderKey: {
      std::string out;
      RenderExpr(ChildOr(ast, 0), 0, &out);
      if (ast.value == "desc") out += " desc";
      return out;
    }
    case Symbol::kEmpty:
      return "(none)";
    case Symbol::kSeq: {
      std::vector<std::string> parts;
      for (const Ast& c : ast.children) parts.push_back(UnparseFragment(c));
      return Join(parts, " ");
    }
    default: {
      std::string out;
      RenderExpr(ast, 0, &out);
      return out;
    }
  }
}

}  // namespace ifgen
