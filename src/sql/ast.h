#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sql/symbol.h"

namespace ifgen {

/// \brief A node of a SQL abstract syntax tree.
///
/// Value-semantic: copying copies the whole subtree. The library treats ASTs
/// as immutable values that flow through the difftree machinery; mutation is
/// always local construction of new trees.
struct Ast {
  Symbol sym = Symbol::kEmpty;
  /// Symbol-dependent payload (column name, literal text, operator, ...).
  std::string value;
  std::vector<Ast> children;

  Ast() = default;
  Ast(Symbol s, std::string v) : sym(s), value(std::move(v)) {}
  Ast(Symbol s, std::string v, std::vector<Ast> kids)
      : sym(s), value(std::move(v)), children(std::move(kids)) {}
  explicit Ast(Symbol s) : sym(s) {}
  Ast(Symbol s, std::vector<Ast> kids) : sym(s), children(std::move(kids)) {}

  bool operator==(const Ast& other) const;
  bool operator!=(const Ast& other) const { return !(*this == other); }

  /// Structural 64-bit hash (children order-sensitive).
  uint64_t Hash() const;

  /// Total number of nodes in the subtree (including this one).
  size_t NodeCount() const;

  /// Maximum depth (a leaf has depth 1).
  size_t Depth() const;

  /// S-expression rendering, e.g. `(BiExpr:= (ColExpr:cty) (StrExpr:USA))`.
  std::string ToSExpr() const;
};

/// Convenience constructors for tests and workload builders.
Ast Col(std::string name);
Ast Num(std::string text);
Ast Num(int64_t v);
Ast Str(std::string text);

}  // namespace ifgen
