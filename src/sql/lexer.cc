#include "sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace ifgen {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tokens.push_back({TokenKind::kIdent, std::string(sql.substr(start, i - start)),
                        start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool saw_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !saw_dot))) {
        if (sql[i] == '.') saw_dot = true;
        ++i;
      }
      tokens.push_back({TokenKind::kNumber, std::string(sql.substr(start, i - start)),
                        start});
      continue;
    }
    if (c == '\'') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string_view two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back({TokenKind::kSymbol, std::string(two == "!=" ? "<>" : two), i});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '*':
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '/':
      case '.':
      case ';':
        tokens.push_back({TokenKind::kSymbol, std::string(1, c), i});
        ++i;
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
  }
  tokens.push_back({TokenKind::kEnd, "", n});
  return tokens;
}

}  // namespace ifgen
