#pragma once

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Renders an AST back to SQL text.
///
/// Round-trip property (tested): `Parse(Unparse(Parse(q))) == Parse(q)` for
/// every query the parser accepts. The unparser inserts parentheses around
/// nested OR-inside-AND and around arithmetic so precedence is preserved.
Result<std::string> Unparse(const Ast& ast);

/// \brief Renders any expression subtree (not only full queries) to SQL-ish
/// text; used for widget labels. Falls back to an s-expression for difftree
/// internals that have no SQL spelling.
std::string UnparseFragment(const Ast& ast);

}  // namespace ifgen
