#pragma once

#include "search/search_common.h"

namespace ifgen {

/// \brief Pure random restarts: repeated random walks from the initial
/// state, evaluating each terminus. The paper's Figure 6(d) "low reward"
/// interface is what this typically produces — it shares MCTS's move set
/// and evaluation budget but none of its guidance.
class RandomSearcher final : public Searcher {
 public:
  using Searcher::Searcher;
  std::string_view name() const override { return "random"; }
  Result<SearchResult> Run(const DiffTree& initial) override;
};

/// \brief Steepest-ascent hill climbing with random restarts: evaluates all
/// successors, moves to the best, restarts when stuck.
class GreedySearcher final : public Searcher {
 public:
  using Searcher::Searcher;
  std::string_view name() const override { return "greedy"; }
  Result<SearchResult> Run(const DiffTree& initial) override;
};

/// \brief Beam search of width `opts.beam_width` with transposition pruning.
class BeamSearcher final : public Searcher {
 public:
  using Searcher::Searcher;
  std::string_view name() const override { return "beam"; }
  Result<SearchResult> Run(const DiffTree& initial) override;
};

/// \brief Bounded exhaustive BFS (transposition-deduped). Tractable only for
/// tiny inputs; used as the optimality oracle in tests and benches.
class ExhaustiveSearcher final : public Searcher {
 public:
  using Searcher::Searcher;
  std::string_view name() const override { return "exhaustive"; }
  Result<SearchResult> Run(const DiffTree& initial) override;

  /// States actually visited in the last run.
  size_t visited_states() const { return visited_states_; }
  /// True when the last run covered the whole (depth-bounded) space.
  bool complete() const { return complete_; }

 private:
  size_t visited_states_ = 0;
  bool complete_ = true;
};

}  // namespace ifgen
