#include "search/parallel_mcts.h"

#include <algorithm>
#include <unordered_map>

#include "search/priors.h"
#include "util/logging.h"

namespace ifgen {

namespace {

/// Warm-starts `tt` from sibling workers' exports and the persistent
/// experience store (no-op without the respective bridge).
void SeedFromBridge(const SearchOptions& opts, TranspositionTable* tt) {
  if (opts.tt_bridge != nullptr) {
    for (const TtSeedEntry& e : opts.tt_bridge->seed) {
      tt->SeedPeerCost(e.canonical, e.cost, e.visits);
    }
  }
  if (opts.experience != nullptr) {
    for (const TtSeedEntry& e : opts.experience->seed) {
      tt->SeedPeerCost(e.canonical, e.cost, e.visits);
    }
  }
}

/// Publishes the run's hot locally-discovered costs and the peer-hit tally
/// back through the bridge.
void ExportToBridge(const SearchOptions& opts, const TranspositionTable& tt) {
  if (opts.tt_bridge != nullptr) {
    TtBridge& bridge = *opts.tt_bridge;
    bridge.exported.clear();
    for (const auto& ec : tt.ExportHotCosts(bridge.export_limit)) {
      bridge.exported.push_back({ec.key, ec.cost, ec.visits});
    }
    bridge.peer_hits += tt.peer_cost_hits();
  }
  if (opts.experience != nullptr) {
    ExperienceBridge& eb = *opts.experience;
    eb.exported.clear();
    for (const auto& ec : tt.ExportHotCosts(eb.export_limit)) {
      eb.exported.push_back({ec.key, ec.cost, ec.visits});
    }
    eb.peer_hits += tt.peer_cost_hits();
  }
}

/// Deterministic ranking shared by every root-action export: mean reward
/// desc, then visits desc, then canonical asc.
void SortRootActions(std::vector<RootActionStat>* actions) {
  std::stable_sort(actions->begin(), actions->end(),
                   [](const RootActionStat& a, const RootActionStat& b) {
                     const double ma = a.MeanReward(), mb = b.MeanReward();
                     if (ma != mb) return ma > mb;
                     if (a.visits != b.visits) return a.visits > b.visits;
                     return a.canonical < b.canonical;
                   });
}

}  // namespace

Result<SearchResult> ParallelMctsSearcher::Run(const DiffTree& initial) {
  if (parallel_.num_threads <= 1) {
    // Serial fallback: the determinism contract ("num_threads=1 matches the
    // serial searcher bit-for-bit") is discharged by running it.
    MctsSearcher serial(rules_, evaluator_, opts_);
    return serial.Run(initial);
  }
  return parallel_.mode == ParallelMode::kRoot ? RunRootParallel(initial)
                                               : RunLeafParallel(initial);
}

Result<SearchResult> ParallelMctsSearcher::RunRootParallel(const DiffTree& initial) {
  const size_t trees = parallel_.num_threads;
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  TranspositionTable tt(parallel_.tt_shards);
  SeedFromBridge(opts_, &tt);
  SharedBestTracker best;
  best.sink = opts_.progress.get();

  // One prior model for the whole ensemble: it is immutable after
  // construction, so all trees read it concurrently, and building it once
  // keeps every tree's priors (and hence their expansion order) coherent.
  std::unique_ptr<ActionPriorModel> priors;
  if (opts_.priors.use_priors) {
    priors = std::make_unique<ActionPriorModel>(*rules_, evaluator_->queries(),
                                                opts_.priors);
  }

  // One shared reward anchor: all trees normalize rewards identically (and
  // none re-evaluates the initial state — the evaluator memoizes it anyway,
  // but the anchor must not depend on which tree asks first).
  Rng anchor_rng(opts_.seed);
  SearchStats anchor_stats;
  const double c0_raw = evaluator_->SampleCost(initial, &anchor_rng);
  anchor_stats.initial_cost = c0_raw;
  best.Offer(initial, c0_raw, watch, 0, &anchor_stats);
  tt.StoreCost(initial.CanonicalHash(), c0_raw);

  // Split the iteration budget so total work matches a serial run with the
  // same cap; the wall-clock budget is shared (all trees race one deadline).
  SearchOptions tree_opts = opts_;
  if (opts_.max_iterations > 0) {
    tree_opts.max_iterations = (opts_.max_iterations + trees - 1) / trees;
  }

  const Rng seed_base(opts_.seed);
  std::vector<Rng> rngs;
  rngs.reserve(trees);
  for (size_t t = 0; t < trees; ++t) rngs.push_back(seed_base.Split(t));
  std::vector<SearchStats> tree_stats(trees);
  std::vector<std::vector<RootActionStat>> tree_actions(trees);

  ThreadPool pool(trees);
  {
    TaskGroup group(&pool);
    for (size_t t = 0; t < trees; ++t) {
      group.Run([&, t] {
        MctsTreeParams params;
        params.rules = rules_;
        params.evaluator = evaluator_;
        params.opts = tree_opts;
        params.rng = &rngs[t];
        params.watch = &watch;
        params.deadline = &deadline;
        params.tt = &tt;
        params.best = &best;
        params.stats = &tree_stats[t];
        params.priors = priors.get();
        params.anchor_cost = c0_raw;
        params.root_actions = &tree_actions[t];
        params.stop = rc.stop();
        params.timeman = rc.timeman();
        params.experience = opts_.experience.get();
        RunMctsTree(initial, params);
      });
    }
    group.Wait();
  }
  ExportToBridge(opts_, tt);

  // Merge root actions across trees by canonical hash; rank by
  // visit-weighted mean reward.
  std::unordered_map<uint64_t, RootActionStat> merged;
  for (const auto& actions : tree_actions) {
    for (const RootActionStat& a : actions) {
      RootActionStat& m = merged[a.canonical];
      m.canonical = a.canonical;
      m.visits += a.visits;
      m.total_reward += a.total_reward;
    }
  }

  SearchResult result;
  result.best_tree = best.tree;
  result.best_cost = best.cost;
  result.stats = std::move(anchor_stats);
  for (const SearchStats& s : tree_stats) result.stats.Merge(s);
  result.stats.trees = trees;
  result.stats.transposition_hits = tt.transposition_hits();
  result.stats.elapsed_ms = watch.ElapsedMillis();
  result.stats.stop_reason = rc.Resolve(result.stats.iterations);
  result.root_actions.reserve(merged.size());
  for (const auto& [key, a] : merged) result.root_actions.push_back(a);
  SortRootActions(&result.root_actions);
  if (opts_.experience != nullptr) {
    ExperienceBridge& eb = *opts_.experience;
    eb.root_actions = result.root_actions;
    eb.root_canonical = initial.CanonicalHash();
    eb.seeded_root_children = result.stats.root_seeded;
  }
  return result;
}

Result<SearchResult> ParallelMctsSearcher::RunLeafParallel(const DiffTree& initial) {
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  TranspositionTable tt(parallel_.tt_shards);
  SeedFromBridge(opts_, &tt);
  SharedBestTracker best;
  best.sink = opts_.progress.get();
  SearchStats stats;
  Rng rng(opts_.seed);
  ThreadPool pool(parallel_.num_threads);
  std::unique_ptr<ActionPriorModel> priors;
  if (opts_.priors.use_priors) {
    priors = std::make_unique<ActionPriorModel>(*rules_, evaluator_->queries(),
                                                opts_.priors);
  }

  MctsTreeParams params;
  params.rules = rules_;
  params.evaluator = evaluator_;
  params.opts = opts_;
  params.rng = &rng;
  params.watch = &watch;
  params.deadline = &deadline;
  params.tt = &tt;
  params.best = &best;
  params.stats = &stats;
  params.priors = priors.get();
  params.leaf_pool = &pool;
  params.leaf_rollouts = std::max<size_t>(1, parallel_.leaf_rollouts);
  params.stop = rc.stop();
  params.timeman = rc.timeman();
  params.experience = opts_.experience.get();
  std::vector<RootActionStat> exp_root_actions;
  if (opts_.experience != nullptr) params.root_actions = &exp_root_actions;
  RunMctsTree(initial, params);
  ExportToBridge(opts_, tt);
  if (opts_.experience != nullptr) {
    ExperienceBridge& eb = *opts_.experience;
    SortRootActions(&exp_root_actions);
    eb.root_actions = std::move(exp_root_actions);
    eb.root_canonical = initial.CanonicalHash();
    eb.seeded_root_children = stats.root_seeded;
  }

  SearchResult result;
  result.best_tree = best.tree;
  result.best_cost = best.cost;
  result.stats = std::move(stats);
  result.stats.elapsed_ms = watch.ElapsedMillis();
  result.stats.stop_reason = rc.Resolve(result.stats.iterations);
  return result;
}

}  // namespace ifgen
