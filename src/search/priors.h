#pragma once

#include <unordered_map>
#include <vector>

#include "difftree/difftree.h"
#include "rules/rule.h"
#include "search/search_common.h"
#include "sql/ast.h"

namespace ifgen {

/// Progressive-widening limit: the number of children a node is allowed to
/// have after `visits` visits, ceil(widen_c * (visits + 1)^widen_alpha),
/// clamped to at least 1. Monotone non-decreasing in `visits` (tested), so a
/// node that keeps getting selected keeps unlocking children — in prior
/// order when priors are enabled — while rarely selected high-fanout nodes
/// stop paying for children nothing will ever visit.
size_t ProgressiveWideningLimit(size_t visits, const PriorOptions& opts);

/// \brief Log-derived per-action priors over rule applications.
///
/// Built once per search from the query log and shared (it is immutable and
/// therefore thread-safe) by every tree of a parallel ensemble. The prior of
/// an application combines three signals:
///
///  1. **Rule type.** Forward/factoring rules (Merge, Lift, Any2All, Multi)
///     are where good interfaces live (the paper's own rollouts are biased
///     the same way); inverse rules (All2Any, Noop-wrap) mostly pay off as
///     escapes. Each rule gets a base weight.
///  2. **Label frequency.** Sites whose subtree mentions symbols/values that
///     occur in many log queries affect more of the log when factored, so
///     they get a boost proportional to the mean normalized frequency of
///     their literal labels.
///  3. **Co-occurrence affinity.** For forward applications at nodes with
///     several children, the mean pairwise co-occurrence of the children's
///     labels across log queries — structure that co-occurs in the log is
///     structure worth factoring together (the paper's "Ongoing Work"
///     co-occurrence proposal, applied at expansion time; cf.
///     core/cooccurrence, which applies the same statistics to widget
///     states).
///
/// `Evaluate` floors each raw score at `min_prior` and normalizes the batch
/// to sum to exactly 1 (tested), so the PUCT exploration term is a proper
/// distribution over the node's actions.
class ActionPriorModel {
 public:
  ActionPriorModel(const RuleEngine& rules, const std::vector<Ast>& queries,
                   const PriorOptions& opts);

  /// Priors for `apps` enumerated at `state`, index-aligned with `apps`.
  /// Non-negative, and sums to 1 unless `apps` is empty. Thread-safe (const,
  /// no interior mutation).
  std::vector<double> Evaluate(const DiffTree& state,
                               const std::vector<RuleApplication>& apps) const;

  /// Base weight of a rule (by RuleEngine index); exposed for tests/bench.
  double RuleWeight(int rule_index) const;

  /// Normalized [0, 1] log frequency of a literal label; 0 when unseen.
  double LabelFrequency(Symbol sym, std::string_view value) const;

  /// Number of log queries the statistics were built from.
  size_t observations() const { return observations_; }

  const PriorOptions& options() const { return opts_; }

 private:
  /// Site-local signals for one application target (memoized per path by
  /// Evaluate since many rules share a site).
  struct SiteSignal {
    double freq = 0.0;      ///< mean label frequency of the subtree
    double affinity = 0.0;  ///< mean pairwise child co-occurrence
  };
  SiteSignal SignalFor(const DiffTree& site) const;

  const RuleEngine* rules_;
  PriorOptions opts_;
  std::vector<double> rule_weight_;  ///< per RuleEngine rule index
  /// (symbol, value) literal label -> occurrence count over queries.
  std::unordered_map<uint64_t, size_t> single_counts_;
  /// Unordered label pair -> co-occurrence count over queries.
  std::unordered_map<uint64_t, size_t> pair_counts_;
  size_t max_single_ = 1;  ///< normalizer for LabelFrequency
  size_t observations_ = 0;
};

}  // namespace ifgen
