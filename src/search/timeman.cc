#include "search/timeman.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace ifgen {

namespace {

obs::CounterFamily& StopReasonMetricFamily() {
  static obs::CounterFamily* f = obs::MetricsRegistry::Default().GetCounterFamily(
      "ifgen_search_stops_total",
      "Search-loop terminations by stop reason (none, iterations, budget, "
      "deadline, target_cost, plateau, cancelled, exhausted)");
  return *f;
}

}  // namespace

std::string_view StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kIterations: return "iterations";
    case StopReason::kBudget: return "budget";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kTargetCost: return "target_cost";
    case StopReason::kPlateau: return "plateau";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kExhausted: return "exhausted";
  }
  return "none";
}

int64_t TimeControlOptions::SearchSliceMs() const {
  if (deadline_ms <= 0) return 0;
  const double fraction = std::min(std::max(final_phase_fraction, 0.0), 0.95);
  const auto slice =
      static_cast<int64_t>(static_cast<double>(deadline_ms) * (1.0 - fraction));
  return std::max<int64_t>(1, slice);
}

int64_t EffectiveSearchBudgetMs(int64_t time_budget_ms,
                                const TimeControlOptions& tc) {
  const int64_t slice = tc.SearchSliceMs();
  if (slice <= 0) return time_budget_ms;
  if (time_budget_ms <= 0) return slice;
  return std::min(time_budget_ms, slice);
}

TimeManager::TimeManager(const TimeControlOptions& opts,
                         size_t hard_iteration_cap, StopHandle* stop)
    : opts_(opts),
      hard_cap_(hard_iteration_cap),
      stop_(stop),
      best_cost_(std::numeric_limits<double>::infinity()) {}

StopReason TimeManager::Update(size_t new_iterations, int64_t elapsed_ms,
                               double best_cost) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reason_ != StopReason::kNone) return reason_;

  iterations_total_ += new_iterations;
  if (best_cost < best_cost_) {
    best_cost_ = best_cost;
    last_improvement_ms_ = elapsed_ms;
  }

  StopReason decision = StopReason::kNone;
  if (opts_.target_cost > 0.0 && best_cost_ <= opts_.target_cost) {
    decision = StopReason::kTargetCost;
  } else if (opts_.deadline_ms > 0 && elapsed_ms >= opts_.SearchSliceMs()) {
    decision = StopReason::kDeadline;
  } else if (hard_cap_ > 0 && iterations_total_ >= hard_cap_) {
    decision = StopReason::kIterations;
  } else if (opts_.plateau_fraction > 0.0) {
    const auto window = std::max<int64_t>(
        opts_.plateau_min_ms,
        static_cast<int64_t>(opts_.plateau_fraction *
                             static_cast<double>(elapsed_ms)));
    if (elapsed_ms - last_improvement_ms_ >= window) {
      decision = StopReason::kPlateau;
    }
  }

  if (decision != StopReason::kNone) {
    reason_ = decision;
    if (stop_ != nullptr) stop_->RequestStop(decision);
  }
  return reason_;
}

size_t TimeManager::IterationBudget(int64_t elapsed_ms) const {
  const int64_t slice = opts_.SearchSliceMs();
  if (slice <= 0) return std::numeric_limits<size_t>::max();
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t remaining = slice - elapsed_ms;
  if (remaining <= 0) return 0;
  // Observed rate so far; before any iterations ran, assume 1 iter/ms so a
  // fresh search still gets a positive, deadline-proportional budget.
  const double rate =
      iterations_total_ == 0
          ? 1.0
          : static_cast<double>(iterations_total_) /
                static_cast<double>(std::max<int64_t>(1, elapsed_ms));
  return static_cast<size_t>(rate * static_cast<double>(remaining)) + 1;
}

StopReason TimeManager::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reason_;
}

size_t TimeManager::iterations_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return iterations_total_;
}

StopReason ResolveStopReason(const StopHandle* stop, bool deadline_expired,
                             int64_t time_budget_ms,
                             const TimeControlOptions& tc, size_t iterations,
                             size_t max_iterations) {
  StopReason reason = StopReason::kNone;
  if (stop != nullptr && stop->reason() != StopReason::kNone) {
    reason = stop->reason();
  } else if (deadline_expired) {
    // The Deadline the loop ran against was min(time_budget, search slice);
    // attribute the stop to whichever bound was the binding one.
    const int64_t slice = tc.SearchSliceMs();
    const bool slice_bound =
        slice > 0 && (time_budget_ms <= 0 || slice <= time_budget_ms);
    reason = slice_bound ? StopReason::kDeadline : StopReason::kBudget;
  } else if (max_iterations > 0 && iterations >= max_iterations) {
    reason = StopReason::kIterations;
  } else {
    reason = StopReason::kExhausted;
  }
  StopReasonMetricFamily()
      .WithLabels({{"reason", std::string(StopReasonName(reason))}})
      ->Inc();
  return reason;
}

}  // namespace ifgen
