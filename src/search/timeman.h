#pragma once

/// \file
/// \brief Deadline-aware time management for the anytime search loop.
///
/// The paper's promise is interactive latency: a first usable interface in
/// milliseconds, refined while the user watches. That needs two things the
/// plain `time_budget_ms` loop does not give us: (a) a wall-clock deadline
/// that reserves headroom for the post-search widget-materialization phase,
/// and (b) early stopping when the search has plateaued or already reached
/// a good-enough cost. Chess-engine time managers solve the same problem —
/// convert a clock into per-phase budgets, re-checked cheaply inside the
/// hot loop — and this module follows that shape.
///
/// Three pieces:
///  - StopHandle: a relaxed-atomic should-stop flag, shared between the
///    search hot loop, the TimeManager, and the external cancel path
///    (GenerationService::CancelJob). First stop reason wins.
///  - TimeControlOptions: the value-only knobs (deadline, target cost,
///    plateau window). Part of SearchOptions and of the service cache key.
///  - TimeManager: the decision state machine. It never reads a clock —
///    callers inject elapsed milliseconds — so every policy is unit-testable
///    without wall-clock sleeps and deadline overshoot can be pinned in
///    iterations, not timing.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <string_view>

namespace ifgen {

/// \brief Why a search loop stopped. Reported in SearchStats::stop_reason
/// and over the wire in SearchStatsDto.
enum class StopReason : uint8_t {
  kNone = 0,        ///< still running / never stopped by the control layer
  kIterations,      ///< SearchOptions::max_iterations reached
  kBudget,          ///< SearchOptions::time_budget_ms elapsed
  kDeadline,        ///< TimeControlOptions::deadline_ms search slice elapsed
  kTargetCost,      ///< best cost reached TimeControlOptions::target_cost
  kPlateau,         ///< no improvement for the plateau window
  kCancelled,       ///< external cancel (StopHandle::RequestStop)
  kExhausted,       ///< search space exhausted (dead root, empty frontier)
};

/// Stable lowercase name ("none", "deadline", ...); the wire encoding.
std::string_view StopReasonName(StopReason reason);

/// \brief Thread-safe stop flag unifying cancel and time-manager stops.
///
/// The hot loop polls stop_requested() once per iteration with a relaxed
/// load — cheap enough to never show up in a profile. The first
/// RequestStop() call latches its reason; later calls keep the flag set but
/// do not overwrite the reason.
class StopHandle {
 public:
  bool stop_requested() const { return stop_.load(std::memory_order_relaxed); }

  void RequestStop(StopReason reason) {
    uint8_t expected = static_cast<uint8_t>(StopReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed);
    stop_.store(true, std::memory_order_release);
  }

  /// The latched first reason; kNone while no stop was requested.
  StopReason reason() const {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<uint8_t> reason_{static_cast<uint8_t>(StopReason::kNone)};
};

/// \brief Value-only anytime/deadline knobs. Lives in SearchOptions, is
/// hashed into the service's options fingerprint, and crosses the API
/// boundary through ApiOptions (deadline_ms / target_cost /
/// plateau_fraction; the rest keep their defaults server-side).
struct TimeControlOptions {
  /// Wall-clock deadline for the whole generation call, in ms. 0 = off.
  /// The search slice is deadline_ms * (1 - final_phase_fraction); the
  /// remainder is headroom for the final widget-materialization phase so a
  /// valid interface exists AT the deadline, not some time after it.
  int64_t deadline_ms = 0;
  /// Stop as soon as the best cost drops to this value or below. <= 0 = off.
  double target_cost = 0.0;
  /// Plateau-based early stop: stop when the best cost has not improved for
  /// max(plateau_min_ms, plateau_fraction * elapsed_ms). 0 = off.
  double plateau_fraction = 0.0;
  /// Floor of the plateau window, so tiny elapsed times cannot trigger an
  /// instant stop.
  int64_t plateau_min_ms = 50;
  /// The hot loop consults the TimeManager every this many iterations; the
  /// StopHandle flag is still polled every iteration. Bounds the stop
  /// overshoot at check_interval + 1 iterations.
  uint32_t check_interval = 16;
  /// Fraction of deadline_ms reserved for the post-search phase.
  double final_phase_fraction = 0.15;

  /// True when any policy is enabled and a TimeManager should be attached.
  bool active() const {
    return deadline_ms > 0 || target_cost > 0.0 || plateau_fraction > 0.0;
  }
  /// The search-phase slice of deadline_ms (>= 1 ms when a deadline is
  /// set), or 0 when no deadline is set.
  int64_t SearchSliceMs() const;
};

/// The effective time budget of the search loop: the tighter of the plain
/// time_budget_ms and the deadline's search slice (either may be 0 =
/// unlimited). With time control off this returns time_budget_ms unchanged,
/// which is what keeps the no-deadline path bit-identical to the pre-anytime
/// behavior.
int64_t EffectiveSearchBudgetMs(int64_t time_budget_ms,
                                const TimeControlOptions& tc);

/// \brief The stop-policy state machine shared by all trees of one search.
///
/// Root-parallel searches call Update() from several threads against one
/// instance, so the state is guarded by a mutex; the per-iteration fast
/// path in the hot loop is the StopHandle's relaxed atomic, and Update()
/// only runs every check_interval iterations.
class TimeManager {
 public:
  /// \param opts the policy knobs (a copy is kept).
  /// \param hard_iteration_cap SearchOptions::max_iterations (0 = none);
  ///        latched as kIterations so the reason survives even when the
  ///        loop's own cap check fires first.
  /// \param stop optional handle to latch stop decisions into (may be null,
  ///        e.g. in unit tests that only probe the state machine).
  TimeManager(const TimeControlOptions& opts, size_t hard_iteration_cap,
              StopHandle* stop);

  /// Feeds the state machine: `new_iterations` iterations ran since this
  /// caller's previous Update, the search is `elapsed_ms` in, and the best
  /// cost so far is `best_cost`. Returns the (possibly just latched) stop
  /// reason; kNone means keep searching. Thread-safe.
  StopReason Update(size_t new_iterations, int64_t elapsed_ms, double best_cost);

  /// Rate-based estimate of how many more iterations fit before the search
  /// slice expires: observed iterations/ms times remaining ms. Monotone
  /// non-increasing in elapsed_ms for a fixed observed rate; 0 when the
  /// slice is spent. Unlimited (SIZE_MAX) when no deadline is set. This is
  /// the "per-phase iteration budget" planners may consult between phases.
  size_t IterationBudget(int64_t elapsed_ms) const;

  /// The latched reason (kNone while running). Thread-safe.
  StopReason reason() const;

  /// Total iterations reported through Update() so far. Thread-safe.
  size_t iterations_seen() const;

  const TimeControlOptions& options() const { return opts_; }

 private:
  const TimeControlOptions opts_;
  const size_t hard_cap_;
  StopHandle* const stop_;

  mutable std::mutex mu_;
  size_t iterations_total_ = 0;     ///< sum of all Update deltas
  double best_cost_;                ///< lowest cost seen (starts +inf)
  int64_t last_improvement_ms_ = 0; ///< elapsed_ms of the last improvement
  StopReason reason_ = StopReason::kNone;
};

/// Resolves the final SearchStats::stop_reason after a search loop exits:
/// a latched StopHandle reason wins; otherwise an expired deadline maps to
/// kDeadline or kBudget depending on which bound was the binding one;
/// otherwise the iteration cap; otherwise the loop ran out of work
/// (kExhausted). Also bumps the per-reason observability counter.
StopReason ResolveStopReason(const StopHandle* stop, bool deadline_expired,
                             int64_t time_budget_ms,
                             const TimeControlOptions& tc, size_t iterations,
                             size_t max_iterations);

}  // namespace ifgen
