#include "search/priors.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/hash.h"

namespace ifgen {

namespace {

/// Caps keeping prior evaluation O(1)-ish per site: label collection stops
/// after this many subtree nodes / labels, and affinity sampling considers
/// at most this many children and labels per child.
constexpr size_t kMaxSiteNodes = 256;
constexpr size_t kMaxQueryLabels = 48;
constexpr size_t kMaxAffinityChildren = 6;
constexpr size_t kMaxLabelsPerChild = 4;

uint64_t LabelKey(Symbol sym, std::string_view value) {
  return HashCombine(HashBytes(value), static_cast<uint64_t>(sym));
}

uint64_t PairKey(uint64_t a, uint64_t b) {
  return HashCombine(std::min(a, b), std::max(a, b));
}

/// Collects the literal-leaf label keys of an AST (deduplicated, capped).
void CollectAstLabels(const Ast& node, std::vector<uint64_t>* out) {
  if (out->size() >= kMaxQueryLabels) return;
  if (IsLiteralSymbol(node.sym)) {
    uint64_t k = LabelKey(node.sym, node.value);
    if (std::find(out->begin(), out->end(), k) == out->end()) out->push_back(k);
  }
  for (const Ast& c : node.children) CollectAstLabels(c, out);
}

/// Same over a difftree subtree (ALL leaves carry the literal labels),
/// additionally bounded by a node-count budget.
void CollectTreeLabels(const DiffTree& node, size_t* budget,
                       std::vector<uint64_t>* out) {
  if (*budget == 0) return;
  --*budget;
  if (node.kind == DKind::kAll && node.children.empty() &&
      IsLiteralSymbol(node.sym)) {
    out->push_back(LabelKey(node.sym, node.value));
  }
  for (const DiffTree& c : node.children) CollectTreeLabels(c, budget, out);
}

/// Base weight per rule name. Forward/factoring rules lead; the expanding
/// inverses trail (they are escapes, not destinations). Values swept by
/// bench_ablation; the ordering, not the decimals, is what matters.
double BaseRuleWeight(std::string_view name) {
  if (name == "Merge") return 2.2;
  if (name == "Any2All") return 1.8;
  if (name == "Lift") return 1.8;
  if (name == "Multi") return 1.2;
  if (name == "Optional") return 1.0;
  if (name == "All2Any") return 0.5;
  if (name == "Noop") return 0.3;
  return 1.0;
}

}  // namespace

size_t ProgressiveWideningLimit(size_t visits, const PriorOptions& opts) {
  double limit =
      opts.widen_c * std::pow(static_cast<double>(visits) + 1.0, opts.widen_alpha);
  if (limit < 1.0) return 1;
  if (limit > 1e9) return static_cast<size_t>(1e9);
  return static_cast<size_t>(std::ceil(limit));
}

ActionPriorModel::ActionPriorModel(const RuleEngine& rules,
                                   const std::vector<Ast>& queries,
                                   const PriorOptions& opts)
    : rules_(&rules), opts_(opts) {
  rule_weight_.reserve(rules.num_rules());
  for (size_t r = 0; r < rules.num_rules(); ++r) {
    // Trace-learned weights (learn/prior_fit.h) take precedence by rule
    // name; the hand-set BaseRuleWeight stays the documented fallback for
    // every rule the fitter has not seen.
    const std::string_view name = rules.rule(r).name();
    double w = BaseRuleWeight(name);
    for (const auto& [learned_name, learned_w] : opts.learned_weights) {
      if (learned_name == name) {
        w = learned_w;
        break;
      }
    }
    rule_weight_.push_back(w);
  }
  for (const Ast& q : queries) {
    std::vector<uint64_t> labels;
    CollectAstLabels(q, &labels);
    if (labels.empty()) continue;
    ++observations_;
    for (size_t i = 0; i < labels.size(); ++i) {
      size_t n = ++single_counts_[labels[i]];
      max_single_ = std::max(max_single_, n);
      for (size_t j = i + 1; j < labels.size(); ++j) {
        ++pair_counts_[PairKey(labels[i], labels[j])];
      }
    }
  }
}

double ActionPriorModel::RuleWeight(int rule_index) const {
  if (rule_index < 0 || static_cast<size_t>(rule_index) >= rule_weight_.size()) {
    return 1.0;
  }
  return rule_weight_[static_cast<size_t>(rule_index)];
}

double ActionPriorModel::LabelFrequency(Symbol sym, std::string_view value) const {
  auto it = single_counts_.find(LabelKey(sym, value));
  if (it == single_counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(max_single_);
}

ActionPriorModel::SiteSignal ActionPriorModel::SignalFor(const DiffTree& site) const {
  SiteSignal s;
  // Frequency: mean normalized log frequency of the site's literal labels.
  size_t budget = kMaxSiteNodes;
  std::vector<uint64_t> labels;
  CollectTreeLabels(site, &budget, &labels);
  if (!labels.empty()) {
    double sum = 0.0;
    for (uint64_t k : labels) {
      auto it = single_counts_.find(k);
      if (it != single_counts_.end()) {
        sum += static_cast<double>(it->second) / static_cast<double>(max_single_);
      }
    }
    s.freq = sum / static_cast<double>(labels.size());
  }
  // Affinity: mean pairwise co-occurrence of the children's label samples.
  // A high value means the site's children tend to appear in the same log
  // queries — factoring them shares widgets across queries that actually
  // use them together.
  size_t n_children = std::min(site.children.size(), kMaxAffinityChildren);
  if (n_children >= 2) {
    std::vector<std::vector<uint64_t>> child_labels(n_children);
    for (size_t c = 0; c < n_children; ++c) {
      size_t child_budget = kMaxLabelsPerChild * 4;
      CollectTreeLabels(site.children[c], &child_budget, &child_labels[c]);
      if (child_labels[c].size() > kMaxLabelsPerChild) {
        child_labels[c].resize(kMaxLabelsPerChild);
      }
    }
    double total = 0.0;
    size_t pairs = 0;
    for (size_t a = 0; a < n_children; ++a) {
      for (size_t b = a + 1; b < n_children; ++b) {
        for (uint64_t ka : child_labels[a]) {
          for (uint64_t kb : child_labels[b]) {
            auto sa = single_counts_.find(ka);
            auto sb = single_counts_.find(kb);
            ++pairs;
            if (sa == single_counts_.end() || sb == single_counts_.end()) continue;
            auto pit = pair_counts_.find(PairKey(ka, kb));
            size_t together = pit == pair_counts_.end() ? 0 : pit->second;
            size_t denom = std::min(sa->second, sb->second);
            if (denom > 0) {
              total += static_cast<double>(together) / static_cast<double>(denom);
            }
          }
        }
      }
    }
    if (pairs > 0) s.affinity = total / static_cast<double>(pairs);
  }
  return s;
}

std::vector<double> ActionPriorModel::Evaluate(
    const DiffTree& state, const std::vector<RuleApplication>& apps) const {
  std::vector<double> priors(apps.size(), 0.0);
  if (apps.empty()) return priors;
  // Many applications target the same site; compute each site's signals once.
  std::map<TreePath, SiteSignal> site_cache;
  double sum = 0.0;
  for (size_t i = 0; i < apps.size(); ++i) {
    const RuleApplication& app = apps[i];
    auto it = site_cache.find(app.path);
    if (it == site_cache.end()) {
      const DiffTree* site = NodeAt(state, app.path);
      SiteSignal sig = site != nullptr ? SignalFor(*site) : SiteSignal{};
      it = site_cache.emplace(app.path, sig).first;
    }
    double boost = 1.0 + opts_.freq_weight * it->second.freq;
    if (rules_->IsForward(app)) {
      boost += opts_.cooc_weight * it->second.affinity;
    }
    priors[i] = std::max(opts_.min_prior, RuleWeight(app.rule_index) * boost);
    sum += priors[i];
  }
  for (double& p : priors) p /= sum;
  return priors;
}

}  // namespace ifgen
