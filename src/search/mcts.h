#pragma once

#include <memory>
#include <unordered_set>

#include "search/search_common.h"

namespace ifgen {

/// \brief Monte Carlo Tree Search over difftree states (paper, "Monte Carlo
/// Tree Search").
///
/// Each search-tree node is a difftree; edges are rule applications. Per
/// iteration:
///  1. Selection: descend from the root by maximum UCT
///     (w/n + c * sqrt(ln N / n)).
///  2. Expansion: materialize untried neighbor states — all of them when
///     `expand_all_children` (the paper's variant), else one.
///  3. Simulation: from each new child, a uniformly random rule-application
///     walk of up to `rollout_len` steps (200 in the paper).
///  4. Reward: the final state's cost from k random widget assignments,
///     normalized to (0, 1] as r = c0 / (c0 + cost) with c0 the initial
///     state's cost (the paper uses the negated cost; UCT needs a bounded
///     positive reward, and this normalization preserves the ordering).
///  5. Backpropagation along the selection path.
///
/// A transposition table over canonical difftree hashes detects revisited
/// states (rule sequences often commute); revisits share evaluation results
/// through the StateEvaluator's cache.
class MctsSearcher final : public Searcher {
 public:
  using Searcher::Searcher;

  std::string_view name() const override { return "mcts"; }
  Result<SearchResult> Run(const DiffTree& initial) override;

 private:
  struct Node {
    DiffTree state;
    uint64_t canonical = 0;
    Node* parent = nullptr;
    double total_reward = 0.0;
    size_t visits = 0;
    std::vector<RuleApplication> apps;
    bool apps_ready = false;
    size_t next_untried = 0;
    /// Fully expanded, childless (or all children dead): selection skips it.
    bool dead = false;
    std::vector<std::unique_ptr<Node>> children;
  };

  double Uct(const Node& child, size_t parent_visits) const;
};

}  // namespace ifgen
