#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <mutex>

#include "runtime/thread_pool.h"
#include "runtime/tt.h"
#include "search/search_common.h"

namespace ifgen {

class ActionPriorModel;

/// \brief Thread-safe global best tracker shared by all trees (and all leaf
/// tasks) of one search. Only *global* improvements are recorded, so each
/// contributing tree's trace is a slice of the monotone best-so-far curve.
struct SharedBestTracker {
  std::mutex mu;
  DiffTree tree;
  double cost = std::numeric_limits<double>::infinity();
  /// Optional live publisher: every global improvement streams out as a
  /// versioned ProgressSink event the moment it is accepted.
  ProgressSink* sink = nullptr;

  bool Offer(const DiffTree& t, double c, const Stopwatch& watch, size_t iteration,
             SearchStats* stats) {
    std::lock_guard<std::mutex> lock(mu);
    if (c >= cost) return false;
    cost = c;
    tree = t;
    const int64_t ms = watch.ElapsedMillis();
    stats->trace.push_back({ms, iteration, c});
    if (sink != nullptr) sink->Publish(t, c, iteration, ms);
    return true;
  }

  double CostSnapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return cost;
  }
};

/// \brief Wiring for one MCTS tree run (see RunMctsTree).
///
/// Serial search passes tree-local objects for everything; parallel
/// ensembles share `tt`, `best`, `deadline`, and `watch` across trees while
/// keeping `rng` and `stats` strictly per-tree.
struct MctsTreeParams {
  const RuleEngine* rules = nullptr;
  StateEvaluator* evaluator = nullptr;
  SearchOptions opts;
  Rng* rng = nullptr;                ///< per-tree stream (never shared)
  const Stopwatch* watch = nullptr;  ///< search-global clock (trace timestamps)
  Deadline* deadline = nullptr;
  TranspositionTable* tt = nullptr;
  SharedBestTracker* best = nullptr;
  SearchStats* stats = nullptr;  ///< per-tree (merged by the caller)
  /// Log-derived action priors (PUCT selection + prior-ordered expansion).
  /// Null = uniform treatment (the paper's UCT). Immutable, so parallel
  /// ensembles share one model across all trees.
  const ActionPriorModel* priors = nullptr;
  /// Reward-normalization anchor (the initial state's sampled cost). NaN =
  /// "compute it here and offer the initial state to `best`" (serial mode);
  /// parallel ensembles compute it once and pass it to every tree so all
  /// trees normalize rewards identically.
  double anchor_cost = std::numeric_limits<double>::quiet_NaN();
  /// When set, the simulations of freshly expanded children fan out to this
  /// pool (leaf parallelism) with `leaf_rollouts` rollouts per child, each
  /// on an RNG stream split deterministically per (iteration, child, repeat).
  ThreadPool* leaf_pool = nullptr;
  size_t leaf_rollouts = 1;
  /// When non-null, receives (canonical, visits, total_reward) of every root
  /// child after the run — the raw material for root-ensemble merging.
  std::vector<RootActionStat>* root_actions = nullptr;
  /// Anytime control (see timeman.h): `stop` is polled (relaxed) once per
  /// iteration; `timeman` — shared across all trees of one search — is fed
  /// every time_control.check_interval iterations. Both optional; null
  /// leaves the classic loop untouched.
  StopHandle* stop = nullptr;
  TimeManager* timeman = nullptr;
  /// Persisted-experience seed (see ExperienceBridge): root children whose
  /// canonical hash matches a seed entry start with capped virtual visits +
  /// reward. Read-only here; outputs flow through `stats` (root_seeded) and
  /// `root_actions`. Null = off (bit-identical to the pre-experience loop).
  const ExperienceBridge* experience = nullptr;
};

/// Runs one MCTS tree to its deadline/iteration budget. The algorithm is
/// the paper's (see MctsSearcher); this free function exists so that serial
/// search, root-parallel ensembles, and leaf-parallel search all execute
/// the *same* tree code.
void RunMctsTree(const DiffTree& initial, const MctsTreeParams& params);

/// \brief Monte Carlo Tree Search over difftree states (paper, "Monte Carlo
/// Tree Search").
///
/// Each search-tree node is a difftree; edges are rule applications. Per
/// iteration:
///  1. Selection: descend from the root by maximum UCT
///     (w/n + c * sqrt(ln N / n)) — or, with priors enabled (the default,
///     see PriorOptions), by maximum PUCT
///     (w/n + puct_c * P(a) * sqrt(N) / (1 + n)) where P is the
///     ActionPriorModel's log-derived prior of the child's creating action.
///  2. Expansion: materialize untried neighbor states — all of them when
///     `expand_all_children` (the paper's variant), else one. Progressive
///     widening (default on) caps a node's children at
///     ProgressiveWideningLimit(visits), so high-fanout nodes unlock
///     children gradually, highest-prior first.
///  3. Simulation: from each new child, a uniformly random rule-application
///     walk of up to `rollout_len` steps (200 in the paper).
///  4. Reward: the final state's cost from k random widget assignments,
///     normalized to (0, 1] as r = c0 / (c0 + cost) with c0 the initial
///     state's cost (the paper uses the negated cost; UCT needs a bounded
///     positive reward, and this normalization preserves the ordering).
///  5. Backpropagation along the selection path.
///
/// A transposition table over canonical difftree hashes detects revisited
/// states (rule sequences often commute); revisits share evaluation results
/// through the table's cost cache and the StateEvaluator's cache.
class MctsSearcher final : public Searcher {
 public:
  using Searcher::Searcher;

  std::string_view name() const override { return "mcts"; }
  Result<SearchResult> Run(const DiffTree& initial) override;
};

}  // namespace ifgen
