#include "search/mcts.h"

#include <cmath>

#include "util/logging.h"

namespace ifgen {

double MctsSearcher::Uct(const Node& child, size_t parent_visits) const {
  if (child.visits == 0) return std::numeric_limits<double>::infinity();
  double exploit = child.total_reward / static_cast<double>(child.visits);
  double explore = opts_.exploration_c *
                   std::sqrt(std::log(static_cast<double>(parent_visits)) /
                             static_cast<double>(child.visits));
  return exploit + explore;
}

Result<SearchResult> MctsSearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  Deadline deadline(opts_.time_budget_ms);
  SearchStats stats;
  BestTracker best;

  const double c0_raw = evaluator_->SampleCost(initial, &rng);
  // Normalization anchor; a state with cost c receives reward c0/(c0+c).
  const double c0 = std::isfinite(c0_raw) ? std::max(1.0, c0_raw) : 100.0;
  stats.initial_cost = c0_raw;
  best.Offer(initial, c0_raw, watch, 0, &stats);
  auto reward_of = [&](double cost) {
    if (!std::isfinite(cost)) return 0.0;
    return c0 / (c0 + cost);
  };

  // Application lists are enumerated lazily (first selection visit): most
  // nodes are never selected again, and eager enumeration of hundreds of
  // applications per child dominated memory.
  size_t payload_nodes = initial.NodeCount();
  auto ensure_apps = [&](Node* node) {
    if (node->apps_ready) return;
    node->apps = rules_->EnumerateApplications(node->state);
    rng.Shuffle(&node->apps);  // expansion order should not bias the search
    stats.RecordFanout(node->apps.size());
    node->apps_ready = true;
  };

  auto backprop = [&](Node* from, double r) {
    for (Node* n = from; n != nullptr; n = n->parent) {
      ++n->visits;
      n->total_reward += r;
    }
  };

  auto root = std::make_unique<Node>();
  root->state = initial;
  root->canonical = initial.CanonicalHash();
  ensure_apps(root.get());
  std::unordered_set<uint64_t> seen{root->canonical};

  while (!deadline.Expired()) {
    if (opts_.max_iterations > 0 && stats.iterations >= opts_.max_iterations) break;
    ++stats.iterations;

    // 1. Selection: descend by UCT while fully expanded.
    Node* node = root.get();
    while (true) {
      ensure_apps(node);
      if (node->next_untried < node->apps.size() || node->children.empty()) break;
      Node* picked = nullptr;
      double best_uct = -1.0;
      for (const auto& ch : node->children) {
        if (ch->dead) continue;
        double u = Uct(*ch, std::max<size_t>(1, node->visits));
        if (u > best_uct) {
          best_uct = u;
          picked = ch.get();
        }
      }
      if (picked == nullptr) break;  // all children dead
      node = picked;
    }

    // 2. Expansion (bounded per iteration and by the payload budget).
    std::vector<Node*> fresh;
    if (payload_nodes < opts_.max_search_tree_payload) {
      size_t available = node->apps.size() - node->next_untried;
      size_t expansions = opts_.expand_all_children ? available
                                                    : std::min<size_t>(1, available);
      expansions = std::min(expansions, opts_.max_expansions_per_iteration);
      for (size_t e = 0; e < expansions; ++e) {
        const RuleApplication& app = node->apps[node->next_untried++];
        auto applied = rules_->Apply(node->state, app);
        if (!applied.ok()) continue;
        auto child = std::make_unique<Node>();
        child->state = std::move(applied).MoveValueUnsafe();
        child->canonical = child->state.CanonicalHash();
        child->parent = node;
        if (!seen.insert(child->canonical).second) {
          ++stats.transposition_hits;
        }
        ++stats.states_expanded;
        payload_nodes += child->state.NodeCount();
        fresh.push_back(child.get());
        node->children.push_back(std::move(child));
        if (deadline.Expired() || payload_nodes >= opts_.max_search_tree_payload) break;
      }
    }

    if (fresh.empty()) {
      if (node->apps.empty() && node->children.empty()) {
        // True terminal: no applicable rules at all. Evaluate once, mark
        // dead so selection stops revisiting, and propagate death upward.
        double cost = evaluator_->SampleCost(node->state, &rng);
        best.Offer(node->state, cost, watch, stats.iterations, &stats);
        node->dead = true;
        for (Node* n = node->parent; n != nullptr; n = n->parent) {
          if (!n->apps_ready || n->next_untried < n->apps.size()) break;
          bool all_dead = true;
          for (const auto& ch : n->children) all_dead &= ch->dead;
          if (!all_dead) break;
          n->dead = true;
        }
        backprop(node, reward_of(cost));
        if (root->dead) break;  // the whole space is exhausted
      } else {
        // Payload budget reached (or every application failed): keep
        // learning by rolling out from the selected node itself.
        DiffTree rollout_best;
        double cost = RolloutAndEvaluate(node->state, &rng, &stats, &rollout_best);
        best.Offer(rollout_best, cost, watch, stats.iterations, &stats);
        backprop(node, reward_of(cost));
      }
      continue;
    }

    // 3.-5. Simulation from each fresh child + backpropagation. The child's
    // own (cached) evaluation also feeds the global best tracker.
    for (Node* child : fresh) {
      double child_cost = evaluator_->SampleCost(child->state, &rng);
      best.Offer(child->state, child_cost, watch, stats.iterations, &stats);

      DiffTree rollout_best;
      double roll_cost = RolloutAndEvaluate(child->state, &rng, &stats, &rollout_best);
      best.Offer(rollout_best, roll_cost, watch, stats.iterations, &stats);

      backprop(child, std::max(reward_of(child_cost), reward_of(roll_cost)));
      if (deadline.Expired()) break;
    }
  }

  SearchResult result;
  result.best_tree = best.tree;
  result.best_cost = best.cost;
  result.stats = std::move(stats);
  result.stats.elapsed_ms = watch.ElapsedMillis();
  return result;
}

}  // namespace ifgen
