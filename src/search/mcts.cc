#include "search/mcts.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/priors.h"
#include "util/logging.h"

namespace ifgen {

namespace {

/// Search metrics are bumped in batch at the end of each tree run (the
/// iteration loop is the hottest code in the system; per-iteration counter
/// traffic would be measurable). Spans still mark the phases per iteration —
/// they cost one relaxed load each when tracing is off.
struct SearchMetrics {
  obs::Counter* trees;
  obs::Counter* iterations;
  obs::Counter* states_expanded;
  obs::Counter* rollouts;
  obs::Counter* rollout_steps;
  static const SearchMetrics& Get() {
    static const SearchMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      SearchMetrics s;
      s.trees = reg.GetCounter("ifgen_search_trees_total", "MCTS tree runs");
      s.iterations =
          reg.GetCounter("ifgen_search_iterations_total", "MCTS iterations");
      s.states_expanded = reg.GetCounter("ifgen_search_states_expanded_total",
                                         "Difftree states materialized by expansion");
      s.rollouts = reg.GetCounter("ifgen_search_rollouts_total",
                                  "Random rollout walks simulated");
      s.rollout_steps = reg.GetCounter("ifgen_search_rollout_steps_total",
                                       "Rule applications taken inside rollouts");
      return s;
    }();
    return m;
  }
};

struct Node {
  DiffTree state;
  uint64_t canonical = 0;
  Node* parent = nullptr;
  double total_reward = 0.0;
  size_t visits = 0;
  std::vector<RuleApplication> apps;
  /// Index-aligned with `apps` (sorted together); empty when priors are off.
  std::vector<double> priors;
  /// Prior of the application that created this node (PUCT's P term).
  double prior = 0.0;
  /// RuleEngine index of the application that created this node (-1 for the
  /// root); feeds the per-rule outcome accumulators the prior fitter reads.
  int rule_index = -1;
  bool apps_ready = false;
  size_t next_untried = 0;
  /// Fully expanded, childless (or all children dead): selection skips it.
  bool dead = false;
  std::vector<std::unique_ptr<Node>> children;
};

double Uct(const SearchOptions& opts, const Node& child, size_t parent_visits) {
  if (child.visits == 0) return std::numeric_limits<double>::infinity();
  double exploit = child.total_reward / static_cast<double>(child.visits);
  double explore = opts.exploration_c *
                   std::sqrt(std::log(static_cast<double>(parent_visits)) /
                             static_cast<double>(child.visits));
  return exploit + explore;
}

/// PUCT (prior-weighted UCT): exploration is proportional to the action
/// prior, so low-prior children need strong observed rewards to keep being
/// selected. Fresh children are simulated at expansion, so visits >= 1 here.
double Puct(const SearchOptions& opts, const Node& child, size_t parent_visits) {
  double exploit = child.visits == 0
                       ? 0.0
                       : child.total_reward / static_cast<double>(child.visits);
  double explore = opts.priors.puct_c * child.prior *
                   std::sqrt(static_cast<double>(parent_visits)) /
                   (1.0 + static_cast<double>(child.visits));
  return exploit + explore;
}

/// Number of `apps` entries the node may consume given its visit count:
/// everything without widening, the widening schedule's limit with it.
size_t UnlockedApps(const SearchOptions& opts, const Node& node) {
  if (!opts.priors.progressive_widening) return node.apps.size();
  return std::min(node.apps.size(),
                  ProgressiveWideningLimit(node.visits, opts.priors));
}

/// Result of one leaf-parallel simulation task (stats merged afterwards so
/// SearchStats never needs to be thread-safe).
struct LeafOutcome {
  double child_cost = std::numeric_limits<double>::infinity();
  double roll_cost = std::numeric_limits<double>::infinity();
  DiffTree roll_best;
  SearchStats stats;
};

}  // namespace

void RunMctsTree(const DiffTree& initial, const MctsTreeParams& p) {
  Rng& rng = *p.rng;
  SearchStats& stats = *p.stats;
  const SearchOptions& opts = p.opts;
  const Stopwatch& watch = *p.watch;
  Deadline& deadline = *p.deadline;
  const RolloutContext rctx{p.rules, p.evaluator, &opts};

  double c0_raw;
  if (std::isnan(p.anchor_cost)) {
    c0_raw = p.evaluator->SampleCost(initial, &rng);
    stats.initial_cost = c0_raw;
    p.best->Offer(initial, c0_raw, watch, 0, &stats);
  } else {
    c0_raw = p.anchor_cost;
    stats.initial_cost = c0_raw;
  }
  // Normalization anchor; a state with cost c receives reward c0/(c0+c).
  const double c0 = std::isfinite(c0_raw) ? std::max(1.0, c0_raw) : 100.0;
  auto reward_of = [&](double cost) {
    if (!std::isfinite(cost)) return 0.0;
    return c0 / (c0 + cost);
  };

  // Application lists are enumerated lazily (first selection visit): most
  // nodes are never selected again, and eager enumeration of hundreds of
  // applications per child dominated memory.
  size_t payload_nodes = initial.NodeCount();
  auto ensure_apps = [&](Node* node) {
    if (node->apps_ready) return;
    node->apps = p.rules->EnumerateApplications(node->state);
    rng.Shuffle(&node->apps);  // expansion order should not bias the search
    if (p.priors != nullptr && !node->apps.empty()) {
      // Prior-ordered expansion: highest prior first, shuffled ties (the
      // stable sort keeps the shuffle's order among equal priors), so
      // progressive widening unlocks the most promising actions first.
      node->priors = p.priors->Evaluate(node->state, node->apps);
      std::vector<size_t> order(node->apps.size());
      std::iota(order.begin(), order.end(), size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return node->priors[a] > node->priors[b];
      });
      std::vector<RuleApplication> apps(node->apps.size());
      std::vector<double> priors(node->apps.size());
      for (size_t i = 0; i < order.size(); ++i) {
        apps[i] = std::move(node->apps[order[i]]);
        priors[i] = node->priors[order[i]];
      }
      node->apps = std::move(apps);
      node->priors = std::move(priors);
    }
    stats.RecordFanout(node->apps.size());
    node->apps_ready = true;
  };

  // Rewards stay in tree-local nodes (root-parallel merging reads them via
  // root_actions); pushing them into the shared table too would put a lock
  // per ancestor per iteration on the hottest loop for data nothing reads.
  auto backprop = [&](Node* from, double r) {
    obs::TraceSpan span("mcts.backprop", "search");
    for (Node* n = from; n != nullptr; n = n->parent) {
      ++n->visits;
      n->total_reward += r;
    }
  };

  // Registry deltas for this tree run, bumped in batch after the loop.
  const size_t base_iterations = stats.iterations;
  const size_t base_expanded = stats.states_expanded;
  const size_t base_rollouts = stats.rollouts;
  const size_t base_rollout_steps = stats.rollout_steps;
  obs::TraceSpan tree_span("mcts.tree", "search");

  auto root = std::make_unique<Node>();
  root->state = initial;
  root->canonical = initial.CanonicalHash();
  ensure_apps(root.get());
  p.tt->Visit(root->canonical);

  // Persisted experience: root children matching a seed entry start with
  // capped virtual visits and the seed cost's reward, steering early PUCT
  // selection toward previously good actions. Pure bookkeeping — no RNG
  // draws — so an absent (or empty) bridge leaves the run bit-identical.
  std::unordered_map<uint64_t, const TtSeedEntry*> exp_seed;
  if (p.experience != nullptr) {
    exp_seed.reserve(p.experience->seed.size());
    for (const TtSeedEntry& e : p.experience->seed) {
      exp_seed.emplace(e.canonical, &e);
    }
  }
  auto seed_root_child = [&](Node* child) {
    if (exp_seed.empty() || child->parent != root.get()) return;
    auto it = exp_seed.find(child->canonical);
    if (it == exp_seed.end()) return;
    const uint64_t v = std::min<uint64_t>(
        std::max<uint64_t>(it->second->visits, 1), p.experience->root_visit_cap);
    child->visits += v;
    child->total_reward += static_cast<double>(v) * reward_of(it->second->cost);
    ++stats.root_seeded;
  };

  // Anytime control: the stop flag is polled every iteration (relaxed
  // atomic, negligible next to a rollout); the shared TimeManager is fed
  // every check_interval iterations. With both null this loop is exactly
  // the classic deadline/iteration-cap loop, draw for draw.
  const uint32_t check_interval =
      std::max<uint32_t>(1, opts.time_control.check_interval);
  uint32_t since_check = 0;

  while (!deadline.Expired()) {
    if (p.stop != nullptr && p.stop->stop_requested()) break;
    if (opts.max_iterations > 0 && stats.iterations >= opts.max_iterations) break;
    ++stats.iterations;
    if (p.timeman != nullptr && ++since_check >= check_interval) {
      p.timeman->Update(since_check, watch.ElapsedMillis(), p.best->CostSnapshot());
      since_check = 0;
      if (p.stop != nullptr && p.stop->stop_requested()) break;
    }

    // 1. Selection: descend by UCT (PUCT with priors) while the widening
    // schedule offers no unexpanded action at the node.
    Node* node = root.get();
    {
      obs::TraceSpan span("mcts.select", "search");
      while (true) {
        ensure_apps(node);
        if (node->next_untried < UnlockedApps(opts, *node) ||
            node->children.empty()) {
          break;
        }
        Node* picked = nullptr;
        double best_score = -1.0;
        for (const auto& ch : node->children) {
          if (ch->dead) continue;
          double u = p.priors != nullptr
                         ? Puct(opts, *ch, std::max<size_t>(1, node->visits))
                         : Uct(opts, *ch, std::max<size_t>(1, node->visits));
          if (u > best_score) {
            best_score = u;
            picked = ch.get();
          }
        }
        if (picked == nullptr) break;  // all children dead
        node = picked;
      }
    }

    // 2. Expansion (bounded per iteration, by the widening schedule, and by
    // the payload budget). With priors, apps are in prior order, so widening
    // unlocks the most promising neighbors first.
    std::vector<Node*> fresh;
    if (payload_nodes < opts.max_search_tree_payload) {
      obs::TraceSpan span("mcts.expand", "search");
      size_t unlocked = UnlockedApps(opts, *node);
      size_t available = unlocked > node->next_untried ? unlocked - node->next_untried : 0;
      size_t expansions =
          opts.expand_all_children ? available : std::min<size_t>(1, available);
      expansions = std::min(expansions, opts.max_expansions_per_iteration);
      for (size_t e = 0; e < expansions; ++e) {
        const size_t app_index = node->next_untried++;
        const RuleApplication& app = node->apps[app_index];
        auto applied = p.rules->Apply(node->state, app);
        if (!applied.ok()) continue;
        auto child = std::make_unique<Node>();
        child->state = std::move(applied).MoveValueUnsafe();
        child->canonical = child->state.CanonicalHash();
        child->parent = node;
        child->prior = node->priors.empty() ? 0.0 : node->priors[app_index];
        child->rule_index = app.rule_index;
        seed_root_child(child.get());
        if (!p.tt->Visit(child->canonical)) {
          ++stats.transposition_hits;
        }
        ++stats.states_expanded;
        payload_nodes += child->state.NodeCount();
        fresh.push_back(child.get());
        node->children.push_back(std::move(child));
        if (deadline.Expired() || payload_nodes >= opts.max_search_tree_payload) break;
      }
    }

    if (fresh.empty()) {
      if (node->apps.empty() && node->children.empty()) {
        // True terminal: no applicable rules at all. Evaluate once, mark
        // dead so selection stops revisiting, and propagate death upward.
        double cost = p.evaluator->SampleCost(node->state, &rng);
        p.best->Offer(node->state, cost, watch, stats.iterations, &stats);
        node->dead = true;
        for (Node* n = node->parent; n != nullptr; n = n->parent) {
          if (!n->apps_ready || n->next_untried < n->apps.size()) break;
          bool all_dead = true;
          for (const auto& ch : n->children) all_dead &= ch->dead;
          if (!all_dead) break;
          n->dead = true;
        }
        stats.RecordRuleOutcome(node->rule_index, reward_of(cost));
        backprop(node, reward_of(cost));
        if (root->dead) break;  // the whole space is exhausted
      } else {
        // Payload budget reached (or every application failed): keep
        // learning by rolling out from the selected node itself.
        DiffTree rollout_best;
        double cost =
            RolloutAndEvaluateState(rctx, node->state, &rng, &stats, &rollout_best);
        p.best->Offer(rollout_best, cost, watch, stats.iterations, &stats);
        stats.RecordRuleOutcome(node->rule_index, reward_of(cost));
        backprop(node, reward_of(cost));
      }
      continue;
    }

    // 3.-5. Simulation from each fresh child + backpropagation. The child's
    // own (cached) evaluation also feeds the global best tracker.
    obs::TraceSpan sim_span("mcts.simulate", "search");
    if (p.leaf_pool != nullptr && p.leaf_pool->num_threads() > 0) {
      // Leaf parallelism: fan the fresh children's evaluations and rollouts
      // out to the pool. RNG streams split per (iteration, task) — the Fork
      // below consumes exactly one tree-RNG draw per iteration, so the
      // tree's own stream stays deterministic — and results merge in child
      // order. Scheduling still leaks in through the shared evaluator
      // cache: a task whose lookup hits (because a concurrent task filled
      // the entry first) consumes fewer RNG draws, so sampled costs and the
      // decisions built on them can vary run-to-run.
      const size_t reps = std::max<size_t>(1, p.leaf_rollouts);
      const Rng task_base = rng.Fork();
      std::vector<LeafOutcome> outs(fresh.size() * reps);
      TaskGroup group(p.leaf_pool);
      for (size_t i = 0; i < fresh.size(); ++i) {
        for (size_t r = 0; r < reps; ++r) {
          const size_t slot = i * reps + r;
          Node* child = fresh[i];
          group.Run([&rctx, &task_base, &outs, slot, child, r] {
            LeafOutcome& out = outs[slot];
            Rng task_rng = task_base.Split(slot);
            if (r == 0) {
              out.child_cost = rctx.evaluator->SampleCost(child->state, &task_rng);
            }
            out.roll_cost = RolloutAndEvaluateState(rctx, child->state, &task_rng,
                                                    &out.stats, &out.roll_best);
          });
        }
      }
      group.Wait();
      for (size_t i = 0; i < fresh.size(); ++i) {
        Node* child = fresh[i];
        double best_reward = 0.0;
        for (size_t r = 0; r < reps; ++r) {
          LeafOutcome& out = outs[i * reps + r];
          if (r == 0) {
            p.tt->StoreCost(child->canonical, out.child_cost);
            p.best->Offer(child->state, out.child_cost, watch, stats.iterations,
                          &stats);
            best_reward = reward_of(out.child_cost);
          }
          p.best->Offer(out.roll_best, out.roll_cost, watch, stats.iterations, &stats);
          best_reward = std::max(best_reward, reward_of(out.roll_cost));
          stats.Merge(out.stats);
        }
        stats.RecordRuleOutcome(child->rule_index, best_reward);
        backprop(child, best_reward);
      }
    } else {
      for (Node* child : fresh) {
        auto cached = p.tt->LookupCost(child->canonical);
        double child_cost =
            cached.has_value() ? *cached : p.evaluator->SampleCost(child->state, &rng);
        if (!cached.has_value()) p.tt->StoreCost(child->canonical, child_cost);
        p.best->Offer(child->state, child_cost, watch, stats.iterations, &stats);

        DiffTree rollout_best;
        double roll_cost =
            RolloutAndEvaluateState(rctx, child->state, &rng, &stats, &rollout_best);
        p.best->Offer(rollout_best, roll_cost, watch, stats.iterations, &stats);

        const double r = std::max(reward_of(child_cost), reward_of(roll_cost));
        stats.RecordRuleOutcome(child->rule_index, r);
        backprop(child, r);
        if (deadline.Expired()) break;
      }
    }
  }

  if (obs::MetricsEnabled()) {
    const SearchMetrics& m = SearchMetrics::Get();
    m.trees->Inc();
    m.iterations->Add(stats.iterations - base_iterations);
    m.states_expanded->Add(stats.states_expanded - base_expanded);
    m.rollouts->Add(stats.rollouts - base_rollouts);
    m.rollout_steps->Add(stats.rollout_steps - base_rollout_steps);
  }

  if (p.root_actions != nullptr) {
    for (const auto& ch : root->children) {
      RootActionStat a;
      a.canonical = ch->canonical;
      a.visits = ch->visits;
      a.total_reward = ch->total_reward;
      p.root_actions->push_back(a);
    }
  }
}

Result<SearchResult> MctsSearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  SearchStats stats;
  SharedBestTracker best;
  best.sink = opts_.progress.get();
  // A single-shard table is exactly the old per-searcher unordered_set plus
  // an in-run cost memo.
  TranspositionTable tt(1);
  if (opts_.tt_bridge != nullptr) {
    // Warm-start from sibling workers' discoveries. Sound only because the
    // bridge is attached solely for state-keyed-sampling runs (costs are
    // pure functions of the state), so a seeded hit skips work without
    // shifting any value or RNG stream.
    for (const TtSeedEntry& e : opts_.tt_bridge->seed) {
      tt.SeedPeerCost(e.canonical, e.cost, e.visits);
    }
  }
  if (opts_.experience != nullptr) {
    // Persisted experience doubles as a cost seed: same soundness contract
    // as peering (state-keyed sampling), so a hit skips a re-evaluation
    // without shifting any value or RNG stream.
    for (const TtSeedEntry& e : opts_.experience->seed) {
      tt.SeedPeerCost(e.canonical, e.cost, e.visits);
    }
  }
  std::unique_ptr<ActionPriorModel> priors;
  if (opts_.priors.use_priors) {
    priors = std::make_unique<ActionPriorModel>(*rules_, evaluator_->queries(),
                                                opts_.priors);
  }

  MctsTreeParams params;
  params.rules = rules_;
  params.evaluator = evaluator_;
  params.opts = opts_;
  params.rng = &rng;
  params.watch = &watch;
  params.deadline = &deadline;
  params.tt = &tt;
  params.best = &best;
  params.stats = &stats;
  params.priors = priors.get();
  params.stop = rc.stop();
  params.timeman = rc.timeman();
  params.experience = opts_.experience.get();
  // Root-action stats feed the experience bridge, not SearchResult (which
  // stays empty for serial searchers, as documented).
  std::vector<RootActionStat> exp_root_actions;
  if (opts_.experience != nullptr) params.root_actions = &exp_root_actions;
  RunMctsTree(initial, params);

  if (opts_.tt_bridge != nullptr) {
    TtBridge& bridge = *opts_.tt_bridge;
    bridge.exported.clear();
    for (const auto& ec : tt.ExportHotCosts(bridge.export_limit)) {
      bridge.exported.push_back({ec.key, ec.cost, ec.visits});
    }
    bridge.peer_hits += tt.peer_cost_hits();
  }
  if (opts_.experience != nullptr) {
    ExperienceBridge& eb = *opts_.experience;
    eb.exported.clear();
    for (const auto& ec : tt.ExportHotCosts(eb.export_limit)) {
      eb.exported.push_back({ec.key, ec.cost, ec.visits});
    }
    std::stable_sort(exp_root_actions.begin(), exp_root_actions.end(),
                     [](const RootActionStat& a, const RootActionStat& b) {
                       const double ra = a.MeanReward(), rb = b.MeanReward();
                       if (ra != rb) return ra > rb;
                       if (a.visits != b.visits) return a.visits > b.visits;
                       return a.canonical < b.canonical;
                     });
    eb.root_actions = std::move(exp_root_actions);
    eb.root_canonical = initial.CanonicalHash();
    eb.seeded_root_children = stats.root_seeded;
    eb.peer_hits += tt.peer_cost_hits();
  }

  SearchResult result;
  result.best_tree = best.tree;
  result.best_cost = best.cost;
  result.stats = std::move(stats);
  result.stats.elapsed_ms = watch.ElapsedMillis();
  result.stats.stop_reason = rc.Resolve(result.stats.iterations);
  return result;
}

}  // namespace ifgen
