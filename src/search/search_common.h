#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <memory>

#include "cost/evaluator.h"
#include "difftree/difftree.h"
#include "rules/rule.h"
#include "search/progress.h"
#include "search/timeman.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace ifgen {

/// \brief Knobs of the prior-guided search layer (PUCT selection +
/// progressive widening); see docs/search.md and search/priors.h.
///
/// The paper expands all immediate neighbors and selects children by plain
/// UCT — every rule application is treated as equally promising a priori.
/// The query log says otherwise: its co-occurrence structure predicts which
/// factoring edits pay off (Precision Interfaces; PI2). ActionPriorModel
/// turns those statistics plus the rule type into a per-action prior; this
/// struct holds the on/off ablation flags and the formula constants.
struct PriorOptions {
  /// Use log-derived action priors: PUCT selection and prior-ordered
  /// expansion. Off = the paper's uniform treatment (ablation baseline).
  bool use_priors = true;
  /// Progressive widening: a node may only have ceil(widen_c * (v+1)^
  /// widen_alpha) children at v visits, so high-fanout nodes expand their
  /// children lazily (in prior order when `use_priors`) instead of all at
  /// once. Off = the paper's expand-all behavior (ablation baseline).
  bool progressive_widening = true;
  /// PUCT exploration multiplier: score = Q + puct_c * P * sqrt(N)/(1+n).
  double puct_c = 1.2;
  /// Widening schedule constants (see ProgressiveWideningLimit).
  double widen_c = 3.0;
  double widen_alpha = 0.5;
  /// Weight of the log label-frequency site signal in the prior.
  double freq_weight = 1.0;
  /// Weight of the log co-occurrence (pair-affinity) site signal; applied
  /// to forward/factoring applications only.
  double cooc_weight = 1.0;
  /// Floor applied to each raw prior before normalization, so no action's
  /// exploration term is starved entirely.
  double min_prior = 0.02;
  /// Trace-fitted per-rule weights, (rule name, weight) sorted by name
  /// (see src/learn/prior_fit.h and examples/fit_priors.cpp). When a rule's
  /// name appears here, its learned weight replaces the hand-set
  /// BaseRuleWeight; unlisted rules keep the hand-set fallback. Value knobs:
  /// part of the service's options fingerprint like every other field here.
  std::vector<std::pair<std::string, double>> learned_weights;
};

/// \brief One exportable transposition entry: a canonical state hash with
/// its sampled cost and visit count. The unit of cross-worker peering.
struct TtSeedEntry {
  uint64_t canonical = 0;
  double cost = 0.0;
  uint64_t visits = 0;

  bool operator==(const TtSeedEntry& o) const {
    return canonical == o.canonical && cost == o.cost && visits == o.visits;
  }
};

/// \brief Runtime wiring for transposition peering: entries to pre-seed the
/// search's table with before the run, and the hot entries it exported
/// after. Like `stop`/`progress`, attaching a bridge is NOT part of any
/// cache key or fingerprint — with state-keyed sampling on (the
/// cache_peering contract) seeding changes only the work done, never the
/// values produced or the RNG streams consumed.
struct TtBridge {
  /// In: entries merged into the table before the first iteration
  /// (first-writer-wins; the table is empty then, so all land).
  std::vector<TtSeedEntry> seed;
  /// Cap on entries exported after the run (hottest by visits).
  size_t export_limit = 512;
  /// Out: the run's hottest finite-cost entries.
  std::vector<TtSeedEntry> exported;
  /// Out: cost-cache hits answered by a peer-seeded entry.
  size_t peer_hits = 0;
};

/// \brief Per-root-action statistics of a (possibly merged) MCTS root.
///
/// Root-parallel ensembles merge per-tree root children by canonical hash;
/// the ensemble's preferred action is the one with the highest
/// visit-weighted mean reward.
struct RootActionStat {
  uint64_t canonical = 0;
  uint64_t visits = 0;
  double total_reward = 0.0;
  double MeanReward() const {
    return visits == 0 ? 0.0 : total_reward / static_cast<double>(visits);
  }
};

/// \brief Runtime wiring for the persistent experience store
/// (src/learn/experience.h): records from past same-identity searches to
/// warm-start this one, and this run's discoveries to merge back after.
///
/// Seeding does two things: (a) every seed entry's cost lands in the
/// transposition table via SeedPeerCost (skips re-evaluations, sound under
/// state-keyed sampling exactly like TtBridge), and (b) seed entries whose
/// canonical hash matches a root child grant that child virtual visits +
/// reward, steering early PUCT selection toward previously good actions —
/// this is where the warm-start iteration win comes from. Like
/// `stop`/`progress`/`tt_bridge`, attaching a bridge is NOT part of any
/// cache key; with the bridge absent the search is bit-identical to the
/// pre-experience behavior (zero extra RNG draws either way).
struct ExperienceBridge {
  /// In: records for this search's cost identity, hottest first.
  std::vector<TtSeedEntry> seed;
  /// Cap on the virtual visits one seed entry may grant a root child.
  size_t root_visit_cap = 8;
  /// Cap on entries exported after the run (hottest by visits).
  size_t export_limit = 512;
  /// Out: the run's hottest finite-cost entries (same shape as TtBridge).
  std::vector<TtSeedEntry> exported;
  /// Out: root actions ranked by visit-weighted mean reward (merged across
  /// trees for parallel ensembles) — the "best action" training signal.
  std::vector<RootActionStat> root_actions;
  /// Out: canonical hash of the search's initial state.
  uint64_t root_canonical = 0;
  /// Out: root children that received virtual visits from the seed.
  size_t seeded_root_children = 0;
  /// Out: cost-cache hits answered by a seeded entry.
  size_t peer_hits = 0;
};

/// \brief Options shared by every search algorithm.
struct SearchOptions {
  /// Wall-clock budget; <= 0 means "iteration-capped only" (deterministic
  /// tests use that mode).
  int64_t time_budget_ms = 2000;
  /// Iteration cap; 0 = unlimited.
  size_t max_iterations = 0;
  uint64_t seed = 42;

  // MCTS.
  double exploration_c = 0.5;  ///< UCT exploration constant; rewards live in
                               ///< (0,1] so sqrt(2) over-explores (see
                               ///< bench_ablation for the sweep)
  size_t rollout_len = 200;           ///< paper: random walks of up to 200 steps
  double rollout_stop_prob = 0.02;    ///< per-step early-stop (varies depths)
  /// Paper: "perform a random walk ... from all of its immediate neighbor
  /// states". False = standard single-child expansion (ablation).
  bool expand_all_children = true;
  /// Upper bound on neighbors expanded per iteration; the paper's fanouts
  /// (~50) make literal expand-all affordable, but All2Any-style inverse
  /// rules push fanout into the hundreds, where a full batch would blow the
  /// whole budget inside one iteration.
  size_t max_expansions_per_iteration = 24;
  /// Memory guard: cap on the cumulative difftree-node count stored across
  /// the MCTS search tree (states vary from tens to ~1500 nodes, so the cap
  /// is on payload, not state count). Once reached, iterations keep rolling
  /// out from selected nodes instead of expanding.
  size_t max_search_tree_payload = 600000;
  /// Probability that a rollout step draws from the forward (factoring)
  /// rules when any apply; the remainder explores inverse rules. 0.5 is
  /// close to the paper's uniform random walk; higher values focus rollouts
  /// on the factoring chains good interfaces live behind (swept by the
  /// ablation bench).
  double rollout_forward_bias = 0.8;
  /// Probability that a rollout is a *saturation* walk: repeatedly apply the
  /// first forward application (pre-order = shallowest site first) until no
  /// forward rule applies. This is the canonical factoring schedule; mixing
  /// it with random walks gives rollouts a strong baseline while preserving
  /// exploration. 0 recovers the paper's purely random simulation.
  double rollout_saturate_prob = 0.35;
  /// Probability of evaluating an intermediate rollout state. The paper
  /// scores only the rollout terminus; sampling along the walk makes the
  /// reward the best state *seen*, which is what the anytime result tracker
  /// needs (random walks drift, so termini are rarely the walk's best).
  double rollout_eval_prob = 0.25;

  /// Prior-guided selection/expansion (MCTS only; see PriorOptions).
  PriorOptions priors;

  // Greedy / beam.
  size_t beam_width = 8;

  // Exhaustive.
  size_t exhaustive_max_depth = 6;
  size_t exhaustive_max_states = 5000;

  /// Anytime/deadline control (see search/timeman.h). Value-only knobs;
  /// part of the service's options fingerprint. Inactive by default, in
  /// which case the searchers run the classic time_budget_ms loop and stay
  /// bit-identical to the pre-anytime behavior.
  TimeControlOptions time_control;
  /// External stop flag, shared with CancelJob and the TimeManager. Null =
  /// never stopped externally. Runtime wiring only — NOT part of any cache
  /// key or fingerprint.
  std::shared_ptr<StopHandle> stop;
  /// Best-so-far publisher: every accepted improvement streams out as a
  /// versioned event. Null = off. Publishing consumes no RNG draws and
  /// changes no control flow, so attaching a sink never perturbs results.
  std::shared_ptr<ProgressSink> progress;
  /// Transposition peering bridge (see TtBridge). Null = off. Runtime
  /// wiring only — NOT part of any cache key or fingerprint; requires
  /// cache_peering (state-keyed sampling) for bit-identity under seeding.
  std::shared_ptr<TtBridge> tt_bridge;
  /// Persistent-experience bridge (see ExperienceBridge). Null = off.
  /// Runtime wiring only — NOT part of any cache key or fingerprint;
  /// requires state-keyed sampling (GeneratorOptions::experience) for
  /// bit-identity of sampled costs under seeding.
  std::shared_ptr<ExperienceBridge> experience;
};

/// \brief (time, cost) samples of the best-so-far curve, for anytime plots.
struct BestTrace {
  int64_t ms = 0;
  size_t iteration = 0;
  double cost = 0.0;
};

/// \brief Instrumentation common to all searchers.
struct SearchStats {
  size_t iterations = 0;
  size_t states_expanded = 0;
  size_t rollouts = 0;
  size_t rollout_steps = 0;
  size_t transposition_hits = 0;
  double initial_cost = 0.0;
  int64_t elapsed_ms = 0;
  /// Search trees contributing to this result (> 1 for root-parallel).
  size_t trees = 1;
  /// Why the loop stopped (kNone only while still running); see timeman.h.
  StopReason stop_reason = StopReason::kNone;
  std::vector<BestTrace> trace;

  // Fanout distribution (number of applicable rules per visited state).
  size_t fanout_samples = 0;
  size_t fanout_sum = 0;
  size_t fanout_max = 0;

  /// Root children granted virtual visits from an ExperienceBridge seed.
  size_t root_seeded = 0;

  // Per-rule outcome accumulators, indexed by RuleEngine rule index: how
  // often each rule's application was selected/expanded into a child, and
  // the summed backpropagated reward those children received. Pure
  // bookkeeping (zero RNG draws); the offline prior fitter
  // (learn/prior_fit.h) turns these into learned PriorOptions weights.
  std::vector<uint64_t> rule_uses;
  std::vector<double> rule_reward_sum;

  void RecordRuleOutcome(int rule_index, double reward) {
    if (rule_index < 0) return;
    const size_t idx = static_cast<size_t>(rule_index);
    if (rule_uses.size() <= idx) {
      rule_uses.resize(idx + 1, 0);
      rule_reward_sum.resize(idx + 1, 0.0);
    }
    ++rule_uses[idx];
    rule_reward_sum[idx] += reward;
  }

  void RecordFanout(size_t fanout) {
    ++fanout_samples;
    fanout_sum += fanout;
    if (fanout > fanout_max) fanout_max = fanout;
  }
  double MeanFanout() const {
    return fanout_samples == 0
               ? 0.0
               : static_cast<double>(fanout_sum) / static_cast<double>(fanout_samples);
  }

  /// Folds another tree's (or task's) stats into this one. Traces are
  /// concatenated and re-sorted by time; because a shared best tracker only
  /// records *global* improvements, the merged trace is again the monotone
  /// best-so-far curve.
  void Merge(const SearchStats& other);
};

/// \brief Outcome of a search: the best difftree found and its sampled cost.
struct SearchResult {
  DiffTree best_tree;
  double best_cost = 0.0;
  SearchStats stats;
  /// Root actions ranked by visit-weighted mean reward (descending); filled
  /// by root-parallel ensembles, empty for serial searchers.
  std::vector<RootActionStat> root_actions;
};

/// \brief Everything a rollout needs; lets rollout helpers run as free
/// functions on any thread (the parallel searchers fan rollouts out to a
/// pool, where member functions bound to one searcher would not do).
struct RolloutContext {
  const RuleEngine* rules = nullptr;
  StateEvaluator* evaluator = nullptr;
  const SearchOptions* opts = nullptr;
};

/// One random rollout of up to opts->rollout_len rule applications; returns
/// the final state. Thread-compatible: distinct (rng, stats) per caller.
DiffTree RolloutState(const RolloutContext& ctx, DiffTree state, Rng* rng,
                      SearchStats* stats);

/// Rollout that also samples intermediate states for evaluation and always
/// evaluates the terminus; returns the best cost seen (`best_state` receives
/// the matching state). Thread-compatible like RolloutState.
double RolloutAndEvaluateState(const RolloutContext& ctx, const DiffTree& start,
                               Rng* rng, SearchStats* stats, DiffTree* best_state);

/// One biased-random rule application; false when no application succeeds.
bool RolloutStepRandom(const RolloutContext& ctx, DiffTree* state,
                       std::vector<RuleApplication>* apps, Rng* rng);

/// \brief Per-run wiring of the anytime controls, shared by every searcher:
/// the effective deadline (plain time budget vs the deadline's search
/// slice), a stop handle (the caller-supplied one, or a run-local one when
/// time control is active), and an optional TimeManager latching into it.
///
/// With time control off and no external stop handle this degenerates to
/// the classic `Deadline(time_budget_ms)` with a null stop pointer — the
/// loop shape (and hence every RNG draw) is unchanged.
class RunControl {
 public:
  explicit RunControl(const SearchOptions& opts);

  Deadline& deadline() { return deadline_; }
  /// Null when neither an external stop nor time control is in play — the
  /// hot loop then skips even the relaxed atomic poll.
  StopHandle* stop() { return stop_; }
  TimeManager* timeman() { return timeman_.get(); }

  /// True when the loop should stop now (external cancel or a latched
  /// time-manager decision).
  bool Stopped() const { return stop_ != nullptr && stop_->stop_requested(); }

  /// Per-iteration tick for single-tree loops: consults the TimeManager
  /// every check_interval iterations. (RunMctsTree drives the shared
  /// TimeManager itself so root-parallel trees feed one state machine.)
  void Tick(const Stopwatch& watch, double best_cost);

  /// Final stop-reason resolution once the loop exits.
  StopReason Resolve(size_t iterations) const;

 private:
  const SearchOptions& opts_;
  Deadline deadline_;
  StopHandle local_stop_;
  StopHandle* stop_ = nullptr;
  std::unique_ptr<TimeManager> timeman_;
  uint32_t check_interval_ = 16;
  uint32_t since_check_ = 0;
};

/// \brief Base class wiring a searcher to the rule engine and evaluator.
class Searcher {
 public:
  Searcher(const RuleEngine* rules, StateEvaluator* evaluator, SearchOptions opts)
      : rules_(rules), evaluator_(evaluator), opts_(opts) {}
  virtual ~Searcher() = default;

  virtual std::string_view name() const = 0;
  virtual Result<SearchResult> Run(const DiffTree& initial) = 0;

 protected:
  /// Tracks the global best across every evaluated state.
  struct BestTracker {
    DiffTree tree;
    double cost = std::numeric_limits<double>::infinity();
    ProgressSink* sink = nullptr;  ///< optional live publisher of improvements
    bool Offer(const DiffTree& t, double c, const Stopwatch& watch, size_t iteration,
               SearchStats* stats) {
      if (c >= cost) return false;
      cost = c;
      tree = t;
      const int64_t ms = watch.ElapsedMillis();
      stats->trace.push_back({ms, iteration, c});
      if (sink != nullptr) sink->Publish(t, c, iteration, ms);
      return true;
    }
  };

  /// Member conveniences over the free rollout helpers above, bound to this
  /// searcher's engine/evaluator/options.
  DiffTree Rollout(DiffTree state, Rng* rng, SearchStats* stats) {
    return RolloutState({rules_, evaluator_, &opts_}, std::move(state), rng, stats);
  }
  double RolloutAndEvaluate(const DiffTree& start, Rng* rng, SearchStats* stats,
                            DiffTree* best_state) {
    return RolloutAndEvaluateState({rules_, evaluator_, &opts_}, start, rng, stats,
                                   best_state);
  }
  bool StepRandom(DiffTree* state, std::vector<RuleApplication>* apps, Rng* rng) {
    return RolloutStepRandom({rules_, evaluator_, &opts_}, state, apps, rng);
  }

  const RuleEngine* rules_;
  StateEvaluator* evaluator_;
  SearchOptions opts_;
};

}  // namespace ifgen
