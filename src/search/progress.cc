#include "search/progress.h"

#include <chrono>

#include "obs/metrics.h"

namespace ifgen {

namespace {

obs::Counter& ProgressEventsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_progress_events_total",
      "Best-so-far improvements published by search progress sinks");
  return *c;
}

obs::Histogram& FirstResultMetric() {
  static obs::Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "ifgen_progress_first_result_us",
      "Time from progress-sink creation to the first published best-so-far "
      "result (microseconds)",
      obs::HistogramOptions{64.0, 2.0, 20});
  return *h;
}

}  // namespace

void ProgressSink::Publish(const DiffTree& tree, double cost, size_t iteration,
                          int64_t ms) {
  bool first = false;
  int64_t first_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    first = version_ == 0;
    if (first) first_us = birth_.ElapsedMicros();
    Event e;
    e.version = ++version_;
    e.cost = cost;
    e.iteration = iteration;
    e.ms = ms;
    e.tree = std::make_shared<DiffTree>(tree);
    if (events_.size() >= kMaxHistory) events_.erase(events_.begin());
    events_.push_back(std::move(e));
  }
  cv_.notify_all();
  ProgressEventsMetric().Inc();
  if (first) FirstResultMetric().Observe(static_cast<double>(first_us));
}

ProgressSink::Event ProgressSink::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.empty()) return Event{};
  return events_.back();
}

std::vector<ProgressSink::Event> ProgressSink::EventsAfter(
    uint64_t last_seen) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.version > last_seen) out.push_back(e);
  }
  return out;
}

uint64_t ProgressSink::WaitVersionAbove(uint64_t last_seen,
                                        int64_t wait_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (wait_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [&] { return version_ > last_seen || closed_; });
  }
  return version_;
}

uint64_t ProgressSink::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

void ProgressSink::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
}

bool ProgressSink::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace ifgen
