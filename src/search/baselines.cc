#include "search/baselines.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace ifgen {

Result<SearchResult> RandomSearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  SearchStats stats;
  BestTracker best;
  best.sink = opts_.progress.get();
  stats.initial_cost = evaluator_->SampleCost(initial, &rng);
  best.Offer(initial, stats.initial_cost, watch, 0, &stats);

  while (!deadline.Expired() && !rc.Stopped()) {
    if (opts_.max_iterations > 0 && stats.iterations >= opts_.max_iterations) break;
    ++stats.iterations;
    rc.Tick(watch, best.cost);
    // Same rollout machinery as MCTS (including intermediate-state
    // evaluation) so the comparison isolates the tree policy.
    DiffTree rollout_best;
    double cost = RolloutAndEvaluate(initial, &rng, &stats, &rollout_best);
    best.Offer(rollout_best, cost, watch, stats.iterations, &stats);
  }
  SearchResult r;
  r.best_tree = best.tree;
  r.best_cost = best.cost;
  r.stats = std::move(stats);
  r.stats.elapsed_ms = watch.ElapsedMillis();
  r.stats.stop_reason = rc.Resolve(r.stats.iterations);
  return r;
}

Result<SearchResult> GreedySearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  SearchStats stats;
  BestTracker best;
  best.sink = opts_.progress.get();
  stats.initial_cost = evaluator_->SampleCost(initial, &rng);
  best.Offer(initial, stats.initial_cost, watch, 0, &stats);

  while (!deadline.Expired() && !rc.Stopped()) {
    if (opts_.max_iterations > 0 && stats.iterations >= opts_.max_iterations) break;
    // One hill-climbing run; restarts differ through the shared rng (the
    // evaluator's sampled assignments vary run to run).
    DiffTree current = initial;
    double current_cost = evaluator_->SampleCost(current, &rng);
    bool improved = true;
    while (improved && !deadline.Expired() && !rc.Stopped()) {
      if (opts_.max_iterations > 0 && stats.iterations >= opts_.max_iterations) break;
      ++stats.iterations;
      rc.Tick(watch, best.cost);
      improved = false;
      std::vector<RuleApplication> apps = rules_->EnumerateApplications(current);
      stats.RecordFanout(apps.size());
      DiffTree best_next;
      double best_next_cost = current_cost;
      for (const RuleApplication& app : apps) {
        auto next = rules_->Apply(current, app);
        if (!next.ok()) continue;
        ++stats.states_expanded;
        double cost = evaluator_->SampleCost(*next, &rng);
        best.Offer(*next, cost, watch, stats.iterations, &stats);
        if (cost < best_next_cost) {
          best_next_cost = cost;
          best_next = std::move(next).MoveValueUnsafe();
        }
        if (deadline.Expired()) break;
      }
      if (best_next_cost < current_cost) {
        current = std::move(best_next);
        current_cost = best_next_cost;
        improved = true;
      }
    }
  }
  SearchResult r;
  r.best_tree = best.tree;
  r.best_cost = best.cost;
  r.stats = std::move(stats);
  r.stats.elapsed_ms = watch.ElapsedMillis();
  r.stats.stop_reason = rc.Resolve(r.stats.iterations);
  return r;
}

Result<SearchResult> BeamSearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  SearchStats stats;
  BestTracker best;
  best.sink = opts_.progress.get();
  stats.initial_cost = evaluator_->SampleCost(initial, &rng);
  best.Offer(initial, stats.initial_cost, watch, 0, &stats);

  struct Scored {
    DiffTree tree;
    double cost;
  };
  std::vector<Scored> beam;
  beam.push_back({initial, stats.initial_cost});
  std::unordered_set<uint64_t> seen{initial.CanonicalHash()};

  while (!deadline.Expired() && !rc.Stopped() && !beam.empty()) {
    if (opts_.max_iterations > 0 && stats.iterations >= opts_.max_iterations) break;
    ++stats.iterations;
    rc.Tick(watch, best.cost);
    std::vector<Scored> next_level;
    for (const Scored& s : beam) {
      std::vector<RuleApplication> apps = rules_->EnumerateApplications(s.tree);
      stats.RecordFanout(apps.size());
      for (const RuleApplication& app : apps) {
        auto next = rules_->Apply(s.tree, app);
        if (!next.ok()) continue;
        uint64_t h = next->CanonicalHash();
        if (!seen.insert(h).second) {
          ++stats.transposition_hits;
          continue;
        }
        ++stats.states_expanded;
        double cost = evaluator_->SampleCost(*next, &rng);
        best.Offer(*next, cost, watch, stats.iterations, &stats);
        next_level.push_back({std::move(next).MoveValueUnsafe(), cost});
        if (deadline.Expired()) break;
      }
      if (deadline.Expired()) break;
    }
    std::sort(next_level.begin(), next_level.end(),
              [](const Scored& a, const Scored& b) { return a.cost < b.cost; });
    if (next_level.size() > opts_.beam_width) next_level.resize(opts_.beam_width);
    beam = std::move(next_level);
  }
  SearchResult r;
  r.best_tree = best.tree;
  r.best_cost = best.cost;
  r.stats = std::move(stats);
  r.stats.elapsed_ms = watch.ElapsedMillis();
  r.stats.stop_reason = rc.Resolve(r.stats.iterations);
  return r;
}

Result<SearchResult> ExhaustiveSearcher::Run(const DiffTree& initial) {
  Rng rng(opts_.seed);
  Stopwatch watch;
  RunControl rc(opts_);
  Deadline& deadline = rc.deadline();
  SearchStats stats;
  BestTracker best;
  best.sink = opts_.progress.get();
  stats.initial_cost = evaluator_->SampleCost(initial, &rng);
  best.Offer(initial, stats.initial_cost, watch, 0, &stats);

  struct Item {
    DiffTree tree;
    size_t depth;
  };
  std::deque<Item> queue;
  queue.push_back({initial, 0});
  std::unordered_set<uint64_t> seen{initial.CanonicalHash()};
  visited_states_ = 1;
  complete_ = true;

  while (!queue.empty()) {
    if (deadline.Expired() || rc.Stopped() ||
        visited_states_ >= opts_.exhaustive_max_states) {
      complete_ = false;
      break;
    }
    Item item = std::move(queue.front());
    queue.pop_front();
    ++stats.iterations;
    rc.Tick(watch, best.cost);
    if (item.depth >= opts_.exhaustive_max_depth) {
      complete_ = false;  // frontier truncated by the depth bound
      continue;
    }
    std::vector<RuleApplication> apps = rules_->EnumerateApplications(item.tree);
    stats.RecordFanout(apps.size());
    for (const RuleApplication& app : apps) {
      auto next = rules_->Apply(item.tree, app);
      if (!next.ok()) continue;
      uint64_t h = next->CanonicalHash();
      if (!seen.insert(h).second) {
        ++stats.transposition_hits;
        continue;
      }
      ++stats.states_expanded;
      ++visited_states_;
      double cost = evaluator_->SampleCost(*next, &rng);
      best.Offer(*next, cost, watch, stats.iterations, &stats);
      queue.push_back({std::move(next).MoveValueUnsafe(), item.depth + 1});
      if (visited_states_ >= opts_.exhaustive_max_states) break;
    }
  }
  SearchResult r;
  r.best_tree = best.tree;
  r.best_cost = best.cost;
  r.stats = std::move(stats);
  r.stats.elapsed_ms = watch.ElapsedMillis();
  r.stats.stop_reason = rc.Resolve(r.stats.iterations);
  return r;
}

}  // namespace ifgen
