#pragma once

#include "core/options.h"
#include "search/mcts.h"

namespace ifgen {

/// \brief Parallel MCTS over difftree states.
///
/// Two strategies (paper's search is embarrassingly parallel at both
/// levels):
///
///  - **Root parallelism** (`ParallelMode::kRoot`): one independent search
///    tree per thread, each on its own RNG stream split from the seed. The
///    trees share the sharded transposition table (so a state expanded by
///    one tree is a recognized transposition in all others and its sampled
///    cost is reused) and the global best tracker (the anytime result). The
///    iteration budget is divided across trees; after the run the per-tree
///    root actions are merged by canonical hash and ranked by
///    visit-weighted mean reward (`SearchResult::root_actions`).
///
///  - **Leaf parallelism** (`ParallelMode::kLeaf`): a single tree whose
///    freshly expanded children's simulations fan out to the pool,
///    `leaf_rollouts` rollouts per child. Task results merge in
///    deterministic child order; scheduling can still shift sampled costs
///    through shared-cache timing (see ParallelOptions).
///
/// Determinism: with `num_threads <= 1` this delegates to the serial
/// MctsSearcher — results are bit-for-bit identical for a fixed seed (the
/// contract tests assert it).
class ParallelMctsSearcher final : public Searcher {
 public:
  ParallelMctsSearcher(const RuleEngine* rules, StateEvaluator* evaluator,
                       SearchOptions opts, ParallelOptions parallel)
      : Searcher(rules, evaluator, opts), parallel_(parallel) {}

  std::string_view name() const override { return "mcts-parallel"; }
  Result<SearchResult> Run(const DiffTree& initial) override;

  const ParallelOptions& parallel_options() const { return parallel_; }

 private:
  Result<SearchResult> RunRootParallel(const DiffTree& initial);
  Result<SearchResult> RunLeafParallel(const DiffTree& initial);

  ParallelOptions parallel_;
};

}  // namespace ifgen
