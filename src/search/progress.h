#pragma once

/// \file
/// \brief Thread-safe publisher of best-so-far search improvements.
///
/// Every time a searcher's best tracker accepts a new lowest-cost DiffTree,
/// it publishes a versioned Event here; consumers (GenerationService job
/// records, the HTTP long-poll/SSE endpoints, tests) read the latest
/// snapshot or block on a condvar for the next version — the anytime curve
/// streamed live instead of reconstructed post-hoc from SearchStats::trace.
///
/// Publishing consumes no RNG draws and never changes control flow in the
/// search, so attaching a sink cannot perturb results: a run with a sink is
/// bit-identical to a run without one.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "difftree/difftree.h"
#include "util/timer.h"

namespace ifgen {

/// \brief Versioned best-so-far stream with a bounded replay buffer.
///
/// Versions start at 1 and increase by one per published improvement, so
/// `version() > last_seen` is the long-poll wakeup predicate. The history
/// keeps the most recent kMaxHistory events (drop-oldest); the latest event
/// is always retained.
class ProgressSink {
 public:
  struct Event {
    uint64_t version = 0;   ///< 1-based publish sequence number
    double cost = 0.0;      ///< the new best cost
    size_t iteration = 0;   ///< search iteration that found it
    int64_t ms = 0;         ///< search-relative elapsed milliseconds
    std::shared_ptr<const DiffTree> tree;  ///< the new best state
  };

  static constexpr size_t kMaxHistory = 256;

  ProgressSink() = default;
  ProgressSink(const ProgressSink&) = delete;
  ProgressSink& operator=(const ProgressSink&) = delete;

  /// Records a new best-so-far (copies the tree) and wakes all waiters.
  /// Publishing after Close() is ignored (late stragglers on shutdown).
  void Publish(const DiffTree& tree, double cost, size_t iteration, int64_t ms);

  /// Latest event, or a default Event (version 0, null tree) before the
  /// first publish.
  Event Latest() const;

  /// Events with version > last_seen, oldest first. Events that fell out of
  /// the bounded history are gone; the caller sees the gap as a version
  /// jump (versions remain strictly increasing).
  std::vector<Event> EventsAfter(uint64_t last_seen) const;

  /// Blocks until version() > last_seen, the sink is closed, or wait_ms
  /// elapses (wait_ms <= 0 returns immediately). Returns version().
  uint64_t WaitVersionAbove(uint64_t last_seen, int64_t wait_ms) const;

  uint64_t version() const;

  /// Marks the stream complete (terminal job state) and wakes all waiters.
  /// Idempotent.
  void Close();
  bool closed() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<Event> events_;
  uint64_t version_ = 0;
  bool closed_ = false;
  Stopwatch birth_;  ///< time-to-first-result observability anchor
};

}  // namespace ifgen
