#include "search/search_common.h"

namespace ifgen {

DiffTree Searcher::Rollout(DiffTree state, Rng* rng, SearchStats* stats) {
  ++stats->rollouts;
  for (size_t step = 0; step < opts_.rollout_len; ++step) {
    if (opts_.rollout_stop_prob > 0 && rng->Bernoulli(opts_.rollout_stop_prob)) break;
    std::vector<RuleApplication> apps = rules_->EnumerateApplications(state);
    stats->RecordFanout(apps.size());
    if (apps.empty()) break;
    // Retry on application failure (e.g. node-count guard) without burning
    // the whole rollout.
    bool advanced = false;
    for (int attempt = 0; attempt < 4 && !advanced && !apps.empty(); ++attempt) {
      size_t pick = rng->UniformIndex(apps.size());
      auto next = rules_->Apply(state, apps[pick]);
      if (next.ok()) {
        state = std::move(next).MoveValueUnsafe();
        advanced = true;
      } else {
        apps.erase(apps.begin() + static_cast<long>(pick));
      }
    }
    if (!advanced) break;
    ++stats->rollout_steps;
  }
  return state;
}

double Searcher::RolloutAndEvaluate(const DiffTree& start, Rng* rng,
                                    SearchStats* stats, DiffTree* best_state) {
  ++stats->rollouts;
  DiffTree state = start;
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&](const DiffTree& s) {
    double cost = evaluator_->SampleCost(s, rng);
    if (cost < best_cost) {
      best_cost = cost;
      *best_state = s;
    }
  };
  const bool saturate = opts_.rollout_saturate_prob > 0 &&
                        rng->Bernoulli(opts_.rollout_saturate_prob);
  for (size_t step = 0; step < opts_.rollout_len; ++step) {
    if (!saturate && opts_.rollout_stop_prob > 0 &&
        rng->Bernoulli(opts_.rollout_stop_prob)) {
      break;
    }
    std::vector<RuleApplication> apps = rules_->EnumerateApplications(state);
    stats->RecordFanout(apps.size());
    if (apps.empty()) break;
    if (saturate) {
      // Canonical factoring: first forward application in pre-order.
      bool advanced = false;
      for (const RuleApplication& a : apps) {
        if (!rules_->IsForward(a)) continue;
        auto next = rules_->Apply(state, a);
        if (!next.ok()) continue;
        state = std::move(next).MoveValueUnsafe();
        advanced = true;
        break;
      }
      if (!advanced) break;  // forward fixpoint reached
    } else {
      if (!StepRandom(&state, &apps, rng)) break;
    }
    ++stats->rollout_steps;
    if (opts_.rollout_eval_prob > 0 && rng->Bernoulli(opts_.rollout_eval_prob)) {
      consider(state);
    }
  }
  consider(state);  // the terminus is always evaluated (paper behavior)
  return best_cost;
}

bool Searcher::StepRandom(DiffTree* state, std::vector<RuleApplication>* apps,
                          Rng* rng) {
  // Optionally restrict this step to the forward (factoring) subset.
  std::vector<RuleApplication>* pool = apps;
  std::vector<RuleApplication> forward;
  if (opts_.rollout_forward_bias > 0.5 &&
      rng->Bernoulli(opts_.rollout_forward_bias)) {
    for (const RuleApplication& a : *apps) {
      if (rules_->IsForward(a)) forward.push_back(a);
    }
    if (!forward.empty()) pool = &forward;
  }
  for (int attempt = 0; attempt < 4 && !pool->empty(); ++attempt) {
    size_t pick = rng->UniformIndex(pool->size());
    auto next = rules_->Apply(*state, (*pool)[pick]);
    if (next.ok()) {
      *state = std::move(next).MoveValueUnsafe();
      return true;
    }
    pool->erase(pool->begin() + static_cast<long>(pick));
  }
  return false;
}

}  // namespace ifgen
