#include "search/search_common.h"

#include <algorithm>

namespace ifgen {

RunControl::RunControl(const SearchOptions& opts)
    : opts_(opts),
      deadline_(EffectiveSearchBudgetMs(opts.time_budget_ms, opts.time_control)) {
  const bool active = opts.time_control.active();
  if (opts.stop != nullptr) {
    stop_ = opts.stop.get();
  } else if (active) {
    stop_ = &local_stop_;
  }
  if (active) {
    timeman_ = std::make_unique<TimeManager>(opts.time_control,
                                             opts.max_iterations, stop_);
    check_interval_ = std::max<uint32_t>(1, opts.time_control.check_interval);
  }
}

void RunControl::Tick(const Stopwatch& watch, double best_cost) {
  if (timeman_ == nullptr) return;
  if (++since_check_ < check_interval_) return;
  timeman_->Update(since_check_, watch.ElapsedMillis(), best_cost);
  since_check_ = 0;
}

StopReason RunControl::Resolve(size_t iterations) const {
  return ResolveStopReason(stop_, deadline_.Expired(), opts_.time_budget_ms,
                           opts_.time_control, iterations, opts_.max_iterations);
}

void SearchStats::Merge(const SearchStats& other) {
  iterations += other.iterations;
  states_expanded += other.states_expanded;
  rollouts += other.rollouts;
  rollout_steps += other.rollout_steps;
  transposition_hits += other.transposition_hits;
  if (initial_cost == 0.0) initial_cost = other.initial_cost;
  if (stop_reason == StopReason::kNone) stop_reason = other.stop_reason;
  fanout_samples += other.fanout_samples;
  fanout_sum += other.fanout_sum;
  fanout_max = std::max(fanout_max, other.fanout_max);
  root_seeded += other.root_seeded;
  if (rule_uses.size() < other.rule_uses.size()) {
    rule_uses.resize(other.rule_uses.size(), 0);
    rule_reward_sum.resize(other.rule_reward_sum.size(), 0.0);
  }
  for (size_t i = 0; i < other.rule_uses.size(); ++i) {
    rule_uses[i] += other.rule_uses[i];
    rule_reward_sum[i] += other.rule_reward_sum[i];
  }
  trace.insert(trace.end(), other.trace.begin(), other.trace.end());
  std::sort(trace.begin(), trace.end(), [](const BestTrace& a, const BestTrace& b) {
    return a.ms != b.ms ? a.ms < b.ms : a.cost > b.cost;
  });
}

DiffTree RolloutState(const RolloutContext& ctx, DiffTree state, Rng* rng,
                      SearchStats* stats) {
  const SearchOptions& opts = *ctx.opts;
  ++stats->rollouts;
  for (size_t step = 0; step < opts.rollout_len; ++step) {
    if (opts.rollout_stop_prob > 0 && rng->Bernoulli(opts.rollout_stop_prob)) break;
    std::vector<RuleApplication> apps = ctx.rules->EnumerateApplications(state);
    stats->RecordFanout(apps.size());
    if (apps.empty()) break;
    // Retry on application failure (e.g. node-count guard) without burning
    // the whole rollout.
    bool advanced = false;
    for (int attempt = 0; attempt < 4 && !advanced && !apps.empty(); ++attempt) {
      size_t pick = rng->UniformIndex(apps.size());
      auto next = ctx.rules->Apply(state, apps[pick]);
      if (next.ok()) {
        state = std::move(next).MoveValueUnsafe();
        advanced = true;
      } else {
        apps.erase(apps.begin() + static_cast<long>(pick));
      }
    }
    if (!advanced) break;
    ++stats->rollout_steps;
  }
  return state;
}

double RolloutAndEvaluateState(const RolloutContext& ctx, const DiffTree& start,
                               Rng* rng, SearchStats* stats, DiffTree* best_state) {
  const SearchOptions& opts = *ctx.opts;
  ++stats->rollouts;
  DiffTree state = start;
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&](const DiffTree& s) {
    double cost = ctx.evaluator->SampleCost(s, rng);
    if (cost < best_cost) {
      best_cost = cost;
      *best_state = s;
    }
  };
  const bool saturate =
      opts.rollout_saturate_prob > 0 && rng->Bernoulli(opts.rollout_saturate_prob);
  for (size_t step = 0; step < opts.rollout_len; ++step) {
    if (!saturate && opts.rollout_stop_prob > 0 &&
        rng->Bernoulli(opts.rollout_stop_prob)) {
      break;
    }
    std::vector<RuleApplication> apps = ctx.rules->EnumerateApplications(state);
    stats->RecordFanout(apps.size());
    if (apps.empty()) break;
    if (saturate) {
      // Canonical factoring: first forward application in pre-order.
      bool advanced = false;
      for (const RuleApplication& a : apps) {
        if (!ctx.rules->IsForward(a)) continue;
        auto next = ctx.rules->Apply(state, a);
        if (!next.ok()) continue;
        state = std::move(next).MoveValueUnsafe();
        advanced = true;
        break;
      }
      if (!advanced) break;  // forward fixpoint reached
    } else {
      if (!RolloutStepRandom(ctx, &state, &apps, rng)) break;
    }
    ++stats->rollout_steps;
    if (opts.rollout_eval_prob > 0 && rng->Bernoulli(opts.rollout_eval_prob)) {
      consider(state);
    }
  }
  consider(state);  // the terminus is always evaluated (paper behavior)
  return best_cost;
}

bool RolloutStepRandom(const RolloutContext& ctx, DiffTree* state,
                       std::vector<RuleApplication>* apps, Rng* rng) {
  const SearchOptions& opts = *ctx.opts;
  // Optionally restrict this step to the forward (factoring) subset.
  std::vector<RuleApplication>* pool = apps;
  std::vector<RuleApplication> forward;
  if (opts.rollout_forward_bias > 0.5 && rng->Bernoulli(opts.rollout_forward_bias)) {
    for (const RuleApplication& a : *apps) {
      if (ctx.rules->IsForward(a)) forward.push_back(a);
    }
    if (!forward.empty()) pool = &forward;
  }
  for (int attempt = 0; attempt < 4 && !pool->empty(); ++attempt) {
    size_t pick = rng->UniformIndex(pool->size());
    auto next = ctx.rules->Apply(*state, (*pool)[pick]);
    if (next.ok()) {
      *state = std::move(next).MoveValueUnsafe();
      return true;
    }
    pool->erase(pool->begin() + static_cast<long>(pick));
  }
  return false;
}

}  // namespace ifgen
