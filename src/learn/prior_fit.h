#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ifgen {
namespace learn {

/// \brief Accumulated search outcomes of one rule, summed over logged
/// searches: how often the rule's applications were expanded into tree
/// children, and the total backpropagated reward those children received
/// (SearchStats::rule_uses / rule_reward_sum, keyed back to names through
/// the RuleEngine).
struct RuleOutcome {
  std::string name;
  uint64_t uses = 0;
  double reward_sum = 0.0;

  double MeanReward() const {
    return uses == 0 ? 0.0 : reward_sum / static_cast<double>(uses);
  }
};

/// \brief Fits ActionPriorModel rule weights from logged outcomes: each
/// rule's weight is its mean backpropagated reward relative to the
/// use-weighted global mean, clipped to [0.2, 3.0] so one lopsided trace
/// cannot zero a rule out or let it dominate. Rules with fewer than
/// `min_uses` observations are skipped (the hand-set BaseRuleWeight stays
/// their fallback). The result is sorted by rule name — the canonical order
/// PriorOptions::learned_weights expects (it is hashed into the service's
/// options fingerprint).
std::vector<std::pair<std::string, double>> FitPriorWeights(
    const std::vector<RuleOutcome>& outcomes, uint64_t min_uses = 8);

/// Serializes weights as {"version":1,"weights":{name:w,...}} (atomic
/// tmp + rename, like the experience store it sits alongside).
Status SavePriorWeights(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& weights);

/// Loads weights saved by SavePriorWeights, sorted by name. A missing file
/// is NotFound; a malformed one is a ParseError — callers treat both as
/// "keep the hand-set weights".
Result<std::vector<std::pair<std::string, double>>> LoadPriorWeights(
    const std::string& path);

}  // namespace learn
}  // namespace ifgen
