#include "learn/experience.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "util/hash.h"
#include "util/logging.h"

namespace ifgen {
namespace learn {

namespace {

// Wire format (little-endian, docs/learning.md):
//   "IFEX" | version u32 | count u64 | checksum u64 | count * 48-byte entries
// The checksum is HashBytes over the entry payload, so a bit flip anywhere in
// the body (or a chopped tail) invalidates the whole file before any record
// is merged.
constexpr char kMagic[4] = {'I', 'F', 'E', 'X'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr size_t kEntryBytes = 6 * 8;

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t DoubleBits(double d) {
  uint64_t v = 0;
  static_assert(sizeof v == sizeof d, "double must be 64-bit");
  std::memcpy(&v, &d, sizeof v);
  return v;
}

double BitsDouble(uint64_t v) {
  double d = 0;
  std::memcpy(&d, &v, sizeof d);
  return d;
}

uint64_t MapKey(uint64_t schema_fp, uint64_t canonical) {
  return HashCombine(schema_fp, canonical);
}

}  // namespace

void ExperienceStore::Merge(const ExperienceRecord& rec) {
  map_.Mutate(MapKey(rec.schema_fp, rec.canonical),
              [&rec](ExperienceRecord& e, bool inserted) {
                if (inserted) {
                  e = rec;
                  return 0;
                }
                if (e.schema_fp != rec.schema_fp || e.canonical != rec.canonical) {
                  return 0;  // 64-bit key collision: first identity owns the slot
                }
                e.visits += rec.visits;
                if (rec.best_cost < e.best_cost) {
                  e.best_cost = rec.best_cost;
                  e.best_action = rec.best_action;
                  e.epoch = rec.epoch;
                }
                return 0;
              });
}

void ExperienceStore::Record(const ExperienceRecord& rec) {
  if (!std::isfinite(rec.best_cost)) return;
  Merge(rec);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  learn_internal::RecordedMetric().Inc();
}

std::optional<ExperienceRecord> ExperienceStore::Probe(uint64_t schema_fp,
                                                       uint64_t canonical) const {
  std::optional<ExperienceRecord> rec = map_.Lookup(MapKey(schema_fp, canonical));
  if (rec.has_value() && rec->schema_fp == schema_fp && rec->canonical == canonical) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    learn_internal::StoreHitsMetric().Inc();
    return rec;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  learn_internal::StoreMissesMetric().Inc();
  return std::nullopt;
}

std::vector<ExperienceRecord> ExperienceStore::Snapshot(uint64_t schema_fp,
                                                        size_t limit) const {
  std::vector<ExperienceRecord> out;
  map_.ForEach([&out, schema_fp](uint64_t, const ExperienceRecord& e) {
    if (e.schema_fp == schema_fp) out.push_back(e);
  });
  std::stable_sort(out.begin(), out.end(),
                   [](const ExperienceRecord& a, const ExperienceRecord& b) {
                     if (a.visits != b.visits) return a.visits > b.visits;
                     return a.canonical < b.canonical;
                   });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::vector<ExperienceRecord> ExperienceStore::All() const {
  std::vector<ExperienceRecord> out;
  map_.ForEach([&out](uint64_t, const ExperienceRecord& e) { out.push_back(e); });
  std::stable_sort(out.begin(), out.end(),
                   [](const ExperienceRecord& a, const ExperienceRecord& b) {
                     if (a.schema_fp != b.schema_fp) return a.schema_fp < b.schema_fp;
                     return a.canonical < b.canonical;
                   });
  return out;
}

Status ExperienceStore::SaveTo(const std::string& path) const {
  const std::vector<ExperienceRecord> records = All();
  std::string payload;
  payload.reserve(records.size() * kEntryBytes);
  for (const ExperienceRecord& r : records) {
    PutU64(&payload, r.schema_fp);
    PutU64(&payload, r.canonical);
    PutU64(&payload, r.best_action);
    PutU64(&payload, DoubleBits(r.best_cost));
    PutU64(&payload, r.visits);
    PutU64(&payload, r.epoch);
  }

  std::string blob;
  blob.reserve(kHeaderBytes + payload.size());
  blob.append(kMagic, sizeof kMagic);
  for (int i = 0; i < 4; ++i) {
    blob.push_back(static_cast<char>((kVersion >> (8 * i)) & 0xff));
  }
  PutU64(&blob, static_cast<uint64_t>(records.size()));
  PutU64(&blob, HashBytes(payload));
  blob += payload;

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("experience store: cannot open " + tmp +
                            " for writing");
  }
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != blob.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("experience store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("experience store: rename to " + path + " failed");
  }
  saves_.fetch_add(1, std::memory_order_relaxed);
  learn_internal::SavesMetric().Inc();
  return Status::OK();
}

Result<size_t> ExperienceStore::LoadFrom(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Missing file: the normal first boot. Cold start without noise.
    loads_.fetch_add(1, std::memory_order_relaxed);
    learn_internal::LoadsMetric().Inc();
    return static_cast<size_t>(0);
  }
  std::string blob;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) blob.append(buf, n);
  std::fclose(f);

  // Validate everything before merging anything: a bad file must be a clean
  // cold start, never partial state.
  auto reject = [&](const char* why) -> Result<size_t> {
    IFGEN_LOG_C(Warning, "learn")
        << "experience store " << path << ": " << why
        << " — starting cold (" << blob.size() << " bytes on disk)";
    loads_.fetch_add(1, std::memory_order_relaxed);
    learn_internal::LoadsMetric().Inc();
    return static_cast<size_t>(0);
  };
  if (blob.size() < kHeaderBytes) return reject("truncated header");
  if (std::memcmp(blob.data(), kMagic, sizeof kMagic) != 0) {
    return reject("bad magic");
  }
  uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(static_cast<unsigned char>(blob[4 + i]))
               << (8 * i);
  }
  if (version != kVersion) return reject("unsupported version");
  const uint64_t count = GetU64(blob.data() + 8);
  const uint64_t checksum = GetU64(blob.data() + 16);
  if (blob.size() != kHeaderBytes + count * kEntryBytes) {
    return reject("entry count does not match file size");
  }
  const std::string_view payload(blob.data() + kHeaderBytes,
                                 blob.size() - kHeaderBytes);
  if (HashBytes(payload) != checksum) return reject("checksum mismatch");

  std::vector<ExperienceRecord> records;
  records.reserve(count);
  uint64_t max_epoch = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const char* p = payload.data() + i * kEntryBytes;
    ExperienceRecord r;
    r.schema_fp = GetU64(p);
    r.canonical = GetU64(p + 8);
    r.best_action = GetU64(p + 16);
    r.best_cost = BitsDouble(GetU64(p + 24));
    r.visits = GetU64(p + 32);
    r.epoch = GetU64(p + 40);
    if (!std::isfinite(r.best_cost)) return reject("non-finite cost entry");
    max_epoch = std::max(max_epoch, r.epoch);
    records.push_back(r);
  }
  for (const ExperienceRecord& r : records) Merge(r);

  // Records written by this process generation must be distinguishable from
  // everything loaded, so the epoch moves strictly past the file's.
  uint64_t cur = epoch_.load(std::memory_order_relaxed);
  while (cur <= max_epoch &&
         !epoch_.compare_exchange_weak(cur, max_epoch + 1,
                                       std::memory_order_relaxed)) {
  }
  loads_.fetch_add(1, std::memory_order_relaxed);
  learn_internal::LoadsMetric().Inc();
  return records.size();
}

}  // namespace learn
}  // namespace ifgen
