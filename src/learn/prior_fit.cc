#include "learn/prior_fit.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace ifgen {
namespace learn {

namespace {
constexpr double kMinWeight = 0.2;
constexpr double kMaxWeight = 3.0;
}  // namespace

std::vector<std::pair<std::string, double>> FitPriorWeights(
    const std::vector<RuleOutcome>& outcomes, uint64_t min_uses) {
  // Use-weighted global mean reward: the normalizer that maps "average rule"
  // to weight 1.0, so fitted weights are directly comparable to the
  // hand-set BaseRuleWeight scale.
  uint64_t total_uses = 0;
  double total_reward = 0.0;
  for (const RuleOutcome& o : outcomes) {
    if (o.uses < min_uses) continue;
    total_uses += o.uses;
    total_reward += o.reward_sum;
  }
  std::vector<std::pair<std::string, double>> weights;
  if (total_uses == 0) return weights;
  const double global_mean = total_reward / static_cast<double>(total_uses);
  if (!(global_mean > 0.0) || !std::isfinite(global_mean)) return weights;
  for (const RuleOutcome& o : outcomes) {
    if (o.uses < min_uses) continue;
    double w = o.MeanReward() / global_mean;
    if (!std::isfinite(w)) continue;
    w = std::min(kMaxWeight, std::max(kMinWeight, w));
    weights.emplace_back(o.name, w);
  }
  std::sort(weights.begin(), weights.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return weights;
}

Status SavePriorWeights(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& weights) {
  JsonValue obj = JsonValue::Object();
  obj.Set("version", JsonValue::Int(1));
  JsonValue w = JsonValue::Object();
  for (const auto& [name, weight] : weights) {
    w.Set(name, JsonValue::Double(weight));
  }
  obj.Set("weights", std::move(w));
  const std::string text = WriteJson(obj) + "\n";

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("prior weights: cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    std::remove(tmp.c_str());
    return Status::Internal("prior weights: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("prior weights: rename to " + path + " failed");
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, double>>> LoadPriorWeights(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("prior weights file not found: " + path);
  }
  std::string text;
  char buf[1 << 12];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  IFGEN_ASSIGN_OR_RETURN(JsonValue v, ParseJson(text));
  if (!v.is_object()) {
    return Status::ParseError("prior weights: top level is not an object");
  }
  const JsonValue* version = v.Find("version");
  if (version == nullptr || !version->is_int() || version->AsInt() != 1) {
    return Status::ParseError("prior weights: missing/unsupported version");
  }
  const JsonValue* w = v.Find("weights");
  if (w == nullptr || !w->is_object()) {
    return Status::ParseError("prior weights: missing 'weights' object");
  }
  std::vector<std::pair<std::string, double>> weights;
  for (const auto& [name, value] : w->members()) {
    if (!value.is_number() || !std::isfinite(value.AsDouble())) {
      return Status::ParseError("prior weights: non-numeric weight for '" +
                                name + "'");
    }
    weights.emplace_back(name, value.AsDouble());
  }
  std::sort(weights.begin(), weights.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return weights;
}

}  // namespace learn
}  // namespace ifgen
