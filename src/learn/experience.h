#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "runtime/tt.h"
#include "util/status.h"

namespace ifgen {
namespace learn {

namespace learn_internal {
// Function-local statics in inline functions are shared across TUs, so every
// store in the process feeds the same registry counters (tt.h idiom).
inline obs::Counter& StoreHitsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_store_hits_total",
      "ExperienceStore probes that found a record");
  return *c;
}
inline obs::Counter& StoreMissesMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_store_misses_total",
      "ExperienceStore probes that found nothing");
  return *c;
}
inline obs::Counter& SeededMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_seeded_total",
      "Experience records handed to a searcher as warm-start seed");
  return *c;
}
inline obs::Counter& RecordedMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_recorded_total",
      "Experience records merged into a store from finished searches");
  return *c;
}
inline obs::Counter& SavesMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_saves_total", "ExperienceStore file saves");
  return *c;
}
inline obs::Counter& LoadsMetric() {
  static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
      "ifgen_learn_loads_total",
      "ExperienceStore file loads (cold starts count too)");
  return *c;
}
}  // namespace learn_internal

/// \brief One unit of persisted search experience: for a canonical state
/// under one cost identity (`schema_fp`, the service's TtStoreKey), the best
/// sampled cost seen, the canonical hash of the successor the search
/// preferred, how often the state was visited, and the store epoch that last
/// improved it.
///
/// `best_cost` is the state's OWN sampled cost. Under
/// `EvalOptions::state_keyed_sampling` that cost is a pure function of
/// (state, options, seed), which is what makes replaying it into a
/// `TranspositionTable` via `SeedPeerCost` sound: a seeded entry changes how
/// much work a later search does, never which values it observes.
struct ExperienceRecord {
  uint64_t schema_fp = 0;
  uint64_t canonical = 0;
  /// Canonical hash of the best known successor state (0 = none recorded).
  uint64_t best_action = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  uint64_t visits = 0;
  /// Store epoch (process generation) that last lowered `best_cost`.
  uint64_t epoch = 0;

  bool operator==(const ExperienceRecord& o) const {
    return schema_fp == o.schema_fp && canonical == o.canonical &&
           best_action == o.best_action && best_cost == o.best_cost &&
           visits == o.visits && epoch == o.epoch;
  }
};

/// \brief Sharded, persistent store of search experience, shared by every
/// job of a `GenerationService` and (via save/load) by every generation of a
/// worker process.
///
/// Concurrency: a ShardedMap keyed by HashCombine(schema_fp, canonical);
/// Record/Probe/Snapshot/SaveTo are all safe to call concurrently with a
/// running search. Merging is best-cost-wins (a lower sampled cost replaces
/// action + cost + epoch; visit counts accumulate), so loading a file into a
/// warm store and re-loading the same file are both idempotent-safe.
///
/// Persistence: versioned little-endian binary ("IFEX" magic, version,
/// count, payload checksum), written atomically via tmp + rename. A missing,
/// truncated, bit-flipped, or wrong-version file loads as a clean cold start
/// with a Warning log — never a crash, never partial state (the payload is
/// fully validated before the first record is merged). See docs/learning.md.
class ExperienceStore {
 public:
  explicit ExperienceStore(size_t num_shards = 16) : map_(num_shards) {}

  ExperienceStore(const ExperienceStore&) = delete;
  ExperienceStore& operator=(const ExperienceStore&) = delete;

  /// Merges `rec` (best-cost-wins; visits accumulate). Records with a
  /// non-finite best cost are dropped — the wire format and SeedPeerCost
  /// both reject them anyway.
  void Record(const ExperienceRecord& rec);

  /// The record for (schema_fp, canonical), if any. Counts a store hit or
  /// miss either way.
  std::optional<ExperienceRecord> Probe(uint64_t schema_fp,
                                        uint64_t canonical) const;

  /// Up to `limit` records for `schema_fp`, most-visited first (canonical
  /// ascending as the deterministic tie-break) — the warm-start seed batch
  /// for one search.
  std::vector<ExperienceRecord> Snapshot(uint64_t schema_fp,
                                         size_t limit) const;

  /// All records, sorted by (schema_fp, canonical) — the deterministic
  /// serialization order used by SaveTo and the round-trip tests.
  std::vector<ExperienceRecord> All() const;

  /// Writes every record to `path` atomically (tmp + rename). Safe while
  /// searches are recording: the snapshot is taken shard-by-shard.
  Status SaveTo(const std::string& path) const;

  /// Merges records from `path`. Returns the number of records merged: 0 on
  /// a missing file (silent cold start) and 0 with a Warning log on a
  /// corrupt/truncated/wrong-version file — validation happens before any
  /// merge, so a bad file never leaves partial state behind. On success the
  /// store's epoch advances past the highest epoch seen in the file.
  Result<size_t> LoadFrom(const std::string& path);

  /// Current process-generation epoch, stamped into records via Record by
  /// callers that pass `epoch() `. Starts at 1 for a cold store.
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  uint64_t saves() const { return saves_.load(std::memory_order_relaxed); }
  uint64_t loads() const { return loads_.load(std::memory_order_relaxed); }

 private:
  void Merge(const ExperienceRecord& rec);

  ShardedMap<ExperienceRecord> map_;
  std::atomic<uint64_t> epoch_{1};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> recorded_{0};
  mutable std::atomic<uint64_t> saves_{0};
  std::atomic<uint64_t> loads_{0};
};

}  // namespace learn
}  // namespace ifgen
