#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ifgen {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug"/"info"/"warning"|"warn"/"error"/"fatal" (case-insensitive).
/// Returns false (and leaves `out` untouched) on anything else.
bool ParseLogLevel(std::string_view name, LogLevel* out);

/// Applies the IFGEN_LOG_LEVEL environment variable, when set to a name
/// ParseLogLevel accepts. Call once at process start (examples/ binaries do);
/// an explicit --log-level flag should override by calling SetLogLevel after.
void InitLogLevelFromEnv();

namespace internal {

/// Stream-style log sink that emits on destruction. `component` (optional)
/// tags the subsystem: "[WARN http ...]".
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line,
             const char* component = nullptr);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

[[noreturn]] void FatalCheckFailure(const char* file, int line, const char* expr,
                                    const std::string& message);

class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckFailStream() { FatalCheckFailure(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal

#define IFGEN_LOG(level)                                                      \
  ::ifgen::internal::LogMessage(::ifgen::LogLevel::k##level, __FILE__, __LINE__)

/// Component-tagged variant: IFGEN_LOG_C(Warning, "http") << "...";
#define IFGEN_LOG_C(level, component)                                         \
  ::ifgen::internal::LogMessage(::ifgen::LogLevel::k##level, __FILE__,        \
                                __LINE__, component)

/// Aborts with a message when `cond` is false. Active in all build types:
/// these guard internal invariants whose violation would corrupt search state.
#define IFGEN_CHECK(cond)             \
  if (cond) {                         \
  } else /* NOLINT */                 \
    ::ifgen::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define IFGEN_CHECK_EQ(a, b) IFGEN_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define IFGEN_CHECK_NE(a, b) IFGEN_CHECK((a) != (b))
#define IFGEN_CHECK_LT(a, b) IFGEN_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define IFGEN_CHECK_LE(a, b) IFGEN_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define IFGEN_CHECK_GT(a, b) IFGEN_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define IFGEN_CHECK_GE(a, b) IFGEN_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define IFGEN_DCHECK(cond) \
  while (false) IFGEN_CHECK(cond)
#else
#define IFGEN_DCHECK(cond) IFGEN_CHECK(cond)
#endif

}  // namespace ifgen
