#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/string_util.h"

namespace ifgen {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.b_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.i_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.d_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.s_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) { arr_.push_back(std::move(value)); }

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return b_ == other.b_;
    case Kind::kInt:
      return i_ == other.i_;
    case Kind::kDouble:
      return d_ == other.d_;
    case Kind::kString:
      return s_ == other.s_;
    case Kind::kArray:
      return arr_ == other.arr_;
    case Kind::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Writing.

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;  // 17 always round-trips
  }
  // Decorate bare integers so the parser keeps the double kind.
  if (std::strpbrk(buf, ".eE") == nullptr) {
    std::strncat(buf, ".0", sizeof buf - std::strlen(buf) - 1);
  }
  return buf;
}

namespace {

void WriteRec(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(v.AsInt()));
      return;
    case JsonValue::Kind::kDouble:
      *out += JsonDouble(v.AsDouble());
      return;
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(v.AsString());
      *out += '"';
      return;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) *out += ',';
        first = false;
        WriteRec(item, out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const JsonValue::Member& m : v.members()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(m.first);
        *out += "\":";
        WriteRec(m.second, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteRec(value, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    IFGEN_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (pos_ != text_.size()) return Err("trailing characters after JSON value");
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(StrFormat("JSON: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Err(StrFormat("expected '%c'", c));
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        IFGEN_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::MakeNull(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Err("invalid literal");
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      IFGEN_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      IFGEN_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      IFGEN_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      // Duplicate keys are malformed input at the API boundary, not
      // last-wins: silently dropping a binding would mask client bugs.
      if (obj.Find(key) != nullptr) {
        return Err(StrFormat("duplicate object key \"%s\"", key.c_str()));
      }
      obj.members().emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      IFGEN_RETURN_NOT_OK(Expect('}'));
      break;
    }
    *out = std::move(obj);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) {
      *out = std::move(arr);
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      IFGEN_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      IFGEN_RETURN_NOT_OK(Expect(']'));
      break;
    }
    *out = std::move(arr);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Err("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Err("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Err("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          IFGEN_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Err("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            IFGEN_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) return Err("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Err("invalid escape character");
      }
    }
    return Err("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("invalid number");
    }
    // Leading zeros are invalid JSON ("01"); a lone zero is fine.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      return Err("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long ll = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(ll);
        return Status::OK();
      }
      // Out of int64 range: fall through to double (JSON allows it).
    }
    errno = 0;
    double d = std::strtod(token.c_str(), nullptr);
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL)) {
      return Err("number out of range");
    }
    *out = JsonValue::Double(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace ifgen
