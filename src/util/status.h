#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace ifgen {

/// \brief Error categories used across the library.
///
/// Mirrors the Arrow/absl convention: a small closed set of machine-readable
/// codes plus a free-form human-readable message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,
  kUnavailable,  // transient: peer/worker unreachable, safe to retry
};

/// \brief Returns the canonical name of a status code ("InvalidArgument").
///
/// These strings are a stable machine-readable contract: the v1 API error
/// model (api::ErrorBody.code) exposes them on the wire, and
/// tests/util_test.cc pins every enum value and name so a silent rename or
/// renumbering cannot slip past the API boundary. Append new codes at the
/// end; never reorder.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of a fallible operation that returns no value.
///
/// The library does not throw exceptions across module boundaries; all
/// fallible public entry points return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// A lightweight StatusOr. Accessing the value of an errored Result aborts
/// (programming error), so callers must check ok() first or use the
/// IFGEN_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    AbortIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    AbortIfError();
    return *value_;
  }
  T ValueOrDie() && {
    AbortIfError();
    return std::move(*value_);
  }
  /// Moves the value out; Result must be ok().
  T MoveValueUnsafe() {
    AbortIfError();
    return std::move(*value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResult(status_);
}

/// Propagates a non-OK Status from an expression returning Status.
#define IFGEN_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::ifgen::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define IFGEN_CONCAT_IMPL(a, b) a##b
#define IFGEN_CONCAT(a, b) IFGEN_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define IFGEN_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  IFGEN_ASSIGN_OR_RETURN_IMPL(IFGEN_CONCAT(_res_, __LINE__), lhs, rexpr)

#define IFGEN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).MoveValueUnsafe()

}  // namespace ifgen
