#pragma once

#include <chrono>
#include <cstdint>

namespace ifgen {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start_)
        .count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A wall-clock budget for anytime algorithms (e.g. MCTS).
///
/// A budget of <= 0 ms means "unlimited" — callers then rely on iteration
/// caps, which is what the deterministic tests use.
class Deadline {
 public:
  explicit Deadline(int64_t budget_ms) : budget_ms_(budget_ms) {}

  bool Expired() const {
    return budget_ms_ > 0 && watch_.ElapsedMillis() >= budget_ms_;
  }

  int64_t ElapsedMillis() const { return watch_.ElapsedMillis(); }
  int64_t budget_ms() const { return budget_ms_; }

 private:
  int64_t budget_ms_;
  Stopwatch watch_;
};

}  // namespace ifgen
