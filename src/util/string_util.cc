#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ifgen {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsNumeric(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') i = 1;
  if (i >= s.size()) return false;
  bool saw_digit = false;
  bool saw_dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      saw_digit = true;
    } else if (s[i] == '.' && !saw_dot) {
      saw_dot = true;
    } else {
      return false;
    }
  }
  return saw_digit;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string Repeat(std::string_view s, size_t count) {
  std::string out;
  out.reserve(s.size() * count);
  for (size_t i = 0; i < count; ++i) out += s;
  return out;
}

std::string Ellipsize(std::string_view s, size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  if (max_len <= 2) return std::string(s.substr(0, max_len));
  return std::string(s.substr(0, max_len - 2)) + "..";
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ifgen
