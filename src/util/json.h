#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ifgen {

/// \brief A dynamically-typed JSON document: the value model under the
/// versioned API codec (src/api) and the interface exporters
/// (core/json_export).
///
/// Integers and doubles are distinct kinds — the API round-trip contract is
/// `ParseJson(WriteJson(v)) == v` including numeric *type*, so table cells
/// survive a wire hop bit-identically. The writer renders doubles with
/// round-trip precision and always marks them with a '.', 'e' or non-finite
/// spelling; the parser classifies undecorated integer literals that fit
/// int64 as kInt and everything else as kDouble. Object members preserve
/// insertion order (serialization is deterministic); lookups are linear,
/// which is fine at API-message sizes.
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  ///< null

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t i);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one for the kind is a programming
  /// error (the codec layer checks kinds before reading).
  bool AsBool() const { return b_; }
  int64_t AsInt() const { return i_; }
  /// kInt widens to double (JSON callers writing `3` for a double field).
  double AsDouble() const { return is_int() ? static_cast<double>(i_) : d_; }
  const std::string& AsString() const { return s_; }

  const std::vector<JsonValue>& items() const { return arr_; }
  std::vector<JsonValue>& items() { return arr_; }
  const std::vector<Member>& members() const { return obj_; }
  std::vector<Member>& members() { return obj_; }
  size_t size() const { return is_array() ? arr_.size() : obj_.size(); }

  /// Object lookup; null when absent (or when not an object).
  const JsonValue* Find(std::string_view key) const;
  /// Appends (or replaces) an object member.
  void Set(std::string key, JsonValue value);
  /// Appends an array element.
  void Append(JsonValue value);

  /// Deep structural equality. Numbers compare kind-sensitively (Int(3) !=
  /// Double(3.0)) to keep `ParseJson(WriteJson(v)) == v` an exact identity.
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  Kind kind_ = Kind::kNull;
  bool b_ = false;
  int64_t i_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<JsonValue> arr_;
  std::vector<Member> obj_;
};

/// Parses strict JSON (RFC 8259: no comments, no trailing commas; \uXXXX
/// escapes incl. surrogate pairs decode to UTF-8). Errors are ParseError
/// statuses with a byte offset. Nesting is capped (guards the recursive
/// parser against stack exhaustion on adversarial input).
Result<JsonValue> ParseJson(std::string_view text);

/// Compact serialization. Non-finite doubles render as `null` (JSON has no
/// inf/nan) — the one case WriteJson does not round-trip.
std::string WriteJson(const JsonValue& value);

/// Escapes a string for embedding in JSON (quotes, control chars; UTF-8
/// bytes pass through).
std::string JsonEscape(const std::string& s);

/// Renders a double with the smallest precision that round-trips exactly,
/// always decorated ('.' or 'e') so parsers keep it a double; non-finite
/// values render as "null". Exposed for the bench JSON emitters.
std::string JsonDouble(double v);

}  // namespace ifgen
