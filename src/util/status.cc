#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace ifgen {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Fatal: accessed value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace ifgen
