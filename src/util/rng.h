#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace ifgen {

/// \brief Deterministic pseudo-random number generator.
///
/// A thin wrapper around std::mt19937_64 with convenience draws. Every
/// stochastic component of the library takes an explicit Rng (or seed) so
/// that searches, workload generators, and benchmarks are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : seed_(seed), engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    IFGEN_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    IFGEN_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    IFGEN_CHECK(!items.empty());
    return items[UniformIndex(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[UniformIndex(i)]);
    }
  }

  /// Derives an independent child generator (for parallel/nested use).
  /// Unlike Split, Fork consumes a draw, so successive Forks differ.
  Rng Fork() { return Rng(engine_() ^ 0xd1b54a32d192ed03ULL); }

  /// Derives the `stream_id`-th independent stream of this generator's
  /// *seed*: a splitmix64 finalizer over (construction seed, stream_id),
  /// and nothing else. Split is const and consumes no draws — calling it
  /// before or after any number of draws yields the same stream, so every
  /// thread of a parallel search derives its stream without coordination,
  /// and the same (seed, stream_id) pair names the same stream in every
  /// run. Split(i) == Split(i) always; Split(i) != Split(j) for i != j
  /// (whp). Note the limit of what this buys: with more than one thread
  /// the *streams* are reproducible but the search *trajectories* are not,
  /// because shared-cache timing changes how many draws each stream
  /// consumes (see docs/search.md, "Determinism"). Note also that Split on
  /// a Fork()ed generator splits the fork's own (draw-derived) seed.
  Rng Split(uint64_t stream_id) const { return Rng(SplitSeed(stream_id)); }

  /// The seed Split(stream_id) would construct with.
  uint64_t SplitSeed(uint64_t stream_id) const {
    uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// The seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  /// Raw 64-bit draw.
  uint64_t Next() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace ifgen
