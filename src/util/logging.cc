#include "util/logging.h"

#include <atomic>

namespace ifgen {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else if (lower == "fatal") {
    *out = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("IFGEN_LOG_LEVEL");
  if (env == nullptr) return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    IFGEN_LOG(Warning) << "ignoring IFGEN_LOG_LEVEL='" << env
                       << "' (want debug|info|warning|error|fatal)";
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line,
                       const char* component)
    : level_(level), enabled_(static_cast<int>(level) >= g_log_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level);
    if (component != nullptr) stream_ << " " << component;
    stream_ << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

void FatalCheckFailure(const char* file, int line, const char* expr,
                       const std::string& message) {
  std::cerr << "[CHECK FAILED " << file << ":" << line << "] " << expr << " " << message
            << std::endl;
  std::abort();
}

}  // namespace internal

}  // namespace ifgen
