#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ifgen {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True when `s` parses fully as a (possibly signed) decimal number.
bool IsNumeric(std::string_view s);

/// Right-pads (or truncates) `s` to exactly `width` characters.
std::string PadRight(std::string_view s, size_t width);

/// `count` copies of `s` concatenated.
std::string Repeat(std::string_view s, size_t count);

/// Truncates to at most `max_len` chars, appending ".." when cut.
std::string Ellipsize(std::string_view s, size_t max_len);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ifgen
