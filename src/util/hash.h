#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ifgen {

/// \brief 64-bit FNV-1a hash of a byte string.
inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// \brief Mixes a new 64-bit value into an accumulated hash
/// (boost::hash_combine-style with a 64-bit golden-ratio constant and an
/// avalanche finalizer step borrowed from splitmix64).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  v ^= v >> 31;
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace ifgen
