#include "rules/align.h"
#include "rules/rule.h"

namespace ifgen {

namespace {

/// Grammar gate: only node kinds that may legitimately appear a variable
/// number of times in a query qualify for MULTI (predicates, select items,
/// order keys, list elements, tables). Clauses like Where/Top/Project occur
/// at most once — repeating them would leave SQL's grammar entirely.
bool MayRepeat(const DiffTree& elem) {
  if (elem.kind != DKind::kAll) return false;
  switch (elem.sym) {
    case Symbol::kBetween:
    case Symbol::kBiExpr:
    case Symbol::kIn:
    case Symbol::kNot:
    case Symbol::kColExpr:
    case Symbol::kNumExpr:
    case Symbol::kStrExpr:
    case Symbol::kFuncExpr:
    case Symbol::kAlias:
    case Symbol::kStar:
    case Symbol::kOrderKey:
    case Symbol::kTable:
      return true;
    default:
      return false;
  }
}

/// Multi (paper Fig. 5): the only non-bidirectional rule — it *grows* the
/// expressible language. Two patterns:
///
///  (a) Run: an ALL/Seq node with a run of >= 2 consecutive structurally
///      identical children x,x,..,x replaces the run with MULTI(x).
///      `param` = run start, `param2` = run length.
///  (b) Repeat-union: an ANY whose alternatives are sequences of elements
///      that all share the same alignment key (e.g. all rooted at Between)
///      becomes MULTI(element-union). This is what turns per-query predicate
///      lists into an "adder" widget. `param` = -1 marks this pattern.
class MultiRule final : public Rule {
 public:
  std::string_view name() const override { return "Multi"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& /*opts*/,
               std::vector<RuleApplication>* out) const override {
    CollectRuns(node, path, out);
    CollectRepeatUnion(node, path, out);
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& app,
                 const RuleSetOptions& /*opts*/) const override {
    if (app.param >= 0) return ApplyRun(node, app);
    return ApplyRepeatUnion(node);
  }

 private:
  static void CollectRuns(const DiffTree& node, const TreePath& path,
                          std::vector<RuleApplication>* out) {
    if (node.kind != DKind::kAll || node.sym == Symbol::kEmpty) return;
    size_t i = 0;
    while (i < node.children.size()) {
      size_t run = 1;
      while (i + run < node.children.size() &&
             node.children[i + run] == node.children[i]) {
        ++run;
      }
      if (run >= 2 && MayRepeat(node.children[i])) {
        RuleApplication app;
        app.path = path;
        app.param = static_cast<int>(i);
        app.param2 = static_cast<int>(run);
        out->push_back(app);
      }
      i += run;
    }
  }

  static Status ApplyRun(DiffTree* node, const RuleApplication& app) {
    if (node->kind != DKind::kAll) return Status::Invalid("Multi: target not ALL");
    size_t start = static_cast<size_t>(app.param);
    size_t len = static_cast<size_t>(app.param2);
    if (start + len > node->children.size() || len < 2) {
      return Status::Invalid("Multi: bad run bounds");
    }
    for (size_t k = 1; k < len; ++k) {
      if (!(node->children[start + k] == node->children[start])) {
        return Status::Invalid("Multi: run is not uniform");
      }
    }
    DiffTree rep = DiffTree::Multi(std::move(node->children[start]));
    node->children.erase(node->children.begin() + static_cast<long>(start + 1),
                         node->children.begin() + static_cast<long>(start + len));
    node->children[start] = std::move(rep);
    return Status::OK();
  }

  /// Flattens an alternative into its element list; returns false when the
  /// alternative is not a sequence of alignable elements.
  static bool ElementsOf(const DiffTree& alt, std::vector<const DiffTree*>* elems) {
    if (alt.IsEmptyLeaf()) return true;  // zero elements
    if (alt.IsSeq()) {
      for (const DiffTree& c : alt.children) elems->push_back(&c);
      return true;
    }
    elems->push_back(&alt);
    return true;
  }

  static void CollectRepeatUnion(const DiffTree& node, const TreePath& path,
                                 std::vector<RuleApplication>* out) {
    if (node.kind != DKind::kAny || node.children.size() < 2) return;
    std::vector<const DiffTree*> all_elems;
    bool varying_count = false;
    size_t first_count = std::string::npos;
    for (const DiffTree& alt : node.children) {
      std::vector<const DiffTree*> elems;
      if (!ElementsOf(alt, &elems)) return;
      if (first_count == std::string::npos) {
        first_count = elems.size();
      } else if (elems.size() != first_count) {
        varying_count = true;
      }
      for (const DiffTree* e : elems) all_elems.push_back(e);
    }
    if (all_elems.size() < 2) return;
    if (!MayRepeat(*all_elems[0])) return;
    uint64_t key = AlignKey(*all_elems[0]);
    for (const DiffTree* e : all_elems) {
      if (AlignKey(*e) != key) return;
    }
    // Only propose when repetition is actually present (count variation or
    // a run within an alternative); otherwise Any2All covers it better.
    bool has_run = false;
    for (const DiffTree& alt : node.children) {
      if (alt.IsSeq() && alt.children.size() >= 2) has_run = true;
    }
    if (!varying_count && !has_run) return;
    RuleApplication app;
    app.path = path;
    app.param = -1;
    out->push_back(app);
  }

  static Status ApplyRepeatUnion(DiffTree* node) {
    if (node->kind != DKind::kAny) return Status::Invalid("Multi: target not ANY");
    std::vector<DiffTree> distinct;
    for (const DiffTree& alt : node->children) {
      std::vector<const DiffTree*> elems;
      if (!ElementsOf(alt, &elems)) {
        return Status::Invalid("Multi: alternative is not a sequence");
      }
      for (const DiffTree* e : elems) {
        bool seen = false;
        for (const DiffTree& d : distinct) {
          if (d == *e) {
            seen = true;
            break;
          }
        }
        if (!seen) distinct.push_back(*e);
      }
    }
    if (distinct.empty()) return Status::Invalid("Multi: no elements");
    DiffTree body = distinct.size() == 1 ? std::move(distinct[0])
                                         : DiffTree::Any(std::move(distinct));
    *node = DiffTree::Multi(std::move(body));
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMultiRule() { return std::make_unique<MultiRule>(); }

}  // namespace ifgen
