#include "rules/rule.h"

namespace ifgen {

namespace {

/// Lift (paper Fig. 5): factors the shared root out of an ANY without
/// aligning the bodies: ANY(z(A...), z(B...)) -> z(ANY(Seq(A...), Seq(B...))).
/// Compared to Any2All this keeps whole-body alternatives — the layout that
/// renders as one "mode" widget (e.g. tabs or one dropdown per query body)
/// instead of one widget per varying child.
class LiftRule final : public Rule {
 public:
  std::string_view name() const override { return "Lift"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& /*opts*/,
               std::vector<RuleApplication>* out) const override {
    if (node.kind != DKind::kAny || node.children.size() < 2) return;
    const DiffTree& first = node.children[0];
    if (first.kind != DKind::kAll || first.sym == Symbol::kSeq ||
        first.sym == Symbol::kEmpty) {
      return;
    }
    // At least one alternative must have >= 2 children, otherwise Lift
    // degenerates to Any2All's single column.
    bool worthwhile = false;
    for (const DiffTree& alt : node.children) {
      if (alt.kind != DKind::kAll || alt.sym != first.sym || alt.value != first.value) {
        return;
      }
      worthwhile |= alt.children.size() >= 2;
    }
    if (!worthwhile) return;
    RuleApplication app;
    app.path = path;
    out->push_back(app);
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& /*app*/,
                 const RuleSetOptions& /*opts*/) const override {
    if (node->kind != DKind::kAny || node->children.size() < 2) {
      return Status::Invalid("Lift: target is not a multi-alternative ANY");
    }
    DiffTree result(node->children[0].sym, node->children[0].value);
    std::vector<DiffTree> bodies;
    bodies.reserve(node->children.size());
    for (DiffTree& alt : node->children) {
      DiffTree body = alt.children.empty()
                          ? DiffTree::Empty()
                          : DiffTree::Seq(std::move(alt.children));
      // Deduplicate identical bodies — they would be pure redundancy in the
      // widget domain (distinct from Merge, which dedups whole alternatives).
      bool seen = false;
      for (const DiffTree& b : bodies) {
        if (b == body) {
          seen = true;
          break;
        }
      }
      if (!seen) bodies.push_back(std::move(body));
    }
    if (bodies.size() == 1) {
      result.children.push_back(std::move(bodies[0]));
    } else {
      result.children.push_back(DiffTree::Any(std::move(bodies)));
    }
    *node = std::move(result);
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLiftRule() { return std::make_unique<LiftRule>(); }

}  // namespace ifgen
