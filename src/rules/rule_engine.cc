#include <utility>

#include "difftree/normalize.h"
#include "rules/rule.h"
#include "util/string_util.h"

namespace ifgen {

RuleEngine::RuleEngine(RuleSetOptions opts) : opts_(opts) {
  rules_.push_back(MakeAny2AllRule());
  rules_.push_back(MakeLiftRule());
  rules_.push_back(MakeMergeRule());
  rules_.push_back(MakeMultiRule());
  rules_.push_back(MakeOptionalRule());
  rules_.push_back(MakeNoopRule());
  rules_.push_back(MakeAll2AnyRule());
}

std::string_view RuleEngine::RuleName(const RuleApplication& app) const {
  if (app.rule_index < 0 || static_cast<size_t>(app.rule_index) >= rules_.size()) {
    return "?";
  }
  return rules_[static_cast<size_t>(app.rule_index)]->name();
}

namespace {

void CollectRec(const std::vector<std::unique_ptr<Rule>>& rules,
                const RuleSetOptions& opts, const DiffTree& root, const DiffTree& node,
                TreePath* path, std::vector<RuleApplication>* out) {
  for (size_t r = 0; r < rules.size(); ++r) {
    size_t before = out->size();
    rules[r]->Collect(root, node, *path, opts, out);
    for (size_t k = before; k < out->size(); ++k) {
      (*out)[k].rule_index = static_cast<int>(r);
    }
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    path->push_back(static_cast<int>(i));
    CollectRec(rules, opts, root, node.children[i], path, out);
    path->pop_back();
  }
}

}  // namespace

std::vector<RuleApplication> RuleEngine::EnumerateApplications(
    const DiffTree& root) const {
  std::vector<RuleApplication> out;
  TreePath path;
  CollectRec(rules_, opts_, root, root, &path, &out);
  return out;
}

Result<DiffTree> RuleEngine::Apply(const DiffTree& root,
                                   const RuleApplication& app) const {
  if (app.rule_index < 0 || static_cast<size_t>(app.rule_index) >= rules_.size()) {
    return Status::Invalid("bad rule index");
  }
  DiffTree next = root;  // value copy: states are independent
  DiffTree* target = MutableNodeAt(&next, app.path);
  if (target == nullptr) {
    return Status::Invalid("rule application path no longer valid");
  }
  IFGEN_RETURN_NOT_OK(
      rules_[static_cast<size_t>(app.rule_index)]->ApplyAt(target, app, opts_));
  Normalize(&next);
  if (next.NodeCount() > opts_.max_tree_nodes) {
    return Status::ResourceExhausted(
        StrFormat("result tree exceeds %zu nodes", opts_.max_tree_nodes));
  }
  return next;
}

bool RuleEngine::IsForward(const RuleApplication& app) const {
  std::string_view name = RuleName(app);
  if (name == "All2Any") return false;
  if (name == "Optional" || name == "Noop") return app.param == 0;
  return true;  // Any2All, Lift, Merge, Multi
}

std::string RuleEngine::Describe(const DiffTree& root,
                                 const RuleApplication& app) const {
  const DiffTree* node = NodeAt(root, app.path);
  std::string where = node != nullptr ? DiffTreeLabel(*node, 32) : "<invalid>";
  std::string path_str;
  for (int i : app.path) path_str += "/" + std::to_string(i);
  if (path_str.empty()) path_str = "/";
  return StrFormat("%s@%s (%s)", std::string(RuleName(app)).c_str(), path_str.c_str(),
                   where.c_str());
}

}  // namespace ifgen
