#include "rules/rule.h"

namespace ifgen {

namespace {

/// All2Any — the inverse direction of Any2All/Lift (the paper's rules are
/// bidirectional). Distributes an ALL node over one of its ANY children:
///
///   ALL(z, [.., ANY(a, b), ..]) -> ANY(ALL(z, [.., a, ..]), ALL(z, [.., b, ..]))
///
/// Language-exact. This lets the search *coarsen* an interface again (e.g.
/// collapse fine-grained widgets back into a per-query mode switch), which
/// is how it escapes local minima.
class All2AnyRule final : public Rule {
 public:
  std::string_view name() const override { return "All2Any"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& opts,
               std::vector<RuleApplication>* out) const override {
    if (node.kind != DKind::kAll || node.sym == Symbol::kEmpty) return;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const DiffTree& c = node.children[i];
      if (c.kind == DKind::kAny && c.children.size() >= 2 &&
          c.children.size() <= static_cast<size_t>(opts.all2any_max_alts)) {
        RuleApplication app;
        app.path = path;
        app.param = static_cast<int>(i);
        out->push_back(app);
      }
    }
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& app,
                 const RuleSetOptions& /*opts*/) const override {
    if (node->kind != DKind::kAll) return Status::Invalid("All2Any: target not ALL");
    size_t idx = static_cast<size_t>(app.param);
    if (idx >= node->children.size() || node->children[idx].kind != DKind::kAny) {
      return Status::Invalid("All2Any: selected child is not an ANY");
    }
    DiffTree any = std::move(node->children[idx]);
    std::vector<DiffTree> alts;
    alts.reserve(any.children.size());
    for (DiffTree& option : any.children) {
      DiffTree host(node->sym, node->value);
      host.children.reserve(node->children.size());
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (i == idx) {
          host.children.push_back(std::move(option));
        } else {
          host.children.push_back(node->children[i]);
        }
      }
      alts.push_back(std::move(host));
    }
    *node = DiffTree::Any(std::move(alts));
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeAll2AnyRule() { return std::make_unique<All2AnyRule>(); }

}  // namespace ifgen
