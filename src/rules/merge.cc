#include "rules/rule.h"

namespace ifgen {

namespace {

/// Merge (paper Fig. 5): removes structurally duplicate alternatives of an
/// ANY node. Language-exact. The inverse (duplicating an alternative) is
/// pure redundancy and is intentionally not generated.
class MergeRule final : public Rule {
 public:
  std::string_view name() const override { return "Merge"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& /*opts*/,
               std::vector<RuleApplication>* out) const override {
    if (node.kind != DKind::kAny || node.children.size() < 2) return;
    for (size_t i = 0; i < node.children.size(); ++i) {
      for (size_t j = i + 1; j < node.children.size(); ++j) {
        if (node.children[i] == node.children[j]) {
          RuleApplication app;
          app.path = path;
          out->push_back(app);
          return;
        }
      }
    }
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& /*app*/,
                 const RuleSetOptions& /*opts*/) const override {
    if (node->kind != DKind::kAny) {
      return Status::Invalid("Merge: target is not an ANY");
    }
    std::vector<DiffTree> kept;
    kept.reserve(node->children.size());
    for (DiffTree& alt : node->children) {
      bool seen = false;
      for (const DiffTree& k : kept) {
        if (k == alt) {
          seen = true;
          break;
        }
      }
      if (!seen) kept.push_back(std::move(alt));
    }
    if (kept.size() == node->children.size()) {
      return Status::Invalid("Merge: no duplicate alternatives");
    }
    if (kept.size() == 1) {
      *node = std::move(kept[0]);  // collapsing a singleton ANY
    } else {
      node->children = std::move(kept);
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMergeRule() { return std::make_unique<MergeRule>(); }

}  // namespace ifgen
