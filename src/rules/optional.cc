#include "rules/rule.h"

namespace ifgen {

namespace {

/// Optional (paper Fig. 5), bidirectional:
///   forward  (param=0): ANY(Empty, z)        -> OPT(z)
///                       ANY(Empty, z1, z2..) -> OPT(ANY(z1, z2, ...))
///   backward (param=1): OPT(z)               -> ANY(Empty, z)
class OptionalRule final : public Rule {
 public:
  std::string_view name() const override { return "Optional"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& /*opts*/,
               std::vector<RuleApplication>* out) const override {
    if (node.kind == DKind::kAny) {
      for (const DiffTree& alt : node.children) {
        if (alt.IsEmptyLeaf()) {
          RuleApplication app;
          app.path = path;
          app.param = 0;
          out->push_back(app);
          return;
        }
      }
    } else if (node.kind == DKind::kOpt) {
      RuleApplication app;
      app.path = path;
      app.param = 1;
      out->push_back(app);
    }
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& app,
                 const RuleSetOptions& /*opts*/) const override {
    if (app.param == 0) {
      if (node->kind != DKind::kAny) return Status::Invalid("Optional: target not ANY");
      std::vector<DiffTree> non_empty;
      for (DiffTree& alt : node->children) {
        if (!alt.IsEmptyLeaf()) non_empty.push_back(std::move(alt));
      }
      if (non_empty.size() == node->children.size()) {
        return Status::Invalid("Optional: ANY has no Empty alternative");
      }
      if (non_empty.empty()) {
        *node = DiffTree::Empty();
        return Status::OK();
      }
      DiffTree body = non_empty.size() == 1 ? std::move(non_empty[0])
                                            : DiffTree::Any(std::move(non_empty));
      *node = DiffTree::Opt(std::move(body));
      return Status::OK();
    }
    if (node->kind != DKind::kOpt) return Status::Invalid("Optional: target not OPT");
    DiffTree child = std::move(node->children[0]);
    *node = DiffTree::Any({DiffTree::Empty(), std::move(child)});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeOptionalRule() { return std::make_unique<OptionalRule>(); }

}  // namespace ifgen
