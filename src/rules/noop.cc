#include "rules/rule.h"

namespace ifgen {

namespace {

/// Noop (paper Fig. 5), bidirectional:
///   unwrap (param=0): ANY(x) -> x    (a singleton choice is no choice)
///   wrap   (param=1): x -> ANY(x)    (creates a fixed single-option widget,
///                     rendered as a label; disabled by default because it
///                     applies almost everywhere and inflates fanout)
class NoopRule final : public Rule {
 public:
  std::string_view name() const override { return "Noop"; }

  void Collect(const DiffTree& root, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& opts,
               std::vector<RuleApplication>* out) const override {
    if (node.kind == DKind::kAny && node.children.size() == 1) {
      RuleApplication app;
      app.path = path;
      app.param = 0;
      out->push_back(app);
      return;
    }
    if (opts.enable_noop_wrap && node.kind == DKind::kAll &&
        node.sym != Symbol::kSeq && node.sym != Symbol::kEmpty && !path.empty()) {
      // Skip when the parent is already an ANY (wrapping an alternative in a
      // singleton ANY is never useful and explodes the space).
      TreePath parent_path(path.begin(), path.end() - 1);
      const DiffTree* parent = NodeAt(root, parent_path);
      if (parent != nullptr && parent->kind == DKind::kAny) return;
      RuleApplication app;
      app.path = path;
      app.param = 1;
      out->push_back(app);
    }
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& app,
                 const RuleSetOptions& /*opts*/) const override {
    if (app.param == 0) {
      if (node->kind != DKind::kAny || node->children.size() != 1) {
        return Status::Invalid("Noop: target is not a singleton ANY");
      }
      DiffTree child = std::move(node->children[0]);
      *node = std::move(child);
      return Status::OK();
    }
    DiffTree copy = std::move(*node);
    *node = DiffTree::Any({std::move(copy)});
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeNoopRule() { return std::make_unique<NoopRule>(); }

}  // namespace ifgen
