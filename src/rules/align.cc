#include "rules/align.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace ifgen {

uint64_t AlignKey(const DiffTree& n) {
  if (n.kind == DKind::kAll) {
    return HashCombine(0xa11a11a1ULL, static_cast<uint64_t>(n.sym));
  }
  return HashCombine(0xc01ceULL, static_cast<uint64_t>(n.kind));
}

namespace {

/// Longest common subsequence between the current column keys and an
/// alternative's child keys; returns pairs (column index, child index).
std::vector<std::pair<size_t, size_t>> LcsPairs(const std::vector<uint64_t>& a,
                                                const std::vector<uint64_t>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      if (a[i] == b[j]) {
        dp[i][j] = dp[i + 1][j + 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i + 1][j], dp[i][j + 1]);
      }
    }
  }
  std::vector<std::pair<size_t, size_t>> pairs;
  size_t i = 0;
  size_t j = 0;
  while (i < n && j < m) {
    if (a[i] == b[j] && dp[i][j] == dp[i + 1][j + 1] + 1) {
      pairs.emplace_back(i, j);
      ++i;
      ++j;
    } else if (dp[i + 1][j] >= dp[i][j + 1]) {
      ++i;
    } else {
      ++j;
    }
  }
  return pairs;
}

}  // namespace

std::vector<AlignedColumn> AlignBySymbol(
    const std::vector<const std::vector<DiffTree>*>& alt_children) {
  const size_t num_alts = alt_children.size();
  std::vector<AlignedColumn> columns;
  // Seed with alternative 0.
  for (size_t j = 0; j < alt_children[0]->size(); ++j) {
    AlignedColumn col;
    col.key = AlignKey((*alt_children[0])[j]);
    col.entry.assign(num_alts, std::nullopt);
    col.entry[0] = j;
    columns.push_back(std::move(col));
  }
  for (size_t a = 1; a < num_alts; ++a) {
    const std::vector<DiffTree>& kids = *alt_children[a];
    std::vector<uint64_t> col_keys;
    col_keys.reserve(columns.size());
    for (const AlignedColumn& c : columns) col_keys.push_back(c.key);
    std::vector<uint64_t> kid_keys;
    kid_keys.reserve(kids.size());
    for (const DiffTree& k : kids) kid_keys.push_back(AlignKey(k));

    auto pairs = LcsPairs(col_keys, kid_keys);
    // Merge: walk columns and children with LCS anchors; unmatched children
    // are inserted as new columns before the next anchored column.
    std::vector<AlignedColumn> merged;
    size_t ci = 0;
    size_t ki = 0;
    auto push_new_column = [&](size_t child_idx) {
      AlignedColumn col;
      col.key = kid_keys[child_idx];
      col.entry.assign(num_alts, std::nullopt);
      col.entry[a] = child_idx;
      merged.push_back(std::move(col));
    };
    for (const auto& [pc, pk] : pairs) {
      while (ci < pc) merged.push_back(std::move(columns[ci++]));
      while (ki < pk) push_new_column(ki++);
      AlignedColumn col = std::move(columns[ci++]);
      col.entry[a] = ki++;
      merged.push_back(std::move(col));
    }
    while (ci < columns.size()) merged.push_back(std::move(columns[ci++]));
    while (ki < kids.size()) push_new_column(ki++);
    columns = std::move(merged);
  }
  return columns;
}

std::vector<AlignedColumn> AlignByPosition(
    const std::vector<const std::vector<DiffTree>*>& alt_children) {
  const size_t num_alts = alt_children.size();
  size_t max_len = 0;
  for (const auto* kids : alt_children) max_len = std::max(max_len, kids->size());
  std::vector<AlignedColumn> columns(max_len);
  for (size_t j = 0; j < max_len; ++j) {
    columns[j].entry.assign(num_alts, std::nullopt);
    for (size_t a = 0; a < num_alts; ++a) {
      if (j < alt_children[a]->size()) {
        columns[j].entry[a] = j;
        columns[j].key = AlignKey((*alt_children[a])[j]);
      }
    }
  }
  return columns;
}

DiffTree ColumnToNode(const std::vector<const std::vector<DiffTree>*>& alt_children,
                      const AlignedColumn& col) {
  std::vector<DiffTree> distinct;
  bool missing_somewhere = false;
  for (size_t a = 0; a < col.entry.size(); ++a) {
    if (!col.entry[a].has_value()) {
      missing_somewhere = true;
      continue;
    }
    const DiffTree& node = (*alt_children[a])[*col.entry[a]];
    bool seen = false;
    for (const DiffTree& d : distinct) {
      if (d == node) {
        seen = true;
        break;
      }
    }
    if (!seen) distinct.push_back(node);
  }
  IFGEN_CHECK(!distinct.empty());
  if (!missing_somewhere && distinct.size() == 1) {
    return distinct[0];
  }
  if (missing_somewhere) distinct.push_back(DiffTree::Empty());
  if (distinct.size() == 1) return distinct[0];
  return DiffTree::Any(std::move(distinct));
}

}  // namespace ifgen
