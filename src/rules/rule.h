#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "difftree/difftree.h"
#include "util/status.h"

namespace ifgen {

/// \brief One applicable (rule, site) pair — a single edge of the search
/// graph. The number of applications at a state is the state's fanout.
struct RuleApplication {
  int rule_index = -1;  ///< index into RuleEngine::rules()
  TreePath path;        ///< node the rule rewrites
  int param = -1;       ///< rule-specific (alignment mode, child index, ...)
  int param2 = -1;      ///< rule-specific (run length, ...)
};

/// \brief Knobs bounding the rewrite system.
struct RuleSetOptions {
  /// Noop's wrap direction (x -> ANY(x)) is applicable almost everywhere and
  /// inflates fanout; it is off by default and exercised by ablation benches.
  bool enable_noop_wrap = false;
  /// All2Any duplicates the host node once per alternative; cap it.
  int all2any_max_alts = 4;
  /// Hard cap on result size; Apply fails beyond it (guards MCTS rollouts).
  size_t max_tree_nodes = 1500;
};

/// \brief A difftree transformation rule (paper, Figure 5).
///
/// Rules enumerate their application sites and rewrite a copy of the tree.
/// Invariant (property-tested): every input query expressible before an
/// application remains expressible after it.
class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view name() const = 0;

  /// Collects applications rooted at `node` (located at `path` in `root`).
  /// Called once per node by the engine's traversal.
  virtual void Collect(const DiffTree& root, const DiffTree& node, const TreePath& path,
                       const RuleSetOptions& opts,
                       std::vector<RuleApplication>* out) const = 0;

  /// Rewrites the node at `app.path`. `*node` is the mutable target inside a
  /// fresh copy of the state; the engine normalizes afterwards.
  virtual Status ApplyAt(DiffTree* node, const RuleApplication& app,
                         const RuleSetOptions& opts) const = 0;
};

/// \brief Owns the rule set and provides fanout enumeration + application.
class RuleEngine {
 public:
  explicit RuleEngine(RuleSetOptions opts = {});

  const RuleSetOptions& options() const { return opts_; }
  size_t num_rules() const { return rules_.size(); }
  const Rule& rule(size_t i) const { return *rules_[i]; }
  std::string_view RuleName(const RuleApplication& app) const;

  /// All applicable (rule, site) pairs for `root`; its size is the fanout.
  std::vector<RuleApplication> EnumerateApplications(const DiffTree& root) const;

  /// Applies one rewrite, returning the normalized successor state.
  Result<DiffTree> Apply(const DiffTree& root, const RuleApplication& app) const;

  /// Human-readable description of an application (for traces).
  std::string Describe(const DiffTree& root, const RuleApplication& app) const;

  /// True for "forward" (factoring) applications — Any2All, Lift, Merge,
  /// Multi, Optional(fwd), Noop(unwrap) — versus inverse/expanding ones
  /// (All2Any, Optional(bwd), Noop(wrap)). Informed rollouts bias toward
  /// forward moves; see SearchOptions::rollout_forward_bias.
  bool IsForward(const RuleApplication& app) const;

 private:
  RuleSetOptions opts_;
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Factory functions for the individual rules (exposed for unit tests).
std::unique_ptr<Rule> MakeAny2AllRule();
std::unique_ptr<Rule> MakeLiftRule();
std::unique_ptr<Rule> MakeMergeRule();
std::unique_ptr<Rule> MakeMultiRule();
std::unique_ptr<Rule> MakeOptionalRule();
std::unique_ptr<Rule> MakeNoopRule();
std::unique_ptr<Rule> MakeAll2AnyRule();

}  // namespace ifgen
