#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "difftree/difftree.h"

namespace ifgen {

/// \brief Alignment machinery shared by the Any2All rule.
///
/// Columns are an order-preserving multi-sequence alignment of the child
/// lists of an ANY node's alternatives: restricted to any single
/// alternative, the present column entries reproduce that alternative's
/// children in order. That property is what makes Any2All language-safe.

/// Key used to decide whether two children may share a column: ALL nodes
/// align by root symbol (values may differ — that variation becomes the
/// widget domain); choice nodes align by kind.
uint64_t AlignKey(const DiffTree& n);

/// One aligned column: per-alternative index into that alternative's child
/// list, or nullopt when the alternative lacks this column.
struct AlignedColumn {
  uint64_t key = 0;
  std::vector<std::optional<size_t>> entry;
};

/// \brief LCS-based alignment ("symbol" mode): children with equal keys are
/// anchored; unmatched children become columns absent from the other
/// alternatives.
std::vector<AlignedColumn> AlignBySymbol(
    const std::vector<const std::vector<DiffTree>*>& alt_children);

/// \brief Positional alignment: column j holds every alternative's j-th
/// child regardless of symbol; shorter alternatives are absent from the
/// tail columns. This pairs e.g. `objid` with `count(*)` into one widget
/// domain (paper, Figure 6a).
std::vector<AlignedColumn> AlignByPosition(
    const std::vector<const std::vector<DiffTree>*>& alt_children);

/// Materializes a column as a difftree child: the shared node when all
/// alternatives agree, otherwise ANY over the distinct entries (with an
/// Empty alternative when some alternative lacks the column).
DiffTree ColumnToNode(const std::vector<const std::vector<DiffTree>*>& alt_children,
                      const AlignedColumn& col);

}  // namespace ifgen
