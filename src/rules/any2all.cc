#include "rules/align.h"
#include "rules/rule.h"
#include "util/string_util.h"

namespace ifgen {

namespace {

/// Any2All (paper Fig. 5): an ANY whose alternatives all share the same root
/// ALL node is rewritten into that ALL node with per-column choice children.
/// `param` selects the alignment mode: 0 = symbol-LCS (unmatched children
/// become optional), 1 = positional (children pair up by index — this is
/// what merges `objid` and `count(*)` into one widget domain, Fig. 6a).
class Any2AllRule final : public Rule {
 public:
  std::string_view name() const override { return "Any2All"; }

  void Collect(const DiffTree& /*root*/, const DiffTree& node, const TreePath& path,
               const RuleSetOptions& /*opts*/,
               std::vector<RuleApplication>* out) const override {
    if (node.kind != DKind::kAny || node.children.size() < 2) return;
    const DiffTree& first = node.children[0];
    if (first.kind != DKind::kAll || first.sym == Symbol::kSeq ||
        first.sym == Symbol::kEmpty) {
      return;
    }
    for (const DiffTree& alt : node.children) {
      if (alt.kind != DKind::kAll || alt.sym != first.sym || alt.value != first.value) {
        return;
      }
    }
    // Childless alternatives (identical leaves) leave nothing to align.
    bool any_children = false;
    for (const DiffTree& alt : node.children) any_children |= !alt.children.empty();
    if (!any_children) return;

    RuleApplication lcs;
    lcs.path = path;
    lcs.param = 0;
    out->push_back(lcs);
    // Positional alignment only differs when some alternative's child
    // symbols diverge; suppress the duplicate application otherwise.
    bool symbols_uniform = true;
    for (const DiffTree& alt : node.children) {
      if (alt.children.size() != first.children.size()) {
        symbols_uniform = false;
        break;
      }
      for (size_t j = 0; j < alt.children.size(); ++j) {
        if (AlignKey(alt.children[j]) != AlignKey(first.children[j])) {
          symbols_uniform = false;
          break;
        }
      }
      if (!symbols_uniform) break;
    }
    if (!symbols_uniform) {
      RuleApplication pos;
      pos.path = path;
      pos.param = 1;
      out->push_back(pos);
    }
  }

  Status ApplyAt(DiffTree* node, const RuleApplication& app,
                 const RuleSetOptions& /*opts*/) const override {
    if (node->kind != DKind::kAny || node->children.size() < 2) {
      return Status::Invalid("Any2All: target is not a multi-alternative ANY");
    }
    std::vector<const std::vector<DiffTree>*> alt_children;
    alt_children.reserve(node->children.size());
    for (const DiffTree& alt : node->children) {
      alt_children.push_back(&alt.children);
    }
    std::vector<AlignedColumn> columns = app.param == 1
                                             ? AlignByPosition(alt_children)
                                             : AlignBySymbol(alt_children);
    DiffTree result(node->children[0].sym, node->children[0].value);
    result.children.reserve(columns.size());
    for (const AlignedColumn& col : columns) {
      result.children.push_back(ColumnToNode(alt_children, col));
    }
    *node = std::move(result);
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<Rule> MakeAny2AllRule() { return std::make_unique<Any2AllRule>(); }

}  // namespace ifgen
