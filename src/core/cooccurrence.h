#pragma once

#include <map>
#include <string>
#include <vector>

#include "difftree/difftree.h"
#include "difftree/selection.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief Subtree co-occurrence statistics over the query log — the paper's
/// "Ongoing Work" proposal for catching widget combinations that make no
/// semantic sense ("leverage co-occurrence of subtrees in the query log to
/// identify likely and unlikely combinations of widget choices").
///
/// The model records, for a fixed difftree, which widget selections each log
/// query induces and how often pairs of selections appear together. A
/// candidate interface state (a full SelectionMap, or an enumerated query)
/// is scored in [0, 1]: 1.0 means every selection pair was observed together
/// in the log; 0.0 means some selection never occurred at all.
class CooccurrenceModel {
 public:
  /// Builds the model; queries that fail to match the tree are skipped.
  CooccurrenceModel(const DiffTree& tree, const std::vector<Ast>& queries);

  /// Number of log queries that contributed observations.
  size_t observations() const { return observations_; }

  /// Likelihood score of a full selection state.
  double Score(const SelectionMap& selections) const;

  /// Convenience: match `query` against the tree and score its selections;
  /// returns 0 for inexpressible queries.
  double ScoreQuery(const Ast& query) const;

  /// Splits enumerated queries into (likely, unlikely) by `threshold`.
  struct Partition {
    std::vector<Ast> likely;
    std::vector<Ast> unlikely;
  };
  Partition PartitionQueries(const std::vector<Ast>& queries,
                             double threshold = 0.5) const;

 private:
  using Key = std::pair<int, std::string>;  // (choice id, encoded selection)

  const DiffTree* tree_;
  ChoiceIndex index_;
  size_t observations_ = 0;
  std::map<Key, size_t> single_counts_;
  std::map<std::pair<Key, Key>, size_t> pair_counts_;
};

}  // namespace ifgen
