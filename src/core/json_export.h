#pragma once

#include <string>

#include "cost/cost_model.h"
#include "difftree/difftree.h"
#include "interface/widget_tree.h"

namespace ifgen {

/// \brief JSON serialization of generated interfaces, so external tooling
/// (a real web dashboard, a notebook, a test harness) can consume them.
/// Hand-rolled emitter — the library has no third-party dependencies.

/// Difftree structure: {"kind":"ALL","sym":"Select","value":"","children":[..]}.
std::string DiffTreeToJson(const DiffTree& tree);

/// Widget tree with domains, sizes and positions:
/// {"widget":"Radio","label":"from","choice":4,"options":[..],"x":..}.
std::string WidgetTreeToJson(const WidgetTree& tree);

/// Cost breakdown {"valid":true,"m":..,"u":..,"total":..,"transitions":[..]}.
std::string CostToJson(const CostBreakdown& cost);

/// Escapes a string for embedding in JSON (quotes, control chars, UTF-8
/// bytes pass through).
std::string JsonEscape(const std::string& s);

}  // namespace ifgen
