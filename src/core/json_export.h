#pragma once

#include <string>

#include "cost/cost_model.h"
#include "difftree/difftree.h"
#include "interface/widget_tree.h"
#include "util/json.h"

namespace ifgen {

/// \brief JSON serialization of generated interfaces, so external tooling
/// (the HTTP API, a web dashboard, a notebook, a test harness) can consume
/// them. Built on the util/json value model — the same trees the v1 API
/// codec (src/api/dto.h) embeds into GenerateResponse payloads; the
/// string-returning forms are compact-serialization conveniences.

/// Difftree structure: {"kind":"ALL","sym":"Select","value":"","children":[..]}.
JsonValue DiffTreeToJsonValue(const DiffTree& tree);
std::string DiffTreeToJson(const DiffTree& tree);

/// Widget tree with domains, sizes and positions:
/// {"widget":"Radio","label":"from","choice":4,"options":[..],"box":{..}}.
JsonValue WidgetTreeToJsonValue(const WidgetTree& tree);
std::string WidgetTreeToJson(const WidgetTree& tree);

/// Cost breakdown {"valid":true,"m":..,"u":..,"total":..,"transitions":[..]}.
JsonValue CostToJsonValue(const CostBreakdown& cost);
std::string CostToJson(const CostBreakdown& cost);

}  // namespace ifgen
