#include "core/interface_generator.h"

#include "baseline/bottom_up.h"
#include "difftree/builder.h"
#include "difftree/enumerate.h"
#include "search/baselines.h"
#include "search/mcts.h"
#include "search/parallel_mcts.h"
#include "sql/parser.h"
#include "util/logging.h"

namespace ifgen {

std::string_view AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kMcts:
      return "mcts";
    case Algorithm::kRandom:
      return "random";
    case Algorithm::kGreedy:
      return "greedy";
    case Algorithm::kBeam:
      return "beam";
    case Algorithm::kExhaustive:
      return "exhaustive";
    case Algorithm::kBottomUp:
      return "bottom-up";
  }
  return "?";
}

std::string_view ParallelModeName(ParallelMode m) {
  switch (m) {
    case ParallelMode::kRoot:
      return "root";
    case ParallelMode::kLeaf:
      return "leaf";
  }
  return "?";
}

std::unique_ptr<Searcher> MakeSearcher(Algorithm algorithm, const RuleEngine* rules,
                                       StateEvaluator* evaluator,
                                       const SearchOptions& opts,
                                       const ParallelOptions& parallel) {
  switch (algorithm) {
    case Algorithm::kMcts:
      if (parallel.num_threads > 1) {
        return std::make_unique<ParallelMctsSearcher>(rules, evaluator, opts,
                                                      parallel);
      }
      return std::make_unique<MctsSearcher>(rules, evaluator, opts);
    case Algorithm::kRandom:
      return std::make_unique<RandomSearcher>(rules, evaluator, opts);
    case Algorithm::kGreedy:
      return std::make_unique<GreedySearcher>(rules, evaluator, opts);
    case Algorithm::kBeam:
      return std::make_unique<BeamSearcher>(rules, evaluator, opts);
    case Algorithm::kExhaustive:
      return std::make_unique<ExhaustiveSearcher>(rules, evaluator, opts);
    case Algorithm::kBottomUp:
      return nullptr;  // not a searcher; handled by GenerateInterface
  }
  return nullptr;
}

Result<GeneratedInterface> GenerateInterfaceFromAsts(const std::vector<Ast>& queries,
                                                     const GeneratorOptions& options) {
  if (queries.empty()) {
    return Status::Invalid("query log is empty");
  }
  GeneratedInterface out;
  out.queries = queries;
  out.algorithm = std::string(AlgorithmName(options.algorithm));

  if (options.algorithm == Algorithm::kBottomUp) {
    IFGEN_ASSIGN_OR_RETURN(
        BottomUpResult bu,
        RunBottomUpBaseline(queries, options.constants, options.screen));
    out.difftree = std::move(bu.difftree);
    out.widgets = std::move(bu.widgets);
    out.cost = std::move(bu.cost);
    out.coverage = CountExpressible(out.difftree);
    return out;
  }

  IFGEN_ASSIGN_OR_RETURN(DiffTree initial, BuildInitialTree(queries));
  RuleEngine rules(options.rules);
  StateEvaluator evaluator(options.MakeEvalOptions(), queries);
  std::unique_ptr<Searcher> searcher = MakeSearcher(
      options.algorithm, &rules, &evaluator, options.search, options.parallel);
  IFGEN_CHECK(searcher != nullptr);
  IFGEN_ASSIGN_OR_RETURN(SearchResult sr, searcher->Run(initial));

  // Final phase (paper): enumerate widget trees of the winning difftree.
  Rng rng(options.search.seed ^ 0x5eedULL);
  auto best = evaluator.FindBest(sr.best_tree, &rng);
  if (!best.ok()) {
    // Extremely rare: sampled cost was finite but thorough search failed —
    // fall back to the initial tree, which always admits a button list.
    IFGEN_LOG(Warning) << "FindBest failed on search winner: "
                       << best.status().ToString() << "; using initial tree";
    sr.best_tree = initial;
    IFGEN_ASSIGN_OR_RETURN(ScoredWidgetTree fallback,
                           evaluator.FindBest(sr.best_tree, &rng));
    out.widgets = std::move(fallback.tree);
    out.cost = std::move(fallback.cost);
  } else {
    out.widgets = std::move(best->tree);
    out.cost = std::move(best->cost);
  }
  out.difftree = std::move(sr.best_tree);
  out.stats = std::move(sr.stats);
  out.coverage = CountExpressible(out.difftree);
  return out;
}

Result<GeneratedInterface> GenerateInterface(const std::vector<std::string>& sqls,
                                             const GeneratorOptions& options) {
  IFGEN_ASSIGN_OR_RETURN(std::vector<Ast> queries, ParseQueries(sqls));
  return GenerateInterfaceFromAsts(queries, options);
}

}  // namespace ifgen
