#include "core/session.h"

#include "sql/unparser.h"
#include "util/logging.h"

namespace ifgen {

InterfaceSession::InterfaceSession(DiffTree tree, WidgetTree wt,
                                   CostConstants constants)
    : tree_(std::make_unique<DiffTree>(std::move(tree))),
      widget_tree_(std::move(wt)), constants_(std::move(constants)),
      index_(std::make_unique<ChoiceIndex>(*tree_)) {}

Result<InterfaceSession> InterfaceSession::Create(const GeneratedInterface& iface,
                                                  const CostConstants& constants) {
  InterfaceSession session(iface.difftree, iface.widgets, constants);
  // NOTE: widget_tree_ choice ids were assigned against iface.difftree; the
  // session's copy has identical structure, so pre-order ids agree.
  if (!iface.queries.empty()) {
    auto report = session.LoadQuery(iface.queries[0]);
    IFGEN_RETURN_NOT_OK(report.status());
  }
  return session;
}

Result<InterfaceSession::StepReport> InterfaceSession::LoadQuery(const Ast& query) {
  IFGEN_ASSIGN_OR_RETURN(
      StepOutcome outcome,
      ComputeTransition(*tree_, *index_, widget_tree_, constants_, /*parse_limit=*/8,
                        selections_, query));
  StepReport report;
  report.widgets_changed = outcome.widgets_changed;
  report.interaction_cost = outcome.interaction_cost;
  report.navigation_cost = outcome.navigation_cost;
  selections_ = std::move(outcome.next_state);
  current_ = std::move(outcome.derivation);
  has_current_ = true;
  return report;
}

Result<std::vector<InterfaceSession::StepReport>> InterfaceSession::ReplayLog(
    const std::vector<Ast>& queries) {
  std::vector<StepReport> reports;
  reports.reserve(queries.size());
  for (const Ast& q : queries) {
    IFGEN_ASSIGN_OR_RETURN(StepReport r, LoadQuery(q));
    reports.push_back(r);
  }
  return reports;
}

Derivation* InterfaceSession::FindActive(Derivation* d, const DiffTree* target) {
  if (d->node == target) return d;
  for (Derivation& c : d->children) {
    Derivation* found = FindActive(&c, target);
    if (found != nullptr) return found;
  }
  return nullptr;
}

Status InterfaceSession::SetAnyChoice(int choice_id, int option_index) {
  if (!has_current_) return Status::Invalid("session has no current query");
  if (choice_id < 0 || static_cast<size_t>(choice_id) >= index_->size()) {
    return Status::OutOfRange("bad choice id");
  }
  const DiffTree* node = index_->node(static_cast<size_t>(choice_id));
  if (node->kind != DKind::kAny) return Status::Invalid("choice is not an ANY");
  if (option_index < 0 ||
      static_cast<size_t>(option_index) >= node->children.size()) {
    return Status::OutOfRange("bad option index");
  }
  Derivation* active = FindActive(&current_, node);
  if (active == nullptr) {
    return Status::Invalid("widget is not active in the current query");
  }
  active->choice = option_index;
  active->children.assign(
      1, DefaultDerivation(node->children[static_cast<size_t>(option_index)]));
  selections_[choice_id] = "a" + std::to_string(option_index);
  return Status::OK();
}

Status InterfaceSession::SetOptPresent(int choice_id, bool present) {
  if (!has_current_) return Status::Invalid("session has no current query");
  if (choice_id < 0 || static_cast<size_t>(choice_id) >= index_->size()) {
    return Status::OutOfRange("bad choice id");
  }
  const DiffTree* node = index_->node(static_cast<size_t>(choice_id));
  if (node->kind != DKind::kOpt) return Status::Invalid("choice is not an OPT");
  Derivation* active = FindActive(&current_, node);
  if (active == nullptr) {
    return Status::Invalid("widget is not active in the current query");
  }
  active->choice = present ? 1 : 0;
  if (present) {
    active->children.assign(1, DefaultDerivation(node->children[0]));
  } else {
    active->children.clear();
  }
  selections_[choice_id] = present ? "p1" : "p0";
  return Status::OK();
}

Status InterfaceSession::SetMultiCount(int choice_id, size_t count) {
  if (!has_current_) return Status::Invalid("session has no current query");
  if (choice_id < 0 || static_cast<size_t>(choice_id) >= index_->size()) {
    return Status::OutOfRange("bad choice id");
  }
  const DiffTree* node = index_->node(static_cast<size_t>(choice_id));
  if (node->kind != DKind::kMulti) return Status::Invalid("choice is not a MULTI");
  if (count > kMaxMultiCount) {
    return Status::OutOfRange("multi count " + std::to_string(count) +
                              " exceeds maximum " + std::to_string(kMaxMultiCount));
  }
  Derivation* active = FindActive(&current_, node);
  if (active == nullptr) {
    return Status::Invalid("widget is not active in the current query");
  }
  active->choice = static_cast<int>(count);
  active->children.assign(count, DefaultDerivation(node->children[0]));
  selections_[choice_id] = active->Encode();
  return Status::OK();
}

Result<Ast> InterfaceSession::CurrentQuery() const {
  if (!has_current_) return Status::Invalid("session has no current query");
  return MaterializeDerivation(current_);
}

Result<std::string> InterfaceSession::CurrentSql() const {
  IFGEN_ASSIGN_OR_RETURN(Ast q, CurrentQuery());
  return Unparse(q);
}

Result<Table> InterfaceSession::ExecuteCurrent(const Database& db) const {
  IFGEN_ASSIGN_OR_RETURN(Ast q, CurrentQuery());
  if (db_backend_for_ != &db) {
    IFGEN_ASSIGN_OR_RETURN(db_backend_,
                           CreateBackend(BackendKind::kReference, &db));
    db_backend_for_ = &db;
    ++backends_created_;
  }
  return db_backend_->Execute(q);
}

Result<Table> InterfaceSession::ExecuteCurrent(ExecutionBackend* backend) const {
  if (backend == nullptr) return Status::Invalid("null backend");
  IFGEN_ASSIGN_OR_RETURN(Ast q, CurrentQuery());
  return backend->Execute(q);
}

}  // namespace ifgen
