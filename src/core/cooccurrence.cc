#include "core/cooccurrence.h"

#include <algorithm>

#include "difftree/match.h"

namespace ifgen {

CooccurrenceModel::CooccurrenceModel(const DiffTree& tree,
                                     const std::vector<Ast>& queries)
    : tree_(&tree), index_(tree) {
  for (const Ast& q : queries) {
    auto deriv = MatchQuery(tree, q);
    if (!deriv.has_value()) continue;
    SelectionMap sels = ExtractSelections(index_, *deriv);
    ++observations_;
    std::vector<Key> keys;
    keys.reserve(sels.size());
    for (const auto& [id, sel] : sels) keys.emplace_back(id, sel);
    std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i < keys.size(); ++i) {
      ++single_counts_[keys[i]];
      for (size_t j = i + 1; j < keys.size(); ++j) {
        ++pair_counts_[{keys[i], keys[j]}];
      }
    }
  }
}

double CooccurrenceModel::Score(const SelectionMap& selections) const {
  if (observations_ == 0) return 0.0;
  std::vector<Key> keys;
  keys.reserve(selections.size());
  for (const auto& [id, sel] : selections) keys.emplace_back(id, sel);
  std::sort(keys.begin(), keys.end());

  // A selection value never seen in the log at all marks the combination as
  // fully novel.
  for (const Key& k : keys) {
    if (single_counts_.find(k) == single_counts_.end()) return 0.0;
  }
  if (keys.size() < 2) return 1.0;

  // Mean conditional co-occurrence over pairs: |a & b| / min(|a|, |b|).
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      auto it = pair_counts_.find({keys[i], keys[j]});
      size_t together = it == pair_counts_.end() ? 0 : it->second;
      size_t denom = std::min(single_counts_.at(keys[i]),
                              single_counts_.at(keys[j]));
      total += denom == 0 ? 0.0
                          : static_cast<double>(together) /
                                static_cast<double>(denom);
      ++pairs;
    }
  }
  return pairs == 0 ? 1.0 : total / static_cast<double>(pairs);
}

double CooccurrenceModel::ScoreQuery(const Ast& query) const {
  auto deriv = MatchQuery(*tree_, query);
  if (!deriv.has_value()) return 0.0;
  return Score(ExtractSelections(index_, *deriv));
}

CooccurrenceModel::Partition CooccurrenceModel::PartitionQueries(
    const std::vector<Ast>& queries, double threshold) const {
  Partition p;
  for (const Ast& q : queries) {
    if (ScoreQuery(q) >= threshold) {
      p.likely.push_back(q);
    } else {
      p.unlikely.push_back(q);
    }
  }
  return p;
}

}  // namespace ifgen
