#include "core/json_export.h"

#include <cmath>

namespace ifgen {

namespace {

/// Matches the historical emitter: non-finite costs render as JSON null.
JsonValue Num(double v) {
  if (!std::isfinite(v)) return JsonValue::MakeNull();
  return JsonValue::Double(v);
}

JsonValue DiffTreeRec(const DiffTree& n) {
  JsonValue out = JsonValue::Object();
  out.Set("kind", JsonValue::Str(std::string(DKindName(n.kind))));
  if (n.kind == DKind::kAll) {
    out.Set("sym", JsonValue::Str(std::string(SymbolName(n.sym))));
    if (!n.value.empty()) out.Set("value", JsonValue::Str(n.value));
  }
  if (!n.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const DiffTree& c : n.children) children.Append(DiffTreeRec(c));
    out.Set("children", std::move(children));
  }
  return out;
}

JsonValue WidgetRec(const WidgetNode& n) {
  JsonValue out = JsonValue::Object();
  out.Set("widget", JsonValue::Str(std::string(WidgetKindName(n.kind))));
  if (!n.label.empty()) out.Set("label", JsonValue::Str(n.label));
  if (n.choice_id >= 0) out.Set("choice", JsonValue::Int(n.choice_id));
  if (n.choice_id2 >= 0) out.Set("choice2", JsonValue::Int(n.choice_id2));
  if (!IsLayoutWidget(n.kind) && !n.domain.labels.empty()) {
    JsonValue options = JsonValue::Array();
    for (const std::string& label : n.domain.labels) {
      options.Append(JsonValue::Str(label));
    }
    out.Set("options", std::move(options));
    if (n.domain.all_numeric) {
      JsonValue numeric = JsonValue::Object();
      numeric.Set("lo", Num(n.domain.num_lo));
      numeric.Set("hi", Num(n.domain.num_hi));
      out.Set("numeric", std::move(numeric));
    }
  }
  JsonValue box = JsonValue::Object();
  box.Set("x", JsonValue::Int(n.x));
  box.Set("y", JsonValue::Int(n.y));
  box.Set("w", JsonValue::Int(n.width));
  box.Set("h", JsonValue::Int(n.height));
  out.Set("box", std::move(box));
  if (!n.children.empty()) {
    JsonValue children = JsonValue::Array();
    for (const WidgetNode& c : n.children) children.Append(WidgetRec(c));
    out.Set("children", std::move(children));
  }
  return out;
}

}  // namespace

JsonValue DiffTreeToJsonValue(const DiffTree& tree) { return DiffTreeRec(tree); }

std::string DiffTreeToJson(const DiffTree& tree) {
  return WriteJson(DiffTreeToJsonValue(tree));
}

JsonValue WidgetTreeToJsonValue(const WidgetTree& tree) {
  return WidgetRec(tree.root);
}

std::string WidgetTreeToJson(const WidgetTree& tree) {
  return WriteJson(WidgetTreeToJsonValue(tree));
}

JsonValue CostToJsonValue(const CostBreakdown& cost) {
  JsonValue out = JsonValue::Object();
  out.Set("valid", JsonValue::Bool(cost.valid));
  if (!cost.valid) out.Set("reason", JsonValue::Str(cost.invalid_reason));
  out.Set("m", Num(cost.m_total));
  out.Set("u", Num(cost.u_total));
  out.Set("total", Num(cost.total()));
  JsonValue layout = JsonValue::Object();
  layout.Set("w", JsonValue::Int(cost.layout_width));
  layout.Set("h", JsonValue::Int(cost.layout_height));
  out.Set("layout", std::move(layout));
  JsonValue transitions = JsonValue::Array();
  for (double t : cost.per_transition) transitions.Append(Num(t));
  out.Set("transitions", std::move(transitions));
  return out;
}

std::string CostToJson(const CostBreakdown& cost) {
  return WriteJson(CostToJsonValue(cost));
}

}  // namespace ifgen
