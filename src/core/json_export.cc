#include "core/json_export.h"

#include <cmath>

#include "util/string_util.h"

namespace ifgen {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.6g", v);
}

void DiffTreeRec(const DiffTree& n, std::string* out) {
  *out += "{\"kind\":\"";
  *out += DKindName(n.kind);
  *out += "\"";
  if (n.kind == DKind::kAll) {
    *out += ",\"sym\":\"";
    *out += SymbolName(n.sym);
    *out += "\"";
    if (!n.value.empty()) {
      *out += ",\"value\":\"" + JsonEscape(n.value) + "\"";
    }
  }
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += ",";
      DiffTreeRec(n.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

void WidgetRec(const WidgetNode& n, std::string* out) {
  *out += "{\"widget\":\"";
  *out += WidgetKindName(n.kind);
  *out += "\"";
  if (!n.label.empty()) {
    *out += ",\"label\":\"" + JsonEscape(n.label) + "\"";
  }
  if (n.choice_id >= 0) {
    *out += StrFormat(",\"choice\":%d", n.choice_id);
  }
  if (n.choice_id2 >= 0) {
    *out += StrFormat(",\"choice2\":%d", n.choice_id2);
  }
  if (!IsLayoutWidget(n.kind) && !n.domain.labels.empty()) {
    *out += ",\"options\":[";
    for (size_t i = 0; i < n.domain.labels.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "\"" + JsonEscape(n.domain.labels[i]) + "\"";
    }
    *out += "]";
    if (n.domain.all_numeric) {
      *out += ",\"numeric\":{\"lo\":" + Num(n.domain.num_lo) +
              ",\"hi\":" + Num(n.domain.num_hi) + "}";
    }
  }
  *out += StrFormat(",\"box\":{\"x\":%d,\"y\":%d,\"w\":%d,\"h\":%d}", n.x, n.y,
                    n.width, n.height);
  if (!n.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) *out += ",";
      WidgetRec(n.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

std::string DiffTreeToJson(const DiffTree& tree) {
  std::string out;
  DiffTreeRec(tree, &out);
  return out;
}

std::string WidgetTreeToJson(const WidgetTree& tree) {
  std::string out;
  WidgetRec(tree.root, &out);
  return out;
}

std::string CostToJson(const CostBreakdown& cost) {
  std::string out = "{\"valid\":";
  out += cost.valid ? "true" : "false";
  if (!cost.valid) {
    out += ",\"reason\":\"" + JsonEscape(cost.invalid_reason) + "\"";
  }
  out += ",\"m\":" + Num(cost.m_total);
  out += ",\"u\":" + Num(cost.u_total);
  out += ",\"total\":" + Num(cost.total());
  out += StrFormat(",\"layout\":{\"w\":%d,\"h\":%d}", cost.layout_width,
                   cost.layout_height);
  out += ",\"transitions\":[";
  for (size_t i = 0; i < cost.per_transition.size(); ++i) {
    if (i > 0) out += ",";
    out += Num(cost.per_transition[i]);
  }
  out += "]}";
  return out;
}

}  // namespace ifgen
