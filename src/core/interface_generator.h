#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "cost/cost_model.h"
#include "difftree/difftree.h"
#include "interface/widget_tree.h"
#include "search/search_common.h"
#include "sql/ast.h"
#include "util/status.h"

namespace ifgen {

/// \brief The end-to-end product: a generated interactive interface.
struct GeneratedInterface {
  std::vector<Ast> queries;
  DiffTree difftree;
  WidgetTree widgets;
  CostBreakdown cost;
  SearchStats stats;
  /// Estimated number of distinct queries the interface can express
  /// (MULTI capped at 2 repetitions); >= |queries|.
  double coverage = 0.0;
  std::string algorithm;
};

/// \brief Top-level entry point: query log in, interface out.
///
/// Pipeline (paper, "Our Approach"): parse queries -> initial difftree
/// (ANY over the ASTs) -> search over rule rewrites (MCTS by default) ->
/// exhaustive widget-tree selection for the best difftree -> scored,
/// renderable interface.
Result<GeneratedInterface> GenerateInterface(const std::vector<std::string>& sqls,
                                             const GeneratorOptions& options = {});

/// Same, for pre-parsed queries.
Result<GeneratedInterface> GenerateInterfaceFromAsts(const std::vector<Ast>& queries,
                                                     const GeneratorOptions& options);

/// Factory used by benches to sweep algorithms uniformly. When `parallel`
/// requests more than one thread and the algorithm is MCTS, the returned
/// searcher is the ParallelMctsSearcher (root- or leaf-parallel per
/// `parallel.mode`); every other combination is the serial implementation.
std::unique_ptr<Searcher> MakeSearcher(Algorithm algorithm, const RuleEngine* rules,
                                       StateEvaluator* evaluator,
                                       const SearchOptions& opts,
                                       const ParallelOptions& parallel = {});

}  // namespace ifgen
