#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/interface_generator.h"
#include "cost/transition.h"
#include "difftree/match.h"
#include "difftree/selection.h"
#include "engine/backend.h"
#include "engine/executor.h"
#include "util/status.h"

namespace ifgen {

/// \brief The interactive runtime: simulates a user driving a generated
/// interface. Widgets implement w(q, u) -> q' (paper, "Widgets"): setting a
/// widget replaces the subtree at that widget's difftree location, and the
/// current query is re-materialized (and optionally re-executed).
///
/// The session owns copies of the difftree and widget tree; derivations
/// point into the session's own difftree.
class InterfaceSession {
 public:
  /// Builds a session positioned at the interface's first query.
  static Result<InterfaceSession> Create(const GeneratedInterface& iface,
                                         const CostConstants& constants);

  /// \brief Effort report for one interaction step or query load.
  struct StepReport {
    size_t widgets_changed = 0;
    double interaction_cost = 0.0;
    double navigation_cost = 0.0;
    double total() const { return interaction_cost + navigation_cost; }
  };

  /// Moves the widgets to express `query` (min-change), returning the
  /// effort; fails when the interface cannot express it.
  Result<StepReport> LoadQuery(const Ast& query);

  /// Replays a whole log, returning per-step efforts (first step free).
  Result<std::vector<StepReport>> ReplayLog(const std::vector<Ast>& queries);

  /// Widget manipulation by choice id — the w(q,u) -> q' interface.
  Status SetAnyChoice(int choice_id, int option_index);
  Status SetOptPresent(int choice_id, bool present);
  Status SetMultiCount(int choice_id, size_t count);

  /// Upper bound on a MULTI widget's repeat count. A MULTI's count is the
  /// number of repeated clause children (predicates, aggregate terms, ...),
  /// single digits in any real interface; SetMultiCount rejects anything
  /// larger before the count-sized allocation so an untrusted count (e.g.
  /// from the wire) cannot drive an unbounded allocation.
  static constexpr size_t kMaxMultiCount = 1024;

  /// The query currently expressed by the widgets.
  Result<Ast> CurrentQuery() const;
  Result<std::string> CurrentSql() const;

  /// Executes the current query against `db` (the "visualization" feed)
  /// with reference-executor semantics. The reference backend is
  /// constructed once per database and cached for the session's lifetime,
  /// so repeated widget-driven calls reuse its plan cache (rebind, don't
  /// re-plan) instead of rebuilding executor state per call. Not
  /// thread-safe (sessions are single-user); `db` must outlive the session
  /// or the next ExecuteCurrent call with a different database.
  Result<Table> ExecuteCurrent(const Database& db) const;

  /// Reference backends constructed by ExecuteCurrent(const Database&);
  /// stays at 1 for the usual one-database session.
  size_t backends_created() const { return backends_created_; }

  /// Executes the current query through an execution backend; repeated
  /// widget transitions hit the backend's plan cache (same query shape,
  /// new literal bindings). Backend selection comes from
  /// GeneratorOptions::backend (see CreateBackend /
  /// GenerationService::BackendFor).
  Result<Table> ExecuteCurrent(ExecutionBackend* backend) const;

  const SelectionMap& selections() const { return selections_; }
  const DiffTree& difftree() const { return *tree_; }
  const WidgetTree& widgets() const { return widget_tree_; }

 private:
  InterfaceSession(DiffTree tree, WidgetTree wt, CostConstants constants);

  /// Finds the derivation node controlling `choice_id` in the active
  /// derivation; null when the choice is not active (hidden alternative).
  Derivation* FindActive(Derivation* d, const DiffTree* target);

  // The tree and index live behind stable pointers: derivations and the
  // choice index point into tree nodes, and sessions are movable values.
  std::unique_ptr<DiffTree> tree_;
  WidgetTree widget_tree_;
  CostConstants constants_;
  std::unique_ptr<ChoiceIndex> index_;
  Derivation current_;
  SelectionMap selections_;
  bool has_current_ = false;

  /// Lazily-built reference backend for ExecuteCurrent(const Database&),
  /// keyed by the database's address (rebuilt if the caller switches
  /// databases — rare; sessions serve one store). Same lifetime contract as
  /// GenerationService::BackendFor's (db, kind) cache: the database must
  /// stay alive while the cached backend can still be used.
  mutable std::unique_ptr<ExecutionBackend> db_backend_;
  mutable const Database* db_backend_for_ = nullptr;
  mutable size_t backends_created_ = 0;
};

}  // namespace ifgen
