#pragma once

#include "cost/evaluator.h"
#include "rules/rule.h"
#include "search/search_common.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief Which generator to run.
enum class Algorithm : uint8_t {
  kMcts = 0,   ///< the paper's approach
  kRandom,     ///< random-walk baseline (Figure 6d-style output)
  kGreedy,     ///< hill climbing baseline
  kBeam,       ///< beam search baseline
  kExhaustive, ///< bounded exhaustive search (tiny inputs only)
  kBottomUp,   ///< Zhang et al. 2017 bottom-up baseline (no search)
};

std::string_view AlgorithmName(Algorithm a);

/// \brief All knobs of the end-to-end generator, with paper defaults.
struct GeneratorOptions {
  Screen screen{100, 40};
  Algorithm algorithm = Algorithm::kMcts;
  SearchOptions search;
  RuleSetOptions rules;
  CostConstants constants;
  /// k random widget assignments per state during search (paper's k).
  size_t k_assignments = 8;
  /// Derivations per query for the min-change U computation.
  size_t parse_limit = 8;
  /// Exhaustive widget enumeration cap for the final state.
  double enumeration_cap = 20000;

  EvalOptions MakeEvalOptions() const {
    EvalOptions e;
    e.screen = screen;
    e.constants = constants;
    e.k_assignments = k_assignments;
    e.parse_limit = parse_limit;
    e.enumeration_cap = enumeration_cap;
    return e;
  }
};

}  // namespace ifgen
