#pragma once

#include "cost/evaluator.h"
#include "engine/backend.h"
#include "rules/rule.h"
#include "search/search_common.h"
#include "widgets/widget.h"

namespace ifgen {

/// \brief Which generator to run.
enum class Algorithm : uint8_t {
  kMcts = 0,   ///< the paper's approach
  kRandom,     ///< random-walk baseline (Figure 6d-style output)
  kGreedy,     ///< hill climbing baseline
  kBeam,       ///< beam search baseline
  kExhaustive, ///< bounded exhaustive search (tiny inputs only)
  kBottomUp,   ///< Zhang et al. 2017 bottom-up baseline (no search)
};

std::string_view AlgorithmName(Algorithm a);

/// \brief How the MCTS search tree is parallelized.
enum class ParallelMode : uint8_t {
  /// N independent trees (one per thread) share the transposition table and
  /// the global best tracker; results merge by visit-weighted reward.
  /// Diversifies exploration — each tree gets its own RNG stream.
  kRoot = 0,
  /// One tree; the simulations of freshly expanded children fan out to the
  /// pool (`leaf_rollouts` rollouts per child). Concentrates effort — the
  /// tree policy sees more samples per decision.
  kLeaf,
};

std::string_view ParallelModeName(ParallelMode m);

/// \brief Knobs of the parallel search runtime.
///
/// Determinism contract: `num_threads <= 1` runs the serial searcher — the
/// result is bit-for-bit identical for a fixed seed. With more threads,
/// every thread draws from its own RNG stream (`Rng::Split` of the seed),
/// but search trajectories are timing-dependent: shared-cache hits consume
/// no RNG draws while misses do, and which thread fills a shared entry
/// first varies run-to-run, shifting the streams' consumption and hence
/// the states visited. Only the seeds, not the trajectories, are
/// reproducible beyond one thread.
struct ParallelOptions {
  /// Worker threads for the search; <= 1 = serial (bit-for-bit reproducible).
  size_t num_threads = 1;
  ParallelMode mode = ParallelMode::kRoot;
  /// Lock stripes of the shared transposition table.
  size_t tt_shards = 16;
  /// Leaf mode: simulations fanned out per freshly expanded child.
  size_t leaf_rollouts = 2;
};

/// \brief All knobs of the end-to-end generator, with paper defaults —
/// except the PR-2 search/evaluation refinements, which default on and are
/// individually ablatable:
///  - `search.priors` (PriorOptions): log-derived action priors (PUCT) and
///    progressive widening; `use_priors`/`progressive_widening` false
///    recovers the paper's uniform expand-all search.
///  - `delta_cost_eval`: per-subtree delta-cost evaluation; false forces
///    full re-evaluation per state (bit-identical costs, more recomputes).
struct GeneratorOptions {
  Screen screen{100, 40};
  Algorithm algorithm = Algorithm::kMcts;
  SearchOptions search;
  /// Parallel runtime; `parallel.num_threads > 1` with kMcts selects the
  /// ParallelMctsSearcher.
  ParallelOptions parallel;
  RuleSetOptions rules;
  CostConstants constants;
  /// Execution backend the generated interface's queries run against
  /// (InterfaceSession::ExecuteCurrent, GenerationService::BackendFor).
  /// Does not affect the generated widgets, but it is part of the served
  /// contract (API requests select it per job, and sessions execute on it),
  /// so it participates in the service's result-cache key.
  BackendKind backend = BackendKind::kColumnar;
  /// Delta-cost evaluation ablation flag (EvalOptions::delta_eval).
  bool delta_cost_eval = true;
  /// k random widget assignments per state during search (paper's k).
  size_t k_assignments = 8;
  /// Derivations per query for the min-change U computation.
  size_t parse_limit = 8;
  /// Exhaustive widget enumeration cap for the final state.
  double enumeration_cap = 20000;
  /// Cache peering (cluster ablation flag): makes this job's transposition
  /// entries exportable to sibling workers and eligible to warm-start from
  /// theirs. Turns on state-keyed sampling (EvalOptions) so sampled costs
  /// are pure functions of (state, options, seed) — pre-seeded entries then
  /// change the amount of work, never the values or the RNG streams; a
  /// peered run is bit-identical to a cold run with the same flag. Changes
  /// which costs the k random assignments produce vs. the default caller-
  /// stream sampling, so it participates in cache keys and fingerprints.
  bool cache_peering = false;
  /// Persistent-experience ablation flag (src/learn/): makes this job
  /// eligible to warm-start from the service's ExperienceStore (root-action
  /// virtual visits + transposition/delta-cache seeding) and to record its
  /// discoveries back. Turns on state-keyed sampling exactly like
  /// `cache_peering` — and for the same soundness reason — so it
  /// participates in cache keys and fingerprints the same way; the runtime
  /// store/bridge wiring does not.
  bool experience = false;
  /// Cross-job delta-cost cache shared by the service for same-cost-identity
  /// experience jobs (cost/delta.h documents why sharing is bit-safe).
  /// Runtime wiring — never part of any key or fingerprint.
  std::shared_ptr<DeltaCostCache> shared_delta_cache;

  EvalOptions MakeEvalOptions() const {
    EvalOptions e;
    e.screen = screen;
    e.constants = constants;
    e.k_assignments = k_assignments;
    e.parse_limit = parse_limit;
    e.enumeration_cap = enumeration_cap;
    e.delta_eval = delta_cost_eval;
    e.state_keyed_sampling = cache_peering || experience;
    e.sampling_seed = search.seed;
    e.shared_delta = shared_delta_cache;
    return e;
  }
};

}  // namespace ifgen
