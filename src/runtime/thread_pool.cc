#include "runtime/thread_pool.h"

#include <chrono>

#include "util/logging.h"

namespace ifgen {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Drain anything submitted after the workers exited.
  std::function<void()> task;
  for (size_t i = 0; i < workers_.size(); ++i) {
    while (PopFrom(i, /*steal=*/true, &task)) task();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    fn();
    return;
  }
  size_t target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_front(std::move(fn));
  }
  pending_.fetch_add(1, std::memory_order_release);
  idle_cv_.notify_one();
}

bool ThreadPool::PopFrom(size_t index, bool steal, std::function<void()>* out) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.queue.empty()) return false;
  if (steal) {
    *out = std::move(w.queue.back());
    w.queue.pop_back();
  } else {
    *out = std::move(w.queue.front());
    w.queue.pop_front();
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::FindWork(size_t self, std::function<void()>* out) {
  const size_t n = workers_.size();
  if (n == 0) return false;
  // Own queue first (front = most recently pushed), then steal round-robin
  // from the others' backs.
  if (self < n && PopFrom(self, /*steal=*/false, out)) return true;
  for (size_t d = 1; d <= n; ++d) {
    size_t victim = (self + d) % n;
    if (victim == self) continue;
    if (PopFrom(victim, /*steal=*/true, out)) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t index) {
  std::function<void()> task;
  while (true) {
    if (FindWork(index, &task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    idle_cv_.wait_for(lock, std::chrono::milliseconds(50));
    if (stopping_.load(std::memory_order_acquire)) return;
  }
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  // A helper thread has no own queue; start stealing from worker 0.
  if (!FindWork(workers_.empty() ? 0 : workers_.size(), &task)) return false;
  task();
  return true;
}

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_threads() == 0) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Decrement and notify under the mutex: once Wait observes zero (which
    // it can only do after this unlock), this task provably never touches
    // the group again, so Wait's caller may destroy it.
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  // Help the pool while our tasks are pending: this keeps nested groups
  // (a pool task that itself spawns and waits on a group) deadlock-free.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (outstanding_ == 0) return;
    }
    if (pool_->TryRunOne()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (outstanding_ == 0) return;
    done_cv_.wait_for(lock, std::chrono::milliseconds(2));
  }
}

void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t width = pool == nullptr ? 0 : pool->num_threads();
  if (width <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(n, width * 4);
  const size_t per = (n + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * per;
    const size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    group.Run([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.Wait();
}

}  // namespace ifgen
