#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interface_generator.h"
#include "engine/backend.h"
#include "learn/experience.h"
#include "obs/trace.h"
#include "runtime/interactive.h"
#include "runtime/thread_pool.h"
#include "search/progress.h"
#include "search/timeman.h"

namespace ifgen {

/// \brief One generation job: a query log plus the generator configuration.
struct JobSpec {
  std::vector<std::string> sqls;
  GeneratorOptions options;
};

/// \brief Lifecycle of a tracked generation job (see
/// GenerationService::SubmitJob). Terminal states: kDone/kFailed/kCancelled.
enum class JobState : uint8_t {
  kQueued = 0,  ///< admitted, waiting for a worker
  kRunning,     ///< a worker is generating
  kDone,        ///< result available
  kFailed,      ///< generation returned an error
  kCancelled,   ///< cancelled while queued or aborted while running
};

std::string_view JobStateName(JobState s);

/// \brief A concurrent interface-generation service: many query logs in,
/// many interfaces out (the serving posture of PI2, which wraps this
/// algorithm into an end-to-end interface service).
///
/// Jobs run on a work-stealing thread pool; identical jobs — same canonical
/// query log (parsed, unparsed, and sorted, so formatting and order don't
/// matter) and same options — are answered from an LRU result cache.
/// Each job's search can itself be parallel (JobSpec.options.parallel);
/// that nests cleanly because TaskGroup::Wait helps run pool tasks instead
/// of blocking a worker.
///
/// The primary submission path is the tracked job protocol — SubmitJob
/// returns a JobId whose state, timing, and result are observable through
/// GetJob/WaitJob and whose queued phase is cancellable — which is what the
/// v1 API layer (src/api) serves. Submit/SubmitBatch are thin future
/// adapters over the same path for in-process batch callers.
class GenerationService {
 public:
  struct Options {
    /// Worker threads executing jobs (min 1).
    size_t num_threads = 4;
    /// Completed results kept in the LRU cache; 0 disables caching.
    size_t cache_capacity = 64;
    /// Upper bound on admitted-but-unfinished jobs (queued + running);
    /// SubmitJob answers ResourceExhausted beyond it (the API layer maps
    /// that to HTTP 429). 0 = unbounded.
    size_t max_pending_jobs = 0;
    /// Terminal job records retained for GetJob; the oldest finished record
    /// is evicted beyond this (a later GetJob answers NotFound).
    size_t job_history_capacity = 256;
    /// Transposition peer stores kept (one per TtStoreKey cost identity);
    /// the oldest store is dropped beyond this. 0 disables peering stores
    /// entirely (TtIngest drops batches, jobs run cold).
    size_t tt_peer_store_capacity = 32;
    /// Entries retained per peer store; ingests beyond the cap are dropped
    /// (first-writer-wins, so the earliest discoveries stay).
    size_t tt_peer_entries_per_store = 4096;
    /// Persistent experience store shared by every job with
    /// `options.experience` set (see src/learn/experience.h). The caller
    /// owns persistence: servers load it before constructing the service
    /// and save it on drain / on a cadence. Null = experience jobs run cold
    /// and record nothing (the flag still changes sampling mode, so results
    /// stay bit-identical to a store-backed cold start).
    std::shared_ptr<learn::ExperienceStore> experience;
    /// Most-visited experience records seeded into one search's bridge. At
    /// least one search's export (the bridge's export_limit, 512, plus root
    /// records): visit ordering favors hot rollout states, so a tighter
    /// limit can crowd out the root-action records that actually shift the
    /// next search's opening.
    size_t experience_seed_limit = 1024;
    /// Shared cross-job delta-cost caches kept (one per TtStoreKey cost
    /// identity, experience jobs only); oldest dropped beyond this. 0
    /// disables delta-cache sharing (jobs fall back to private caches).
    size_t shared_delta_store_capacity = 8;
  };

  GenerationService();  ///< default Options
  explicit GenerationService(Options opts);
  ~GenerationService();

  using JobId = uint64_t;
  using JobFuture = std::future<Result<GeneratedInterface>>;

  /// \brief Observable snapshot of one job: state, phase timings, and — in
  /// a terminal state — the result or error. `result->stats.trace` carries
  /// the search's best-so-far curve, i.e. the anytime view of the run.
  struct JobInfo {
    JobId id = 0;
    JobState state = JobState::kQueued;
    bool cache_hit = false;  ///< answered from the result cache
    int64_t queued_ms = 0;   ///< time spent waiting for a worker (so far)
    int64_t run_ms = 0;      ///< execution time (so far, when running)
    /// kDone: the full result. kCancelled: the best-so-far partial result
    /// when the job was aborted mid-run after at least one improvement was
    /// published (null when cancelled while still queued).
    std::shared_ptr<const GeneratedInterface> result;
    Status error;  ///< kFailed/kCancelled only
    /// Per-job span capture, present when tracing (obs::SetTracingEnabled)
    /// was on while the job executed. Export with ToChromeTraceJson().
    std::shared_ptr<const obs::TraceRecorder> trace;

    bool terminal() const {
      return state == JobState::kDone || state == JobState::kFailed ||
             state == JobState::kCancelled;
    }
  };

  /// Admits one job and returns its id immediately (kDone at once on a
  /// cache hit); ResourceExhausted when `max_pending_jobs` jobs are already
  /// in flight.
  Result<JobId> SubmitJob(JobSpec spec);

  /// Snapshot of a job's current state; NotFound for ids never issued or
  /// evicted from the finished-job history.
  Result<JobInfo> GetJob(JobId id) const;

  /// Blocks until the job is terminal or `timeout_ms` elapses (negative =
  /// no timeout) and returns the latest snapshot — callers must check
  /// `terminal()` when they passed a timeout.
  Result<JobInfo> WaitJob(JobId id, int64_t timeout_ms = -1);

  /// Cancels a job. Still queued: the state becomes kCancelled (error
  /// Cancelled) immediately. Running: the job's StopHandle is flagged and
  /// the search aborts within one check interval; the job then lands in
  /// kCancelled carrying the best-so-far partial result (the returned
  /// snapshot may still say kRunning — WaitJob observes the transition).
  /// Terminal jobs are returned unchanged.
  Result<JobInfo> CancelJob(JobId id);

  /// \brief Versioned best-so-far snapshot of a job's search progress (see
  /// search/progress.h); the live anytime view GetJob cannot give until the
  /// job is terminal.
  struct JobProgress {
    JobId id = 0;
    JobState state = JobState::kQueued;
    bool terminal = false;
    uint64_t version = 0;    ///< publish count; 0 = no improvement yet
    double best_cost = 0.0;  ///< latest published best cost
    size_t iteration = 0;    ///< search iteration that found it
    int64_t ms = 0;          ///< search-relative elapsed ms of that event
    std::shared_ptr<const DiffTree> best_tree;  ///< null until version >= 1
  };

  /// Snapshot of a job's progress; with `wait_ms > 0`, blocks (condvar, like
  /// WaitJob) until the version exceeds `last_seen_version`, the job turns
  /// terminal, or the timeout elapses. NotFound for unknown/evicted ids.
  Result<JobProgress> GetJobProgress(JobId id, uint64_t last_seen_version = 0,
                                     int64_t wait_ms = 0);

  /// Jobs admitted but not yet terminal (queued + running).
  size_t jobs_pending() const;

  /// Submits one job; the future resolves when the interface is generated
  /// (immediately on a cache hit). Future adapter over SubmitJob: the job
  /// is tracked like any other, and admission-control rejections resolve
  /// the future with the ResourceExhausted status.
  JobFuture Submit(JobSpec spec);

  /// Submits a batch; futures are in input order. Jobs execute concurrently
  /// up to the pool width.
  std::vector<JobFuture> SubmitBatch(std::vector<JobSpec> specs);

  /// Cache key: hash of the *sorted canonical* SQL (each query parsed and
  /// unparsed, the list sorted) combined with a hash of every
  /// result-affecting option. Unparsable logs fall back to the raw strings
  /// (still deterministic; such jobs fail identically anyway).
  /// GeneratorOptions::backend IS part of the key: the backend never
  /// changes the generated widgets, but with backend selection exposed
  /// per-request at the API boundary, two requests differing only in
  /// backend must not alias one cached result — the response reports the
  /// backend sessions will execute on.
  static uint64_t JobKey(const JobSpec& spec);

  /// True when the result cache holds a completed result for `key` — the
  /// cluster's `cache.probe` path. Deliberately bumps neither `cache_hits`
  /// nor the entry's LRU recency: a probe only becomes a hit when the
  /// probing router actually routes the job here (the submit then takes the
  /// normal CacheLookup path, bit-identical to a local repeat submission).
  /// Probes are counted separately (`cache_probes`/`cache_probe_hits`).
  bool CachePeek(uint64_t key) const;

  /// Cost-identity fingerprint for transposition peering: two jobs share a
  /// peer store iff a canonical state's sampled cost is interchangeable
  /// between them — same canonical query log and every EvalOptions-affecting
  /// knob (screen, constants, k/parse/enumeration, delta flag, seed, and the
  /// cache_peering flag itself). Deliberately EXCLUDES budget/deadline/
  /// iteration caps, algorithm, parallelism, and backend, so a re-run of the
  /// same log under a different budget still warm-starts from the store.
  static uint64_t TtStoreKey(const JobSpec& spec);

  /// Merges `entries` into peer store `store_key` (first writer wins per
  /// canonical hash, mirroring TranspositionTable semantics). Entries from
  /// this worker's own searches are `local_origin` and get re-exported by
  /// TtExportLocal; entries ingested from siblings (cache.publish) are not,
  /// so gossip never echoes. Returns how many entries were newly inserted.
  size_t TtIngest(uint64_t store_key, const std::vector<TtSeedEntry>& entries,
                  bool local_origin);

  /// \brief One store's locally discovered entries, the unit of gossip.
  struct TtExportBatch {
    uint64_t store_key = 0;
    std::vector<TtSeedEntry> entries;
  };
  /// Snapshot of every store's local-origin entries (up to
  /// `max_entries_per_store` each, hottest by visits first) — what the
  /// router pulls via `cache.export` and publishes to siblings.
  std::vector<TtExportBatch> TtExportLocal(size_t max_entries_per_store) const;

  /// Entries currently held across all peer stores (tests/metrics).
  size_t tt_peer_entries() const;

  /// Returns the execution backend for (db, kind), constructing it on first
  /// use and caching it for the service's lifetime so plan caches stay warm
  /// across jobs that serve interfaces over the same store. `db` must
  /// outlive the service.
  Result<std::shared_ptr<ExecutionBackend>> BackendFor(const Database* db,
                                                       BackendKind kind);
  size_t backends_created() const;

  /// \brief Stats snapshot of one shared backend (see backend_stats).
  struct BackendStatEntry {
    const Database* db = nullptr;
    BackendKind kind = BackendKind::kReference;
    BackendStats stats;
  };
  /// Per-backend counters for every (db, kind) BackendFor has constructed —
  /// the observability feed of GET /v1/stats.
  std::vector<BackendStatEntry> backend_stats() const;

  /// Opens a per-user interactive runtime over a generated interface: the
  /// serving-side session object. Each runtime owns its own widget state,
  /// result maintenance, and change feed, but executes on the *shared*
  /// (db, kind) backend from BackendFor, so all sessions over one store
  /// share compiled plans. `db` must outlive the returned runtime.
  Result<std::shared_ptr<InteractiveRuntime>> OpenSession(
      const GeneratedInterface& iface, const CostConstants& constants,
      const Database* db, BackendKind kind,
      InteractiveRuntime::Options opts = {});
  size_t sessions_opened() const;

  size_t jobs_submitted() const;
  size_t jobs_executed() const;
  size_t cache_hits() const;
  size_t num_threads() const { return pool_.num_threads(); }

  /// \brief One-lock snapshot of every service-level counter — the feed of
  /// GET /v1/stats. The same event sites also bump the obs registry
  /// (ifgen_jobs_*, ifgen_sessions_opened_total), so the two views cannot
  /// drift apart.
  struct CountersSnapshot {
    size_t jobs_submitted = 0;
    size_t jobs_executed = 0;
    size_t jobs_pending = 0;
    size_t cache_hits = 0;
    size_t sessions_opened = 0;
    /// Cluster cache-peering telemetry (all zero outside cluster mode).
    size_t cache_probes = 0;      ///< cache.probe requests answered
    size_t cache_probe_hits = 0;  ///< probes that found a cached result
    size_t tt_peer_ingested = 0;  ///< TT entries accepted from siblings
    size_t tt_peer_hits = 0;      ///< search cost lookups served peer-seeded
    /// Experience-store telemetry (all zero without a configured store).
    size_t learn_store_entries = 0;  ///< records currently held
    size_t learn_hits = 0;           ///< store probes that found a record
    size_t learn_misses = 0;         ///< store probes that found nothing
    size_t learn_seeded = 0;         ///< records seeded into search bridges
    size_t learn_recorded = 0;       ///< records merged back from searches
    size_t learn_saves = 0;          ///< successful SaveTo calls
    size_t learn_loads = 0;          ///< successful LoadFrom calls
  };
  CountersSnapshot counters_snapshot() const;

  /// The configured experience store (Options::experience); null when the
  /// service runs without one. Servers use this to save on drain.
  const std::shared_ptr<learn::ExperienceStore>& experience_store() const {
    return experience_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// Tracked state of one job. Lives in jobs_ under mu_; the completion
  /// callback (the Submit future adapter) is invoked outside the lock.
  struct JobRecord {
    JobState state = JobState::kQueued;
    bool cache_hit = false;
    Clock::time_point submitted;
    Clock::time_point started;
    Clock::time_point finished;
    std::shared_ptr<const GeneratedInterface> result;
    Status error;
    std::shared_ptr<const obs::TraceRecorder> trace;
    std::function<void(Result<GeneratedInterface>)> on_done;
    /// Created at admission for every tracked job (and closed on every
    /// terminal transition), so GetJobProgress always has a sink to watch.
    std::shared_ptr<ProgressSink> progress;
    /// Cancel/time-control stop flag, wired into the job's search options.
    std::shared_ptr<StopHandle> stop;
  };

  Result<JobId> SubmitJobWithCallback(
      JobSpec spec, std::function<void(Result<GeneratedInterface>)> on_done);
  JobInfo SnapshotLocked(JobId id, const JobRecord& rec) const;
  /// Marks `id` terminal, records history for eviction, and returns the
  /// callback to invoke (outside the lock). Requires mu_ held.
  std::function<void(Result<GeneratedInterface>)> FinishLocked(
      JobId id, JobRecord* rec, JobState state,
      std::shared_ptr<const GeneratedInterface> result, Status error);

  std::shared_ptr<const GeneratedInterface> CacheLookup(uint64_t key);
  void CacheStore(uint64_t key, std::shared_ptr<const GeneratedInterface> value);

  size_t cache_capacity_;
  size_t max_pending_jobs_;
  size_t job_history_capacity_;
  size_t tt_peer_store_capacity_;
  size_t tt_peer_entries_per_store_;
  /// Immutable after construction (jobs read it without mu_).
  std::shared_ptr<learn::ExperienceStore> experience_;
  size_t experience_seed_limit_;
  size_t shared_delta_store_capacity_;

  mutable std::mutex mu_;
  std::condition_variable jobs_cv_;  ///< signalled on every terminal transition
  /// LRU: most recent at the front; the map points into the list.
  std::list<std::pair<uint64_t, std::shared_ptr<const GeneratedInterface>>> lru_;
  std::unordered_map<
      uint64_t,
      std::list<std::pair<uint64_t, std::shared_ptr<const GeneratedInterface>>>::iterator>
      index_;
  std::map<JobId, JobRecord> jobs_;
  std::deque<JobId> finished_order_;  ///< terminal jobs, oldest first
  JobId next_job_id_ = 1;
  size_t jobs_pending_ = 0;
  size_t jobs_submitted_ = 0;
  size_t jobs_executed_ = 0;
  size_t cache_hits_ = 0;
  size_t sessions_opened_ = 0;
  mutable size_t cache_probes_ = 0;      ///< bumped from const CachePeek
  mutable size_t cache_probe_hits_ = 0;  ///< bumped from const CachePeek
  size_t tt_peer_ingested_ = 0;
  size_t tt_peer_hits_ = 0;

  /// Transposition peer stores: cost identity (TtStoreKey) -> canonical
  /// state hash -> entry. `local` marks entries this worker's own searches
  /// discovered (re-exported by TtExportLocal) vs. ones ingested from
  /// siblings (seeded into local runs, never echoed back into gossip).
  struct TtPeerEntry {
    TtSeedEntry entry;
    bool local = false;
  };
  struct TtPeerStore {
    std::unordered_map<uint64_t, TtPeerEntry> entries;
  };
  std::map<uint64_t, TtPeerStore> tt_peers_;
  std::deque<uint64_t> tt_peer_order_;  ///< store keys, oldest first

  /// Shared cross-job delta-cost caches for experience jobs, keyed by
  /// TtStoreKey cost identity (FIFO eviction, like tt_peers_).
  std::map<uint64_t, std::shared_ptr<DeltaCostCache>> delta_stores_;
  std::deque<uint64_t> delta_store_order_;  ///< store keys, oldest first
  size_t learn_seeded_ = 0;   ///< experience records seeded into searches
  size_t learn_recorded_ = 0; ///< experience records merged back from searches

  /// (database, kind) -> shared backend instance.
  std::map<std::pair<const Database*, BackendKind>,
           std::shared_ptr<ExecutionBackend>>
      backends_;

  /// Declared last on purpose: ~ThreadPool joins the workers, and in-flight
  /// jobs touch the mutex/cache members above — those must still be alive
  /// while the pool drains during destruction.
  ThreadPool pool_;
};

}  // namespace ifgen
